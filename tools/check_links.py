#!/usr/bin/env python3
"""Offline link checker for the repo's markdown docs.

Scans ``README.md`` and ``docs/*.md`` (plus any paths given on the command
line) for markdown links and inline code references to repo files, and
verifies that every relative target exists. External ``http(s)``/``mailto``
links are reported but not fetched — CI must stay offline-deterministic.

Usage::

    python tools/check_links.py            # default file set
    python tools/check_links.py docs/*.md  # explicit files

Exit status is non-zero if any relative link target is missing. No
third-party dependencies.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# [text](target) — excludes images' leading "!" only for counting purposes;
# image targets are checked the same way.
MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# `docs/FOO.md` / `src/repro/...py` style inline-code file references.
CODE_REF = re.compile(
    r"`((?:docs|src|tests|tools|examples|benchmarks)/[A-Za-z0-9_./-]+"
    r"\.(?:md|py|json|yml|toml))(?::[A-Za-z0-9_.]+)?`"
)

EXTERNAL = ("http://", "https://", "mailto:")


def default_files() -> list[Path]:
    files = [REPO / "README.md"]
    files += sorted((REPO / "docs").glob("*.md"))
    return [f for f in files if f.exists()]


def iter_targets(path: Path):
    """Yield (line_number, raw_target) for every link-ish reference."""
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for m in MD_LINK.finditer(line):
            yield lineno, m.group(1)
        for m in CODE_REF.finditer(line):
            yield lineno, m.group(1)


def check_file(path: Path) -> tuple[int, list[str]]:
    """Return (links_seen, error_messages) for one markdown file."""
    errors: list[str] = []
    seen = 0
    for lineno, target in iter_targets(path):
        seen += 1
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue  # external / intra-page anchor: not checked offline
        plain = target.split("#", 1)[0]  # drop section anchors
        if not plain:
            continue
        base = path.parent if not plain.startswith("/") else REPO
        candidate = (base / plain.lstrip("/")).resolve()
        in_repo_fallback = (REPO / plain.lstrip("/")).resolve()
        if not candidate.exists() and not in_repo_fallback.exists():
            try:
                shown = path.relative_to(REPO)
            except ValueError:
                shown = path
            errors.append(f"{shown}:{lineno}: broken link -> {target}")
    return seen, errors


def main(argv: list[str]) -> int:
    files = [Path(a).resolve() for a in argv] if argv else default_files()
    total_links = 0
    all_errors: list[str] = []
    for f in files:
        seen, errors = check_file(f)
        total_links += seen
        all_errors += errors
    for e in all_errors:
        print(e, file=sys.stderr)
    print(
        f"checked {len(files)} files, {total_links} links, "
        f"{len(all_errors)} broken"
    )
    return 1 if all_errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
