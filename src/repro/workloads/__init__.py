"""Workload generators and input partitioning.

The paper's inputs were Project Gutenberg books (Huffman), random lowercase
text (regexes), New York Times pages (HTML tokenization), and random bits
(Div7). Offline, we synthesize statistically equivalent inputs:

* :func:`repro.workloads.text.synthetic_book` — English-like text whose
  character-frequency profile yields Huffman decoders in the paper's
  170–210-state range.
* :func:`repro.workloads.html.synthetic_page` — well-formed-ish HTML with
  tags, attributes, comments, character references, and a doctype.
* :func:`repro.workloads.binary.random_bits` — uniform or biased bit streams.
* :mod:`repro.workloads.chunking` — the chunk partitioner and the input
  layout transformation (Section 4.1's coalescing optimization).
"""

from repro.workloads.binary import random_bits, random_symbols
from repro.workloads.chunking import ChunkPlan, plan_chunks, transform_layout
from repro.workloads.html import synthetic_page, synthetic_pages
from repro.workloads.text import (
    ENGLISH_CHAR_WEIGHTS,
    random_lowercase,
    synthetic_book,
    synthetic_library,
)

__all__ = [
    "ChunkPlan",
    "ENGLISH_CHAR_WEIGHTS",
    "plan_chunks",
    "random_bits",
    "random_lowercase",
    "random_symbols",
    "synthetic_book",
    "synthetic_library",
    "synthetic_page",
    "synthetic_pages",
    "transform_layout",
]
