"""Random symbol streams: bits and generic categorical draws."""

from __future__ import annotations

import numpy as np

from repro.util.rng import ensure_rng

__all__ = ["random_bits", "random_symbols"]


def random_bits(
    n: int,
    *,
    p_one: float = 0.5,
    rng: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """A length-``n`` array of 0/1 symbols (``int32``), P(1) = ``p_one``.

    The Div7 input of the paper is the ``p_one = 0.5`` case.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if not 0.0 <= p_one <= 1.0:
        raise ValueError(f"p_one must be in [0, 1], got {p_one}")
    gen = ensure_rng(rng)
    return (gen.random(n) < p_one).astype(np.int32)


def random_symbols(
    n: int,
    num_symbols: int,
    *,
    probs: np.ndarray | None = None,
    rng: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """A length-``n`` categorical stream over ``num_symbols`` ids.

    ``probs`` defaults to uniform; it is normalized if it does not sum to 1.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if num_symbols < 1:
        raise ValueError(f"num_symbols must be >= 1, got {num_symbols}")
    gen = ensure_rng(rng)
    if probs is None:
        return gen.integers(0, num_symbols, size=n, dtype=np.int32)
    probs = np.asarray(probs, dtype=np.float64)
    if probs.shape != (num_symbols,):
        raise ValueError(f"probs must have shape ({num_symbols},), got {probs.shape}")
    if probs.min() < 0 or probs.sum() <= 0:
        raise ValueError("probs must be non-negative with positive sum")
    return gen.choice(num_symbols, size=n, p=probs / probs.sum()).astype(np.int32)
