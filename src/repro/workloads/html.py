"""Synthetic HTML page generator (the New York Times substitute).

Pages contain the constructs the 38-state tokenizer distinguishes: a
doctype, nested start/end tags with attributes in all three quoting styles,
self-closing tags, comments, character references, and text runs. Tag/text
proportions are tuned so look-back speculation succeeds at a high rate, as
the paper observes for its HTML workload (Figure 6).
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import ensure_rng

__all__ = ["synthetic_page", "synthetic_pages"]

_TAGS = (
    "div", "span", "p", "a", "li", "ul", "h1", "h2", "img", "table",
    "tr", "td", "section", "article", "header", "footer", "nav", "em",
)
_ATTRS = ("class", "id", "href", "src", "style", "title", "data-x", "role")
_WORDS = (
    "the", "quick", "news", "report", "today", "world", "politics", "arts",
    "science", "health", "business", "opinion", "review", "election",
    "market", "climate", "city", "sports", "travel", "food",
)
_CHARREFS = ("&amp;", "&lt;", "&gt;", "&nbsp;", "&#169;", "&#x2014;", "&quot;")


def _text_run(gen: np.random.Generator, n_words: int) -> str:
    words = [_WORDS[int(i)] for i in gen.integers(0, len(_WORDS), size=n_words)]
    out = " ".join(words)
    if n_words > 3 and gen.random() < 0.3:
        out += " " + _CHARREFS[int(gen.integers(0, len(_CHARREFS)))] + " "
    return out


def _attributes(gen: np.random.Generator) -> str:
    n = int(gen.integers(0, 4))
    parts = []
    for _ in range(n):
        name = _ATTRS[int(gen.integers(0, len(_ATTRS)))]
        style = gen.random()
        value = _WORDS[int(gen.integers(0, len(_WORDS)))]
        if style < 0.6:
            parts.append(f'{name}="{value}"')
        elif style < 0.8:
            parts.append(f"{name}='{value}'")
        elif style < 0.9:
            parts.append(f"{name}={value}")
        else:
            parts.append(name)  # boolean attribute
    return (" " + " ".join(parts)) if parts else ""


def synthetic_page(
    approx_chars: int,
    *,
    rng: int | np.random.Generator | None = 0,
) -> str:
    """One synthetic page of roughly ``approx_chars`` characters."""
    if approx_chars < 0:
        raise ValueError(f"approx_chars must be >= 0, got {approx_chars}")
    gen = ensure_rng(rng)
    parts: list[str] = ['<!DOCTYPE html "about:legacy-compat">', "<html><body>"]
    size = sum(len(p) for p in parts)
    open_stack: list[str] = []
    while size < approx_chars:
        roll = gen.random()
        if roll < 0.58:
            piece = _text_run(gen, int(gen.integers(6, 24)))
        elif roll < 0.74 or not open_stack:
            tag = _TAGS[int(gen.integers(0, len(_TAGS)))]
            if tag == "img" or gen.random() < 0.08:
                piece = f"<{tag}{_attributes(gen)}/>"
            else:
                piece = f"<{tag}{_attributes(gen)}>"
                open_stack.append(tag)
        elif roll < 0.92:
            piece = f"</{open_stack.pop()}>"
        elif roll < 0.97:
            piece = f"<!-- {_text_run(gen, int(gen.integers(1, 6)))} -->"
        else:
            piece = _CHARREFS[int(gen.integers(0, len(_CHARREFS)))]
        parts.append(piece)
        size += len(piece)
    while open_stack:
        closer = f"</{open_stack.pop()}>"
        parts.append(closer)
    parts.append("</body></html>")
    return "".join(parts)


def synthetic_pages(
    total_chars: int,
    *,
    page_chars: int = 1 << 14,
    rng: int | np.random.Generator | None = 0,
) -> str:
    """Concatenated pages totalling at least ``total_chars`` characters.

    Mirrors the paper's "randomly combining web pages" input construction.
    Pages are whole (never cut mid-tag), so the result may overshoot
    ``total_chars`` by up to one page.
    """
    from repro.util.rng import spawn_rngs

    if total_chars < 0:
        raise ValueError(f"total_chars must be >= 0, got {total_chars}")
    pages: list[str] = []
    size = 0
    gens = spawn_rngs(rng, max(1, -(-total_chars // max(1, page_chars))) + 2)
    i = 0
    while size < total_chars:
        page = synthetic_page(page_chars, rng=gens[i % len(gens)])
        pages.append(page)
        size += len(page)
        i += 1
    return "".join(pages)
