"""Synthetic English-like text (the Project Gutenberg substitute).

The paper builds Huffman codes from downloaded books; the resulting decoder
FSMs have 177–205 states (Table 4), i.e. 178–206 distinct symbols. What the
experiments actually depend on is the *character frequency profile*: a
heavily skewed head (space, e, t, a, ...) plus a long tail of rare symbols
(capitals, punctuation, digits, and — in UTF-8 books — occasional multi-byte
sequences). :func:`synthetic_book` reproduces that profile:

* a head of ~70 common characters with empirical English weights, and
* a Zipf-distributed tail of ``tail_size`` rare byte values,

so the Huffman decoder lands in the paper's state-count range and its
row-access distribution shows the strong skew of Figure 5/15.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import ensure_rng

__all__ = [
    "ENGLISH_CHAR_WEIGHTS",
    "synthetic_book",
    "synthetic_library",
    "random_lowercase",
]

# Empirical English letter/punctuation weights (per mille, approximate;
# derived from standard corpus tables). Keys are single characters.
ENGLISH_CHAR_WEIGHTS: dict[str, float] = {
    " ": 180.0,
    "e": 102.0, "t": 75.0, "a": 65.0, "o": 62.0, "i": 57.0, "n": 57.0,
    "s": 53.0, "h": 50.0, "r": 48.0, "d": 34.0, "l": 33.0, "u": 23.0,
    "c": 22.0, "m": 20.0, "w": 19.0, "f": 18.0, "g": 16.0, "y": 16.0,
    "p": 13.0, "b": 12.0, "v": 8.0, "k": 6.4, "j": 1.2, "x": 1.2,
    "q": 0.8, "z": 0.6,
    "\n": 16.0, ",": 10.0, ".": 9.0, "'": 2.4, '"': 2.2, ";": 0.8,
    "-": 1.6, "?": 0.5, "!": 0.4, ":": 0.3, "(": 0.2, ")": 0.2,
    "0": 0.5, "1": 0.6, "2": 0.3, "3": 0.2, "4": 0.2, "5": 0.3,
    "6": 0.2, "7": 0.2, "8": 0.3, "9": 0.2,
    "A": 1.3, "B": 0.9, "C": 0.8, "D": 0.6, "E": 0.6, "F": 0.5,
    "G": 0.5, "H": 1.0, "I": 2.0, "J": 0.3, "K": 0.2, "L": 0.5,
    "M": 0.9, "N": 0.6, "O": 0.5, "P": 0.6, "Q": 0.1, "R": 0.5,
    "S": 1.0, "T": 1.6, "U": 0.2, "V": 0.2, "W": 0.8, "X": 0.05,
    "Y": 0.3, "Z": 0.05,
}


def _symbol_distribution(tail_size: int, tail_weight: float) -> tuple[np.ndarray, np.ndarray]:
    """Return (byte_values, probabilities) for head + Zipf tail."""
    head_chars = list(ENGLISH_CHAR_WEIGHTS)
    head_vals = np.array([ord(c) for c in head_chars], dtype=np.int64)
    head_w = np.array([ENGLISH_CHAR_WEIGHTS[c] for c in head_chars], dtype=np.float64)
    used = set(head_vals.tolist())
    tail_vals = [v for v in range(128, 256) if v not in used]
    tail_vals += [v for v in range(1, 128) if v not in used and v not in (10,)]
    tail_vals = np.array(tail_vals[:tail_size], dtype=np.int64)
    if tail_vals.size < tail_size:
        raise ValueError(f"tail_size {tail_size} exceeds available byte values")
    ranks = np.arange(1, tail_vals.size + 1, dtype=np.float64)
    tail_w = 1.0 / ranks  # Zipf(1)
    head_w = head_w / head_w.sum() * (1.0 - tail_weight)
    tail_w = tail_w / tail_w.sum() * tail_weight
    values = np.concatenate([head_vals, tail_vals])
    probs = np.concatenate([head_w, tail_w])
    return values, probs


def synthetic_book(
    n_chars: int,
    *,
    tail_size: int = 140,
    tail_weight: float = 0.004,
    rng: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Generate ``n_chars`` byte values (``int32``) of English-like text.

    ``tail_size`` controls how many rare byte values exist; together with
    ``n_chars`` it determines how many distinct symbols actually occur and
    hence the Huffman decoder size. The defaults produce ~175–210 observed
    symbols for inputs of 10^5 .. 10^7 characters, matching Table 4.
    """
    if n_chars < 0:
        raise ValueError(f"n_chars must be >= 0, got {n_chars}")
    gen = ensure_rng(rng)
    values, probs = _symbol_distribution(tail_size, tail_weight)
    return values[gen.choice(values.size, size=n_chars, p=probs)].astype(np.int32)


def synthetic_library(
    n_books: int,
    chars_per_book: int,
    *,
    rng: int | np.random.Generator | None = 0,
) -> list[np.ndarray]:
    """Several books with slightly different profiles (Table 4's four texts).

    Each book perturbs the tail size so the per-book Huffman FSMs differ in
    state count, as in the paper's 179/203/177/179 spread.
    """
    from repro.util.rng import spawn_rngs

    gens = spawn_rngs(rng, n_books)
    books = []
    for i, g in enumerate(gens):
        tail = 110 + 17 * i  # varied tails -> varied distinct-symbol counts
        books.append(synthetic_book(chars_per_book, tail_size=tail, rng=g))
    return books


def random_lowercase(
    n_chars: int,
    *,
    rng: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Uniform random lowercase symbol ids 0..25 (the paper's regex input)."""
    if n_chars < 0:
        raise ValueError(f"n_chars must be >= 0, got {n_chars}")
    gen = ensure_rng(rng)
    return gen.integers(0, 26, size=n_chars, dtype=np.int32)
