"""Chunk partitioning and the input layout transformation.

The engine assigns one chunk per (simulated) GPU thread. ``plan_chunks``
splits ``num_items`` into ``num_chunks`` nearly equal pieces — the first
``num_items % num_chunks`` chunks are one item longer, so lock-step
processing needs exactly two phases (a common prefix of ``min_len`` steps
plus one ragged step for the longer chunks).

``transform_layout`` is the paper's Section 4.1 optimization: re-lay the
input so that at every lock-step iteration the symbols consumed by all
threads are *contiguous* (one coalesced 128-byte transaction per warp on
real hardware; one contiguous row read instead of a strided gather in the
NumPy simulation — a real, measurable cache effect here too).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ChunkPlan",
    "plan_chunks",
    "plan_from_lengths",
    "transform_layout",
    "TransformedInput",
]


@dataclass(frozen=True)
class ChunkPlan:
    """Partition of ``num_items`` into ``num_chunks`` contiguous chunks."""

    num_items: int
    num_chunks: int
    starts: np.ndarray  # (num_chunks,) int64 — chunk start offsets
    lengths: np.ndarray  # (num_chunks,) int64

    @property
    def min_len(self) -> int:
        """Length of the shortest chunk (the lock-step prefix)."""
        return int(self.lengths.min()) if self.num_chunks else 0

    @property
    def max_len(self) -> int:
        """Length of the longest chunk."""
        return int(self.lengths.max()) if self.num_chunks else 0

    @property
    def num_long(self) -> int:
        """How many chunks carry one extra (ragged) item."""
        return int(np.count_nonzero(self.lengths > self.min_len))

    @property
    def boundaries(self) -> np.ndarray:
        """Offsets of chunk starts plus the final end (length ``n+1``)."""
        return np.concatenate([self.starts, [self.num_items]])

    def chunk_slice(self, c: int) -> slice:
        """Python slice covering chunk ``c``."""
        return slice(int(self.starts[c]), int(self.starts[c] + self.lengths[c]))


def plan_chunks(num_items: int, num_chunks: int) -> ChunkPlan:
    """Split ``num_items`` into ``num_chunks`` nearly equal contiguous chunks.

    Sizes differ by at most one; longer chunks come first. ``num_chunks``
    may exceed ``num_items`` — surplus chunks are empty (length 0), which
    the engine treats as identity maps.
    """
    if num_items < 0:
        raise ValueError(f"num_items must be >= 0, got {num_items}")
    if num_chunks < 1:
        raise ValueError(f"num_chunks must be >= 1, got {num_chunks}")
    base = num_items // num_chunks
    extra = num_items % num_chunks
    lengths = np.full(num_chunks, base, dtype=np.int64)
    lengths[:extra] += 1
    starts = np.zeros(num_chunks, dtype=np.int64)
    np.cumsum(lengths[:-1], out=starts[1:])
    return ChunkPlan(
        num_items=num_items, num_chunks=num_chunks, starts=starts, lengths=lengths
    )


def plan_from_lengths(lengths: np.ndarray) -> ChunkPlan:
    """Build a :class:`ChunkPlan` from explicit per-chunk lengths.

    Chunks are laid out contiguously in the given order. Unlike
    :func:`plan_chunks`, the lengths may be arbitrarily skewed — the
    scoreboard scheduler (:mod:`repro.core.scoreboard`) uses such plans to
    model straggler chunks, where one long chunk holds every barrier stage
    hostage. Lock-step helpers that assume near-equal chunks
    (:func:`transform_layout`, :func:`repro.core.local.process_chunks`)
    reject skewed plans; the engine routes them to the ragged execution
    paths instead.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.ndim != 1 or lengths.size == 0:
        raise ValueError(f"lengths must be a non-empty 1-D array, got {lengths.shape}")
    if (lengths < 0).any():
        raise ValueError("chunk lengths must be >= 0")
    starts = np.zeros(lengths.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=starts[1:])
    return ChunkPlan(
        num_items=int(lengths.sum()),
        num_chunks=int(lengths.size),
        starts=starts,
        lengths=lengths,
    )


@dataclass(frozen=True)
class TransformedInput:
    """Interleaved input layout: step-major instead of chunk-major.

    ``main[j, c]`` is the ``j``-th symbol of chunk ``c`` for the lock-step
    prefix (``min_len`` rows). ``tail`` holds the one extra symbol of each
    longer chunk (``num_long`` entries, chunk-id order).
    """

    main: np.ndarray  # (min_len, num_chunks) contiguous
    tail: np.ndarray  # (num_long,)

    @property
    def nbytes(self) -> int:
        """Footprint of the transformed copy."""
        return int(self.main.nbytes + self.tail.nbytes)


def transform_layout(inputs: np.ndarray, plan: ChunkPlan) -> TransformedInput:
    """Produce the coalescing-friendly interleaved copy of ``inputs``.

    This is an offline, amortizable transformation (the paper runs many
    FSMs over the same transformed input, e.g. a NIDS checking many rules
    per packet). The gather below is the transformation cost the paper's
    Figure 14 amortizes away.
    """
    inputs = np.asarray(inputs)
    if inputs.ndim != 1:
        raise ValueError(f"inputs must be 1-D, got shape {inputs.shape}")
    if inputs.size != plan.num_items:
        raise ValueError(
            f"inputs length {inputs.size} != plan.num_items {plan.num_items}"
        )
    if plan.max_len - plan.min_len > 1:
        raise ValueError(
            "transform_layout requires a near-equal plan (lengths differ by "
            f"<= 1), got min={plan.min_len} max={plan.max_len}; skewed plans "
            "run in the natural layout"
        )
    q = plan.min_len
    idx = plan.starts[None, :] + np.arange(q, dtype=np.int64)[:, None]
    main = np.ascontiguousarray(inputs[idx]) if q else np.zeros(
        (0, plan.num_chunks), dtype=inputs.dtype
    )
    long_mask = plan.lengths > q
    tail = inputs[(plan.starts + q)[long_mask]] if long_mask.any() else np.zeros(
        0, dtype=inputs.dtype
    )
    return TransformedInput(main=main, tail=tail)
