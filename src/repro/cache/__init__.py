"""Hot-state caching of the transition table (Section 4.2 of the paper)."""

from repro.cache.hotstates import HotStateCache, plan_hot_states

__all__ = ["HotStateCache", "plan_hot_states"]
