"""Hot-state caching of transition-table rows in (simulated) shared memory.

Section 4.2 of the paper: FSM table accesses are data-dependent and random,
so when the table cannot fit in shared memory whole, cache only the rows of
*hot* states. The paper uses a static scheme:

1. rank states by frequency — by default the *static* count of appearances
   as transition targets (their worked example ranks states a and c hot
   with count 4), optionally by a measured occupancy sample;
2. place rows via an open-addressed hash ``hash(q) = (q * SCALE) % HASH_SIZE``;
   on a collision keep the hotter state;
3. at run time, a state's row is served from shared memory iff the hash
   slot holds exactly that state.

:class:`HotStateCache` reproduces the placement (including collision
evictions) and exposes the resident-row mask that the engine uses to tally
hits and misses; the cost model prices hits at shared-memory latency plus
the hash overhead and misses at global/L2 latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fsm.analysis import static_state_frequency
from repro.fsm.dfa import DFA

__all__ = ["HotStateCache", "plan_hot_states", "DEFAULT_SCALE"]

DEFAULT_SCALE = 17  # spreads states across slots; coprime with table sizes


@dataclass(frozen=True)
class HotStateCache:
    """A static shared-memory cache plan for a DFA's transition table.

    ``slot_of[q]`` is the hash slot assigned to state ``q`` (or -1),
    ``resident[q]`` says whether state ``q``'s row actually lives in shared
    memory (it may have lost its slot to a hotter state).
    """

    num_slots: int
    scale: int
    slot_state: np.ndarray  # (num_slots,) int32, -1 = empty
    resident: np.ndarray  # (num_states,) bool
    row_bytes: int

    @property
    def rows_resident(self) -> int:
        """Number of table rows held in shared memory."""
        return int(self.resident.sum())

    @property
    def shared_bytes(self) -> int:
        """Shared-memory footprint: resident rows plus the hash table."""
        return self.rows_resident * self.row_bytes + self.num_slots * 4

    def is_hit(self, states: np.ndarray) -> np.ndarray:
        """Boolean hit mask for an array of accessed states."""
        return self.resident[states]


def plan_hot_states(
    dfa: DFA,
    *,
    shared_budget_bytes: int = 48 * 1024,
    frequency: np.ndarray | None = None,
    scale: int = DEFAULT_SCALE,
    entry_bytes: int = 4,
) -> HotStateCache:
    """Build the static cache plan for ``dfa`` within a shared-memory budget.

    ``frequency`` overrides the ranking (e.g. a measured occupancy sample);
    the default is the paper's static target-count heuristic. The hash
    table size is the largest power of two such that the table plus the
    hottest rows fit in the budget; collisions evict the colder state,
    exactly as described in the paper.
    """
    if shared_budget_bytes < 0:
        raise ValueError(f"shared_budget_bytes must be >= 0, got {shared_budget_bytes}")
    n = dfa.num_states
    row_bytes = dfa.num_inputs * entry_bytes
    freq = (
        static_state_frequency(dfa)
        if frequency is None
        else np.asarray(frequency, dtype=np.float64)
    )
    if freq.shape != (n,):
        raise ValueError(f"frequency must have shape ({n},), got {freq.shape}")

    # Capacity: how many rows fit once the hash table itself is paid for.
    # Hash table sized to the next power of two >= the row count, then rows
    # trimmed until rows + hash table fit the budget.
    target_rows = min(n, max(0, shared_budget_bytes // max(1, row_bytes)))
    num_slots = 1
    while num_slots < max(1, target_rows):
        num_slots *= 2
    while num_slots > 1 and num_slots * 4 > shared_budget_bytes:
        num_slots //= 2
    while target_rows > 0 and target_rows * row_bytes + num_slots * 4 > shared_budget_bytes:
        target_rows -= 1

    slot_state = np.full(num_slots, -1, dtype=np.int32)
    slot_freq = np.full(num_slots, -1.0)
    resident = np.zeros(n, dtype=bool)
    if target_rows > 0 and num_slots > 0:
        # Insert candidate rows in state-id order, the order a build kernel
        # hashes them in, and resolve each collision with the paper's
        # keep-the-hotter-state rule: a strictly hotter arrival evicts the
        # occupant (which loses residency), an equally-or-less hot arrival
        # is rejected. Iterating hottest-first instead would make the
        # eviction branch unreachable; the final placement is identical.
        candidates = np.sort(np.argsort(-freq, kind="stable")[:target_rows])
        for q in candidates:
            h = (int(q) * scale) % num_slots
            if freq[q] > slot_freq[h]:
                if slot_state[h] >= 0:
                    resident[slot_state[h]] = False
                slot_state[h] = q
                slot_freq[h] = freq[q]
                resident[q] = True
    return HotStateCache(
        num_slots=num_slots,
        scale=scale,
        slot_state=slot_state,
        resident=resident,
        row_bytes=row_bytes,
    )
