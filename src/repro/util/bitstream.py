"""Bit-stream packing and unpacking.

Huffman-coded data is a stream of bits; the decoder FSM consumes one bit per
transition (``num_inputs == 2`` in Table 3 of the paper). These helpers
convert between packed ``uint8`` byte buffers and unpacked ``uint8`` arrays of
0/1 symbols, plus small incremental reader/writer classes used by the
reference (non-FSM) Huffman codec.

Packing uses ``numpy.packbits``/``unpackbits`` (MSB-first), so round-trips
are exact and vectorized.
"""

from __future__ import annotations

import numpy as np

__all__ = ["bits_to_bytes", "bits_from_bytes", "BitWriter", "BitReader"]


def bits_to_bytes(bits: np.ndarray) -> tuple[bytes, int]:
    """Pack an array of 0/1 values into bytes (MSB first).

    Returns ``(payload, nbits)`` where ``nbits`` is the exact bit count
    (needed because the final byte may be padded with zeros).
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 1:
        raise ValueError(f"bits must be 1-D, got shape {bits.shape}")
    if bits.size and int(bits.max(initial=0)) > 1:
        raise ValueError("bits must contain only 0 and 1")
    return np.packbits(bits).tobytes(), int(bits.size)


def bits_from_bytes(payload: bytes, nbits: int) -> np.ndarray:
    """Unpack ``payload`` into an array of exactly ``nbits`` 0/1 values."""
    if nbits < 0:
        raise ValueError(f"nbits must be >= 0, got {nbits}")
    if nbits > 8 * len(payload):
        raise ValueError(f"nbits={nbits} exceeds payload capacity {8 * len(payload)}")
    raw = np.frombuffer(payload, dtype=np.uint8)
    return np.unpackbits(raw)[:nbits]


class BitWriter:
    """Incrementally collect bits, then retrieve them as an array or bytes."""

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []
        self._nbits = 0

    def __len__(self) -> int:
        return self._nbits

    def write(self, bits: np.ndarray) -> None:
        """Append an array of 0/1 values."""
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim != 1:
            raise ValueError(f"bits must be 1-D, got shape {bits.shape}")
        self._chunks.append(bits)
        self._nbits += bits.size

    def write_bit(self, bit: int) -> None:
        """Append a single bit."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        self.write(np.array([bit], dtype=np.uint8))

    def getvalue(self) -> np.ndarray:
        """Return all written bits as one array."""
        if not self._chunks:
            return np.zeros(0, dtype=np.uint8)
        return np.concatenate(self._chunks)

    def packed(self) -> tuple[bytes, int]:
        """Return ``(bytes, nbits)`` for the written stream."""
        return bits_to_bytes(self.getvalue())


class BitReader:
    """Sequentially read bits from an unpacked bit array."""

    def __init__(self, bits: np.ndarray) -> None:
        self._bits = np.asarray(bits, dtype=np.uint8)
        if self._bits.ndim != 1:
            raise ValueError(f"bits must be 1-D, got shape {self._bits.shape}")
        self._pos = 0

    @property
    def remaining(self) -> int:
        """Number of unread bits."""
        return self._bits.size - self._pos

    def read_bit(self) -> int:
        """Read one bit; raises ``EOFError`` when exhausted."""
        if self._pos >= self._bits.size:
            raise EOFError("bit stream exhausted")
        bit = int(self._bits[self._pos])
        self._pos += 1
        return bit

    def read(self, n: int) -> np.ndarray:
        """Read ``n`` bits; raises ``EOFError`` if fewer remain."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        if self._pos + n > self._bits.size:
            raise EOFError(f"requested {n} bits, only {self.remaining} remain")
        out = self._bits[self._pos : self._pos + n]
        self._pos += n
        return out
