"""Small statistics helpers used by the analysis and benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["cdf_by_frequency", "geometric_mean", "describe", "Summary"]


def cdf_by_frequency(counts: np.ndarray) -> np.ndarray:
    """Cumulative distribution with items sorted by decreasing frequency.

    This is the quantity plotted in Figure 5 of the paper: sort state
    frequencies in decreasing order and return the running share of the
    total. ``cdf[i]`` is the fraction of all events covered by the ``i+1``
    most frequent items. An all-zero input yields an all-zero CDF.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 1:
        raise ValueError(f"counts must be 1-D, got shape {counts.shape}")
    if counts.size and counts.min() < 0:
        raise ValueError("counts must be non-negative")
    total = counts.sum()
    if total == 0:
        return np.zeros_like(counts)
    ordered = np.sort(counts)[::-1]
    return np.cumsum(ordered) / total


def geometric_mean(values: np.ndarray) -> float:
    """Geometric mean of positive values (standard for speedup aggregation)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("geometric_mean of empty array")
    if values.min() <= 0:
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(values))))


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    min: float
    median: float
    max: float


def describe(values: np.ndarray) -> Summary:
    """Return a :class:`Summary` of ``values``."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("describe of empty array")
    return Summary(
        n=int(values.size),
        mean=float(values.mean()),
        std=float(values.std()),
        min=float(values.min()),
        median=float(np.median(values)),
        max=float(values.max()),
    )
