"""Shared utilities: bit streams, validation, RNG helpers, statistics."""

from repro.util.bitstream import (
    BitReader,
    BitWriter,
    bits_from_bytes,
    bits_to_bytes,
)
from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.stats import cdf_by_frequency, describe, geometric_mean
from repro.util.validation import (
    check_dtype_integer,
    check_in_set,
    check_positive,
    check_range,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "bits_from_bytes",
    "bits_to_bytes",
    "cdf_by_frequency",
    "check_dtype_integer",
    "check_in_set",
    "check_positive",
    "check_range",
    "describe",
    "ensure_rng",
    "geometric_mean",
    "spawn_rngs",
]
