"""Seeded random-number-generator helpers.

Every stochastic component of the library accepts either a seed or a
``numpy.random.Generator``; :func:`ensure_rng` normalizes both to a
``Generator`` so results are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs"]

RngLike = "int | np.random.Generator | None"


def ensure_rng(rng: int | np.random.Generator | None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``rng``.

    ``None`` yields a fresh nondeterministic generator, an ``int`` is used as
    a seed, and an existing ``Generator`` is passed through unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, int, or numpy Generator, got {type(rng)!r}")


def spawn_rngs(rng: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    Uses ``Generator.spawn`` so the children are statistically independent —
    the right way to seed per-worker streams in parallel workloads.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return list(ensure_rng(rng).spawn(n))
