"""Lightweight argument validation helpers.

These helpers raise uniform, descriptive errors. They are used at public API
boundaries only; inner loops stay branch-free (see the hpc guides: validate
once at the edge, then trust array invariants inside kernels).
"""

from __future__ import annotations

from typing import Any, Collection

import numpy as np

__all__ = [
    "check_positive",
    "check_range",
    "check_in_set",
    "check_dtype_integer",
]


def check_positive(name: str, value: float | int, *, strict: bool = True) -> None:
    """Raise ``ValueError`` unless ``value`` is positive (or >= 0 if not strict)."""
    if strict:
        if not value > 0:
            raise ValueError(f"{name} must be > 0, got {value!r}")
    else:
        if not value >= 0:
            raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_range(name: str, value: float | int, lo: float, hi: float) -> None:
    """Raise ``ValueError`` unless ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")


def check_in_set(name: str, value: Any, allowed: Collection[Any]) -> None:
    """Raise ``ValueError`` unless ``value`` is one of ``allowed``."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {sorted(map(str, allowed))}, got {value!r}")


def check_dtype_integer(name: str, array: np.ndarray) -> None:
    """Raise ``TypeError`` unless ``array`` has an integer dtype."""
    if not np.issubdtype(array.dtype, np.integer):
        raise TypeError(f"{name} must have an integer dtype, got {array.dtype}")
