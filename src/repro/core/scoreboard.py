"""Chunk scoreboard: out-of-order merge consumption with eager miss re-execution.

The barrier engine runs the paper's pipeline as lock-step stages —
speculate all -> execute all -> merge all -> re-execute misses — so one
straggler chunk stalls every downstream stage. This module treats chunks as
in-flight instructions instead (the classic R10K scoreboard shape): each
chunk moves independently through

    SPECULATED -> EXECUTED -> MERGED -> RETIRED

and the merge *consumes* chunk maps the moment they arrive. Two properties
of the algebra make out-of-order resolution legal:

* semi-join composition (:func:`repro.core.merge_par.compose_maps`) is
  associative, so any contiguous run of executed chunks can be folded into
  one segment map before its incoming state is known;
* a *converged* chunk (:mod:`repro.core.convergence`) has a total-constant
  map over achievable incoming states, so its outgoing state — and hence
  its successor's incoming state — is known the instant it executes, even
  while every chunk to its left is still in flight. Converged chunks retire
  immediately and open a *secondary resolution front*.

The payoff is eager, provably-necessary re-execution: the moment a chunk's
incoming state becomes known (through the primary front at chunk 0 or any
secondary front) and its speculation row misses, the scoreboard launches the
re-execution right then — typically while other chunks are still executing,
long before the full merge would have finished. The ``sched.reexec_early``
observability counter (and :attr:`ChunkScoreboard.reexec_log`) record that
ordering.

``mode="sequential"`` resolves with scalar frontier probes only (every
chunk's true incoming state is recovered — the scoreboard analog of
:func:`repro.core.merge_seq.merge_sequential`). ``mode="parallel"``
additionally composes runs of executed chunks ahead of the fronts, so a
front crossing a composed run resolves it with one probe (the scoreboard
analog of the paper's tree merge; per-chunk truth inside skipped runs is
then recovered separately, exactly as after a tree merge).

:func:`run_chunks_active` is the matching execution driver for skewed
(straggler) chunk plans: it keeps an *active list*, compacts finished
chunks out of the per-step gather, and posts each chunk to the scoreboard
at its true completion time — short chunks merge and misses re-execute
while the stragglers are still running.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.checks import count_hash, count_nested, count_skipped, select_check
from repro.core.merge_par import compose_maps
from repro.core.types import ExecStats
from repro.fsm.dfa import DFA
from repro.fsm.run import run_segment
from repro.obs.trace import current_trace, trace_span
from repro.workloads.chunking import ChunkPlan

__all__ = [
    "STAGE_SPECULATED",
    "STAGE_EXECUTED",
    "STAGE_MERGED",
    "STAGE_RETIRED",
    "ChunkScoreboard",
    "run_chunks_active",
]

#: Chunk lifecycle stages (monotone except for :meth:`ChunkScoreboard.reissue`).
STAGE_SPECULATED = 0
STAGE_EXECUTED = 1
STAGE_MERGED = 2
STAGE_RETIRED = 3


class ChunkScoreboard:
    """Track every chunk from speculation to retirement, resolving eagerly.

    Parameters
    ----------
    dfa:
        The machine being executed (its ``start`` seeds the primary front).
    inputs, plan:
        The input and its chunk partition — needed by the default
        re-execution path.
    k:
        Speculation width of the posted rows.
    mode:
        ``"sequential"`` — scalar front probes only, full per-chunk truth;
        ``"parallel"`` — additionally compose contiguous executed runs
        ahead of the fronts (one probe resolves a whole run; per-chunk
        truth inside a skipped run is not recovered).
    check:
        Runtime-check implementation for front probes (``"auto"``,
        ``"nested"``, ``"hash"`` — same accounting as the merges).
    stats:
        :class:`repro.core.types.ExecStats` to count events into (None for
        uncounted resolution).
    reexec_fn:
        ``(chunk, state) -> end_state`` used on a provable miss. Defaults
        to :func:`repro.fsm.run.run_segment` over the chunk's slice; the
        scale-out pool passes a stride-kernel implementation.
    seeds:
        Optional ``{chunk: known_incoming_state}`` map pinning *exact*
        incoming states at arbitrary chunks. Each seed opens an
        independent resolution front at construction time — the batching
        layer (:func:`repro.core.engine.run_speculative_batch`) uses one
        seed per coalesced request so many independent jobs resolve on a
        single scoreboard without composing across request boundaries:
        resolution never propagates *into* a seeded chunk (its incoming
        state is already known), so a request tail's outgoing state never
        leaks into the next request's head. Seeded chunks are not
        speculative boundaries and are excluded from success-rate
        accounting. A seed at chunk 0 overrides ``dfa.start``.
    """

    def __init__(
        self,
        dfa: DFA,
        inputs: np.ndarray,
        plan: ChunkPlan,
        k: int,
        *,
        mode: str = "sequential",
        check: str = "auto",
        stats: ExecStats | None = None,
        reexec_fn: Callable[[int, int], int] | None = None,
        seeds: dict[int, int] | None = None,
    ) -> None:
        if mode not in ("sequential", "parallel"):
            raise ValueError(f"mode must be 'sequential' or 'parallel', got {mode!r}")
        n = plan.num_chunks
        self.dfa = dfa
        self.inputs = inputs
        self.plan = plan
        self.n = n
        self.k = int(k)
        self.mode = mode
        self._impl = select_check(self.k, check)
        self.stats = stats
        self._reexec_fn = reexec_fn

        self.spec = np.zeros((n, k), dtype=np.int32)
        self.end = np.zeros((n, k), dtype=np.int32)
        self.valid = np.zeros((n, k), dtype=bool)
        self.posted = np.zeros(n, dtype=bool)
        self.converged = np.zeros(n, dtype=bool)
        self.stage = np.full(n, STAGE_SPECULATED, dtype=np.uint8)
        self.in_state = np.full(n, -1, dtype=np.int32)
        self.out_state = np.full(n, -1, dtype=np.int32)
        if n:
            self.in_state[0] = dfa.start
        self._seeds: dict[int, int] = {}
        if seeds:
            for c, s in seeds.items():
                if not 0 <= c < n:
                    raise ValueError(f"seed chunk {c} out of range [0, {n})")
                if not 0 <= s < dfa.num_states:
                    raise ValueError(
                        f"seed state {s} out of range [0, {dfa.num_states})"
                    )
                self._seeds[int(c)] = int(s)
                self.in_state[c] = int(s)
        self._retired = 0

        # Parallel-mode composed runs: lo -> [hi, end_row, valid_row]; the
        # run's speculation row is self.spec[lo]. A run only ever contains
        # posted, non-converged chunks whose incoming state is unknown.
        self._seg_by_lo: dict[int, list] = {}
        self._seg_by_hi: dict[int, int] = {}

        # Event clock for the eager-reexec ordering proof: reexec_log holds
        # (event_index, chunk, posts_seen_at_that_moment) — a re-execution
        # with posts_seen < n provably fired before the merge could finish.
        self._clock = 0
        self.posts_seen = 0
        self.reexec_log: list[tuple[int, int, int]] = []
        self._obs = {
            "sched.posted": 0,
            "sched.retired_converged": 0,
            "sched.reexec_early": 0,
            "sched.reexec_early_items": 0,
            "sched.runs_composed": 0,
            "sched.segment_skips": 0,
            "sched.reissues": 0,
        }
        self._truth_complete = True

    # ------------------------------------------------------------------ #
    # posting and re-issue
    # ------------------------------------------------------------------ #

    @property
    def done(self) -> bool:
        """True once every chunk has retired."""
        return self._retired == self.n

    def post(
        self,
        c: int,
        spec_row: np.ndarray,
        end_row: np.ndarray,
        *,
        converged: bool = False,
        valid_row: np.ndarray | None = None,
    ) -> None:
        """Record chunk ``c``'s executed map and resolve as far as possible.

        Safe in any arrival order; posting a chunk twice is an error unless
        it was re-issued in between. ``converged=True`` retires the chunk
        immediately (its outgoing state is ``end_row[0]`` for *any*
        achievable incoming state) and opens a secondary front at ``c+1``.
        """
        if not 0 <= c < self.n:
            raise ValueError(f"chunk {c} out of range [0, {self.n})")
        if self.posted[c]:
            raise ValueError(f"chunk {c} posted twice without a reissue")
        self._clock += 1
        self.posts_seen += 1
        self._obs["sched.posted"] += 1
        self.spec[c] = spec_row
        self.end[c] = end_row
        self.valid[c] = True if valid_row is None else valid_row
        self.posted[c] = True
        self.converged[c] = converged
        self.stage[c] = STAGE_EXECUTED
        if converged:
            # Constant map over achievable incoming states: the outgoing
            # state is known now, whoever feeds this chunk. Retire it and
            # light a secondary front at its successor.
            self.out_state[c] = self.end[c, 0]
            count_skipped(1, self.stats)
            if self.stats is not None and c > 0 and c not in self._seeds:
                self.stats.success_total += 1
                self.stats.success_hits += 1
            self._retire(c, STAGE_RETIRED)
            self._obs["sched.retired_converged"] += 1
            if self.in_state[c] >= 0:
                self._advance(c)  # front was parked here; sweep through
            elif c + 1 < self.n:
                if self.in_state[c + 1] < 0:
                    self.in_state[c + 1] = self.out_state[c]
                self._advance(c + 1)
            return
        if self.in_state[c] >= 0:
            self._advance(c)
        elif self.mode == "parallel":
            self._join_runs(c)

    def reissue(self, c: int) -> None:
        """Return an unresolved chunk to SPECULATED (retry/hedge path).

        A retried or hedged chunk is not a special case — its previous
        attempt never posted a result the scoreboard accepted, so the entry
        simply rewinds to the speculated stage and waits for the next post.
        Re-issuing a chunk that already posted or retired is an error (an
        accepted result is never rolled back).
        """
        if self.posted[c] or self.stage[c] >= STAGE_MERGED:
            raise ValueError(f"chunk {c} already resolved; cannot reissue")
        self.stage[c] = STAGE_SPECULATED
        self._obs["sched.reissues"] += 1

    # ------------------------------------------------------------------ #
    # resolution machinery
    # ------------------------------------------------------------------ #

    def _retire(self, c: int, stage: int) -> None:
        if self.stage[c] != STAGE_RETIRED:
            self.stage[c] = stage
            if stage == STAGE_RETIRED:
                self._retired += 1

    def _advance(self, c: int) -> None:
        """Propagate known incoming states rightward from chunk ``c``."""
        n = self.n
        while c < n:
            s = int(self.in_state[c])
            if s < 0:
                return
            if self.out_state[c] >= 0:
                # Already resolved (converged retire or a secondary front
                # got here first) — chain the known outgoing state through.
                self._retire(c, STAGE_RETIRED)
                nxt = int(self.out_state[c])
                c += 1
                if c < n and self.in_state[c] < 0:
                    self.in_state[c] = nxt
                continue
            if not self.posted[c]:
                return
            if self.mode == "parallel" and c in self._seg_by_lo:
                c = self._consume_run(c, s)
                continue
            self._resolve_one(c, s)
            nxt = int(self.out_state[c])
            c += 1
            if c < n and self.in_state[c] < 0:
                self.in_state[c] = nxt

    def _probe(self, spec_row: np.ndarray, valid_row: np.ndarray, s: int) -> int:
        """Semi-join of one true state against one map row (counted)."""
        hits = np.flatnonzero((spec_row == s) & valid_row)
        found = hits.size > 0
        idx = int(hits[0]) if found else 0
        if self.stats is not None:
            mi = np.array([[idx]])
            fo = np.array([[found]])
            vl = np.array([[True]])
            if self._impl == "nested":
                count_nested(mi, fo, vl, self.k, self.stats)
            else:
                count_hash(
                    np.array([[s]]), vl, spec_row[None, :], valid_row[None, :],
                    mi, fo, self.stats,
                )
        return idx if found else -1

    def _resolve_one(self, c: int, s: int) -> None:
        """Resolve a single posted chunk whose incoming state just arrived."""
        idx = self._probe(self.spec[c], self.valid[c], s)
        if self.stats is not None and c > 0 and c not in self._seeds:
            self.stats.success_total += 1
            if idx >= 0:
                self.stats.success_hits += 1
        if idx >= 0:
            self.out_state[c] = self.end[c, idx]
            self.stage[c] = STAGE_MERGED
        else:
            self.out_state[c] = self._reexecute(c, s)
        self._retire(c, STAGE_RETIRED)

    def _reexecute(self, c: int, s: int) -> int:
        """Provable speculation miss: re-execute chunk ``c`` from ``s`` now.

        Fires the moment the miss is provable — ``self.posts_seen`` chunks
        have executed at this point; when that is less than ``n``, the
        re-execution demonstrably started before the merge could complete.
        """
        self._clock += 1
        self.reexec_log.append((self._clock, c, self.posts_seen))
        self._obs["sched.reexec_early"] += 1
        seg = self.inputs[self.plan.chunk_slice(c)]
        self._obs["sched.reexec_early_items"] += int(seg.size)
        if self.stats is not None:
            self.stats.reexec_chunks_early += 1
            self.stats.reexec_items_early += int(seg.size)
        if self._reexec_fn is not None:
            return int(self._reexec_fn(c, s))
        return int(run_segment(self.dfa, seg, s))

    # ------------------------------------------------------------------ #
    # parallel-mode run composition
    # ------------------------------------------------------------------ #

    def _join_runs(self, c: int) -> None:
        """Fold chunk ``c`` into the contiguous executed run around it."""
        lo, hi = c, c + 1
        end_row = self.end[c].copy()
        valid_row = self.valid[c].copy()
        left_lo = self._seg_by_hi.pop(c, None)
        if left_lo is not None:
            _, lend, lvalid = self._seg_by_lo.pop(left_lo)
            end_row, valid_row = self._compose(lend, lvalid, c, end_row, valid_row)
            lo = left_lo
        right = self._seg_by_lo.pop(hi, None)
        if right is not None:
            rhi, rend, rvalid = right
            self._seg_by_hi.pop(rhi, None)
            end_row, valid_row = self._compose(end_row, valid_row, hi, rend, rvalid)
            hi = rhi
        self._seg_by_lo[lo] = [hi, end_row, valid_row]
        self._seg_by_hi[hi] = lo

    def _compose(
        self,
        end_left: np.ndarray,
        valid_left: np.ndarray,
        right_lo: int,
        end_right: np.ndarray,
        valid_right: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One pairwise run composition (counted like a tree-merge pair)."""
        composed, found, mi = compose_maps(
            end_left[None, :], valid_left[None, :],
            self.spec[right_lo][None, :], end_right[None, :],
            valid_right[None, :],
        )
        if self.stats is not None:
            self.stats.merge_pair_ops += 1
            if self._impl == "nested":
                count_nested(mi, found, valid_left[None, :], self.k, self.stats)
            else:
                count_hash(
                    end_left[None, :], valid_left[None, :],
                    self.spec[right_lo][None, :], valid_right[None, :],
                    mi, found, self.stats,
                )
        self._obs["sched.runs_composed"] += 1
        return composed[0], found[0]

    def _consume_run(self, lo: int, s: int) -> int:
        """A front reached a composed run: resolve it with one probe.

        On a hit every chunk in the run retires at once (their internal
        boundaries provably all hit, but their individual incoming states
        stay unknown — truth recovery is the caller's business, as after a
        tree merge). On a miss the run is descended chunk by chunk, firing
        eager re-execution at the first real miss.
        """
        hi, end_row, valid_row = self._seg_by_lo.pop(lo)
        self._seg_by_hi.pop(hi, None)
        idx = self._probe(self.spec[lo], valid_row, s)
        if idx >= 0:
            if self.stats is not None:
                boundaries = (hi - lo) if lo > 0 else (hi - lo - 1)
                self.stats.success_total += boundaries
                self.stats.success_hits += boundaries
            for c in range(lo, hi):
                self._retire(c, STAGE_RETIRED)
            self.out_state[hi - 1] = end_row[idx]
            if hi - lo > 1:
                self._truth_complete = False
                self._obs["sched.segment_skips"] += 1
            if hi < self.n and self.in_state[hi] < 0:
                self.in_state[hi] = self.out_state[hi - 1]
            return hi
        # The composed entry missed or was invalidated: walk the run.
        cur = s
        for c in range(lo, hi):
            self.in_state[c] = cur
            self._resolve_one(c, cur)
            cur = int(self.out_state[c])
        if hi < self.n and self.in_state[hi] < 0:
            self.in_state[hi] = cur
        return hi

    # ------------------------------------------------------------------ #
    # completion
    # ------------------------------------------------------------------ #

    def resolve(self) -> tuple[int, np.ndarray | None]:
        """Finish resolution; return ``(final_state, true_starts_or_None)``.

        Every chunk must have been posted. ``true_starts`` is the exact
        per-chunk incoming state vector when the resolution recovered it
        for every chunk (always in sequential mode; in parallel mode only
        when no composed run was skipped over), else None — mirroring the
        sequential/parallel merge contract.
        """
        if not self.posted.all():
            missing = np.flatnonzero(~self.posted)
            raise RuntimeError(
                f"cannot resolve: {missing.size} chunks never posted "
                f"(first: {missing[:5].tolist()})"
            )
        if not self.done:  # pragma: no cover - defensive; posts resolve eagerly
            self._advance(0)
        obs = current_trace()
        if obs is not None:
            for name, val in self._obs.items():
                if val:
                    obs.count(name, val)
        final = int(self.out_state[self.n - 1]) if self.n else int(self.dfa.start)
        if self._truth_complete and bool((self.in_state >= 0).all()):
            return final, self.in_state.copy()
        return final, None


def run_chunks_active(
    dfa: DFA,
    inputs: np.ndarray,
    plan: ChunkPlan,
    spec: np.ndarray,
    board: ChunkScoreboard,
    *,
    stats: ExecStats | None = None,
) -> None:
    """Active-list local processing interleaved with scoreboard resolution.

    Advances all *unfinished* chunks one symbol per step — the per-step
    gather touches only the active rows, so total gathered elements are
    ``sum(lengths) * k`` instead of the ``n * max_len * k`` a divergent
    lock-step barrier pays on a skewed plan
    (:func:`repro.core.local.process_chunks_ragged`). Each chunk is posted
    to ``board`` the step it completes, so short chunks merge — and their
    provable misses re-execute — while straggler chunks are still running.
    """
    spec = np.asarray(spec, dtype=np.int32)
    if spec.ndim != 2 or spec.shape[0] != plan.num_chunks:
        raise ValueError(
            f"spec must have shape (num_chunks, k), got {spec.shape} for "
            f"{plan.num_chunks} chunks"
        )
    table = dfa.table
    starts = plan.starts
    lengths = plan.lengths
    idx = np.arange(plan.num_chunks)
    S = spec.copy()
    gathered = 0
    j = 0
    with trace_span("sched.active_exec", chunks=plan.num_chunks, k=spec.shape[1]):
        while idx.size:
            finished = lengths[idx] <= j
            if finished.any():
                for i in np.flatnonzero(finished):
                    c = int(idx[i])
                    board.post(c, spec[c], S[i])
                keep = ~finished
                idx = idx[keep]
                S = S[keep]
                if not idx.size:
                    break
            syms = inputs[starts[idx] + j]
            S = table[syms[:, None], S]
            gathered += S.size
            j += 1
    if stats is not None:
        stats.local_steps += plan.max_len
        stats.local_transitions += int(lengths.sum()) * spec.shape[1]
        stats.local_input_reads += int(lengths.sum())
        stats.local_gathers += gathered
