"""Native-compiled hot path: specialized C kernels with a JIT cache.

The NumPy kernels (:mod:`repro.core.kernels`) pay a Python-level dispatch
per macro-step; this package closes the paper's loop by *generating*
specialized C for each plan — speculation width ``k`` unrolled into
locals, stride-``m`` stepping, collapse-aware single-lane narrowing, and
the ``compose_maps`` fold with its first-match semi-join — compiling it
at first use with the system compiler, and caching artifacts in memory
and on disk keyed by
``(dfa_fingerprint, k, kernel, collapse, dtype, abi_version)`` so
repeated tenants and restarted servers perform zero compiles.

No hard dependency is added. Provider ladder: numba ``@njit`` (optional
``native`` extra) → compiled artifact via cffi (optional) → compiled
artifact via stdlib ctypes → pure NumPy (by falling back at the caller).
:func:`load_native_plan` returns ``None`` on any failure; autotune
(:func:`repro.core.autotune.choose_backend`) only selects
``backend="native"`` when it measures faster than the NumPy path.

``python -m repro.core.native`` prints the compile-cache statistics as
JSON (used by CI to archive cache behaviour).
"""

from .build import (
    ABI_VERSION,
    build_stats,
    cache_dir,
    cache_key,
    find_compiler,
    reset_build_state,
)
from .cgen import UNROLL_LIMIT, NativeSpec, generate_source
from .runtime import (
    NativeKernel,
    cache_stats,
    clear_memory_cache,
    load_artifact,
    load_native_plan,
    native_available,
)

__all__ = [
    "ABI_VERSION",
    "UNROLL_LIMIT",
    "NativeSpec",
    "NativeKernel",
    "generate_source",
    "build_stats",
    "cache_stats",
    "cache_dir",
    "cache_key",
    "clear_memory_cache",
    "find_compiler",
    "load_artifact",
    "load_native_plan",
    "native_available",
    "reset_build_state",
]
