"""Print native compile-cache statistics as JSON.

CI archives this output after the native bench job so cache behaviour
(compiles vs warm hits, compiler identity, fallbacks) is inspectable per
run::

    python -m repro.core.native > native-cache-stats.json
"""

import json
import sys

from .runtime import cache_stats

if __name__ == "__main__":
    json.dump(cache_stats(), sys.stdout, indent=2, default=str)
    sys.stdout.write("\n")
