"""Generate specialized C sources for the native hot path.

The paper's speedups come from a *generator* that fixes the speculation
width at compile time so the compiler unrolls the per-state loop and keeps
the lanes in registers. :func:`generate_source` is that generator for the
CPU: given a :class:`NativeSpec` — ``(k, m, C, N, cadence, backoff)`` — it
emits one C translation unit containing

* ``nk_process_chunks`` — the local-processing kernel. One plain loop per
  chunk (ragged lengths are free), ``k`` lanes unrolled into locals for
  small ``k`` (an indexed lane array above :data:`UNROLL_LIMIT`), stride-m
  stepping with the radix index computed inline from the class map, and a
  collapse-aware fast path: on cadence, if every lane agrees, the chunk
  narrows to a single-lane loop for its remaining symbols (bit-exact — a
  chunk's ``spec -> end`` map is deterministic, so equal lanes stay equal).
* ``nk_run_segment`` — the single-state re-execution primitive
  (the native analog of :func:`repro.core.kernels.run_segment_kernel`).
* ``nk_fold_maps`` — the left fold of per-chunk maps with the first-match
  semi-join of :func:`repro.core.merge_par.compose_maps`, re-executing
  misses natively (the worker-side fold of
  :class:`repro.core.mp_executor.ScaleoutPool`, compiled).
* ``nk_abi`` / ``nk_meta`` — sanity probes so a loader can verify an
  artifact matches the plan it was compiled for.

Transition tables are **not** baked into the artifact — they arrive as
pointers (the compacted class table and the optional stride table), so one
artifact serves every buffer location (shared-memory views included) and
the cache key stays ``(dfa_fingerprint, k, kernel, collapse, dtype, abi)``.

Counter slots written by the kernels (one ``int64[8]`` per call)::

    0  state advances (physical gathers)
    1  collapse scans
    2  lanes collapsed
    3  fold: chunks re-executed on a semi-join miss
    4  fold: items re-executed (segment length x missing lanes)
    5  fold: checks skipped on converged chunks
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NativeSpec", "UNROLL_LIMIT", "generate_source"]

#: Lanes above this count use an indexed local array instead of unrolled
#: scalar locals (the source would otherwise grow quadratically and spill
#: registers anyway).
UNROLL_LIMIT = 8

#: Counter-slot indices (mirrored by the runtime wrapper).
SLOT_GATHERS = 0
SLOT_SCANS = 1
SLOT_LANES_COLLAPSED = 2
SLOT_FOLD_REEXEC_CHUNKS = 3
SLOT_FOLD_REEXEC_ITEMS = 4
SLOT_FOLD_CHECKS_SKIPPED = 5
NUM_SLOTS = 8


@dataclass(frozen=True)
class NativeSpec:
    """Everything the generator specializes on.

    ``k`` is the speculation width (lanes per chunk), ``m`` the stride
    (symbols per composed-table step; 1 = per-symbol stepping), ``C`` the
    compacted class count, ``N`` the state count, and ``cadence`` the
    collapse scan interval in symbols (0 disables the collapse fast path;
    ``backoff`` multiplies the interval after an unproductive scan).

    ``patterns`` bakes the multi-pattern lane layout in as a constant
    (``NK_P``): the ``k`` lanes are the concatenation of ``patterns``
    per-pattern lane groups over a block-diagonal stacked-union table
    (``group_widths`` gives each group's lane count; empty means an even
    ``k / patterns`` split). Lane stepping is identical — the union
    table's blocks are closed, so one fused gather still advances every
    pattern — but the collapse fast path becomes group-aware: lanes from
    different blocks can never be equal, so the scan tests *within-group*
    agreement and the collapsed continuation steps one lane per pattern.
    """

    k: int
    m: int
    num_classes: int
    num_states: int
    cadence: int = 0
    backoff: int = 2
    patterns: int = 1
    group_widths: tuple = ()

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.m < 1:
            raise ValueError(f"stride m must be >= 1, got {self.m}")
        if self.num_classes < 1 or self.num_states < 1:
            raise ValueError("num_classes and num_states must be >= 1")
        if self.cadence < 0:
            raise ValueError(f"cadence must be >= 0, got {self.cadence}")
        if self.backoff < 1:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.patterns < 1:
            raise ValueError(f"patterns must be >= 1, got {self.patterns}")
        if self.group_widths:
            widths = tuple(int(w) for w in self.group_widths)
            if len(widths) != self.patterns:
                raise ValueError(
                    f"group_widths has {len(widths)} entries for "
                    f"{self.patterns} patterns"
                )
            if any(w < 1 for w in widths):
                raise ValueError(f"group widths must be >= 1, got {widths}")
            if sum(widths) != self.k:
                raise ValueError(
                    f"group widths {widths} sum to {sum(widths)}, not k={self.k}"
                )
            object.__setattr__(self, "group_widths", widths)
        elif self.patterns > 1:
            if self.k % self.patterns:
                raise ValueError(
                    f"k={self.k} not divisible by patterns={self.patterns} "
                    "and no group_widths given"
                )

    @property
    def groups(self) -> tuple:
        """Per-pattern lane widths (resolved; always sums to ``k``)."""
        if self.group_widths:
            return self.group_widths
        if self.patterns == 1:
            return (self.k,)
        return (self.k // self.patterns,) * self.patterns

    @property
    def group_offsets(self) -> tuple:
        """Lane offset of each group plus the total (``patterns + 1`` ints)."""
        offs = [0]
        for w in self.groups:
            offs.append(offs[-1] + w)
        return tuple(offs)

    @property
    def unrolled(self) -> bool:
        """Whether lanes become scalar locals (vs an indexed array)."""
        return self.k <= UNROLL_LIMIT

    @property
    def collapsing(self) -> bool:
        """Whether the collapse fast path is generated at all."""
        return self.cadence > 0 and self.k > self.patterns


def _stride_index(spec: NativeSpec, base: str) -> list[str]:
    """Lines computing the radix-packed stride index of ``m`` symbols."""
    lines = [f"            i64 idx = class_of[{base}[t]];"]
    for i in range(1, spec.m):
        lines.append(
            f"            idx = idx * NC + (i64)class_of[{base}[t + {i}]];"
        )
    return lines


def _lane_step(spec: NativeSpec, row: str) -> list[str]:
    """Lines advancing every lane through one table row."""
    if spec.unrolled:
        return [
            f"            s{j} = {row}[s{j}];" for j in range(spec.k)
        ]
    return [
        "            for (int j = 0; j < K; j++) st[j] = " + row + "[st[j]];"
    ]


def _lane_equal(spec: NativeSpec) -> str:
    """Boolean expression: every lane group holds one state per group.

    For a single pattern this is plain all-lanes-equal. For ``patterns``
    groups over a stacked union, cross-group equality is impossible (the
    blocks occupy disjoint state ranges), so only within-group agreement
    is tested — collapse then fires exactly when every pattern converged.
    """
    if spec.unrolled:
        terms = []
        offs = spec.group_offsets
        for g in range(spec.patterns):
            lo, hi = offs[g], offs[g + 1]
            terms.extend(f"s{lo} == s{j}" for j in range(lo + 1, hi))
        if not terms:
            return "1"
        return " && ".join(terms)
    return "nk_all_equal(st)"


def _scan_block(spec: NativeSpec) -> list[str]:
    """The cadence-gated collapse scan, or nothing when disabled."""
    if not spec.collapsing:
        return []
    return [
        "            if (t >= next_scan) {",
        f"                counters[{SLOT_SCANS}] += 1;",
        f"                if ({_lane_equal(spec)}) {{",
        f"                    counters[{SLOT_LANES_COLLAPSED}] += K - NK_P;",
        "                    goto collapsed;",
        "                }",
        "                interval *= BACKOFF;",
        "                next_scan = t + interval;",
        "            }",
    ]


def generate_source(spec: NativeSpec) -> str:
    """Emit the full C translation unit for ``spec``."""
    k, m = spec.k, spec.m

    # --- lane storage ----------------------------------------------------- #
    if spec.unrolled:
        lane_load = "\n".join(
            f"    i32 s{j} = lanes[{j}];" for j in range(k)
        )
        lane_store = "\n".join(
            f"    lanes[{j}] = s{j};" for j in range(k)
        )
        lane_broadcast = "\n".join(
            f"    lanes[{j}] = s0;" for j in range(k)
        )
        collapsed_seed = "s0"
    else:
        lane_load = (
            "    i32 st[K];\n"
            "    for (int j = 0; j < K; j++) st[j] = lanes[j];"
        )
        lane_store = "    for (int j = 0; j < K; j++) lanes[j] = st[j];"
        lane_broadcast = "    for (int j = 0; j < K; j++) lanes[j] = st[0];"
        collapsed_seed = "st[0]"

    # --- per-symbol (tail) step ------------------------------------------- #
    tail_step = "\n".join(
        ["            const i32 *row = Tc + (i64)class_of[in[t]] * NS;"]
        + _lane_step(spec, "row")
    )

    # --- stride main loop (only generated when m > 1) ---------------------- #
    if m > 1:
        stride_loop = "\n".join(
            [
                "        while (t + M <= len) {",
                *_stride_index(spec, "in"),
                "            const i32 *row = Tm + idx * NS;",
                *_lane_step(spec, "row"),
                "            t += M;",
                f"            counters[{SLOT_GATHERS}] += K;",
                *_scan_block(spec),
                "        }",
            ]
        )
        one_stride = "\n".join(
            [
                "        while (t + M <= len) {",
                *_stride_index(spec, "in"),
                "            s = Tm[idx * NS + s];",
                "            t += M;",
                "        }",
            ]
        )
    else:
        stride_loop = "        /* m == 1: per-symbol stepping only */"
        one_stride = "        /* m == 1: per-symbol stepping only */"

    scan_tail = "\n".join(_scan_block(spec))
    collapse_decls = (
        "    i64 next_scan = CAD;\n    i64 interval = CAD;"
        if spec.collapsing
        else "    /* collapse fast path disabled */"
    )
    if not spec.collapsing:
        collapsed_label = ""
    elif spec.patterns == 1:
        collapsed_label = f"""
collapsed:
    /* Every lane agrees: finish the chunk single-lane, then broadcast. */
    {{
        i32 s = {collapsed_seed};
        s = nk_advance_one(in + t, len - t, s, class_of, Tc, Tm);
        counters[{SLOT_GATHERS}] += len - t;
{_broadcast_from_s(spec)}
    }}
    return;"""
    else:
        collapsed_label = f"""
collapsed:
    /* Every pattern's lanes agree: finish one lane per pattern. */
    {{
        i32 gs[NK_P];
{_group_seed(spec)}
        nk_advance_group(in + t, len - t, gs, class_of, Tc, Tm);
        counters[{SLOT_GATHERS}] += (len - t) * NK_P;
{_group_broadcast(spec)}
    }}
    return;"""

    goff_decl = (
        "static const int GOFF[NK_P + 1] = {"
        + ", ".join(str(o) for o in spec.group_offsets)
        + "};\n"
        if (spec.collapsing and spec.patterns > 1 and not spec.unrolled)
        else ""
    )
    if not (spec.collapsing and not spec.unrolled):
        all_equal_helper = ""
    elif spec.patterns == 1:
        all_equal_helper = """
static int nk_all_equal(const i32 *st) {
    for (int j = 1; j < K; j++)
        if (st[j] != st[0]) return 0;
    return 1;
}
"""
    else:
        all_equal_helper = """
static int nk_all_equal(const i32 *st) {
    for (int g = 0; g < NK_P; g++)
        for (int j = GOFF[g] + 1; j < GOFF[g + 1]; j++)
            if (st[j] != st[GOFF[g]]) return 0;
    return 1;
}
"""
    all_equal_helper = goff_decl + all_equal_helper
    advance_group_helper = (
        _advance_group_helper(spec)
        if (spec.collapsing and spec.patterns > 1)
        else ""
    )

    return f"""\
/* Generated by repro.core.native.cgen — one artifact per
 * (dfa_fingerprint, k, kernel, collapse, dtype, abi). Do not edit. */
#include <stdint.h>

#define NK_ABI_SOURCE 1
#define K {k}
#define M {m}
#define NC {spec.num_classes}
#define NS {spec.num_states}
#define CAD {spec.cadence}
#define BACKOFF {spec.backoff}
#define NK_P {spec.patterns}

typedef int32_t i32;
typedef int64_t i64;
typedef uint8_t u8;

i32 nk_abi(void) {{ return NK_ABI_SOURCE; }}

i32 nk_meta(i32 which) {{
    switch (which) {{
        case 0: return K;
        case 1: return M;
        case 2: return NC;
        case 3: return NS;
        case 4: return CAD;
        case 5: return NK_P;
        default: return -1;
    }}
}}

/* Advance one state through a segment: the re-execution primitive and the
 * single-lane continuation of a collapsed chunk. */
static i32 nk_advance_one(const i32 *in, i64 len, i32 s,
                          const i32 *class_of, const i32 *Tc,
                          const i32 *Tm) {{
    i64 t = 0;
    if (M > 1 && Tm) {{
{one_stride}
    }}
    for (; t < len; t++)
        s = Tc[(i64)class_of[in[t]] * NS + s];
    return s;
}}

i32 nk_run_segment(const i32 *in, i64 len, i32 s, const i32 *class_of,
                   const i32 *Tc, const i32 *Tm) {{
    return nk_advance_one(in, len, s, class_of, Tc, Tm);
}}
{all_equal_helper}{advance_group_helper}
/* Advance all K lanes of one chunk. */
static void nk_advance_chunk(const i32 *in, i64 len, i32 *lanes,
                             const i32 *class_of, const i32 *Tc,
                             const i32 *Tm, i64 *counters) {{
{lane_load}
    i64 t = 0;
{collapse_decls}
    if (M > 1 && Tm) {{
{stride_loop}
    }}
    {{
        while (t < len) {{
{tail_step}
            t += 1;
            counters[{SLOT_GATHERS}] += K;
{scan_tail}
        }}
    }}
{lane_store}
    return;{collapsed_label}
}}

/* The local-processing kernel: spec -> end maps for every chunk. */
void nk_process_chunks(const i32 *inputs, const i64 *starts,
                       const i64 *lengths, i64 nchunks, const i32 *spec,
                       i32 *end, const i32 *class_of, const i32 *Tc,
                       const i32 *Tm, i64 *counters) {{
    for (i64 c = 0; c < nchunks; c++) {{
        i32 lanes[K];
        for (int j = 0; j < K; j++) lanes[j] = spec[c * K + j];
        nk_advance_chunk(inputs + starts[c], lengths[c], lanes,
                         class_of, Tc, Tm, counters);
        for (int j = 0; j < K; j++) end[c * K + j] = lanes[j];
    }}
}}

/* Left fold of per-chunk maps over chunk 0's speculation row: first-match
 * semi-join (compose_maps semantics), native re-execution on a miss, and
 * converged-chunk short-circuit. `row` carries the K running end states
 * in and out. */
void nk_fold_maps(const i32 *spec, const i32 *end, i64 nmaps,
                  const i32 *inputs, const i64 *starts, const i64 *lengths,
                  const u8 *converged, const i32 *class_of, const i32 *Tc,
                  const i32 *Tm, i32 *row, i64 *counters) {{
    for (i64 c = 1; c < nmaps; c++) {{
        const i32 *sp = spec + c * K;
        const i32 *en = end + c * K;
        if (converged && converged[c]) {{
            /* Constant map over achievable incoming states. */
            for (int j = 0; j < K; j++) row[j] = en[0];
            counters[{SLOT_FOLD_CHECKS_SKIPPED}] += K;
            continue;
        }}
        i32 nxt[K];
        int misses = 0;
        for (int j = 0; j < K; j++) {{
            i32 v = row[j];
            int hit = -1;
            for (int jj = 0; jj < K; jj++) {{
                if (sp[jj] == v) {{ hit = jj; break; }}
            }}
            if (hit >= 0) {{
                nxt[j] = en[hit];
            }} else {{
                nxt[j] = nk_advance_one(inputs + starts[c], lengths[c], v,
                                        class_of, Tc, Tm);
                misses++;
            }}
        }}
        if (misses) {{
            counters[{SLOT_FOLD_REEXEC_CHUNKS}] += 1;
            counters[{SLOT_FOLD_REEXEC_ITEMS}] += lengths[c] * misses;
        }}
        for (int j = 0; j < K; j++) row[j] = nxt[j];
    }}
}}
"""


def _broadcast_from_s(spec: NativeSpec) -> str:
    """Store the collapsed single lane ``s`` back into every output lane."""
    if spec.unrolled:
        return "\n".join(
            f"        lanes[{j}] = s;" for j in range(spec.k)
        )
    return "        for (int j = 0; j < K; j++) lanes[j] = s;"


def _group_seed(spec: NativeSpec) -> str:
    """Load the first lane of each pattern group into ``gs``."""
    offs = spec.group_offsets
    if spec.unrolled:
        return "\n".join(
            f"        gs[{g}] = s{offs[g]};" for g in range(spec.patterns)
        )
    return "        for (int g = 0; g < NK_P; g++) gs[g] = st[GOFF[g]];"


def _group_broadcast(spec: NativeSpec) -> str:
    """Store each group's collapsed lane back into all of its lanes."""
    offs = spec.group_offsets
    if spec.unrolled:
        return "\n".join(
            f"        lanes[{j}] = gs[{g}];"
            for g in range(spec.patterns)
            for j in range(offs[g], offs[g + 1])
        )
    return (
        "        for (int g = 0; g < NK_P; g++)\n"
        "            for (int j = GOFF[g]; j < GOFF[g + 1]; j++)\n"
        "                lanes[j] = gs[g];"
    )


def _advance_group_helper(spec: NativeSpec) -> str:
    """Emit ``nk_advance_group``: one lane per pattern, stride-aware.

    The per-pattern continuation of a fully collapsed multi-pattern
    chunk — the same stepping as :func:`nk_advance_one` but over
    ``NK_P`` states sharing each gathered table row.
    """
    if spec.m > 1:
        stride = """\
    if (M > 1 && Tm) {
        while (t + M <= len) {
            i64 idx = class_of[in[t]];
            for (int i = 1; i < M; i++)
                idx = idx * NC + (i64)class_of[in[t + i]];
            const i32 *row = Tm + idx * NS;
            for (int g = 0; g < NK_P; g++) gs[g] = row[gs[g]];
            t += M;
        }
    }
"""
    else:
        stride = "    /* m == 1: per-symbol stepping only */\n"
    return f"""
/* Advance one lane per pattern group (collapsed-chunk continuation). */
static void nk_advance_group(const i32 *in, i64 len, i32 *gs,
                             const i32 *class_of, const i32 *Tc,
                             const i32 *Tm) {{
    i64 t = 0;
{stride}    for (; t < len; t++) {{
        const i32 *row = Tc + (i64)class_of[in[t]] * NS;
        for (int g = 0; g < NK_P; g++) gs[g] = row[gs[g]];
    }}
}}
"""
