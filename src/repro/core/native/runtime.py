"""Load compiled native kernels and expose them behind a NumPy interface.

The public entry point is :func:`load_native_plan`: resolve (or accept) a
:class:`~repro.core.kernels.KernelPlan`, specialize C source for
``(k, kernel, collapse)``, compile-or-reuse the artifact (see
:mod:`repro.core.native.build`), and return a :class:`NativeKernel` whose
methods take the same arrays as the NumPy path. Every failure mode —
no compiler, compile error, load error, smoke-check mismatch — returns
``None`` (counted as ``native.fallback.*``) so callers degrade to NumPy
without special-casing.

Provider ladder (first available wins):

1. **numba** — optional accelerator from the ``native`` extra: an
   ``@njit`` mirror of the generated C, no compiler or artifact needed;
2. **cffi** — optional accelerator: ``dlopen`` of the compiled artifact;
3. **ctypes** — the zero-dependency floor, stdlib only;
4. NumPy — by returning ``None`` from :func:`load_native_plan`.

Each provider is smoke-checked at load time against a pure-Python table
walk on a short random segment; a provider that disagrees (or raises) is
demoted down the ladder rather than trusted.
"""

from __future__ import annotations

import ctypes
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ...fsm.dfa import DFA
from ...obs import add_count, trace_span
from ..convergence import CollapseConfig
from ..kernels import DEFAULT_TABLE_BUDGET_BYTES, KernelPlan, plan_kernel
from ..predictor import dfa_fingerprint
from . import build as _build
from .cgen import (
    NUM_SLOTS,
    SLOT_FOLD_CHECKS_SKIPPED,
    SLOT_FOLD_REEXEC_CHUNKS,
    SLOT_FOLD_REEXEC_ITEMS,
    SLOT_GATHERS,
    SLOT_LANES_COLLAPSED,
    SLOT_SCANS,
    NativeSpec,
    generate_source,
)

__all__ = [
    "NativeKernel",
    "load_native_plan",
    "load_artifact",
    "native_available",
    "cache_stats",
    "clear_memory_cache",
]

_MEM_CACHE_MAX = 64
_mem_lock = threading.Lock()
_mem_cache: "OrderedDict[tuple, NativeKernel]" = OrderedDict()


def _i32(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(np.asarray(a), dtype=np.int32)


def _i64(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(np.asarray(a), dtype=np.int64)


# --------------------------------------------------------------------------- #
# artifact loaders
# --------------------------------------------------------------------------- #


class _CtypesLib:
    """stdlib loader: raw pointers passed as integers through ``c_void_p``."""

    provider = "ctypes"

    def __init__(self, path: str) -> None:
        lib = ctypes.CDLL(path)
        P = ctypes.c_void_p
        i32 = ctypes.c_int32
        i64 = ctypes.c_int64
        lib.nk_abi.restype = i32
        lib.nk_abi.argtypes = []
        lib.nk_meta.restype = i32
        lib.nk_meta.argtypes = [i32]
        lib.nk_run_segment.restype = i32
        lib.nk_run_segment.argtypes = [P, i64, i32, P, P, P]
        lib.nk_process_chunks.restype = None
        lib.nk_process_chunks.argtypes = [P, P, P, i64, P, P, P, P, P, P]
        lib.nk_fold_maps.restype = None
        lib.nk_fold_maps.argtypes = [P, P, i64, P, P, P, P, P, P, P, P, P]
        self._lib = lib

    @staticmethod
    def _ptr(a: np.ndarray | None) -> int | None:
        return None if a is None else a.ctypes.data

    def abi(self) -> int:
        return int(self._lib.nk_abi())

    def meta(self, which: int) -> int:
        return int(self._lib.nk_meta(which))

    def run_segment(self, inputs, start, class_of, Tc, Tm) -> int:
        return int(
            self._lib.nk_run_segment(
                self._ptr(inputs), inputs.size, int(start),
                self._ptr(class_of), self._ptr(Tc), self._ptr(Tm),
            )
        )

    def process_chunks(
        self, inputs, starts, lengths, spec, end, class_of, Tc, Tm, counters
    ) -> None:
        self._lib.nk_process_chunks(
            self._ptr(inputs), self._ptr(starts), self._ptr(lengths),
            int(starts.size), self._ptr(spec), self._ptr(end),
            self._ptr(class_of), self._ptr(Tc), self._ptr(Tm),
            self._ptr(counters),
        )

    def fold_maps(
        self, spec, end, inputs, starts, lengths, converged,
        class_of, Tc, Tm, row, counters,
    ) -> None:
        self._lib.nk_fold_maps(
            self._ptr(spec), self._ptr(end), int(starts.size),
            self._ptr(inputs), self._ptr(starts), self._ptr(lengths),
            self._ptr(converged), self._ptr(class_of), self._ptr(Tc),
            self._ptr(Tm), self._ptr(row), self._ptr(counters),
        )


_CFFI_CDEF = """
int32_t nk_abi(void);
int32_t nk_meta(int32_t which);
int32_t nk_run_segment(const int32_t *in, int64_t len, int32_t s,
                       const int32_t *class_of, const int32_t *Tc,
                       const int32_t *Tm);
void nk_process_chunks(const int32_t *inputs, const int64_t *starts,
                       const int64_t *lengths, int64_t nchunks,
                       const int32_t *spec, int32_t *end,
                       const int32_t *class_of, const int32_t *Tc,
                       const int32_t *Tm, int64_t *counters);
void nk_fold_maps(const int32_t *spec, const int32_t *end, int64_t nmaps,
                  const int32_t *inputs, const int64_t *starts,
                  const int64_t *lengths, const uint8_t *converged,
                  const int32_t *class_of, const int32_t *Tc,
                  const int32_t *Tm, int32_t *row, int64_t *counters);
"""


class _CffiLib:
    """cffi loader used when the ``native`` extra is installed."""

    provider = "cffi"

    def __init__(self, path: str) -> None:
        import cffi

        self._ffi = cffi.FFI()
        self._ffi.cdef(_CFFI_CDEF)
        self._lib = self._ffi.dlopen(path)

    def _p32(self, a: np.ndarray | None):
        if a is None:
            return self._ffi.NULL
        return self._ffi.cast("const int32_t *", a.ctypes.data)

    def _p64(self, a: np.ndarray | None):
        if a is None:
            return self._ffi.NULL
        return self._ffi.cast("const int64_t *", a.ctypes.data)

    def abi(self) -> int:
        return int(self._lib.nk_abi())

    def meta(self, which: int) -> int:
        return int(self._lib.nk_meta(which))

    def run_segment(self, inputs, start, class_of, Tc, Tm) -> int:
        return int(
            self._lib.nk_run_segment(
                self._p32(inputs), inputs.size, int(start),
                self._p32(class_of), self._p32(Tc), self._p32(Tm),
            )
        )

    def process_chunks(
        self, inputs, starts, lengths, spec, end, class_of, Tc, Tm, counters
    ) -> None:
        ffi = self._ffi
        self._lib.nk_process_chunks(
            self._p32(inputs), self._p64(starts), self._p64(lengths),
            int(starts.size), self._p32(spec),
            ffi.cast("int32_t *", end.ctypes.data),
            self._p32(class_of), self._p32(Tc), self._p32(Tm),
            ffi.cast("int64_t *", counters.ctypes.data),
        )

    def fold_maps(
        self, spec, end, inputs, starts, lengths, converged,
        class_of, Tc, Tm, row, counters,
    ) -> None:
        ffi = self._ffi
        conv = (
            ffi.NULL
            if converged is None
            else ffi.cast("const uint8_t *", converged.ctypes.data)
        )
        self._lib.nk_fold_maps(
            self._p32(spec), self._p32(end), int(starts.size),
            self._p32(inputs), self._p64(starts), self._p64(lengths),
            conv, self._p32(class_of), self._p32(Tc), self._p32(Tm),
            ffi.cast("int32_t *", row.ctypes.data),
            ffi.cast("int64_t *", counters.ctypes.data),
        )


class _NumbaLib:
    """numba provider: an ``@njit`` mirror of the generated C.

    Needs no compiler and no artifact — the loops take ``k``/``m`` as
    runtime arguments, so one jit compilation serves every plan. Only
    constructed when numba imports; any jit failure demotes the ladder.
    """

    provider = "numba"
    _fns = None
    _fns_lock = threading.Lock()

    def __init__(self, spec: NativeSpec) -> None:
        self._spec = spec
        fns = self._compiled()
        self._run_segment, self._process, self._fold = fns

    @classmethod
    def _compiled(cls):
        with cls._fns_lock:
            if cls._fns is not None:
                return cls._fns
            import numba  # noqa: F401  (raises when the extra is absent)
            from numba import njit

            @njit(cache=True)
            def nb_run_segment(inputs, start, class_of, Tc, Tm, m, nc):
                s = start
                t = 0
                n = inputs.shape[0]
                if m > 1 and Tm.shape[0] > 0:
                    while t + m <= n:
                        idx = np.int64(class_of[inputs[t]])
                        for i in range(1, m):
                            idx = idx * nc + class_of[inputs[t + i]]
                        s = Tm[idx, s]
                        t += m
                while t < n:
                    s = Tc[class_of[inputs[t]], s]
                    t += 1
                return s

            @njit(cache=True)
            def nb_process(inputs, starts, lengths, spec, end, class_of,
                           Tc, Tm, m, nc, cad, backoff, counters):
                k = spec.shape[1]
                for c in range(starts.shape[0]):
                    lo = starts[c]
                    length = lengths[c]
                    lanes = spec[c].copy()
                    t = 0
                    next_scan = cad
                    interval = cad
                    collapsed = False
                    if m > 1 and Tm.shape[0] > 0:
                        while t + m <= length:
                            idx = np.int64(class_of[inputs[lo + t]])
                            for i in range(1, m):
                                idx = idx * nc + class_of[inputs[lo + t + i]]
                            for j in range(k):
                                lanes[j] = Tm[idx, lanes[j]]
                            t += m
                            counters[0] += k
                            if cad > 0 and k > 1 and t >= next_scan:
                                counters[1] += 1
                                same = True
                                for j in range(1, k):
                                    if lanes[j] != lanes[0]:
                                        same = False
                                        break
                                if same:
                                    counters[2] += k - 1
                                    collapsed = True
                                    break
                                interval *= backoff
                                next_scan = t + interval
                    if not collapsed:
                        while t < length:
                            row = class_of[inputs[lo + t]]
                            for j in range(k):
                                lanes[j] = Tc[row, lanes[j]]
                            t += 1
                            counters[0] += k
                            if cad > 0 and k > 1 and t >= next_scan:
                                counters[1] += 1
                                same = True
                                for j in range(1, k):
                                    if lanes[j] != lanes[0]:
                                        same = False
                                        break
                                if same:
                                    counters[2] += k - 1
                                    collapsed = True
                                    break
                                interval *= backoff
                                next_scan = t + interval
                    if collapsed:
                        s = nb_run_segment(
                            inputs[lo + t: lo + length], lanes[0],
                            class_of, Tc, Tm, m, nc,
                        )
                        counters[0] += length - t
                        for j in range(k):
                            lanes[j] = s
                    for j in range(k):
                        end[c, j] = lanes[j]

            @njit(cache=True)
            def nb_fold(spec, end, inputs, starts, lengths, converged,
                        class_of, Tc, Tm, m, nc, row, counters):
                k = spec.shape[1]
                nxt = np.empty(k, dtype=np.int32)
                for c in range(1, spec.shape[0]):
                    if converged.shape[0] > 0 and converged[c]:
                        for j in range(k):
                            row[j] = end[c, 0]
                        counters[5] += k
                        continue
                    misses = 0
                    for j in range(k):
                        v = row[j]
                        hit = -1
                        for jj in range(k):
                            if spec[c, jj] == v:
                                hit = jj
                                break
                        if hit >= 0:
                            nxt[j] = end[c, hit]
                        else:
                            nxt[j] = nb_run_segment(
                                inputs[starts[c]: starts[c] + lengths[c]],
                                v, class_of, Tc, Tm, m, nc,
                            )
                            misses += 1
                    if misses:
                        counters[3] += 1
                        counters[4] += lengths[c] * misses
                    for j in range(k):
                        row[j] = nxt[j]

            cls._fns = (nb_run_segment, nb_process, nb_fold)
            return cls._fns

    def abi(self) -> int:
        return _build.ABI_VERSION

    def meta(self, which: int) -> int:
        sp = self._spec
        vals = (sp.k, sp.m, sp.num_classes, sp.num_states, sp.cadence)
        return vals[which] if 0 <= which < len(vals) else -1

    @staticmethod
    def _tm(Tm):
        return Tm if Tm is not None else np.zeros((0, 1), dtype=np.int32)

    def run_segment(self, inputs, start, class_of, Tc, Tm) -> int:
        sp = self._spec
        return int(
            self._run_segment(
                inputs, np.int32(start), class_of, Tc, self._tm(Tm),
                sp.m, sp.num_classes,
            )
        )

    def process_chunks(
        self, inputs, starts, lengths, spec, end, class_of, Tc, Tm, counters
    ) -> None:
        sp = self._spec
        self._process(
            inputs, starts, lengths, spec, end, class_of, Tc,
            self._tm(Tm), sp.m, sp.num_classes, sp.cadence, sp.backoff,
            counters,
        )

    def fold_maps(
        self, spec, end, inputs, starts, lengths, converged,
        class_of, Tc, Tm, row, counters,
    ) -> None:
        sp = self._spec
        conv = (
            converged
            if converged is not None
            else np.zeros(0, dtype=np.uint8)
        )
        self._fold(
            spec, end, inputs, starts, lengths, conv, class_of, Tc,
            self._tm(Tm), sp.m, sp.num_classes, row, counters,
        )


# --------------------------------------------------------------------------- #
# the public wrapper
# --------------------------------------------------------------------------- #


@dataclass
class NativeCounters:
    """Physical-work counters drained from one native call."""

    gathers: int = 0
    collapse_scans: int = 0
    lanes_collapsed: int = 0
    reexec_chunks: int = 0
    reexec_items: int = 0
    checks_skipped: int = 0


class NativeKernel:
    """One loaded, specialized native kernel bound to its tables.

    Holds the resolved :class:`KernelPlan` (class map + stride table),
    the compile :class:`~repro.core.native.cgen.NativeSpec`, and a
    provider backend. Methods accept the same arrays as the NumPy path
    and coerce to the contiguous int32/int64 layout the C expects.
    """

    def __init__(
        self,
        lib,
        spec: NativeSpec,
        kplan: KernelPlan,
        *,
        artifact_path: str | None,
        key: str,
    ) -> None:
        self._lib = lib
        self.spec = spec
        self.kplan = kplan
        self.artifact_path = artifact_path
        self.key = key
        self.provider = lib.provider
        self._class_of = _i32(kplan.compaction.class_of)
        self._Tc = _i32(kplan.compaction.table)
        self._Tm = (
            _i32(kplan.tables.table_m) if kplan.tables is not None else None
        )

    @property
    def meta(self) -> tuple:
        """Shippable artifact metadata.

        ``(k, m, C, N, cadence, backoff, patterns, group_widths)`` — the
        trailing multi-pattern fields are ``(1, ())`` for single-pattern
        kernels, and :func:`load_artifact` tolerates their absence for
        older 6-tuples.
        """
        sp = self.spec
        return (
            sp.k, sp.m, sp.num_classes, sp.num_states, sp.cadence,
            sp.backoff, sp.patterns, sp.group_widths,
        )

    # -- primitives -------------------------------------------------------- #

    def run_segment(self, symbols: np.ndarray, start: int) -> int:
        """Native analog of :func:`repro.core.kernels.run_segment_kernel`."""
        symbols = _i32(symbols)
        if symbols.size == 0:
            return int(start)
        return self._lib.run_segment(
            symbols, int(start), self._class_of, self._Tc, self._Tm
        )

    def process_chunks(
        self,
        inputs: np.ndarray,
        plan,
        spec: np.ndarray,
        *,
        stats=None,
    ) -> np.ndarray:
        """Native analog of :func:`repro.core.kernels.process_chunks_kernel`.

        Returns the ``(num_chunks, k)`` ending-state matrix. Event
        counters in ``stats`` keep lock-step semantics (transitions =
        symbols x width) exactly like the NumPy kernels, so modeled
        numbers stay backend-independent; physical counters come from the
        native counter block.
        """
        spec = _i32(spec)
        if spec.ndim != 2 or spec.shape[0] != plan.num_chunks:
            raise ValueError(
                f"spec must have shape (num_chunks, k), got {spec.shape} "
                f"for {plan.num_chunks} chunks"
            )
        if spec.shape[1] != self.spec.k:
            raise ValueError(
                f"native kernel compiled for k={self.spec.k}, got "
                f"k={spec.shape[1]}"
            )
        inputs = _i32(inputs)
        starts = _i64(plan.starts)
        lengths = _i64(plan.lengths)
        end = np.empty_like(spec)
        counters = np.zeros(NUM_SLOTS, dtype=np.int64)
        with trace_span(
            "native.process_chunks", chunks=plan.num_chunks, k=self.spec.k,
            provider=self.provider,
        ):
            self._lib.process_chunks(
                inputs, starts, lengths, spec, end,
                self._class_of, self._Tc, self._Tm, counters,
            )
        if stats is not None:
            stats.local_steps += plan.max_len
            stats.local_transitions += int(plan.lengths.sum()) * spec.shape[1]
            stats.local_input_reads += int(plan.lengths.sum())
            stats.local_gathers += int(counters[SLOT_GATHERS])
            stats.collapse_scans += int(counters[SLOT_SCANS])
            stats.lanes_collapsed += int(counters[SLOT_LANES_COLLAPSED])
        add_count("native.chunks", plan.num_chunks)
        return end

    def fold_maps(
        self,
        spec: np.ndarray,
        end: np.ndarray,
        inputs: np.ndarray,
        starts: np.ndarray,
        lengths: np.ndarray,
        *,
        converged: np.ndarray | None = None,
        row: np.ndarray | None = None,
    ) -> tuple[np.ndarray, NativeCounters]:
        """Left fold of per-chunk maps with first-match semi-join semantics.

        The native form of the pool worker's fold: ``row`` (default
        ``end[0]``) carries chunk 0's running ending states; each further
        map is composed via first-match lookup in its speculation row,
        misses re-execute natively, and ``converged`` chunks
        short-circuit to their constant map. Returns the folded row and
        the drained counters.
        """
        spec = _i32(spec)
        end = _i32(end)
        inputs = _i32(inputs)
        starts = _i64(starts)
        lengths = _i64(lengths)
        if row is None:
            row = end[0].copy()
        row = _i32(row).copy()
        conv = (
            np.ascontiguousarray(converged, dtype=np.uint8)
            if converged is not None
            else None
        )
        counters = np.zeros(NUM_SLOTS, dtype=np.int64)
        self._lib.fold_maps(
            spec, end, inputs, starts, lengths, conv,
            self._class_of, self._Tc, self._Tm, row, counters,
        )
        return row, NativeCounters(
            gathers=int(counters[SLOT_GATHERS]),
            reexec_chunks=int(counters[SLOT_FOLD_REEXEC_CHUNKS]),
            reexec_items=int(counters[SLOT_FOLD_REEXEC_ITEMS]),
            checks_skipped=int(counters[SLOT_FOLD_CHECKS_SKIPPED]),
        )


# --------------------------------------------------------------------------- #
# loading / smoke check
# --------------------------------------------------------------------------- #


def _smoke_check(nk: NativeKernel, dfa: DFA) -> bool:
    """Cross-check the provider against a pure-Python table walk."""
    rng = np.random.default_rng(12345)
    n = max(2 * nk.spec.m + 3, 11)
    seg = rng.integers(0, dfa.num_inputs, size=n, dtype=np.int32)
    table = dfa.table
    for start in range(min(dfa.num_states, nk.spec.k + 1)):
        s = start
        for sym in seg.tolist():
            s = int(table[sym, s])
        if nk.run_segment(seg, start) != s:
            return False
    return True


def _load_lib(path: str, spec: NativeSpec):
    """Try cffi then ctypes on a compiled artifact; validate its metadata."""
    last_exc: Exception | None = None
    for cls in (_CffiLib, _CtypesLib):
        try:
            lib = cls(path)
        except Exception as exc:  # ImportError, OSError, cdef errors
            last_exc = exc
            continue
        if lib.abi() != _build.ABI_VERSION:
            last_exc = RuntimeError(
                f"artifact {path} has ABI {lib.abi()}, "
                f"expected {_build.ABI_VERSION}"
            )
            continue
        expect = (spec.k, spec.m, spec.num_classes, spec.num_states)
        got = tuple(lib.meta(i) for i in range(4))
        if got != expect:
            last_exc = RuntimeError(
                f"artifact {path} metadata {got} != plan {expect}"
            )
            continue
        return lib
    if last_exc is not None:
        raise last_exc
    raise RuntimeError("no loader available")


def _try_numba(spec: NativeSpec):
    try:
        return _NumbaLib(spec)
    except Exception:
        return None


def native_available() -> bool:
    """Whether *some* native provider can work in this process."""
    if _build.find_compiler() is not None:
        return True
    try:
        import numba  # noqa: F401
        return True
    except Exception:
        return False


def _native_spec(
    kplan: KernelPlan,
    k: int,
    collapse: CollapseConfig | None,
    *,
    patterns: int = 1,
    group_widths: tuple = (),
) -> NativeSpec:
    collapsing = collapse is not None and collapse.enabled and k > patterns
    return NativeSpec(
        k=k,
        m=kplan.m,
        num_classes=kplan.compaction.num_classes,
        num_states=kplan.compaction.num_states,
        cadence=collapse.cadence if collapsing else 0,
        backoff=collapse.backoff if collapsing else 2,
        patterns=patterns,
        group_widths=tuple(group_widths),
    )


def _collapse_tag(spec: NativeSpec) -> str:
    if spec.cadence <= 0:
        return "off"
    return f"on(W={spec.cadence},B={spec.backoff})"


def _pattern_tag(spec: NativeSpec) -> str:
    """Cache-key suffix for the multi-pattern lane layout (empty for P=1)."""
    if spec.patterns == 1:
        return ""
    return ":p{}w{}".format(
        spec.patterns, "-".join(str(w) for w in spec.groups)
    )


def load_native_plan(
    dfa: DFA,
    *,
    k: int,
    kernel: str = "auto",
    kplan: KernelPlan | None = None,
    collapse: CollapseConfig | None = None,
    chunk_len: int = 1 << 14,
    num_chunks: int = 256,
    table_budget_bytes: int | None = None,
    cache_dir: str | None = None,
    patterns: int = 1,
    group_widths: tuple = (),
) -> NativeKernel | None:
    """Specialize, compile (or reuse) and load the native kernel for a plan.

    ``patterns`` / ``group_widths`` bake the multi-pattern lane layout in
    as compile-time constants (the stacked-union batched route: ``k`` is
    then the *total* lane count across patterns and ``dfa`` the union
    machine). Returns ``None`` — after counting a ``native.fallback`` —
    whenever native execution is unavailable or untrustworthy; callers
    then use the NumPy path unchanged.
    """
    budget = (
        table_budget_bytes
        if table_budget_bytes is not None
        else DEFAULT_TABLE_BUDGET_BYTES
    )
    try:
        if kplan is None:
            kplan = plan_kernel(
                dfa, chunk_len=chunk_len, num_chunks=num_chunks, k=k,
                kernel=kernel, table_budget_bytes=budget,
            )
    except ValueError:
        _build.note_fallback("plan")
        return None

    try:
        spec = _native_spec(
            kplan, k, collapse,
            patterns=patterns, group_widths=tuple(group_widths),
        )
    except ValueError:
        _build.note_fallback("spec")
        return None
    fp = dfa_fingerprint(dfa)
    key = _build.cache_key(
        fp, k=k, kernel=f"{kplan.kernel}:m{spec.m}{_pattern_tag(spec)}",
        collapse=_collapse_tag(spec),
    )
    mem_key = (key, id(kplan))
    with _mem_lock:
        hit = _mem_cache.get(mem_key)
        if hit is not None:
            _mem_cache.move_to_end(mem_key)
    if hit is not None:
        _build.note_mem_hit()
        return hit

    with trace_span("native.load", key=key, kernel=kplan.kernel, k=k):
        nk = _materialize(dfa, spec, kplan, key, cache_dir)
    if nk is None:
        return None
    with _mem_lock:
        _mem_cache[mem_key] = nk
        _mem_cache.move_to_end(mem_key)
        while len(_mem_cache) > _MEM_CACHE_MAX:
            _mem_cache.popitem(last=False)
    return nk


def _materialize(
    dfa: DFA,
    spec: NativeSpec,
    kplan: KernelPlan,
    key: str,
    cache_dir: str | None,
) -> NativeKernel | None:
    # Ladder rung 1: numba (no compiler needed).
    lib = _try_numba(spec)
    if lib is not None:
        nk = NativeKernel(lib, spec, kplan, artifact_path=None, key=key)
        try:
            if _smoke_check(nk, dfa):
                return nk
        except Exception:
            pass
        _build.note_fallback("numba_smoke")

    # Ladder rungs 2-3: compiled artifact via cffi, then ctypes.
    try:
        path = _build.ensure_artifact(
            key, lambda: generate_source(spec), directory=cache_dir
        )
        lib = _load_lib(path, spec)
    except Exception:
        _build.note_fallback("compile")
        return None
    nk = NativeKernel(lib, spec, kplan, artifact_path=path, key=key)
    try:
        ok = _smoke_check(nk, dfa)
    except Exception:
        ok = False
    if not ok:
        _build.note_fallback("smoke")
        return None
    return nk


def load_artifact(
    path: str,
    meta: tuple,
    kplan: KernelPlan,
) -> NativeKernel | None:
    """Load a pre-compiled artifact shipped by path (pool workers).

    ``meta`` is ``(k, m, num_classes, num_states, cadence, backoff[,
    patterns, group_widths])`` as produced by the parent's
    :class:`NativeKernel` — workers never compile; a load failure of any
    kind returns ``None`` so the worker falls back to its NumPy path.
    """
    try:
        spec = NativeSpec(
            k=int(meta[0]), m=int(meta[1]), num_classes=int(meta[2]),
            num_states=int(meta[3]), cadence=int(meta[4]),
            backoff=int(meta[5]),
            patterns=int(meta[6]) if len(meta) > 6 else 1,
            group_widths=tuple(meta[7]) if len(meta) > 7 else (),
        )
        if not os.path.exists(path):
            raise FileNotFoundError(path)
        lib = _load_lib(path, spec)
        return NativeKernel(
            lib, spec, kplan, artifact_path=path,
            key=os.path.splitext(os.path.basename(path))[0],
        )
    except Exception:
        _build.note_fallback("worker_load")
        return None


def cache_stats() -> dict:
    """Compile-cache statistics snapshot (memory + disk + compiler)."""
    snap = _build.build_stats()
    with _mem_lock:
        snap["mem_entries"] = len(_mem_cache)
    return snap


def clear_memory_cache() -> None:
    """Drop in-memory loaded kernels (test hook; disk artifacts remain)."""
    with _mem_lock:
        _mem_cache.clear()
