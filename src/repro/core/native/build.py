"""Compile generated C sources into cached shared objects.

Artifacts are cached at two levels:

* **in memory** — loaded handles live in :mod:`repro.core.native.runtime`;
* **on disk** — ``<cache_dir>/<key>.so`` where ``key`` hashes
  ``(dfa_fingerprint, k, kernel, collapse, dtype, abi_version)``, so a
  second process (a restarted server, a fresh pool worker) finds warm
  code and performs **zero** compiles.

Disk writes are atomic and safe under concurrent compilers racing on the
same fingerprint: each compile targets a unique temp path in the cache
directory and is published with ``os.replace`` (the same tmp+rename
protocol ``HistoryPredictor`` uses for its JSON store). Two racers both
compile, both rename, last one wins — the artifact content is identical
by construction, so either is valid.

No hard dependency is added: the system compiler is discovered at first
use (``$CC``, then ``cc``/``gcc``/``clang`` on PATH) and driven via
``subprocess``. A missing or broken compiler marks the build layer
unavailable for the process (fast-fail, counted as ``native.fallback``
by callers).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
import uuid
from dataclasses import dataclass

from time import perf_counter

from ...obs import add_count, observe

__all__ = [
    "ABI_VERSION",
    "cache_key",
    "cache_dir",
    "find_compiler",
    "ensure_artifact",
    "build_stats",
    "reset_build_state",
]

#: Bumped whenever the generated C ABI (function signatures, counter
#: layout) changes; part of the cache key so stale artifacts are never
#: loaded by a newer runtime.
ABI_VERSION = 1

_ENV_CACHE_DIR = "REPRO_NATIVE_CACHE"

_lock = threading.Lock()
# compiler path memoized per value of $CC (so tests flipping the env var
# between monkeypatched values re-discover instead of seeing a stale probe)
_compiler_by_env: dict[str | None, str | None] = {}
# compilers that failed to produce an artifact; never retried this process
_broken_compilers: set[str] = set()
_last_error: str | None = None

_stats = {
    "compiles": 0,
    "compile_s": 0.0,
    "hit_mem": 0,
    "hit_disk": 0,
    "misses": 0,
    "fallbacks": 0,
}


@dataclass(frozen=True)
class CompileError(Exception):
    """A compiler was found but failed to produce an artifact."""

    compiler: str
    returncode: int
    stderr: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.compiler} exited {self.returncode}: "
            f"{self.stderr.strip()[:500]}"
        )


def cache_key(
    fingerprint: str,
    *,
    k: int,
    kernel: str,
    collapse: str,
    dtype: str = "i4",
    abi: int = ABI_VERSION,
) -> str:
    """Stable hex key for one specialized artifact."""
    blob = "|".join(
        [fingerprint, str(k), kernel, collapse, dtype, f"abi{abi}"]
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:32]


def cache_dir() -> str:
    """Directory holding compiled ``.so`` artifacts (created lazily)."""
    path = os.environ.get(_ENV_CACHE_DIR)
    if not path:
        path = os.path.join(
            os.path.expanduser("~"), ".cache", "repro-native"
        )
    os.makedirs(path, exist_ok=True)
    return path


def find_compiler() -> str | None:
    """Locate a usable C compiler, honouring ``$CC``.

    The probe is memoized per ``$CC`` value; a compiler that previously
    failed a build is treated as absent for the rest of the process.
    """
    env_cc = os.environ.get("CC")
    with _lock:
        if env_cc in _compiler_by_env:
            found = _compiler_by_env[env_cc]
            if found is not None and found in _broken_compilers:
                return None
            return found
    candidates = [env_cc] if env_cc else []
    candidates += ["cc", "gcc", "clang"]
    found = None
    for cand in candidates:
        resolved = shutil.which(cand)
        if resolved:
            found = resolved
            break
    with _lock:
        _compiler_by_env[env_cc] = found
        if found is not None and found in _broken_compilers:
            return None
    return found


def _compile(compiler: str, source: str, out_path: str) -> None:
    """Compile ``source`` text to a shared object at ``out_path``."""
    workdir = os.path.dirname(out_path)
    tag = f"{os.getpid()}-{uuid.uuid4().hex[:8]}"
    src_path = os.path.join(workdir, f".nk-{tag}.c")
    tmp_so = os.path.join(workdir, f".nk-{tag}.so")
    try:
        with open(src_path, "w") as fh:
            fh.write(source)
        cmd = [
            compiler,
            "-O3",
            "-shared",
            "-fPIC",
            "-o",
            tmp_so,
            src_path,
        ]
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120
        )
        if proc.returncode != 0 or not os.path.exists(tmp_so):
            raise CompileError(
                compiler, proc.returncode, proc.stderr or proc.stdout
            )
        # Atomic publish: racers compiling the same key each rename their
        # own temp file onto the shared target; content is identical.
        os.replace(tmp_so, out_path)
    finally:
        for path in (src_path, tmp_so):
            try:
                os.unlink(path)
            except OSError:
                pass


def ensure_artifact(key: str, source_fn, *, directory: str | None = None) -> str:
    """Return the path of the compiled artifact for ``key``.

    ``source_fn`` is a zero-argument callable producing the C source; it
    is only invoked on a disk-cache miss. Raises :class:`CompileError`
    when compilation fails and :class:`RuntimeError` when no compiler is
    available.
    """
    directory = directory or cache_dir()
    out_path = os.path.join(directory, f"{key}.so")
    if os.path.exists(out_path):
        with _lock:
            _stats["hit_disk"] += 1
        add_count("native.cache.hit_disk")
        return out_path

    with _lock:
        _stats["misses"] += 1
    add_count("native.cache.miss")

    compiler = find_compiler()
    if compiler is None:
        raise RuntimeError("no C compiler available")

    t0 = perf_counter()
    try:
        _compile(compiler, source_fn(), out_path)
    except (CompileError, OSError, subprocess.SubprocessError) as exc:
        global _last_error
        with _lock:
            _broken_compilers.add(compiler)
            _last_error = str(exc)
        raise
    dt = perf_counter() - t0
    with _lock:
        _stats["compiles"] += 1
        _stats["compile_s"] += dt
    add_count("native.compile")
    observe("native.compile_us", dt * 1e6)
    return out_path


def note_mem_hit() -> None:
    with _lock:
        _stats["hit_mem"] += 1
    add_count("native.cache.hit_mem")


def note_fallback(reason: str) -> None:
    with _lock:
        _stats["fallbacks"] += 1
    add_count("native.fallback")
    add_count(f"native.fallback.{reason}")


def build_stats() -> dict:
    """Snapshot of process-local compile-cache stats (for CI artifacts)."""
    compiler = find_compiler()
    with _lock:
        snap = dict(_stats)
        snap["compiler"] = compiler
        snap["last_error"] = _last_error
        snap["cache_dir"] = (
            os.environ.get(_ENV_CACHE_DIR)
            or os.path.join(os.path.expanduser("~"), ".cache", "repro-native")
        )
        snap["abi_version"] = ABI_VERSION
    return snap


def reset_build_state() -> None:
    """Forget memoized compiler probes and stats (test hook)."""
    global _last_error
    with _lock:
        _compiler_by_env.clear()
        _broken_compilers.clear()
        _last_error = None
        for k in _stats:
            _stats[k] = 0.0 if k == "compile_s" else 0
