"""Function-composition (prefix-scan) execution — the enumerative baseline.

The data-parallel FSM formulation of Mytkowicz et al. (the paper's [18],
discussed in Related Work): each chunk's effect is its full transition
*function* ``f_c : Q -> Q`` (an int vector of length ``num_states``), and
functions compose associatively by gather — ``(f ∘ g)[q] = g[f[q]]`` — so
chunks reduce with a parallel scan and no speculation is ever needed.

The price is enumerative redundancy: every chunk is executed from **all**
states, i.e. total work is ``num_items * num_states`` transitions. This is
the semantics behind spec-N; having it as a standalone engine gives the
benchmark suite an exact, speculation-free baseline and the tests a third
independent implementation to cross-check (serial reference, spec-k
engine, prefix scan).

Everything is vectorized: local processing advances a
``(num_chunks, num_states)`` state matrix one lock-step symbol at a time,
and the reduction is ``log2(num_chunks)`` composition gathers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import ExecStats
from repro.fsm.dfa import DFA
from repro.workloads.chunking import ChunkPlan, plan_chunks, transform_layout

__all__ = ["run_prefix_scan", "PrefixScanResult", "chunk_transition_functions"]


@dataclass
class PrefixScanResult:
    """Outcome of a prefix-scan execution."""

    final_state: int
    stats: ExecStats
    total_function: np.ndarray  # (num_states,): end state from every start


def chunk_transition_functions(
    dfa: DFA,
    inputs: np.ndarray,
    plan: ChunkPlan,
    *,
    transformed=None,
    stats: ExecStats | None = None,
) -> np.ndarray:
    """Per-chunk full transition functions, shape ``(num_chunks, num_states)``.

    ``F[c, q]`` is the state reached from ``q`` after chunk ``c`` — the
    enumerative local-processing stage, lock-step across chunks.
    """
    n, n_states = plan.num_chunks, dfa.num_states
    table = dfa.table
    F = np.tile(np.arange(n_states, dtype=np.int32), (n, 1))
    starts = plan.starts
    inputs = np.asarray(inputs)
    q = plan.min_len
    for j in range(q):
        syms = transformed.main[j] if transformed is not None else inputs[starts + j]
        F = table[syms[:, None], F]
    r = plan.num_long
    if r:
        if transformed is not None:
            syms_tail = transformed.tail
        else:
            long_idx = np.flatnonzero(plan.lengths > q)
            syms_tail = inputs[starts[long_idx] + q]
        F[:r] = table[syms_tail[:, None], F[:r]]
    if stats is not None:
        stats.local_steps += plan.max_len
        stats.local_transitions += int(plan.lengths.sum()) * n_states
        stats.local_input_reads += int(plan.lengths.sum())
    return F


def _compose(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Compose function vectors: apply ``left`` first, then ``right``."""
    return np.take_along_axis(right, left, axis=1)


def run_prefix_scan(
    dfa: DFA,
    inputs: np.ndarray,
    *,
    num_chunks: int = 4096,
    layout: str = "transformed",
    stats: ExecStats | None = None,
    kernel: str = "auto",
) -> PrefixScanResult:
    """Execute ``dfa`` over ``inputs`` by parallel function composition.

    Exact for every input and machine; never re-executes. Work is
    ``num_items * num_states`` transitions plus ``log2(num_chunks)``
    composition gathers of ``num_states`` entries per chunk pair.

    ``kernel`` selects the local stepping kernel (``"auto"`` by default —
    the prefix scan is a real-wall-clock baseline, so it takes multi-symbol
    stepping whenever the cost model approves; pass ``"lockstep"`` for the
    one-symbol-per-gather original). Results and event counters are
    kernel-independent.
    """
    inputs = np.ascontiguousarray(np.asarray(inputs))
    if inputs.ndim != 1:
        raise ValueError(f"inputs must be 1-D, got shape {inputs.shape}")
    if num_chunks < 1:
        raise ValueError(f"num_chunks must be >= 1, got {num_chunks}")
    plan = plan_chunks(inputs.size, num_chunks)
    if stats is None:
        stats = ExecStats(
            num_items=int(inputs.size),
            num_chunks=num_chunks,
            k=dfa.num_states,
            num_states=dfa.num_states,
            num_inputs=dfa.num_inputs,
        )
    transformed = transform_layout(inputs, plan) if layout == "transformed" else None

    kplan = None
    if kernel != "lockstep":
        from repro.core.kernels import plan_kernel

        kplan = plan_kernel(
            dfa, chunk_len=plan.max_len, num_chunks=num_chunks,
            k=dfa.num_states, kernel=kernel,
        )
        if kplan.kernel in ("lockstep", "scalar"):
            kplan = None  # enumerative width makes the scalar loop absurd

    if kplan is not None:
        from repro.core.kernels import process_chunks_kernel

        spec_all = np.tile(
            np.arange(dfa.num_states, dtype=np.int32), (num_chunks, 1)
        )
        F = process_chunks_kernel(
            dfa, inputs, plan, spec_all, kplan,
            transformed=transformed, stats=stats,
        )
    else:
        F = chunk_transition_functions(
            dfa, inputs, plan, transformed=transformed, stats=stats
        )

    # Tree reduction by composition; odd counts carry the trailing chunk.
    while F.shape[0] > 1:
        m = F.shape[0]
        pairs = m // 2
        combined = _compose(F[0 : 2 * pairs : 2], F[1 : 2 * pairs : 2])
        stats.merge_pair_ops += pairs
        if m % 2:
            combined = np.vstack([combined, F[-1:]])
        F = combined
    total = F[0]
    return PrefixScanResult(
        final_state=int(total[dfa.start]), stats=stats, total_function=total
    )
