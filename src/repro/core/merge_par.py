"""Parallel (tree) merge with speculation — the paper's contribution.

The merge reduces the per-chunk speculation maps pairwise up a binary tree;
a level merges all adjacent pairs at once (vectorized over pairs, the
analog of all warps/blocks merging concurrently). Composing two maps is the
semi-join of Section 3.2; a left ending state with no valid match on the
right is handled by the *re-execution strategy*:

* ``"eager"`` — re-execute the right segment from the unmatched state
  immediately. Exact, but the unmatched state may never lie on the true
  path, so the work may be wasted (the paper's Figure 4b problem).
* ``"delayed"`` — mark the composed entry invalid and keep merging
  (Section 3.3). Invalidity can propagate to the root; if the root entry
  for the true initial state is invalid, a *fix-up descent* walks down the
  stored tree, probing each segment's map first and re-executing only the
  chunks that are genuinely needed — so every re-execution it performs is
  necessary.

The functional result is always identical to the sequential reference;
property tests in ``tests/core/test_merge_equivalence.py`` assert this over
random machines, inputs, widths and strategies.

Cost attribution: tree levels are charged to the GPU hierarchy the paper
uses — the first five levels within a warp (shuffle), the next
``log2(threads_per_block / 32)`` within a block (shared memory), and the
across-block reduction as the sequential global stage over ``num_blocks``
results (Section 4.1's three sub-stages).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.checks import (
    count_hash,
    count_nested,
    count_skipped,
    match_pairs,
    select_check,
)
from repro.core.types import ChunkResults, ExecStats, SegmentMaps
from repro.fsm.dfa import DFA
from repro.fsm.run import run_segment
from repro.obs.trace import current_trace, trace_span
from repro.workloads.chunking import ChunkPlan

__all__ = ["merge_parallel", "compose_maps", "MergeTree"]


@dataclass
class MergeTree:
    """All levels of the merge tree, leaves first (kept for fix-up).

    ``reexecuted`` lists the leaf chunk ids the fix-up descent had to
    re-execute, in resolution order — empty when the root probe hit (or
    the eager strategy resolved everything during the reduction).
    """

    levels: list[SegmentMaps]
    reexecuted: list[int] = field(default_factory=list)

    @property
    def root(self) -> SegmentMaps:
        """The final single-segment level."""
        return self.levels[-1]


def compose_maps(
    end_left: np.ndarray,
    valid_left: np.ndarray,
    spec_right: np.ndarray,
    end_right: np.ndarray,
    valid_right: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized semi-join composition of adjacent speculation maps.

    Entry ``j`` of pair ``p`` composes the left map's ending state against
    the right map's speculated states (Section 3.2): on a hit the composed
    ending state is the right map's, on a miss the left ending state is
    kept and the entry is marked invalid (the delayed strategy's marking —
    callers decide whether to re-execute eagerly, delay to a fix-up
    descent, or resolve locally as the scale-out workers do).

    Parameters
    ----------
    end_left, valid_left:
        Left maps' ending states and validity, both ``(num_pairs, k)``
        (int32 states / bool).
    spec_right, end_right, valid_right:
        Right maps' speculated states, ending states, and validity,
        all ``(num_pairs, k)``.

    Returns
    -------
    (end, valid, match_idx):
        Composed ending states ``(num_pairs, k)`` int32; validity of each
        composed entry; and the first matching right column per entry
        (undefined where ``valid`` is False), which the merge levels reuse
        for runtime-check cost accounting.
    """
    match_idx, found = match_pairs(end_left, valid_left, spec_right, valid_right)
    end = np.where(
        found, np.take_along_axis(end_right, match_idx, axis=1), end_left
    ).astype(np.int32)
    return end, found, match_idx


def merge_parallel(
    dfa: DFA,
    inputs: np.ndarray,
    plan: ChunkPlan,
    results: ChunkResults,
    *,
    check: str = "auto",
    reexec: str = "delayed",
    threads_per_block: int = 256,
    warp_size: int = 32,
    stats: ExecStats | None = None,
) -> tuple[int, MergeTree]:
    """Tree-merge all chunk results; return ``(final_state, tree)``.

    ``reexec`` selects the strategy described in the module docstring. The
    returned tree is the full reduction history (used by the fix-up pass
    and by tests that inspect intermediate validity).
    """
    if reexec not in ("eager", "delayed"):
        raise ValueError(f"reexec must be 'eager' or 'delayed', got {reexec!r}")
    k = results.k
    impl = select_check(k, check)
    counted = stats is not None

    maps = SegmentMaps.from_chunks(results)
    levels = [maps]
    level_index = 0
    eager_chain = 0

    obs = current_trace()
    while maps.num_segments > 1:
        with trace_span(
            "merge.level", level=level_index, segments=maps.num_segments
        ) as span:
            level_t0 = time.perf_counter() if obs is not None else 0.0
            maps, had_reexec = _merge_level(
                dfa, inputs, plan, results, maps,
                impl=impl, reexec=reexec, stats=stats,
            )
            if obs is not None:
                obs.observe("merge.level_s", time.perf_counter() - level_t0)
                span.set(reexec=had_reexec)
        levels.append(maps)
        level_index += 1
        if had_reexec:
            eager_chain += 1

    if counted:
        _attribute_levels(stats, plan.num_chunks, threads_per_block, warp_size)
        if eager_chain:
            stats.reexec_max_chain = max(stats.reexec_max_chain, eager_chain)

    tree = MergeTree(levels=levels)
    root = tree.root
    if root.converged is not None and root.converged[0]:
        # The whole input reduced to a total-constant map: the answer for
        # the (achievable) initial state is known without probing.
        count_skipped(1, stats)
        return int(root.end[0, 0]), tree
    hits = np.flatnonzero((root.spec[0] == dfa.start) & root.valid[0])
    if hits.size:
        return int(root.end[0, hits[0]]), tree

    # Root entry for the true initial state is invalid (possible only with
    # the delayed strategy, or when chunk 0's spec row was corrupted).
    with trace_span("merge.fixup"):
        final = _fixup(dfa, inputs, plan, tree, dfa.start, stats)
    return final, tree


# --------------------------------------------------------------------------- #
# one tree level
# --------------------------------------------------------------------------- #


def _merge_level(
    dfa: DFA,
    inputs: np.ndarray,
    plan: ChunkPlan,
    results: ChunkResults,
    maps: SegmentMaps,
    *,
    impl: str,
    reexec: str,
    stats: ExecStats | None,
) -> tuple[SegmentMaps, bool]:
    m = maps.num_segments
    npairs = m // 2
    carry = m % 2 == 1
    k = maps.k

    sl = maps.spec[0 : 2 * npairs : 2]
    el = maps.end[0 : 2 * npairs : 2]
    vl = maps.valid[0 : 2 * npairs : 2]
    sr = maps.spec[1 : 2 * npairs : 2]
    er = maps.end[1 : 2 * npairs : 2]
    vr = maps.valid[1 : 2 * npairs : 2]

    have_conv = maps.converged is not None
    conv = maps.converged_mask()
    conv_l = conv[0 : 2 * npairs : 2]
    conv_r = conv[1 : 2 * npairs : 2]

    obs = current_trace()
    check_t0 = time.perf_counter() if obs is not None else 0.0
    # Pairs whose right side converged need no semi-join: the right map is
    # a total constant over achievable incoming states, so every valid left
    # entry composes to the same known ending state. The check (and the
    # possibility of a miss — delayed invalidation or eager re-execution)
    # is skipped for them entirely.
    skip = conv_r if have_conv else np.zeros(npairs, dtype=bool)
    if skip.any():
        do = ~skip
        new_end = np.repeat(er[:, :1], k, axis=1).astype(np.int32)
        found = vl.copy()
        if do.any():
            ne, fo, match_idx = compose_maps(
                el[do], vl[do], sr[do], er[do], vr[do]
            )
            new_end[do] = ne
            found[do] = fo
            if stats is not None:
                if impl == "nested":
                    count_nested(match_idx, fo, vl[do], k, stats)
                else:
                    count_hash(el[do], vl[do], sr[do], vr[do], match_idx, fo, stats)
        count_skipped(int(vl[skip].sum()), stats)
        if obs is not None:
            obs.count("merge.semijoin.skipped", int(vl[skip].sum()))
    else:
        new_end, found, match_idx = compose_maps(el, vl, sr, er, vr)
        if stats is not None:
            if impl == "nested":
                count_nested(match_idx, found, vl, k, stats)
            else:
                count_hash(el, vl, sr, vr, match_idx, found, stats)
    if stats is not None:
        stats.merge_pair_ops += npairs
    if obs is not None:
        obs.observe("merge.check_s", time.perf_counter() - check_t0)
        matched = int((vl & found).sum())
        skipped = int(vl[skip].sum()) if skip.any() else 0
        obs.count("merge.semijoin.match", matched - skipped)
        obs.count("merge.semijoin.miss", int(vl.sum()) - matched)

    new_valid = found.copy()

    had_reexec = False
    if reexec == "eager":
        # Resolve every valid-but-unmatched entry by re-executing the right
        # segment from the unmatched ending state. These resolutions are
        # independent of the true path — some will be wasted work. Within a
        # level the resolutions run concurrently (one per lane); the level's
        # wall time is its largest single resolution, tracked for costing.
        misses = np.argwhere(vl & ~found)
        right_lo = maps.chunk_lo[1 : 2 * npairs : 2]
        right_hi = maps.chunk_hi[1 : 2 * npairs : 2]
        level_max_items = 0
        for p, j in misses:
            state = int(el[p, j])
            before = stats.reexec_items_eager if stats is not None else 0
            resolved = _resolve_segment(
                dfa, inputs, plan, results,
                state, int(right_lo[p]), int(right_hi[p]),
                stats, bucket="eager",
            )
            if stats is not None:
                level_max_items = max(
                    level_max_items, stats.reexec_items_eager - before
                )
            new_end[p, j] = resolved
            new_valid[p, j] = True
            had_reexec = True
        if stats is not None:
            stats.reexec_wall_items += level_max_items

    # A composed segment is converged when both halves are: an achievable
    # incoming state then hits the left's constant map, whose (achievable)
    # answer hits the right's constant map — the composition stays a total
    # constant. Converged-left with unconverged-right gives no guarantee.
    out = SegmentMaps(
        spec=sl.copy(),
        end=new_end,
        valid=new_valid,
        chunk_lo=maps.chunk_lo[0 : 2 * npairs : 2].copy(),
        chunk_hi=maps.chunk_hi[1 : 2 * npairs : 2].copy(),
        converged=(conv_l & conv_r) if have_conv else None,
    )
    if carry:
        out = SegmentMaps(
            spec=np.vstack([out.spec, maps.spec[-1:]]),
            end=np.vstack([out.end, maps.end[-1:]]),
            valid=np.vstack([out.valid, maps.valid[-1:]]),
            chunk_lo=np.concatenate([out.chunk_lo, maps.chunk_lo[-1:]]),
            chunk_hi=np.concatenate([out.chunk_hi, maps.chunk_hi[-1:]]),
            converged=(
                np.concatenate([out.converged, maps.converged[-1:]])
                if have_conv
                else None
            ),
        )
    return out, had_reexec


def _resolve_segment(
    dfa: DFA,
    inputs: np.ndarray,
    plan: ChunkPlan,
    results: ChunkResults,
    state: int,
    lo: int,
    hi: int,
    stats: ExecStats | None,
    *,
    bucket: str,
) -> int:
    """Exact ending state of chunks ``[lo, hi)`` started from ``state``.

    Walks chunk results, reusing each chunk's speculation map on a hit and
    re-executing the chunk's input on a miss — the re-execution work a GPU
    thread would perform, charged to ``bucket`` ('eager' or 'fixup').
    """
    obs = current_trace()
    t0 = time.perf_counter() if obs is not None else 0.0
    cur = int(state)
    items = 0
    for c in range(lo, hi):
        hit = results.lookup(c, cur)
        if hit is not None:
            cur = hit
            continue
        seg = inputs[plan.chunk_slice(c)]
        cur = run_segment(dfa, seg, cur)
        items += int(seg.size)
        if stats is not None:
            if bucket == "eager":
                stats.reexec_chunks_eager += 1
                stats.reexec_items_eager += int(seg.size)
            else:
                stats.fixup_chunks += 1
                stats.fixup_items += int(seg.size)
    if obs is not None and items:
        obs.observe(f"reexec.{bucket}_s", time.perf_counter() - t0)
        obs.count(f"reexec.{bucket}.items", items)
    return cur


# --------------------------------------------------------------------------- #
# fix-up descent (delayed strategy)
# --------------------------------------------------------------------------- #


def _fixup(
    dfa: DFA,
    inputs: np.ndarray,
    plan: ChunkPlan,
    tree: MergeTree,
    state: int,
    stats: ExecStats | None,
) -> int:
    """Resolve ``state`` through the whole input using the stored tree.

    Probes each segment's map before descending, so intact subtrees cost
    O(k) and only genuinely missing chunks are re-executed. Re-executed
    chunk ids are tracked to measure the longest *consecutive* run — the
    dependent chain that bounds wall time when re-executions of independent
    chunks are dispatched to their owner threads concurrently.
    """
    top = len(tree.levels) - 1
    reexecuted = tree.reexecuted
    out = _fixup_node(dfa, inputs, plan, tree, state, top, 0, stats, reexecuted)
    if stats is not None and reexecuted:
        chain = best = 1
        for prev, cur in zip(reexecuted, reexecuted[1:]):
            chain = chain + 1 if cur == prev + 1 else 1
            best = max(best, chain)
        stats.fixup_chain = max(stats.fixup_chain, best)
    return out


def _fixup_node(
    dfa: DFA,
    inputs: np.ndarray,
    plan: ChunkPlan,
    tree: MergeTree,
    state: int,
    level: int,
    idx: int,
    stats: ExecStats | None,
    reexecuted: list[int],
) -> int:
    maps = tree.levels[level]
    if maps.converged is not None and maps.converged[idx]:
        # The descent always carries an achievable state, for which a
        # converged segment's map is a known constant — no probe needed.
        count_skipped(1, stats)
        return int(maps.end[idx, 0])
    if stats is not None:
        stats.fixup_probes += 1
    hits = np.flatnonzero((maps.spec[idx] == state) & maps.valid[idx])
    if hits.size:
        return int(maps.end[idx, hits[0]])
    if level == 0:
        obs = current_trace()
        t0 = time.perf_counter() if obs is not None else 0.0
        seg = inputs[plan.chunk_slice(idx)]
        out = run_segment(dfa, seg, int(state))
        reexecuted.append(idx)
        if stats is not None:
            stats.fixup_chunks += 1
            stats.fixup_items += int(seg.size)
        if obs is not None:
            obs.observe("reexec.fixup_s", time.perf_counter() - t0)
            obs.count("reexec.fixup.items", int(seg.size))
        return out
    prev_m = tree.levels[level - 1].num_segments
    left = 2 * idx
    right = 2 * idx + 1
    mid = _fixup_node(dfa, inputs, plan, tree, state, level - 1, left, stats, reexecuted)
    if right >= prev_m:  # carried segment: no right child
        return mid
    return _fixup_node(
        dfa, inputs, plan, tree, mid, level - 1, right, stats, reexecuted
    )


# --------------------------------------------------------------------------- #
# cost attribution of tree levels to the GPU merge hierarchy
# --------------------------------------------------------------------------- #


def _attribute_levels(
    stats: ExecStats, num_chunks: int, threads_per_block: int, warp_size: int
) -> None:
    """Split tree depth into warp/block/global stages for the cost model."""
    total_levels = max(1, int(np.ceil(np.log2(max(2, num_chunks)))))
    warp_levels = int(np.ceil(np.log2(warp_size)))
    block_levels = int(np.ceil(np.log2(max(1, threads_per_block // warp_size))))
    stats.merge_levels_warp += min(total_levels, warp_levels)
    remaining = max(0, total_levels - warp_levels)
    stats.merge_levels_block += min(remaining, block_levels)
    # Ceil division: a partial block still produces a block result that the
    # sequential global stage must walk (300 chunks at 256 threads/block is
    # 2 blocks, not 1).
    num_blocks = max(1, -(-num_chunks // max(1, threads_per_block)))
    stats.merge_global_steps += num_blocks if num_blocks > 1 else 0
