"""The paper's contribution: speculative FSM execution with parallel merge.

Pipeline (one call to :func:`repro.core.engine.run_speculative`):

1. partition the input into one chunk per simulated GPU thread
   (:mod:`repro.workloads.chunking`);
2. speculate ``k`` starting states per chunk by look-back
   (:mod:`repro.core.lookback`);
3. process all chunks in lock-step, vectorized across threads and
   speculated states (:mod:`repro.core.local`), or — when the kernel layer
   (:mod:`repro.core.kernels`) selects a stride kernel — ``m`` symbols per
   gather over alphabet-compacted, precomposed tables;
4. merge the per-chunk ``speculated -> ending`` maps — sequentially
   (:mod:`repro.core.merge_seq`, the baseline whose cost grows linearly in
   thread count) or with the paper's hierarchical parallel merge
   (:mod:`repro.core.merge_par`), using nested-loop or hash runtime checks
   (:mod:`repro.core.checks`) and eager or delayed re-execution;
5. recover outputs (final state, match counts/positions, decoded symbols).

``backend="native"`` (:mod:`repro.core.native`) runs steps 3-4's hot loops
through C specialized per machine and compiled at first use, with a
fingerprint-keyed JIT cache for warm restarts; the NumPy path remains the
bit-exact fallback whenever no provider is available.

Every step increments :class:`repro.core.types.ExecStats` counters that the
GPU cost model (:mod:`repro.gpu.cost`) prices into modeled V100 time.
"""

from repro.core.autotune import (
    BackendChoice,
    KChoice,
    KernelChoice,
    choose_backend,
    choose_k,
    choose_kernel,
)
from repro.core.engine import (
    BatchExecutionResult,
    EngineConfig,
    SpecExecutionResult,
    run_inprocess_fallback,
    run_speculative,
    run_speculative_batch,
)
from repro.core.faultinject import (
    FaultPlan,
    FaultSpec,
    chaos_plan_from_env,
    corrupt_result_map,
    delay_task,
    kill_worker,
    shm_unlink_race,
)
from repro.core.kernels import (
    KERNELS,
    KernelPlan,
    KernelSpec,
    StrideTables,
    build_stride_tables,
    plan_kernel,
    select_kernel,
)
from repro.core.mp_executor import (
    BatchRunResult,
    MultiprocessResult,
    PoolRunTiming,
    ScaleoutPool,
    WorkerTiming,
    run_multiprocess,
)
from repro.core.native import (
    NativeKernel,
    load_native_plan,
    native_available,
)
from repro.core.predictor import HistoryPredictor, dfa_fingerprint
from repro.core.resilience import (
    DEFAULT_RESILIENCE,
    DeadlineModel,
    DegradedExecution,
    PoolClosedError,
    ResilienceConfig,
    RetryPolicy,
    SupervisionReport,
)
from repro.core.scoreboard import ChunkScoreboard, run_chunks_active
from repro.core.streaming import FeedCursor, StreamingExecutor
from repro.core.types import ChunkResults, ExecStats, SegmentMaps

__all__ = [
    "BackendChoice",
    "BatchExecutionResult",
    "BatchRunResult",
    "ChunkResults",
    "ChunkScoreboard",
    "DEFAULT_RESILIENCE",
    "DeadlineModel",
    "DegradedExecution",
    "EngineConfig",
    "ExecStats",
    "FaultPlan",
    "FaultSpec",
    "FeedCursor",
    "HistoryPredictor",
    "KChoice",
    "KERNELS",
    "KernelChoice",
    "KernelPlan",
    "KernelSpec",
    "MultiprocessResult",
    "NativeKernel",
    "PoolClosedError",
    "PoolRunTiming",
    "ResilienceConfig",
    "RetryPolicy",
    "ScaleoutPool",
    "SegmentMaps",
    "SpecExecutionResult",
    "StreamingExecutor",
    "StrideTables",
    "SupervisionReport",
    "WorkerTiming",
    "build_stride_tables",
    "chaos_plan_from_env",
    "choose_backend",
    "choose_k",
    "choose_kernel",
    "corrupt_result_map",
    "delay_task",
    "dfa_fingerprint",
    "kill_worker",
    "load_native_plan",
    "native_available",
    "plan_kernel",
    "run_chunks_active",
    "run_inprocess_fallback",
    "run_multiprocess",
    "run_speculative",
    "run_speculative_batch",
    "select_kernel",
    "shm_unlink_race",
]
