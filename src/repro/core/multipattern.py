"""Multi-pattern execution: N machines, one pass over the stream.

The NIDS scenario checks many patterns against the same input. Running one
speculative pass per pattern reads the stream P times; this layer answers
"which of N rules fired where" in **one** pass, by one of two routes:

**Batched stepping** (:func:`run_multipattern`, ``route="batched"``).
All patterns are compacted onto a *joint* cross-pattern alphabet
(:func:`repro.fsm.alphabet.compact_alphabet_joint`) and their class tables
are stacked block-diagonally into one *union table*: pattern ``p``'s states
are shifted by ``offset[p]`` and ``union[c, offset[p] + q] =
tables[p][c, q] + offset[p]``. Stepping a ``(chunks, sum_p k_p)`` state
matrix through the union table advances **all** patterns with one fused
gather per (stride of) symbol(s) — the padding-free realization of the
``(P, C, S)`` padded 3-D table (exposed by
:meth:`repro.fsm.alphabet.JointCompaction.padded_table` for inspection).
Because blocks are disjoint and closed under transition, every existing
layer works per-pattern on column slices: speculation, stride-m kernels
(one radix-packed stream shared by all patterns), convergence collapse
(duplicate lanes only ever collide within a pattern's block), both merges,
and the out-of-order scoreboard.

**Product route** (``route="product"``). The reachable product of the
group's class machines (:func:`repro.fsm.product.product_dfa`, whole-frontier
construction) is minimised with the parallel partition refinement
(:func:`repro.fsm.minimize.minimize_dfa` ``parallel=True``) while
preserving per-component acceptance, then the whole group rides the
ordinary single-DFA fast path — including the native backend — as one
machine. Only viable when the product stays under a state budget.

``route="auto"`` tries the product under the budget and falls back to
batched; :func:`repro.core.autotune.choose_route` is the measured version.

Per-pattern match positions are recovered from one additional truth pass
shared by the whole group (not one pass per pattern), and are bit-exact
against the sequential reference on every kernel / schedule / collapse
combination — the property tests assert exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.convergence import (
    CollapseConfig,
    converged_chunks,
    resolve_collapse,
)
from repro.core.kernels import (
    DEFAULT_TABLE_BUDGET_BYTES,
    KERNELS,
    KernelPlan,
    plan_kernel,
    process_chunks_kernel,
)
from repro.core.lookback import enumerative_spec, speculate, state_prior
from repro.core.local import process_chunks_ragged
from repro.core.merge_par import merge_parallel
from repro.core.merge_seq import merge_sequential, true_boundary_walk
from repro.core.scoreboard import ChunkScoreboard
from repro.core.types import ChunkResults, ExecStats
from repro.fsm.alphabet import (
    AlphabetCompaction,
    JointCompaction,
    compact_alphabet_joint,
)
from repro.fsm.dfa import DFA
from repro.fsm.product import (
    ProductDFA,
    ProductStateBudget,
    minimize_product,
    product_dfa,
)
from repro.obs.trace import RunTrace, current_trace, trace_span
from repro.util.validation import check_in_set
from repro.workloads.chunking import ChunkPlan, plan_chunks, transform_layout

__all__ = [
    "MachineStack",
    "MultiPatternResult",
    "PatternResult",
    "stack_machines",
    "run_multipattern",
    "run_multipattern_batch",
]

# The product route only pays when the minimised product is small enough to
# make one k-wide pass cheaper than the (sum k_p)-wide batched pass;
# "auto" stops materialising the product past this many states and falls
# back to batched.
DEFAULT_PRODUCT_BUDGET = 512
# Product construction cost grows with P even when the result is small;
# "auto" does not attempt it past this group size.
DEFAULT_PRODUCT_MAX_PATTERNS = 8


@dataclass(frozen=True)
class MachineStack:
    """A pattern group compiled for batched multi-DFA stepping.

    Attributes
    ----------
    machines:
        The original machines, in group order.
    joint:
        The cross-pattern :class:`repro.fsm.alphabet.JointCompaction`
        (shared ``class_of`` + one class table per pattern).
    offsets:
        ``(P + 1,)`` int64 — pattern ``p`` owns union states
        ``offsets[p] .. offsets[p+1] - 1``.
    union_dfa:
        The block-diagonal stacked machine over the joint class alphabet.
        Its transition function is the disjoint union of the patterns';
        it is **never** run as one trajectory (a single state only tracks
        one block) — the batched kernels carry one lane group per pattern.
    class_dfas:
        Per-pattern machines over the joint class alphabet (pattern-local
        state ids) — what speculation, merges, and re-execution run on.
    """

    machines: tuple
    joint: JointCompaction
    offsets: np.ndarray
    union_dfa: DFA
    class_dfas: tuple
    _prior_cache: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def num_patterns(self) -> int:
        """Group size ``P``."""
        return len(self.machines)

    @property
    def num_union_states(self) -> int:
        """Total stacked state count ``sum_p S_p``."""
        return int(self.offsets[-1])

    @property
    def table_bytes(self) -> int:
        """Footprint of the published union class table."""
        return int(self.union_dfa.table.nbytes)

    def identity_compaction(self) -> AlphabetCompaction:
        """The union table as an already-compacted kernel input.

        Joint classes are distinct by construction (two identical union
        rows would mean every pattern agreed, contradicting joint
        compaction), so the class map is the identity and
        :func:`repro.core.kernels.plan_kernel` can skip re-compaction.
        """
        c = self.joint.num_classes
        return AlphabetCompaction(
            class_of=np.arange(c, dtype=np.int32),
            table=self.union_dfa.table,
            num_symbols=c,
        )

    def pattern_prior(self, p: int, sample: np.ndarray) -> np.ndarray:
        """Pattern ``p``'s speculation prior, computed once per stack.

        The prior only steers *which* states get speculated — a stale one
        costs misses, never wrong answers — so the sampled reference walk
        (the expensive part) runs once per pattern and is reused by every
        subsequent call against this stack.
        """
        hit = self._prior_cache.get(p)
        if hit is None:
            hit = state_prior(self.class_dfas[p], sample=sample)
            if sample.size:
                self._prior_cache[p] = hit
        return hit


def stack_machines(machines: list[DFA]) -> MachineStack:
    """Compile a pattern group into a :class:`MachineStack`.

    Validates that all machines share an input space, computes the joint
    alphabet compaction, and builds the block-diagonal union table.
    """
    if not machines:
        raise ValueError("multi-pattern group of zero machines")
    num_inputs = machines[0].num_inputs
    for m in machines:
        if m.num_inputs != num_inputs:
            raise ValueError(
                f"machines disagree on num_inputs: {m.num_inputs} != {num_inputs}"
            )
    with trace_span("mp.stack", patterns=len(machines)) as sp:
        joint = compact_alphabet_joint([m.table for m in machines])
        sizes = np.asarray(joint.state_counts, dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        blocks = [
            t.astype(np.int64) + offsets[p] for p, t in enumerate(joint.tables)
        ]
        union_table = np.ascontiguousarray(
            np.concatenate(blocks, axis=1).astype(np.int32)
        )
        union_accepting = np.concatenate([m.accepting for m in machines])
        union_dfa = DFA(
            table=union_table,
            start=int(machines[0].start),
            accepting=union_accepting,
            name="union:" + ",".join(m.name or "?" for m in machines),
        )
        class_dfas = tuple(
            DFA(
                table=joint.tables[p],
                start=int(m.start),
                accepting=m.accepting,
                name=m.name,
            )
            for p, m in enumerate(machines)
        )
        sp.set(
            classes=joint.num_classes,
            union_states=int(offsets[-1]),
            table_bytes=int(union_table.nbytes),
        )
    obs = current_trace()
    if obs is not None:
        obs.count("mp.padded_table_bytes", int(union_table.nbytes))
    return MachineStack(
        machines=tuple(machines),
        joint=joint,
        offsets=offsets,
        union_dfa=union_dfa,
        class_dfas=class_dfas,
    )


@dataclass
class PatternResult:
    """One pattern's outcome within a multi-pattern run.

    ``final_state`` and ``true_starts`` are in the pattern's *own* state
    space on the batched route; the product route executes a minimised
    product whose states have no per-component decomposition, so there they
    are ``None`` (acceptance and match positions stay exact on both).
    """

    name: str
    accepted: bool
    final_state: int | None = None
    match_positions: np.ndarray | None = None
    true_starts: np.ndarray | None = None

    @property
    def match_count(self) -> int:
        """Number of recovered match positions (0 when not collected)."""
        return 0 if self.match_positions is None else int(self.match_positions.size)


@dataclass
class MultiPatternResult:
    """Everything produced by one :func:`run_multipattern` call.

    Attributes
    ----------
    route:
        ``"batched"`` or ``"product"`` — the route that actually ran.
    patterns:
        One :class:`PatternResult` per machine, in group order.
    stats:
        Counted algorithmic events for the whole group (one
        :class:`repro.core.types.ExecStats`; per-pattern attribution is
        not meaningful once lanes share a gather).
    plan:
        The shared :class:`repro.workloads.chunking.ChunkPlan`.
    stack:
        The compiled :class:`MachineStack` (batched route only).
    product:
        The minimised :class:`repro.fsm.product.ProductDFA` (product
        route only).
    product_true_starts:
        Product-state chunk-boundary map (product route only).
    trace:
        The observing :class:`repro.obs.RunTrace`, if any.
    """

    route: str
    patterns: tuple
    stats: ExecStats
    plan: ChunkPlan
    stack: MachineStack | None = None
    product: ProductDFA | None = None
    product_true_starts: np.ndarray | None = None
    trace: RunTrace | None = field(default=None, repr=False)

    @property
    def num_patterns(self) -> int:
        """Group size ``P``."""
        return len(self.patterns)

    @property
    def accepted(self) -> np.ndarray:
        """``(P,)`` bool — per-pattern acceptance of the whole input."""
        return np.array([p.accepted for p in self.patterns], dtype=bool)

    @property
    def match_positions(self) -> tuple:
        """Per-pattern match-position arrays (``None`` when not collected)."""
        return tuple(p.match_positions for p in self.patterns)


def _recover_group_matches(
    table: np.ndarray,
    accept_matrix: np.ndarray,
    cls: np.ndarray,
    plan: ChunkPlan,
    states0: np.ndarray,
    *,
    shared_trajectory: bool = False,
) -> list[np.ndarray]:
    """One shared truth pass recovering every pattern's match positions.

    ``states0`` is ``(num_chunks, W)`` — one trajectory per pattern on the
    batched route (``W = P``, union states), a single shared trajectory on
    the product route (``shared_trajectory=True``, ``W = 1``).
    ``accept_matrix`` is ``(S, P)`` bool; gathering it at the current
    states yields the ``(num_chunks, P)`` acceptance panel each step. Cost
    is one pass over the stream for the whole group, not one per pattern.
    """
    P = accept_matrix.shape[1]
    S = np.asarray(states0, dtype=np.int32).copy()
    lanes = np.arange(S.shape[1], dtype=np.intp)[None, :]
    pos_parts: list[np.ndarray] = []
    pat_parts: list[np.ndarray] = []

    def visit(pos: np.ndarray, S: np.ndarray) -> None:
        if shared_trajectory:
            acc = accept_matrix[S[:, 0]]          # (rows, P)
        else:
            acc = accept_matrix[S, lanes[: 1]]    # acc[c, p] at lane p's state
        if acc.any():
            rows, pats = np.nonzero(acc)
            pos_parts.append(pos[rows].astype(np.int64))
            pat_parts.append(pats.astype(np.int64))

    q = plan.min_len
    starts = plan.starts
    for j in range(q):
        pos = starts + j
        S = table[cls[pos][:, None], S]
        visit(pos, S)
    long_idx = np.flatnonzero(plan.lengths > q)
    if long_idx.size:
        pos = starts[long_idx] + q
        S2 = table[cls[pos][:, None], S[long_idx]]
        visit(pos, S2)

    if not pos_parts:
        return [np.zeros(0, dtype=np.int64) for _ in range(P)]
    all_pos = np.concatenate(pos_parts)
    all_pat = np.concatenate(pat_parts)
    out = []
    for p in range(P):
        sel = all_pos[all_pat == p]
        out.append(np.sort(sel, kind="stable"))
    return out


def _batched_accept_matrix(stack: MachineStack) -> np.ndarray:
    """``(S_total, P)`` panel: union state ``s`` accepts for pattern ``p``.

    Off-block entries are False, so gathering at pattern ``p``'s trajectory
    column can never credit a match to another pattern.
    """
    s_total = stack.num_union_states
    P = stack.num_patterns
    acc = np.zeros((s_total, P), dtype=bool)
    for p, m in enumerate(stack.machines):
        lo, hi = int(stack.offsets[p]), int(stack.offsets[p + 1])
        acc[lo:hi, p] = m.accepting
    return acc


def run_multipattern(
    machines,
    inputs: np.ndarray,
    *,
    k: int | None = 4,
    num_chunks: int = 256,
    merge: str = "parallel",
    check: str = "auto",
    lookback: int = 8,
    kernel: str = "auto",
    collapse: str | CollapseConfig | None = "auto",
    schedule: str = "barrier",
    backend: str = "vectorized",
    route: str = "auto",
    product_budget: int = DEFAULT_PRODUCT_BUDGET,
    product_max_patterns: int = DEFAULT_PRODUCT_MAX_PATTERNS,
    collect: tuple[str, ...] = ("match_positions",),
    plan: ChunkPlan | None = None,
    table_budget_bytes: int = DEFAULT_TABLE_BUDGET_BYTES,
    stack: MachineStack | None = None,
    trace: RunTrace | None = None,
) -> MultiPatternResult:
    """Run every machine in ``machines`` over ``inputs`` in one pass.

    Parameters mirror :func:`repro.core.engine.run_speculative` where they
    mean the same thing; the ones specific to this layer:

    Parameters
    ----------
    machines:
        The pattern group — a list of :class:`repro.fsm.dfa.DFA` over one
        shared input space. A prebuilt :class:`MachineStack` can be passed
        via ``stack`` to amortize group compilation across calls.
    k:
        Per-pattern speculation width; clamped to each pattern's state
        count (ragged groups simply get ragged lane widths). ``None``
        enumerates every pattern's states.
    route:
        ``"batched"``, ``"product"``, or ``"auto"`` — auto tries the
        product when the group is small enough (``product_max_patterns``)
        and the reachable product stays under ``product_budget`` states
        after parallel minimisation; otherwise batched.
    product_budget:
        Max product states "auto" will accept (construction aborts at the
        budget, so a hopeless group costs only a prefix of the product).
    collect:
        ``("match_positions",)`` (default) recovers per-pattern match
        positions from one shared truth pass; ``()`` skips it.
    backend:
        ``"vectorized"`` or ``"native"``. Batched-route native execution
        compiles the union machine with the pattern count baked in
        (:mod:`repro.core.native`); the product route rides the ordinary
        single-DFA native path. Falls back to vectorized silently.

    Returns
    -------
    MultiPatternResult
        Per-pattern outcomes plus group-level stats and route metadata.
    """
    if trace is not None:
        with trace.activate():
            return run_multipattern(
                machines, inputs, k=k, num_chunks=num_chunks, merge=merge,
                check=check, lookback=lookback, kernel=kernel,
                collapse=collapse, schedule=schedule, backend=backend,
                route=route, product_budget=product_budget,
                product_max_patterns=product_max_patterns, collect=collect,
                plan=plan, table_budget_bytes=table_budget_bytes, stack=stack,
            )
    check_in_set("merge", merge, ("sequential", "parallel"))
    check_in_set("check", check, ("auto", "nested", "hash"))
    check_in_set("schedule", schedule, ("barrier", "ooo"))
    check_in_set("backend", backend, ("vectorized", "native"))
    check_in_set("route", route, ("auto", "batched", "product"))
    check_in_set("kernel", kernel, ("auto",) + tuple(sorted(KERNELS)))
    for item in collect:
        check_in_set("collect item", item, ("match_positions",))

    inputs = np.ascontiguousarray(np.asarray(inputs))
    if inputs.ndim != 1:
        raise ValueError(f"inputs must be 1-D, got shape {inputs.shape}")
    if stack is None:
        stack = stack_machines(list(machines))
    P = stack.num_patterns

    if plan is None:
        plan = plan_chunks(inputs.size, max(1, min(num_chunks, max(1, inputs.size))))
    elif plan.num_items != inputs.size:
        raise ValueError(
            f"plan covers {plan.num_items} items but inputs has {inputs.size}"
        )
    if plan.max_len - plan.min_len > 1:
        raise ValueError("multi-pattern execution requires a near-equal plan")

    with trace_span(
        "mp.run", patterns=P, items=int(inputs.size), route=route,
        schedule=schedule, merge=merge,
    ) as sp:
        cls = stack.joint.remap(inputs).astype(np.int32)

        if route == "auto":
            route = _select_route(
                stack, product_budget=product_budget,
                product_max_patterns=product_max_patterns,
            )
        if route == "product":
            prod = _build_product(stack, budget=None)
            result = _run_product_route(
                stack, prod, cls, plan, k=k, merge=merge, check=check,
                lookback=lookback, kernel=kernel, collapse=collapse,
                schedule=schedule, backend=backend, collect=collect,
                table_budget_bytes=table_budget_bytes,
            )
        else:
            result = _run_batched_route(
                stack, cls, plan, k=k, merge=merge, check=check,
                lookback=lookback, kernel=kernel, collapse=collapse,
                schedule=schedule, backend=backend, collect=collect,
                table_budget_bytes=table_budget_bytes,
            )
        sp.set(route=result.route)
    obs = current_trace()
    if obs is not None:
        obs.count("mp.runs", 1)
        obs.count("mp.patterns", P)
        obs.count(f"mp.route.{result.route}", 1)
        if result.product is not None:
            obs.count("mp.product_states", result.product.dfa.num_states)
    return result


# Cache of route probes: the reachable-product attempt is pure function of
# the group's tables, so repeat calls (serving rounds, benchmarks) skip it.
_route_cache: dict[tuple, str] = {}


def _group_key(stack: MachineStack) -> tuple:
    return tuple(
        (d.num_states, d.table.tobytes(), d.accepting.tobytes())
        for d in stack.class_dfas
    )


def _select_route(
    stack: MachineStack, *, product_budget: int, product_max_patterns: int
) -> str:
    """Static route selection: product iff it is small enough to win.

    The batched pass is ``sum_p min(k, S_p)`` lanes wide; the product pass
    is ``min(k, S_prod)`` lanes wide. With the construction budget-gated,
    the rule reduces to: try the product for small groups, accept it when
    the minimised machine stays under ``product_budget`` states.
    :func:`repro.core.autotune.choose_route` replaces this with measurement.
    """
    if stack.num_patterns > product_max_patterns:
        return "batched"
    key = (_group_key(stack), int(product_budget))
    hit = _route_cache.get(key)
    if hit is not None:
        return hit
    with trace_span(
        "mp.route_probe", patterns=stack.num_patterns, budget=product_budget
    ) as sp:
        try:
            prod = _build_product(stack, budget=int(product_budget))
        except ProductStateBudget:
            route = "batched"
            sp.set(route=route, reason="budget")
        else:
            route = "product"
            sp.set(route=route, product_states=prod.dfa.num_states)
    _route_cache[key] = route
    return route


# Minimised products are cached alongside route decisions — serving rounds
# and the autotuner probe repeatedly on identical groups.
_product_cache: dict[tuple, ProductDFA] = {}


def _build_product(stack: MachineStack, *, budget: int | None) -> ProductDFA:
    """Reachable product of the group's class machines, minimised.

    The raw reachable construction is budget-gated *before* minimisation
    (an oversized intermediate is the expensive part); minimisation then
    runs the parallel refinement and must land under the budget too.
    """
    key = (_group_key(stack), budget)
    hit = _product_cache.get(key)
    if hit is not None:
        return hit
    raw_budget = None if budget is None else max(4 * budget, budget + 64)
    prod = product_dfa(
        list(stack.class_dfas), name="product:" + (stack.union_dfa.name or ""),
        max_states=raw_budget,
    )
    mini = minimize_product(prod, parallel=True)
    if budget is not None and mini.dfa.num_states > budget:
        raise ProductStateBudget(budget, mini.dfa.num_states)
    _product_cache[key] = mini
    return mini


def _run_product_route(
    stack: MachineStack,
    prod: ProductDFA,
    cls: np.ndarray,
    plan: ChunkPlan,
    *,
    k,
    merge: str,
    check: str,
    lookback: int,
    kernel: str,
    collapse,
    schedule: str,
    backend: str,
    collect: tuple[str, ...],
    table_budget_bytes: int,
) -> MultiPatternResult:
    """One single-DFA speculative pass over the minimised product."""
    from repro.core.engine import run_speculative

    res = run_speculative(
        prod.dfa,
        cls,
        k=k,
        merge=merge,
        check=check,
        lookback=lookback,
        kernel=kernel,
        collapse=collapse,
        schedule=schedule,
        backend=backend,
        plan=plan,
        measure_success=True,
        collect=(),
        price=False,
    )
    matches: list[np.ndarray | None] = [None] * stack.num_patterns
    if "match_positions" in collect:
        with trace_span("mp.recover", route="product", patterns=stack.num_patterns):
            accept_matrix = np.stack(prod.accept_masks, axis=1)
            matches = _recover_group_matches(
                prod.dfa.table, accept_matrix, cls, plan,
                res.true_starts[:, None], shared_trajectory=True,
            )
    final = int(res.final_state)
    patterns = tuple(
        PatternResult(
            name=stack.machines[p].name or f"pattern_{p}",
            accepted=bool(prod.accept_masks[p][final]),
            final_state=None,
            match_positions=matches[p],
            true_starts=None,
        )
        for p in range(stack.num_patterns)
    )
    return MultiPatternResult(
        route="product",
        patterns=patterns,
        stats=res.stats,
        plan=plan,
        product=prod,
        product_true_starts=res.true_starts,
        trace=current_trace(),
    )


def _pattern_widths(stack: MachineStack, k) -> list[int]:
    """Per-pattern speculation widths (``k`` clamped to each state count)."""
    if k is None:
        return [d.num_states for d in stack.class_dfas]
    if int(k) < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return [min(int(k), d.num_states) for d in stack.class_dfas]


def _run_batched_route(
    stack: MachineStack,
    cls: np.ndarray,
    plan: ChunkPlan,
    *,
    k,
    merge: str,
    check: str,
    lookback: int,
    kernel: str,
    collapse,
    schedule: str,
    backend: str,
    collect: tuple[str, ...],
    table_budget_bytes: int,
) -> MultiPatternResult:
    """Batched multi-DFA stepping over the block-diagonal union table."""
    P = stack.num_patterns
    n = plan.num_chunks
    widths = _pattern_widths(stack, k)
    lane_off = np.concatenate([[0], np.cumsum(widths)])
    K_total = int(lane_off[-1])
    union = stack.union_dfa
    stats = ExecStats(
        num_items=int(cls.size),
        num_chunks=n,
        k=K_total,
        num_states=union.num_states,
        num_inputs=union.num_inputs,
    )

    collapse_requested = not (
        collapse is None
        or collapse == "off"
        or (isinstance(collapse, CollapseConfig) and not collapse.enabled)
    )
    collapse_cfg = None
    if collapse_requested:
        with trace_span("mp.collapse_resolve", k=K_total) as sp:
            collapse_cfg = resolve_collapse(collapse, union, cls, k=K_total)
            sp.set(resolved=collapse_cfg.label if collapse_cfg else "off")

    # --- speculation: per-pattern look-back, stacked into union lanes --- #
    spec_cols: list[np.ndarray] = []
    covered_cols: list[np.ndarray | None] = []
    with trace_span("mp.speculate", patterns=P, chunks=n, k=K_total):
        sample = cls[: 1 << 14]
        for p, cdfa in enumerate(stack.class_dfas):
            if widths[p] >= cdfa.num_states:
                spec_p = enumerative_spec(cdfa, n)
                cov_p = np.ones(n, dtype=bool) if collapse_requested else None
            else:
                prior = stack.pattern_prior(p, sample) if cls.size else None
                out = speculate(
                    cdfa, cls, plan, widths[p],
                    lookback=lookback, prior=prior, stats=stats,
                    return_coverage=collapse_requested,
                )
                spec_p, cov_p = out if collapse_requested else (out, None)
            spec_cols.append(spec_p)
            covered_cols.append(cov_p)
        spec_all = np.concatenate(
            [s.astype(np.int64) + stack.offsets[p] for p, s in enumerate(spec_cols)],
            axis=1,
        ).astype(np.int32)

    # --- kernel plan over the union table (identity compaction) --------- #
    kplan = plan_kernel(
        union, chunk_len=plan.max_len, num_chunks=n, k=K_total,
        kernel=kernel, table_budget_bytes=table_budget_bytes,
        compaction=stack.identity_compaction(),
    )
    nplan = None
    if backend == "native":
        from repro.core.native import load_native_plan

        nplan = load_native_plan(
            union, k=K_total, kernel=kplan.kernel, kplan=kplan,
            collapse=collapse_cfg, chunk_len=plan.max_len, num_chunks=n,
            patterns=P, group_widths=tuple(int(w) for w in widths),
        )

    # --- one fused local pass for all patterns -------------------------- #
    with trace_span(
        "mp.local_exec", chunks=n, k=K_total, kernel=kplan.kernel,
        backend="native" if nplan is not None else "vectorized",
    ):
        transformed = transform_layout(cls, plan) if nplan is None else None
        end_all = process_chunks_kernel(
            union, cls, plan, spec_all, kplan,
            transformed=transformed, stats=stats, collapse=collapse_cfg,
            native=nplan,
        )

    # --- per-pattern merge / resolution --------------------------------- #
    finals = np.empty(P, dtype=np.int64)
    boundary = np.empty((n, P), dtype=np.int32)
    with trace_span("mp.resolve", patterns=P, schedule=schedule, merge=merge):
        for p, cdfa in enumerate(stack.class_dfas):
            lo, hi = int(lane_off[p]), int(lane_off[p + 1])
            off = int(stack.offsets[p])
            spec_p = spec_cols[p]
            end_p = (end_all[:, lo:hi].astype(np.int64) - off).astype(np.int32)
            converged_p = None
            if collapse_requested and covered_cols[p] is not None:
                converged_p = converged_chunks(end_p, covered_cols[p])
                stats.chunks_converged += int(converged_p.sum())
            if schedule == "ooo":
                board = ChunkScoreboard(
                    cdfa, cls, plan, widths[p], mode=merge, check=check,
                    stats=stats,
                )
                for c in np.argsort(plan.lengths, kind="stable"):
                    board.post(
                        int(c), spec_p[c], end_p[c],
                        converged=(
                            bool(converged_p[c]) if converged_p is not None
                            else False
                        ),
                    )
                final_p, ts_p = board.resolve()
                if ts_p is None:
                    results = ChunkResults(
                        spec=board.spec, end=board.end, valid=board.valid,
                        converged=converged_p,
                    )
                    _, ts_p = true_boundary_walk(cdfa, cls, plan, results)
            else:
                results = ChunkResults(
                    spec=spec_p, end=end_p,
                    valid=np.ones_like(spec_p, dtype=bool),
                    converged=converged_p,
                )
                if merge == "sequential":
                    final_p, ts_p = merge_sequential(
                        cdfa, cls, plan, results, check=check, stats=stats
                    )
                else:
                    final_p, _ = merge_parallel(
                        cdfa, cls, plan, results, check=check, stats=stats
                    )
                    _, ts_p = true_boundary_walk(cdfa, cls, plan, results)
            finals[p] = int(final_p)
            boundary[:, p] = ts_p

    # --- shared match recovery ------------------------------------------ #
    matches: list[np.ndarray | None] = [None] * P
    if "match_positions" in collect:
        with trace_span("mp.recover", route="batched", patterns=P):
            accept_matrix = _batched_accept_matrix(stack)
            states0 = boundary.astype(np.int64) + stack.offsets[:-1][None, :]
            matches = _recover_group_matches(
                union.table, accept_matrix, cls, plan,
                states0.astype(np.int32),
            )

    patterns = tuple(
        PatternResult(
            name=stack.machines[p].name or f"pattern_{p}",
            accepted=bool(stack.machines[p].accepting[finals[p]]),
            final_state=int(finals[p]),
            match_positions=matches[p],
            true_starts=boundary[:, p].copy(),
        )
        for p in range(P)
    )
    return MultiPatternResult(
        route="batched",
        patterns=patterns,
        stats=stats,
        plan=plan,
        stack=stack,
        trace=current_trace(),
    )


def run_multipattern_batch(
    stack: MachineStack,
    segments: list[np.ndarray],
    *,
    k: int | None = 4,
    lookback: int = 8,
    check: str = "auto",
    chunk_items: int = 1 << 13,
    starts: np.ndarray | None = None,
    stats: ExecStats | None = None,
):
    """Coalesce many requests against one pattern group into one pass.

    The serving layer's multi-pattern primitive: every request's raw
    segment is checked against **all** patterns of the group. Segments are
    concatenated into one shared chunk plan, the union table advances all
    patterns' lanes in one fused pass, and each pattern resolves on its own
    seeded :class:`repro.core.scoreboard.ChunkScoreboard` (request heads
    pin that pattern's start state, so resolution fronts never cross
    request boundaries).

    ``starts`` (optional, ``(num_requests, P)`` pattern-local states)
    carries each request's per-pattern state into the round — the serving
    layer's continuous batching threads a carved request's state through
    successive rounds this way. Defaults to every pattern's start state.

    Returns ``(final_states, accepted)`` where both are
    ``(num_requests, P)`` — per-request, per-pattern outcomes in the
    patterns' own state spaces.
    """
    from repro.workloads.chunking import plan_from_lengths

    P = stack.num_patterns
    segs = []
    for i, seg in enumerate(segments):
        seg = np.ascontiguousarray(np.asarray(seg))
        if seg.ndim != 1:
            raise ValueError(f"segment {i} must be 1-D, got shape {seg.shape}")
        segs.append(seg)
    if chunk_items < 1:
        raise ValueError(f"chunk_items must be >= 1, got {chunk_items}")
    num_requests = len(segs)
    widths = _pattern_widths(stack, k)
    K_total = int(sum(widths))

    if starts is not None:
        starts = np.asarray(starts, dtype=np.int64)
        if starts.shape != (num_requests, P):
            raise ValueError(
                f"starts must have shape ({num_requests}, {P}), "
                f"got {starts.shape}"
            )
        for p, cdfa in enumerate(stack.class_dfas):
            col = starts[:, p]
            if col.size and not bool(
                ((col >= 0) & (col < cdfa.num_states)).all()
            ):
                raise ValueError(
                    f"starts[:, {p}] out of range [0, {cdfa.num_states})"
                )

    final_states = np.empty((num_requests, P), dtype=np.int32)
    if starts is not None:
        final_states[:] = starts
    else:
        for p, cdfa in enumerate(stack.class_dfas):
            final_states[:, p] = cdfa.start

    lengths: list[int] = []
    heads: list[tuple[int, int]] = []  # (head chunk, request) pairs
    tail_chunk = np.full(num_requests, -1, dtype=np.int64)
    for r, seg in enumerate(segs):
        if not seg.size:
            continue
        nch = -(-seg.size // chunk_items)
        heads.append((len(lengths), r))
        lengths.extend(plan_chunks(seg.size, nch).lengths.tolist())
        tail_chunk[r] = len(lengths) - 1

    accepted = np.zeros((num_requests, P), dtype=bool)
    if not lengths:
        for p, cdfa in enumerate(stack.class_dfas):
            accepted[:, p] = cdfa.accepting[final_states[:, p]]
        return final_states, accepted

    concat = np.concatenate([s for s in segs if s.size])
    cls = stack.joint.remap(concat).astype(np.int32)
    plan = plan_from_lengths(np.asarray(lengths, dtype=np.int64))
    n = plan.num_chunks
    union = stack.union_dfa
    if stats is None:
        stats = ExecStats(
            num_items=int(cls.size), num_chunks=n, k=K_total,
            num_states=union.num_states, num_inputs=union.num_inputs,
        )

    with trace_span(
        "mp.batch", requests=num_requests, patterns=P, chunks=n, k=K_total,
    ):
        spec_cols = []
        sample = cls[: 1 << 14]
        for p, cdfa in enumerate(stack.class_dfas):
            head_state = {
                h: (int(starts[r, p]) if starts is not None else int(cdfa.start))
                for h, r in heads
            }
            if widths[p] >= cdfa.num_states:
                spec_p = enumerative_spec(cdfa, n)
            else:
                prior = stack.pattern_prior(p, sample)
                spec_p = speculate(
                    cdfa, cls, plan, widths[p],
                    lookback=lookback, prior=prior, stats=stats,
                )
                for h, s in head_state.items():
                    if not (spec_p[h] == s).any():
                        spec_p[h, -1] = s
            spec_cols.append(spec_p)
        spec_all = np.concatenate(
            [s.astype(np.int64) + stack.offsets[p] for p, s in enumerate(spec_cols)],
            axis=1,
        ).astype(np.int32)

        if plan.max_len - plan.min_len <= 1:
            kplan = plan_kernel(
                union, chunk_len=plan.max_len, num_chunks=n, k=K_total,
                kernel="auto", compaction=stack.identity_compaction(),
            )
            end_all = process_chunks_kernel(
                union, cls, plan, spec_all, kplan, stats=stats,
            )
        else:
            # Mixed request sizes make the coalesced plan skewed; the
            # divergent full-width lockstep pass still advances every
            # pattern's lanes in one fused gather per step.
            end_all = process_chunks_ragged(
                union, cls, plan, spec_all, stats=stats,
            )

        lane_off = np.concatenate([[0], np.cumsum(widths)])
        live = tail_chunk >= 0
        for p, cdfa in enumerate(stack.class_dfas):
            lo, hi = int(lane_off[p]), int(lane_off[p + 1])
            off = int(stack.offsets[p])
            end_p = (end_all[:, lo:hi].astype(np.int64) - off).astype(np.int32)
            seeds = {
                h: (int(starts[r, p]) if starts is not None else int(cdfa.start))
                for h, r in heads
            }
            board = ChunkScoreboard(
                cdfa, cls, plan, widths[p], mode="parallel", check=check,
                stats=stats, seeds=seeds,
            )
            for c in np.argsort(plan.lengths, kind="stable"):
                board.post(int(c), spec_cols[p][c], end_p[c])
            board.resolve()
            final_states[live, p] = board.out_state[tail_chunk[live]]
            accepted[:, p] = cdfa.accepting[final_states[:, p]]
    return final_states, accepted
