"""Streaming execution: speculative processing of unbounded inputs.

NIDS-style deployments process packets/blocks as they arrive. A
:class:`StreamingExecutor` carries the exact machine state across blocks
and runs each block through the speculative engine — the block's chunk 0
starts from the carried state (never a guess), so results are exact and
block boundaries cost nothing.

Two backends:

* ``backend="simulate"`` (default) — the functional GPU simulation via
  :func:`repro.core.engine.run_speculative`, with full event counting and
  optional match-position collection;
* ``backend="pool"`` — real CPU scale-out through a persistent
  :class:`repro.core.mp_executor.ScaleoutPool`. The pool (worker processes
  and shared-memory segments) is created once and reused across ``feed``
  calls, so per-block dispatch cost is a few hundred pickled bytes; call
  :meth:`close` (or use the executor as a context manager) when done.

The executor accumulates :class:`repro.core.types.ExecStats` across blocks
so a whole session can be priced with the cost model, and can optionally
collect match positions (offset-adjusted to the global stream).

:meth:`StreamingExecutor.feed` is **atomic**: the carried state, the
consumption counters, and the collected matches are only committed after
the block fully executes, so a feed that raises (a closed pool, bad input)
leaves the executor exactly at its pre-feed :class:`FeedCursor` — re-feed
the same block, nothing was consumed. Pool-backend feeds that came back
from the degraded in-process fallback still commit (the state is correct);
they are counted in :attr:`StreamingExecutor.degraded_feeds` and flagged
on :attr:`StreamingExecutor.last_feed_degraded`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.convergence import CollapseConfig
from repro.core.engine import run_speculative
from repro.core.faultinject import FaultPlan
from repro.core.mp_executor import ScaleoutPool
from repro.core.resilience import DEFAULT_RESILIENCE, ResilienceConfig
from repro.core.types import ExecStats
from repro.fsm.dfa import DFA
from repro.gpu.device import DeviceSpec, TESLA_V100
from repro.obs.trace import trace_span

__all__ = ["FeedCursor", "StreamingExecutor"]


@dataclass(frozen=True)
class FeedCursor:
    """An exact resume point in the stream.

    Captures the carried machine state, the consumption counters, and the
    length of the collected-match log — the values that define *where* the
    executor is in the input stream. Take one with
    :meth:`StreamingExecutor.checkpoint` before risky work and rewind with
    :meth:`StreamingExecutor.restore`; because
    :meth:`StreamingExecutor.feed` is atomic, a failed feed leaves the
    executor already at its pre-feed cursor without explicit bookkeeping.

    ``matches_len`` lets :meth:`StreamingExecutor.restore` truncate match
    positions recorded by feeds that are being rewound past — without it,
    re-fed blocks would report their matches twice.
    """

    state: int
    items_consumed: int
    blocks_consumed: int
    matches_len: int = 0


@dataclass
class StreamingExecutor:
    """Process an input stream block by block, speculatively.

    Parameters mirror :func:`repro.core.engine.run_speculative`; the
    executor pins ``measure_success`` on so per-block hit rates accumulate.
    With ``backend="pool"``, ``pool_workers`` processes execute each block
    and ``num_blocks``/``threads_per_block``/``merge``/``device`` are
    ignored (they describe the simulated GPU, not the CPU pool);
    ``collect_matches`` works on both backends — the pool recovers match
    positions with a second worker round
    (:meth:`repro.core.mp_executor.ScaleoutPool.run` with
    ``collect_matches=True``).

    ``schedule`` picks how each block's chunk maps are combined:
    ``"barrier"`` (the classic full-merge) or ``"ooo"`` (the chunk
    scoreboard, :mod:`repro.core.scoreboard`) — forwarded to the engine or
    the pool per feed; results are bit-identical either way.

    ``kernel`` selects the local stepping kernel
    (:mod:`repro.core.kernels`); the default ``"auto"`` lets the cost
    model pick multi-symbol stepping per block — streaming is a real
    deployment surface, so wall clock (not modeled GPU fidelity) is the
    default objective. The pool backend resolves the kernel once at pool
    construction and reuses its stride tables for every block.
    ``collapse`` configures the convergence layer
    (:mod:`repro.core.convergence`) the same way — ``"auto"`` probes the
    machine once (per block for the simulated backend, on the first block
    for the pool) and collapses duplicate speculative lanes mid-chunk
    when the machine converges; results are bit-identical either way.

    Three stats surfaces, all :class:`repro.core.types.ExecStats`:

    * :attr:`stats` — the current session (cleared by :meth:`reset`);
    * :attr:`last_feed_stats` — the most recent :meth:`feed` in isolation;
    * :attr:`lifetime_stats` — every block ever fed, surviving resets.
    """

    dfa: DFA
    k: int | None = 4
    num_blocks: int = 20
    threads_per_block: int = 256
    merge: str = "parallel"
    lookback: int = 8
    device: DeviceSpec = TESLA_V100
    collect_matches: bool = False
    backend: str = "simulate"
    pool_workers: int = 4
    sub_chunks_per_worker: int = 64
    kernel: str = "auto"
    collapse: str | CollapseConfig | None = "auto"
    schedule: str = "barrier"
    resilience: ResilienceConfig | None = DEFAULT_RESILIENCE
    fault_plan: FaultPlan | None = None

    state: int = field(init=False)
    items_consumed: int = field(init=False, default=0)
    blocks_consumed: int = field(init=False, default=0)
    degraded_feeds: int = field(init=False, default=0)
    last_feed_degraded: bool = field(init=False, default=False)
    stats: ExecStats = field(init=False)
    _matches: list = field(init=False, default_factory=list)
    _pool: ScaleoutPool | None = field(init=False, default=None, repr=False)
    _lifetime_base: ExecStats = field(init=False, repr=False)
    _lifetime_items: int = field(init=False, default=0)
    _lifetime_blocks: int = field(init=False, default=0)
    _last_feed_stats: ExecStats | None = field(init=False, default=None, repr=False)

    def __post_init__(self) -> None:
        if self.backend not in ("simulate", "pool"):
            raise ValueError(
                f"backend must be 'simulate' or 'pool', got {self.backend!r}"
            )
        if self.schedule not in ("barrier", "ooo"):
            raise ValueError(
                f"schedule must be 'barrier' or 'ooo', got {self.schedule!r}"
            )
        if self.backend == "pool":
            self._pool = ScaleoutPool(
                self.dfa,
                num_workers=self.pool_workers,
                k=self.k,
                sub_chunks_per_worker=self.sub_chunks_per_worker,
                lookback=self.lookback,
                kernel=self.kernel,
                collapse=self.collapse,
                resilience=self.resilience,
                fault_plan=self.fault_plan,
            )
        self.state = self.dfa.start
        self.stats = self._fresh_stats()
        self._lifetime_base = self._fresh_stats()

    def _fresh_stats(self) -> ExecStats:
        """A zeroed per-session stats object carrying the config echoes."""
        num_chunks = (
            self.pool_workers
            if self.backend == "pool"
            else self.num_blocks * self.threads_per_block
        )
        return ExecStats(
            num_chunks=num_chunks,
            k=self.k if isinstance(self.k, int) else self.dfa.num_states,
            num_states=self.dfa.num_states,
            num_inputs=self.dfa.num_inputs,
        )

    def checkpoint(self) -> FeedCursor:
        """Snapshot the stream position (carried state + counters)."""
        return FeedCursor(
            state=self.state,
            items_consumed=self.items_consumed,
            blocks_consumed=self.blocks_consumed,
            matches_len=len(self._matches),
        )

    def restore(self, cursor: FeedCursor) -> None:
        """Rewind to a :meth:`checkpoint`; the next feed resumes from it.

        The stream *position* is rewound, and match positions collected by
        feeds past the cursor are dropped — re-fed blocks would otherwise
        report their matches twice. Session stats are not rewound — they
        count work performed, including feeds later rewound past — so
        pricing stays honest about what actually executed.
        """
        self.state = int(cursor.state)
        self.items_consumed = int(cursor.items_consumed)
        self.blocks_consumed = int(cursor.blocks_consumed)
        del self._matches[int(cursor.matches_len):]

    def feed(self, block: np.ndarray) -> int:
        """Consume one block; returns the machine state after it.

        The block's own event counts are kept as :attr:`last_feed_stats`
        and folded into both :attr:`stats` (session) and
        :attr:`lifetime_stats` (run-level, reset-proof).

        Atomic: every executor field is committed only after the block
        fully executes, so a feed that raises leaves the carried state,
        counters, stats, and matches untouched — re-feed the same block.
        A pool feed that recovered through the degraded fallback still
        commits (its state is exact) and bumps :attr:`degraded_feeds`.
        """
        block = np.asarray(block)
        if block.size == 0:
            # An empty block is a successful (trivial) feed: it must not
            # leave a previous feed's degraded flag sticking to it.
            self.last_feed_degraded = False
            return self.state
        degraded = False
        new_matches = None
        with trace_span(
            "stream.feed", block=self.blocks_consumed, items=int(block.size),
            backend=self.backend,
        ):
            if self._pool is not None:
                result = self._pool.run(
                    block, start=self.state, schedule=self.schedule,
                    collect_matches=self.collect_matches,
                )
                if self.collect_matches:
                    new_matches = result.match_positions + self.items_consumed
                feed_stats = result.stats
                new_stats = self.stats.merged_with(feed_stats)
                new_stats.pool_shm_bytes = feed_stats.pool_shm_bytes
                final_state = result.final_state
                degraded = result.degraded
            else:
                sim = run_speculative(
                    self.dfa.with_start(self.state),
                    block,
                    k=self.k,
                    num_blocks=self.num_blocks,
                    threads_per_block=self.threads_per_block,
                    merge=self.merge,
                    lookback=self.lookback,
                    device=self.device,
                    collect=("match_positions",) if self.collect_matches else (),
                    price=False,
                    kernel=self.kernel,
                    collapse=self.collapse,
                    schedule=self.schedule,
                )
                if self.collect_matches:
                    new_matches = sim.match_positions + self.items_consumed
                feed_stats = sim.stats
                new_stats = self.stats.merged_with(feed_stats)
                final_state = sim.final_state
        # Commit point: nothing above mutated the executor.
        if new_matches is not None:
            self._matches.append(new_matches)
        # Copy before adjusting num_items: feed_stats aliases the result
        # object the engine/pool returned, and mutating that in place would
        # change what a caller holding it observes.
        feed_stats = replace(feed_stats)
        feed_stats.num_items = int(block.size)
        self._last_feed_stats = feed_stats
        self.stats = new_stats
        self.stats.num_items += int(block.size)
        self.items_consumed += int(block.size)
        self.blocks_consumed += 1
        self.state = final_state
        self.last_feed_degraded = degraded
        if degraded:
            self.degraded_feeds += 1
        return self.state

    @property
    def last_feed_stats(self) -> ExecStats | None:
        """Event counts of the most recent :meth:`feed` call in isolation.

        None before the first non-empty feed. Unlike :attr:`stats` this is
        not cumulative — it is the per-block carry the cost model needs to
        price a single block.
        """
        return self._last_feed_stats

    @property
    def lifetime_stats(self) -> ExecStats:
        """Accumulated stats over every block ever fed, surviving resets.

        :meth:`reset` clears the per-session :attr:`stats` but folds them
        in here first, so a long-lived executor (e.g. a NIDS session that
        resets per connection) can still be priced as one run.
        """
        combined = self._lifetime_base.merged_with(self.stats)
        combined.num_items = self._lifetime_items + self.stats.num_items
        if self.stats.pool_shm_bytes:
            combined.pool_shm_bytes = self.stats.pool_shm_bytes
        return combined

    @property
    def lifetime_items_consumed(self) -> int:
        """Items fed since construction (survives :meth:`reset`)."""
        return self._lifetime_items + self.items_consumed

    @property
    def lifetime_blocks_consumed(self) -> int:
        """Blocks fed since construction (survives :meth:`reset`)."""
        return self._lifetime_blocks + self.blocks_consumed

    @property
    def match_positions(self) -> np.ndarray:
        """All match-end positions seen so far (global stream offsets)."""
        if not self._matches:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(self._matches)

    @property
    def accepted(self) -> bool:
        """Whether the machine currently sits in an accepting state."""
        return bool(self.dfa.accepting[self.state])

    def reset(self) -> None:
        """Return to the initial state and clear the session's results.

        Session counters (:attr:`stats`, :attr:`items_consumed`,
        :attr:`blocks_consumed`, collected matches) are cleared, but the
        session's event counts are folded into :attr:`lifetime_stats`
        first — nothing is dropped. A pool backend keeps its workers and
        shared segments alive — reset clears session state, not the pool.
        """
        base = self._lifetime_base.merged_with(self.stats)
        base.num_items = self._lifetime_items + self.stats.num_items
        self._lifetime_base = base
        self._lifetime_items += self.items_consumed
        self._lifetime_blocks += self.blocks_consumed
        self.state = self.dfa.start
        self.items_consumed = 0
        self.blocks_consumed = 0
        self._matches.clear()
        self.stats = self._fresh_stats()

    def close(self) -> None:
        """Release the pool backend's processes and shared memory (if any)."""
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "StreamingExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
