"""Streaming execution: speculative processing of unbounded inputs.

NIDS-style deployments process packets/blocks as they arrive. A
:class:`StreamingExecutor` carries the exact machine state across blocks
and runs each block through the speculative engine — the block's chunk 0
starts from the carried state (never a guess), so results are exact and
block boundaries cost nothing.

The executor accumulates :class:`repro.core.types.ExecStats` across blocks
so a whole session can be priced with the cost model, and can optionally
collect match positions (offset-adjusted to the global stream).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import run_speculative
from repro.core.types import ExecStats
from repro.fsm.dfa import DFA
from repro.gpu.device import DeviceSpec, TESLA_V100

__all__ = ["StreamingExecutor"]


@dataclass
class StreamingExecutor:
    """Process an input stream block by block, speculatively.

    Parameters mirror :func:`repro.core.engine.run_speculative`; the
    executor pins ``measure_success`` on so per-block hit rates accumulate.
    """

    dfa: DFA
    k: int | None = 4
    num_blocks: int = 20
    threads_per_block: int = 256
    merge: str = "parallel"
    lookback: int = 8
    device: DeviceSpec = TESLA_V100
    collect_matches: bool = False

    state: int = field(init=False)
    items_consumed: int = field(init=False, default=0)
    blocks_consumed: int = field(init=False, default=0)
    stats: ExecStats = field(init=False)
    _matches: list = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        self.state = self.dfa.start
        self.stats = ExecStats(
            num_chunks=self.num_blocks * self.threads_per_block,
            k=self.k if isinstance(self.k, int) else self.dfa.num_states,
            num_states=self.dfa.num_states,
            num_inputs=self.dfa.num_inputs,
        )

    def feed(self, block: np.ndarray) -> int:
        """Consume one block; returns the machine state after it."""
        block = np.asarray(block)
        if block.size == 0:
            return self.state
        result = run_speculative(
            self.dfa.with_start(self.state),
            block,
            k=self.k,
            num_blocks=self.num_blocks,
            threads_per_block=self.threads_per_block,
            merge=self.merge,
            lookback=self.lookback,
            device=self.device,
            collect=("match_positions",) if self.collect_matches else (),
            price=False,
        )
        if self.collect_matches:
            self._matches.append(result.match_positions + self.items_consumed)
        self.stats = self.stats.merged_with(result.stats)
        self.stats.num_items += int(block.size)
        self.items_consumed += int(block.size)
        self.blocks_consumed += 1
        self.state = result.final_state
        return self.state

    @property
    def match_positions(self) -> np.ndarray:
        """All match-end positions seen so far (global stream offsets)."""
        if not self._matches:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(self._matches)

    @property
    def accepted(self) -> bool:
        """Whether the machine currently sits in an accepting state."""
        return bool(self.dfa.accepting[self.state])

    def reset(self) -> None:
        """Return to the initial state and clear accumulated results."""
        self.state = self.dfa.start
        self.items_consumed = 0
        self.blocks_consumed = 0
        self._matches.clear()
        self.stats = ExecStats(
            num_chunks=self.num_blocks * self.threads_per_block,
            k=self.stats.k,
            num_states=self.dfa.num_states,
            num_inputs=self.dfa.num_inputs,
        )
