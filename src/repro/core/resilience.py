"""Worker supervision for CPU scale-out: deadlines, retry, respawn, degrade.

The speculative engine already tolerates *mispredicted speculation* — the
paper's delayed re-execution fixes up wrong guesses. This module adds the
discipline cloud deployments actually need: tolerance of *process-level*
failure. :class:`SupervisedWorkerPool` replaces the stdlib
``ProcessPoolExecutor`` inside :class:`repro.core.mp_executor.ScaleoutPool`
with worker processes the parent fully owns, so it can:

* derive a **per-task deadline** from a measured bytes/sec estimate with a
  configurable floor (:class:`DeadlineModel`) and hedge stragglers by
  re-dispatching their task to a healthy worker;
* detect **dead workers** (liveness probe + ``Process.exitcode`` sweep in
  the result-wait loop), **respawn** them, and re-dispatch every task the
  dead worker still owed to surviving workers — respawned workers re-attach
  the pool's shared-memory segments lazily, exactly like fresh ones;
* **retry** failed or corrupted tasks with exponential backoff and
  deterministic jitter (:class:`RetryPolicy`), validating each result map
  against the machine's state range on arrival;
* **degrade** when retries exhaust or the pool falls below quorum: a
  :class:`DegradedExecution` signal tells the caller to fall back to the
  in-process :func:`repro.core.engine.run_speculative` path, so a run
  always returns a correct result instead of raising.

Every recovery action is counted on the ambient :class:`repro.obs.RunTrace`
under the ``fault.*`` namespace (catalog in ``docs/OBSERVABILITY.md``) and
recorded as a :class:`RecoveryEvent` on the run's
:class:`SupervisionReport`, which rides back on
:class:`repro.core.mp_executor.MultiprocessResult`.

Fault sites are driven deterministically by
:mod:`repro.core.faultinject`; with an empty plan the supervised path is
the production path, and its fault-free overhead is pinned under 3% by
``benchmarks/bench_resilience.py``.
"""

from __future__ import annotations

import math
import random
import signal
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import get_context
from queue import Empty
from typing import Any, Callable, Sequence

from repro.core import faultinject
from repro.obs.trace import add_count, trace_span

__all__ = [
    "DEFAULT_RESILIENCE",
    "DeadlineModel",
    "DegradedExecution",
    "PoolClosedError",
    "RecoveryEvent",
    "ResilienceConfig",
    "RetryPolicy",
    "SupervisedWorkerPool",
    "SupervisionReport",
]


class PoolClosedError(RuntimeError):
    """Raised when a closed pool (or supervised worker set) is used again."""


class DegradedExecution(Exception):
    """Supervised execution gave up; the caller must degrade to local.

    Raised internally by :meth:`SupervisedWorkerPool.run_tasks` when a task
    exhausts its retries or the pool drops below quorum; carries the
    human-readable reason (the :class:`SupervisionReport` stays with the
    caller, already populated).
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


# --------------------------------------------------------------------------- #
# policy objects
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    ``delay_s(attempt, rng)`` for attempt 1, 2, ... is
    ``backoff_base_s * backoff_factor**(attempt-1)`` stretched by up to
    ``backoff_jitter`` (a fraction drawn from ``rng``, which the pool seeds
    deterministically).
    """

    max_retries: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.25

    def delay_s(self, attempt: int, rng: random.Random) -> float:
        """Backoff delay in seconds before retry number ``attempt`` (>= 1)."""
        base = self.backoff_base_s * self.backoff_factor ** max(0, attempt - 1)
        return base * (1.0 + self.backoff_jitter * rng.random())


@dataclass(frozen=True)
class DeadlineModel:
    """Per-task deadline derived from throughput, with a floor.

    The deadline for a task over ``task_bytes`` of input is
    ``max(floor_s, safety_factor * task_bytes / bytes_per_sec)`` where
    ``bytes_per_sec`` is the pool's measured per-worker throughput (EWMA
    over past tasks) clamped below by ``bytes_per_sec_floor`` — a brand-new
    pool with no history gets conservative (long) deadlines rather than
    spurious expirations.
    """

    floor_s: float = 5.0
    bytes_per_sec_floor: float = 2e6
    safety_factor: float = 8.0

    def deadline_s(self, task_bytes: int, bytes_per_sec: float | None = None) -> float:
        """Deadline in seconds for a task over ``task_bytes`` of input."""
        bps = max(self.bytes_per_sec_floor, float(bytes_per_sec or 0.0))
        return max(self.floor_s, self.safety_factor * task_bytes / bps)


@dataclass(frozen=True)
class ResilienceConfig:
    """Everything the supervision loop needs to make recovery decisions.

    ``max_respawns`` bounds worker respawns per ``run_tasks`` call (None
    derives ``2 * num_workers``); ``quorum_fraction`` is the minimum live
    fraction of the original worker count below which the pool degrades;
    ``max_deadline_strikes`` is how many deadline expirations one worker
    may accumulate before it is presumed wedged and terminated. ``seed``
    makes backoff jitter reproducible.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    deadline: DeadlineModel = field(default_factory=DeadlineModel)
    quorum_fraction: float = 0.5
    max_respawns: int | None = None
    max_deadline_strikes: int = 2
    poll_interval_s: float = 0.02
    seed: int = 0


#: The default supervision configuration pools run under unless told otherwise.
DEFAULT_RESILIENCE = ResilienceConfig()


# --------------------------------------------------------------------------- #
# recovery bookkeeping
# --------------------------------------------------------------------------- #


@dataclass
class RecoveryEvent:
    """One recovery action: what happened, to whom, when (run-relative)."""

    kind: str
    worker: int = -1
    task: int = -1
    attempt: int = 0
    detail: str = ""
    t_s: float = 0.0


@dataclass
class SupervisionReport:
    """Aggregated recovery activity of one supervised ``run_tasks`` call.

    All counters are zero and ``degraded`` is False on a fault-free run;
    ``events`` is the ordered action log. The report rides back on
    :class:`repro.core.mp_executor.MultiprocessResult.recovery`.
    """

    worker_deaths: int = 0
    respawns: int = 0
    retries: int = 0
    deadline_expirations: int = 0
    corrupt_results: int = 0
    worker_errors: int = 0
    shm_republishes: int = 0
    faults_fired: int = 0
    degraded: bool = False
    degrade_reason: str = ""
    events: list[RecoveryEvent] = field(default_factory=list)

    def record(self, kind: str, **kw: Any) -> RecoveryEvent:
        """Append one event to the action log and return it."""
        ev = RecoveryEvent(kind=kind, **kw)
        self.events.append(ev)
        return ev

    @property
    def total_recovery_actions(self) -> int:
        """Count of actions taken (deaths, respawns, retries, republishes)."""
        return (
            self.worker_deaths + self.respawns + self.retries
            + self.shm_republishes
        )


# --------------------------------------------------------------------------- #
# worker process body
# --------------------------------------------------------------------------- #


def _supervised_worker_loop(
    worker_id: int,
    fn: Callable,
    task_q,
    result_q,
    wire_faults: tuple,
) -> None:
    """Body of one supervised worker process.

    Pulls ``(run_id, task_id, payload)`` messages off this worker's private
    task queue, applies any fault-injection specs due at the site, runs
    ``fn(payload)``, and posts ``(kind, run_id, task_id, worker_id, result,
    fired_fault_ids)`` to the shared result queue. Exceptions are reported
    as ``kind='error'`` with the exception type name and repr — the worker
    itself survives and keeps serving. ``None`` is the shutdown sentinel.
    """
    # A forked worker inherits the parent's Python-level signal handlers
    # (e.g. the pool's own shm-teardown handler), which close over parent
    # state — including locks another parent thread may have held at fork
    # time. Running them here can deadlock and make the worker survive
    # ``terminate()``. Workers answer signals with the default action.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    specs = faultinject.specs_from_wire(wire_faults)
    seq = 0
    while True:
        msg = task_q.get()
        if msg is None:
            return
        run_id, task_id, payload = msg
        fired: list[str] = []
        try:
            faultinject.apply_pre_faults(specs, worker_id, seq, fired)
            out = fn(payload)
            out = faultinject.apply_post_faults(specs, worker_id, seq, out, fired)
            result_q.put(("ok", run_id, task_id, worker_id, out, tuple(fired)))
        except BaseException as exc:  # noqa: BLE001 - worker must not die
            result_q.put((
                "error", run_id, task_id, worker_id,
                (type(exc).__name__, repr(exc)), tuple(fired),
            ))
        seq += 1


@dataclass
class _WorkerHandle:
    """Parent-side view of one worker slot (stable id across respawns)."""

    worker_id: int
    proc: Any = None
    task_q: Any = None
    assigned: set = field(default_factory=set)
    dead: bool = True
    strikes: int = 0

    def send(self, run_id: int, task_id: int, payload: Any) -> None:
        """Queue one task message for this worker."""
        self.task_q.put((run_id, task_id, payload))
        self.assigned.add(task_id)


@dataclass
class _Pending:
    """An in-flight task attempt: which worker owns it, when it expires."""

    worker_id: int
    deadline_ts: float


# --------------------------------------------------------------------------- #
# the supervised pool
# --------------------------------------------------------------------------- #


class SupervisedWorkerPool:
    """N worker processes with liveness supervision and fault recovery.

    Parameters
    ----------
    fn:
        The task function every worker runs (must be importable at module
        level for ``spawn`` start methods).
    num_workers:
        Worker slot count. Slots keep stable ids across respawns.
    config:
        :class:`ResilienceConfig`, or None to disable supervision entirely
        (plain blocking collection, errors raise — the pre-resilience
        semantics, kept for overhead baselines).
    fault_plan:
        Deterministic fault injection (:mod:`repro.core.faultinject`);
        an empty plan means production behaviour.

    Workers are spawned lazily on the first :meth:`run_tasks` call so pools
    that never dispatch (single-worker degenerate runs) cost nothing.
    """

    def __init__(
        self,
        fn: Callable,
        num_workers: int,
        *,
        config: ResilienceConfig | None = DEFAULT_RESILIENCE,
        fault_plan: faultinject.FaultPlan | None = None,
        mp_context=None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self._fn = fn
        self.num_workers = int(num_workers)
        self.config = config
        self.fault_plan = fault_plan if fault_plan is not None else faultinject.FaultPlan()
        self._ctx = mp_context if mp_context is not None else get_context()
        self._rng = random.Random(config.seed if config is not None else 0)
        self._handles: list[_WorkerHandle] = []
        self._result_q = None
        self._run_seq = 0
        self._closed = False
        # Serializes spawning against close(): a respawn that loses this
        # race would create a worker no close() sweep will ever see.
        self._lifecycle_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def started(self) -> bool:
        """Whether worker processes have been spawned yet."""
        return bool(self._handles)

    def alive_count(self) -> int:
        """Workers currently believed alive (after the last sweep)."""
        return sum(
            1 for h in self._handles
            if not h.dead and h.proc is not None and h.proc.is_alive()
        )

    def _spawn_into(self, handle: _WorkerHandle) -> None:
        """(Re)start the process behind a worker slot; raises on failure.

        Raises :class:`PoolClosedError` on a closed pool: a mid-run
        respawn racing a concurrent :meth:`close` (the teardown path
        terminating this run's workers is what *caused* the death) would
        otherwise orphan the fresh process forever.
        """
        with self._lifecycle_lock:
            if self._closed:
                raise PoolClosedError(
                    "SupervisedWorkerPool closed during respawn"
                )
            handle.task_q = self._ctx.SimpleQueue()
            handle.proc = self._ctx.Process(
                target=_supervised_worker_loop,
                args=(
                    handle.worker_id, self._fn, handle.task_q, self._result_q,
                    self.fault_plan.worker_wire(),
                ),
                daemon=True,
                name=f"repro-scaleout-{handle.worker_id}",
            )
            handle.proc.start()
            handle.dead = False
            handle.strikes = 0
            handle.assigned.clear()

    def ensure_started(self) -> None:
        """Spawn all workers on first use; heal dead slots between runs."""
        if self._closed:
            raise PoolClosedError("SupervisedWorkerPool is closed")
        if not self._handles:
            self._result_q = self._ctx.Queue()
            self._handles = [_WorkerHandle(worker_id=i) for i in range(self.num_workers)]
            for h in self._handles:
                self._spawn_into(h)
            return
        for h in self._handles:
            if h.proc is None or not h.proc.is_alive():
                add_count("fault.respawns")
                with trace_span("fault.respawn", worker=h.worker_id, phase="pre-run"):
                    self._spawn_into(h)

    def close(self) -> None:
        """Shut every worker down and release the queues (idempotent)."""
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
        for h in self._handles:
            if h.proc is not None and h.proc.is_alive():
                try:
                    h.task_q.put(None)
                except Exception:  # pragma: no cover - broken pipe on dead peer
                    pass
        for h in self._handles:
            if h.proc is None:
                continue
            h.proc.join(timeout=0.5)
            if h.proc.is_alive():
                h.proc.terminate()
                h.proc.join(timeout=0.5)
            if h.proc.is_alive():
                # A worker that survives SIGTERM (wedged in native code,
                # or mid-handler) must not outlive the pool: the leaked
                # process would hang interpreter exit on the
                # multiprocessing atexit join.
                h.proc.kill()
                h.proc.join(timeout=0.5)
            if h.task_q is not None:
                try:
                    h.task_q.close()
                except Exception:  # pragma: no cover - already closed
                    pass
        if self._result_q is not None:
            try:
                self._result_q.close()
            except Exception:  # pragma: no cover - already closed
                pass
        self._handles = []

    def __enter__(self) -> "SupervisedWorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # dispatch + supervision
    # ------------------------------------------------------------------ #

    def run_tasks(
        self,
        tasks: Sequence,
        *,
        task_nbytes: Sequence[int] | None = None,
        bytes_per_sec: float | None = None,
        rebuild: Callable[[int], Any] | None = None,
        validate: Callable[[int, Any], bool] | None = None,
        on_error: Callable[[int, str, str, SupervisionReport], None] | None = None,
        on_result: Callable[[int, Any], None] | None = None,
        on_retry: Callable[[int], None] | None = None,
        report: SupervisionReport | None = None,
        deadline_cap_s: float | None = None,
    ) -> list:
        """Execute every task, surviving worker failure; results by task id.

        ``rebuild(i)`` produces a fresh payload for a retried task (pools
        use it to pick up re-published shared-memory segment names);
        ``validate(i, result)`` rejects corrupted results (a rejection is
        retried like an error); ``on_error(i, exc_type, exc_repr, report)``
        lets the caller repair shared state (e.g. re-publish an unlinked
        input segment) before the retry fires.

        ``on_result(i, result)`` streams each accepted (validated) result
        to the caller the moment it arrives, before the remaining tasks
        finish — the scale-out pool feeds the chunk scoreboard with it.
        ``on_retry(i)`` fires whenever task ``i`` is scheduled for another
        attempt (error, corruption, deadline hedge, or worker death), so a
        streaming consumer can un-commit anything derived from a previous
        acceptance of that task. Results are still returned as a list at
        the end; the hooks are additive.

        ``deadline_cap_s`` clamps the modeled per-task deadline from above
        (floored at 50 ms so a nearly-expired request still gets a real
        attempt) — the serving layer passes the tightest remaining request
        slack in a batch so a straggler worker is hedged before the
        requests riding on it blow their deadlines.

        Raises :class:`DegradedExecution` when recovery is exhausted and
        :class:`PoolClosedError` after :meth:`close`.
        """
        if self._closed:
            raise PoolClosedError("SupervisedWorkerPool is closed")
        self.ensure_started()
        self._run_seq += 1
        run_id = self._run_seq
        if report is None:
            report = SupervisionReport()
        if self.config is None:
            return self._run_plain(run_id, list(tasks), on_result=on_result)
        return self._run_supervised(
            run_id, list(tasks),
            task_nbytes=task_nbytes, bytes_per_sec=bytes_per_sec,
            rebuild=rebuild, validate=validate, on_error=on_error,
            on_result=on_result, on_retry=on_retry,
            report=report, deadline_cap_s=deadline_cap_s,
        )

    def _run_plain(
        self,
        run_id: int,
        tasks: list,
        *,
        on_result: Callable[[int, Any], None] | None = None,
    ) -> list:
        """Supervision-disabled collection: blocking waits, errors raise."""
        n = len(tasks)
        for tid, payload in enumerate(tasks):
            self._handles[tid % len(self._handles)].send(run_id, tid, payload)
        results: list = [None] * n
        got = 0
        while got < n:
            try:
                kind, rid, tid, wid, payload, _fired = self._result_q.get(timeout=600.0)
            except Empty:
                raise RuntimeError(
                    "workers unresponsive for 600s with supervision disabled"
                ) from None
            if rid != run_id:
                continue  # stale message from an abandoned run
            self._handles[wid].assigned.discard(tid)
            if kind == "error":
                raise RuntimeError(f"worker task failed: {payload[0]}: {payload[1]}")
            results[tid] = payload
            got += 1
            if on_result is not None:
                on_result(tid, payload)
        return results

    def _pick_worker(self) -> _WorkerHandle | None:
        """Least-loaded live worker, or None when none are live."""
        best = None
        for h in self._handles:
            if h.dead or h.proc is None or not h.proc.is_alive():
                continue
            if best is None or len(h.assigned) < len(best.assigned):
                best = h
        return best

    def _run_supervised(
        self,
        run_id: int,
        tasks: list,
        *,
        task_nbytes: Sequence[int] | None,
        bytes_per_sec: float | None,
        rebuild: Callable[[int], Any] | None,
        validate: Callable[[int, Any], bool] | None,
        on_error: Callable[[int, str, str, SupervisionReport], None] | None,
        on_result: Callable[[int, Any], None] | None,
        on_retry: Callable[[int], None] | None,
        report: SupervisionReport,
        deadline_cap_s: float | None = None,
    ) -> list:
        cfg = self.config
        n = len(tasks)
        w = self.num_workers
        nbytes = list(task_nbytes) if task_nbytes is not None else [0] * n
        results: list = [None] * n
        done: set[int] = set()
        attempts = [0] * n
        pending: dict[int, _Pending] = {}
        deferred: list[list] = []  # [ready_ts, task_id]
        t0 = time.monotonic()
        max_respawns = (
            cfg.max_respawns if cfg.max_respawns is not None else 2 * w
        )
        quorum = max(1, math.ceil(cfg.quorum_fraction * w))

        def rel_now() -> float:
            return time.monotonic() - t0

        def degrade(reason: str) -> None:
            report.degraded = True
            report.degrade_reason = reason
            report.record("degrade", detail=reason, t_s=rel_now())
            add_count("fault.degraded_runs")
            raise DegradedExecution(reason)

        def dispatch(tid: int, payload: Any) -> None:
            h = self._pick_worker()
            if h is None:
                degrade("no live workers to dispatch to")
            h.send(run_id, tid, payload)
            d = cfg.deadline.deadline_s(nbytes[tid], bytes_per_sec)
            if deadline_cap_s is not None:
                d = max(0.05, min(d, deadline_cap_s))
            pending[tid] = _Pending(
                worker_id=h.worker_id,
                deadline_ts=time.monotonic() + d,
            )

        def retry(tid: int, why: str, worker: int = -1) -> None:
            attempts[tid] += 1
            report.retries += 1
            add_count("fault.retries")
            report.record(
                "retry", worker=worker, task=tid, attempt=attempts[tid],
                detail=why, t_s=rel_now(),
            )
            if attempts[tid] > cfg.retry.max_retries:
                degrade(
                    f"task {tid} exhausted {cfg.retry.max_retries} retries ({why})"
                )
            if on_retry is not None:
                on_retry(tid)
            deferred.append(
                [time.monotonic() + cfg.retry.delay_s(attempts[tid], self._rng), tid]
            )

        def mark_fault_fired(fault_id: str, worker: int, task: int) -> None:
            if self.fault_plan.mark_fired(fault_id):
                report.faults_fired += 1
                add_count("fault.injected")
                report.record(
                    "fault_fired", worker=worker, task=task, detail=fault_id,
                    t_s=rel_now(),
                )

        def handle_death(h: _WorkerHandle, why: str) -> None:
            h.dead = True
            exitcode = h.proc.exitcode if h.proc is not None else None
            report.worker_deaths += 1
            add_count("fault.worker_deaths")
            report.record(
                "worker_death", worker=h.worker_id,
                detail=f"{why}; exitcode={exitcode}", t_s=rel_now(),
            )
            # A death at a site where the plan schedules a kill is that
            # fault firing — mark it so respawned workers are not re-armed.
            for spec in self.fault_plan.match_worker_kind(h.worker_id, "kill"):
                mark_fault_fired(spec.fault_id, h.worker_id, -1)
            orphans = sorted(
                tid for tid, p in pending.items() if p.worker_id == h.worker_id
            )
            for tid in orphans:
                pending.pop(tid)
            h.assigned.clear()
            if report.respawns < max_respawns:
                report.respawns += 1
                add_count("fault.respawns")
                with trace_span("fault.respawn", worker=h.worker_id):
                    try:
                        self._spawn_into(h)
                    except OSError as exc:  # pragma: no cover - fork failure
                        report.record(
                            "respawn_failed", worker=h.worker_id,
                            detail=repr(exc), t_s=rel_now(),
                        )
                if not h.dead:
                    report.record(
                        "respawn", worker=h.worker_id, t_s=rel_now()
                    )
            if self.alive_count() < quorum:
                degrade(
                    f"live workers {self.alive_count()} below quorum {quorum}"
                )
            for tid in orphans:
                retry(tid, why, worker=h.worker_id)

        def expire(tid: int) -> None:
            p = pending.get(tid)
            if p is None:
                return
            h = self._handles[p.worker_id]
            report.deadline_expirations += 1
            add_count("fault.deadline_expired")
            report.record(
                "deadline", worker=p.worker_id, task=tid,
                attempt=attempts[tid], t_s=rel_now(),
            )
            h.strikes += 1
            if h.strikes >= cfg.max_deadline_strikes and h.proc.is_alive():
                # Presumed wedged: a delay fault that will never report its
                # firing dies with the process — mark it from the plan.
                for spec in self.fault_plan.match_worker_kind(h.worker_id, "delay"):
                    mark_fault_fired(spec.fault_id, h.worker_id, tid)
                h.proc.terminate()
                h.proc.join(timeout=1.0)
                handle_death(h, "terminated after repeated deadline strikes")
            else:
                # Hedge: leave the straggler running (its late result will
                # be dropped as stale) and re-dispatch elsewhere.
                pending.pop(tid)
                retry(tid, "deadline expired", worker=p.worker_id)

        for tid in range(n):
            dispatch(tid, tasks[tid])

        while len(done) < n:
            now = time.monotonic()
            if deferred:
                due = [d for d in deferred if d[0] <= now]
                if due:
                    deferred = [d for d in deferred if d[0] > now]
                    for _, tid in due:
                        payload = rebuild(tid) if rebuild is not None else tasks[tid]
                        dispatch(tid, payload)
            try:
                msg = self._result_q.get(timeout=cfg.poll_interval_s)
            except Empty:
                msg = None
            if msg is not None:
                kind, rid, tid, wid, payload, fired = msg
                for fault_id in fired:
                    mark_fault_fired(fault_id, wid, tid)
                handle = self._handles[wid]
                handle.assigned.discard(tid)
                handle.strikes = 0
                current = pending.get(tid)
                if rid == run_id and current is not None and current.worker_id == wid:
                    pending.pop(tid)
                    if kind == "ok":
                        if validate is not None and not validate(tid, payload):
                            report.corrupt_results += 1
                            add_count("fault.corrupt_results")
                            report.record(
                                "corrupt_result", worker=wid, task=tid,
                                t_s=rel_now(),
                            )
                            retry(tid, "result failed validation", worker=wid)
                        else:
                            results[tid] = payload
                            done.add(tid)
                            if on_result is not None:
                                on_result(tid, payload)
                    else:
                        exc_type, exc_repr = payload
                        report.worker_errors += 1
                        add_count("fault.worker_errors")
                        report.record(
                            "worker_error", worker=wid, task=tid,
                            detail=f"{exc_type}: {exc_repr}", t_s=rel_now(),
                        )
                        if on_error is not None:
                            on_error(tid, exc_type, exc_repr, report)
                        retry(tid, exc_type, worker=wid)
                # else: stale or duplicate result from an abandoned attempt.
            # Liveness probe + exitcode sweep.
            for h in self._handles:
                if not h.dead and h.proc is not None and not h.proc.is_alive():
                    handle_death(h, "worker process died")
            # Deadline sweep.
            now = time.monotonic()
            overdue = [
                tid for tid, p in pending.items() if p.deadline_ts <= now
            ]
            for tid in overdue:
                expire(tid)
        return results
