"""Convergence-aware lane collapse: dedupe speculative lanes mid-chunk.

Spec-k execution pays ``k×`` the transitions of a sequential run, yet on
high-convergence machines (HTML, Huffman — the paper's Figures 5/6) most
lanes of a chunk land in the *same* state within a short prefix and stay
identical forever: transition functions can merge states but never split
them, so once two lanes of one chunk coincide they agree for every
remaining symbol. Mytkowicz et al. (the paper's [18]) coalesce converged
enumeration lanes for exactly this reason; the speculative DFA membership
test in PAPERS.md leans on fast convergence for speculation success.

This module makes that observation a runtime optimization:

* :func:`collapse_rows` — one vectorized duplicate scan over the
  ``(num_chunks, w)`` state matrix: each row is compressed to its unique
  representatives (global width = the widest row) plus a reconstruction
  map that recovers the full ``(num_chunks, k)`` ending matrix at the end.
* :class:`LaneCollapser` — the mutable collapse state threaded through an
  advancement loop. Every ``cadence`` steps it re-scans and repacks the
  matrix into *width + spill rows* storage: the width that minimizes
  total elements, with straggler chunks' overflow lanes spilled into
  extra rows routed to their chunk's symbols via a row map — so one
  slow-converging chunk cannot hold all others at full width. When every
  chunk is down to a single distinct lane the run drops to ``(C, 1)``
  advancement. A scan that finds nothing to collapse backs off
  geometrically, bounding the overhead on never-converging machines
  (Div7) to a vanishing fraction of the stepping work.
* :func:`probe_cadence` / :func:`resolve_collapse` — choose the scan
  cadence by simulating ``k`` probe lanes over a mid-input sample until
  they first shrink (the measured variant, analogous to kernel
  autotuning, lives in :func:`repro.core.autotune.choose_collapse`).
* :func:`converged_chunks` — the downstream contract: a chunk whose
  speculation row *covers* the look-back image (the true boundary state is
  guaranteed to be among the speculated states) and whose ``k`` lanes all
  converged produces a **constant** ``spec -> end`` map, so the merges can
  short-circuit the O(k²) semi-join for that side (any achievable incoming
  state matches) and delayed re-execution can never be triggered by it.

Soundness of the merge short-circuit: a run that reaches a chunk boundary
through the actual input passes through that chunk's look-back window, so
its boundary state lies in the window's image; coverage means every image
state is speculated, convergence means they all map to one ending state —
hence any *achievable* incoming state is a guaranteed hit with a known
answer. Entries composed for non-achievable speculative states may be
fabricated, but the entry consulted for the final answer (and every probe
of the fix-up descent) is always keyed by a true — achievable — state, so
the functional result is bit-identical to the reference. Property tests in
``tests/core/test_convergence.py`` assert exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fsm.dfa import DFA

__all__ = [
    "CollapseConfig",
    "LaneCollapser",
    "collapse_rows",
    "converged_chunks",
    "coverage_mask",
    "probe_cadence",
    "resolve_collapse",
    "DEFAULT_CADENCE",
    "CADENCE_BACKOFF",
]

#: Scan cadence used when no probe information is available ("on" mode).
DEFAULT_CADENCE = 32

#: Geometric back-off factor applied after a scan that collapsed nothing.
CADENCE_BACKOFF = 2

#: Cadence bounds for the probe: scanning more often than every 8 steps
#: cannot pay for itself (a scan costs about one step's gather plus a
#: sort); beyond 512 steps the savings of a late collapse are marginal.
_MIN_CADENCE = 8
_MAX_CADENCE = 512


@dataclass(frozen=True)
class CollapseConfig:
    """Resolved configuration of the lane-collapse layer for one run.

    ``cadence`` is the number of advancement steps between duplicate
    scans; ``backoff`` multiplies it after every scan that finds nothing
    to collapse (never-converging machines pay a geometrically vanishing
    scan cost). ``enabled=False`` is the explicit off switch carried by
    the resolved form of ``collapse="off"``.
    """

    enabled: bool = True
    cadence: int = DEFAULT_CADENCE
    backoff: int = CADENCE_BACKOFF

    def __post_init__(self) -> None:
        if self.cadence < 1:
            raise ValueError(f"cadence must be >= 1, got {self.cadence}")
        if self.backoff < 1:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")

    @property
    def label(self) -> str:
        """Human-readable form used by ``EngineConfig``."""
        return f"on(W={self.cadence})" if self.enabled else "off"


def collapse_rows(
    S: np.ndarray,
) -> tuple[np.ndarray, np.ndarray] | None:
    """One duplicate scan over a ``(n, w)`` state matrix.

    Returns ``(compressed, recon)`` where ``compressed`` is ``(n, u)``
    with ``u`` the widest row's distinct-state count and
    ``recon[r, j]`` the compressed column holding row ``r``'s lane ``j``
    (``S[r, j] == compressed[r, recon[r, j]]``). Rows narrower than ``u``
    are padded with their own first representative, so padding lanes
    always hold valid states (they merely duplicate work). Returns None
    when no row has a duplicate (``u == w``) — the caller backs off.
    """
    n, w = S.shape
    if w <= 1:
        return None
    order = np.argsort(S, axis=1, kind="stable")
    sorted_S = np.take_along_axis(S, order, axis=1)
    boundary = np.ones((n, w), dtype=bool)
    boundary[:, 1:] = sorted_S[:, 1:] != sorted_S[:, :-1]
    group = np.cumsum(boundary, axis=1) - 1  # (n, w) compressed column ids
    u = int(group[:, -1].max()) + 1
    if u >= w:
        return None
    rows = np.arange(n)[:, None]
    compressed = np.repeat(sorted_S[:, :1], u, axis=1)
    compressed[rows, group] = sorted_S  # duplicate writes carry equal values
    recon = np.empty((n, w), dtype=np.intp)
    np.put_along_axis(recon, order, group, axis=1)
    return compressed, recon


#: A scan must shrink physical storage by at least this factor to count
#: as progress; smaller improvements trigger the cadence back-off (the
#: rebuild would cost more than it saves).
_SCAN_GAIN = 0.97


class LaneCollapser:
    """Collapse state threaded through one chunk-advancement loop.

    Call :meth:`step` after every symbol (or multi-symbol) advancement
    with the current state matrix; it returns the (possibly smaller)
    storage matrix to continue with. Call :meth:`expand` on the final
    matrix to recover the full ``(n, k)`` ending-state layout.

    Storage layout — *width + spill rows*, so one straggler chunk cannot
    hold the whole matrix at full width (convergence is typically heavily
    skewed: 255 of 256 HTML chunks sit at 3 distinct lanes while one
    keeps all 8 alive for thousands of symbols):

    * the matrix is ``(n + s, w)`` where ``w`` is the storage width that
      minimizes total elements ``(n + spill_rows(w)) * w``;
    * row ``r < n`` holds chunk ``r``'s first ``min(u_r, w)`` distinct
      lanes (padded with its first representative);
    * a chunk with ``u_r > w`` distinct lanes *spills* its overflow into
      ``ceil((u_r - w) / w)`` extra rows appended below — each mapped
      back to its chunk through :attr:`rowmap`, which advancement loops
      apply to the per-step symbol vector (``syms[collapser.rowmap]``).

    Spill rows ride in the same gather as everyone else — no extra
    dispatch — and :meth:`expand` recovers every original lane through a
    flat reconstruction index. :attr:`fully_converged` reports the
    single-lane, zero-spill fast path.

    The hot-loop contract avoids a Python call per step: the loop keeps a
    running count of consumed symbols and calls :meth:`scan` only when it
    reaches :attr:`next_scan` (``inf`` once fully converged, so converged
    runs pay a single integer compare per step)::

        consumed = 0
        for ...:
            S = table[syms[:, None], S]
            consumed += m
            if consumed >= collapser.next_scan:
                S = collapser.scan(S, consumed)

    Counters (read after the loop):

    * ``scans`` — duplicate scans performed;
    * ``lanes_collapsed`` — storage lane slots eliminated, summed over
      scans as ``elements_before - elements_after``.
    """

    def __init__(self, k: int, config: CollapseConfig) -> None:
        self.k = int(k)
        self.config = config
        self._recon: np.ndarray | None = None  # (n, k) flat into storage
        self.rowmap: np.ndarray | None = None  # (n + s,) chunk of each row
        self._cadence = int(config.cadence)
        self.next_scan: float = float(self._cadence)
        self.scans = 0
        self.lanes_collapsed = 0
        self.width = int(k)
        self.spill_rows = 0

    @property
    def fully_converged(self) -> bool:
        """True once every chunk advanced at a single distinct lane."""
        return self.width == 1 and self.spill_rows == 0

    def scan(self, S: np.ndarray, consumed: int) -> np.ndarray:
        """Scan for duplicate lanes and repack; called at :attr:`next_scan`.

        ``consumed`` is the loop's running count of input symbols
        advanced so far — the scan schedule is kept in absolute symbol
        counts so multi-symbol stride kernels stay calibrated.
        """
        self.scans += 1
        full = self.expand(S)
        packed = _pack_lanes(full)
        if packed is None:
            self._cadence *= self.config.backoff
            self.next_scan = consumed + self._cadence
            return S
        storage, rowmap, recon = packed
        if storage.size >= S.size * _SCAN_GAIN:
            # Not enough shrink to pay for the rebuild — keep the current
            # layout and scan less often.
            self._cadence *= self.config.backoff
            self.next_scan = consumed + self._cadence
            return S
        self.lanes_collapsed += S.size - storage.size
        n = full.shape[0]
        self.width = storage.shape[1]
        self.spill_rows = storage.shape[0] - n
        self._recon = recon
        self.rowmap = rowmap if storage.shape[0] > n else None
        self.next_scan = (
            float("inf") if self.fully_converged else consumed + self._cadence
        )
        return storage

    def expand(self, S: np.ndarray) -> np.ndarray:
        """Recover the full ``(n, k)`` matrix from the storage matrix."""
        if self._recon is None:
            return S
        return S.ravel()[self._recon]


def _pack_lanes(
    S: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """Pack a full ``(n, k)`` matrix into width-plus-spill storage.

    Returns ``(storage, rowmap, recon)`` — the ``(n + s, w)`` storage
    matrix at the element-count-optimal width ``w``, the chunk index of
    every storage row, and the ``(n, k)`` flat reconstruction index with
    ``S[r, j] == storage.ravel()[recon[r, j]]`` — or None when no row
    has a duplicate lane (nothing to pack).
    """
    n, k = S.shape
    if k <= 1:
        return None
    order = np.argsort(S, axis=1, kind="stable")
    sorted_S = np.take_along_axis(S, order, axis=1)
    boundary = np.ones((n, k), dtype=bool)
    boundary[:, 1:] = sorted_S[:, 1:] != sorted_S[:, :-1]
    group = np.cumsum(boundary, axis=1) - 1  # (n, k) distinct-lane ids
    u_r = group[:, -1] + 1  # distinct lanes per row
    if int(u_r.max()) >= k:
        return None
    # Storage width minimizing total elements (n + spill_rows(w)) * w;
    # a spill row carries up to w overflow lanes of one chunk.
    best_w, best_cost = k, n * k
    for w in range(1, int(u_r.max()) + 1):
        spill = int(((np.maximum(u_r - w, 0) + w - 1) // w).sum())
        cost = (n + spill) * w
        if cost < best_cost:
            best_w, best_cost = w, cost
    w = best_w
    spill_per = (np.maximum(u_r - w, 0) + w - 1) // w
    s = int(spill_per.sum())
    spill_base = np.cumsum(spill_per) - spill_per  # exclusive prefix
    rowmap = np.concatenate(
        [np.arange(n, dtype=np.intp), np.repeat(np.arange(n, dtype=np.intp), spill_per)]
    )
    # Every storage row starts padded with its chunk's first representative
    # (padding lanes duplicate work but always hold valid states).
    storage = np.ascontiguousarray(sorted_S[rowmap, 0:1]).repeat(w, axis=1)
    # Scatter each distinct lane's representative to its storage slot.
    rows = np.repeat(np.arange(n), k)[boundary.ravel()]
    g = group.ravel()[boundary.ravel()]
    main = g < w
    srow = np.where(main, rows, n + spill_base[rows] + (g - w) // w)
    scol = np.where(main, g, (g - w) % w)
    storage[srow, scol] = sorted_S.ravel()[boundary.ravel()]
    # Reconstruction: original lane j of row r lives where its group went.
    g_lane = np.empty((n, k), dtype=np.int64)
    np.put_along_axis(g_lane, order, group, axis=1)
    lane_main = g_lane < w
    rr = np.arange(n, dtype=np.int64)[:, None]
    lrow = np.where(lane_main, rr, n + spill_base[rr] + (g_lane - w) // w)
    lcol = np.where(lane_main, g_lane, (g_lane - w) % w)
    recon = lrow * w + lcol
    return storage, rowmap, recon


def coverage_mask(M: np.ndarray, spec: np.ndarray, num_states: int) -> np.ndarray:
    """Which chunks' speculation rows cover their look-back image.

    ``M`` is the look-back propagation matrix (``M[c, q]`` = boundary
    state reached from pre-window state ``q``); ``spec`` the chosen
    ``(n, k)`` speculation rows. ``covered[c]`` is True when every state
    in ``M[c]``'s image appears in ``spec[c]`` — the true boundary state
    is then *guaranteed* to be speculated, because any run arriving at
    the boundary through the actual input traverses the window.
    """
    n = M.shape[0]
    rows = np.repeat(np.arange(n), M.shape[1])
    image = np.zeros((n, num_states), dtype=bool)
    image[rows, M.ravel()] = True
    spec_mask = np.zeros((n, num_states), dtype=bool)
    spec_mask[np.repeat(np.arange(n), spec.shape[1]), spec.ravel()] = True
    return ~(image & ~spec_mask).any(axis=1)


def converged_chunks(
    end: np.ndarray,
    covered: np.ndarray | None,
    valid: np.ndarray | None = None,
) -> np.ndarray:
    """Per-chunk convergence flags for the merge short-circuit.

    A chunk is *converged* when its speculation row covers the look-back
    image (``covered``), every entry is valid, and all ``k`` ending
    states coincide — its map is then a total constant over achievable
    incoming states and the merges may skip the semi-join against it.
    """
    constant = (end == end[:, :1]).all(axis=1)
    if valid is not None:
        constant &= valid.all(axis=1)
    if covered is None:
        return np.zeros(end.shape[0], dtype=bool)
    return covered & constant


#: Longest horizon the cadence probe simulates before declaring the
#: machine non-converging (a scan cadence beyond this cannot pay off).
_PROBE_HORIZON = 512

#: Forward steps used to concentrate the all-states front into the hot
#: set the probe lanes start from (mirrors look-back speculation).
_PROBE_WARMUP = 8


def probe_cadence(
    dfa: DFA,
    inputs: np.ndarray,
    *,
    k: int,
    horizon: int = _PROBE_HORIZON,
) -> int | None:
    """Choose a scan cadence from a cheap lane-convergence probe.

    Simulates exactly what the collapser will see: ``k`` lanes seeded
    from the machine's hot states (the survivors of a short all-states
    warm-up over a mid-input sample, the same concentration look-back
    speculation exploits) are stepped forward, and the cadence is the
    step at which the lane set *first shrinks*. Partial convergence
    counts — an 8-lane matrix that drops to 4 persistent survivors
    (the HTML tokenizer's raw-text modes) halves the gather volume even
    though it never reaches a single lane, so the probe must not wait
    for full convergence. Returns None (collapse not worth enabling)
    when the lanes never shrink within ``horizon`` steps, e.g. the Div7
    permutation machine. Probe cost is one ``O(warmup)`` all-states pass
    plus ``O(horizon)`` gathers of ``k`` elements — preprocessing on the
    scale of the look-back tables, not counted execution work.
    """
    inputs = np.asarray(inputs)
    if inputs.size == 0 or k <= 1:
        return None
    # Probe away from the input start: position-0 prefixes can be
    # unrepresentative (file headers); chunk boundaries live mid-stream.
    lo = min(inputs.size // 2, max(0, inputs.size - (horizon + _PROBE_WARMUP)))
    sample = inputs[lo:]
    table = dfa.table
    front = np.arange(dfa.num_states, dtype=np.int32)
    for a in sample[:_PROBE_WARMUP]:
        front = table[a, front]
    hot = np.unique(front)
    lanes = np.resize(hot, max(1, min(k, dfa.num_states))).astype(np.int32)
    width = np.unique(lanes).size
    if width <= 1:
        return _MIN_CADENCE
    for i, a in enumerate(sample[_PROBE_WARMUP : _PROBE_WARMUP + horizon]):
        lanes = table[a, lanes]
        # Lane sets only shrink, so checking every 4th step loses at most
        # 3 steps of cadence precision and quarters the probe cost.
        if (i & 3) == 3 and len(set(lanes.tolist())) < width:
            return int(min(max(i + 1, _MIN_CADENCE), _MAX_CADENCE))
    return None


def resolve_collapse(
    mode: "str | CollapseConfig | None",
    dfa: DFA,
    inputs: np.ndarray,
    *,
    k: int,
) -> CollapseConfig | None:
    """Resolve the engine-level ``collapse`` argument.

    ``"off"``/None disable the layer; ``"on"`` enables it at the default
    cadence; ``"auto"`` probes the machine first and disables collapse
    when the probe finds no convergence horizon (the scans would be pure
    overhead — the merges still exploit any convergence that happens).
    An explicit :class:`CollapseConfig` passes through unchanged.
    """
    if mode is None:
        return None
    if isinstance(mode, CollapseConfig):
        return mode if mode.enabled else None
    if mode == "off":
        return None
    if mode == "on":
        return CollapseConfig()
    if mode == "auto":
        if k <= 1:
            return None
        cadence = probe_cadence(dfa, inputs, k=k)
        if cadence is None:
            return None
        return CollapseConfig(cadence=cadence)
    raise ValueError(
        f"collapse must be 'auto', 'on', 'off', or a CollapseConfig, got {mode!r}"
    )
