"""Look-back speculation (Sections 2.1 and 4.1 of the paper).

For each chunk, inspect the last ``lookback`` symbols *preceding* the chunk
and propagate **every** state through them: ``M[c, q]`` is the state the
machine would be in at the chunk boundary had it been in ``q`` at the start
of the window. The speculated states are then the ``k`` states with the
highest *posterior* mass

    P(boundary state = s | suffix)  ∝  Σ_q  prior(q) · [M[c, q] = s]

where the prior is the machine's long-run occupancy (measured over an input
sample, or the uniform distribution as a fallback). This is the paper's
look-back strategy combined with the probabilistic ranking of principled
speculation [Zhao et al.]: when the window uniquely determines the state
(HTML after ``"<div"``), the posterior collapses onto it; when the machine
never converges (Div7), the posterior stays flat and the hit rate degrades
to ``k/7``, exactly as Figure 6 reports.

All chunks are speculated at once: the propagation is one
``(num_chunks, num_states)`` gather per look-back step.
"""

from __future__ import annotations

import numpy as np

from repro.fsm.analysis import (
    dynamic_state_frequency_sampled,
    stationary_distribution,
)
from repro.fsm.dfa import DFA
from repro.core.types import ExecStats
from repro.workloads.chunking import ChunkPlan

__all__ = ["state_prior", "state_ranking", "speculate", "enumerative_spec"]


def state_prior(
    dfa: DFA,
    sample: np.ndarray | None = None,
    *,
    symbol_probs: np.ndarray | None = None,
) -> np.ndarray:
    """Long-run occupancy probability of each state.

    With a ``sample`` of input symbols, measures occupancy over the sample
    (plus a small smoothing term so unseen states keep a nonzero prior);
    otherwise uses the stationary distribution of the DFA under
    ``symbol_probs`` (uniform by default).
    """
    if sample is not None:
        freq = dynamic_state_frequency_sampled(dfa, sample).astype(np.float64)
        freq += 0.5  # Laplace smoothing: unseen states stay speculable
        return freq / freq.sum()
    return stationary_distribution(dfa, symbol_probs)


def state_ranking(
    dfa: DFA,
    sample: np.ndarray | None = None,
    *,
    symbol_probs: np.ndarray | None = None,
    prior: np.ndarray | None = None,
) -> np.ndarray:
    """Priority of each state (0 = most likely). Derived from the prior.

    An explicit ``prior`` (e.g. the learned occupancy from
    :class:`repro.core.predictor.HistoryPredictor`) takes precedence over
    the sample/stationary estimate.
    """
    if prior is None:
        prior = state_prior(dfa, sample, symbol_probs=symbol_probs)
    prior = np.asarray(prior, dtype=np.float64)
    if prior.shape != (dfa.num_states,):
        raise ValueError(
            f"prior must have shape ({dfa.num_states},), got {prior.shape}"
        )
    order = np.argsort(-prior, kind="stable")
    rank = np.empty(dfa.num_states, dtype=np.int64)
    rank[order] = np.arange(dfa.num_states)
    return rank


def enumerative_spec(dfa: DFA, num_chunks: int) -> np.ndarray:
    """spec-N speculation: every chunk enumerates all states."""
    return np.tile(np.arange(dfa.num_states, dtype=np.int32), (num_chunks, 1))


def speculate(
    dfa: DFA,
    inputs: np.ndarray,
    plan: ChunkPlan,
    k: int,
    *,
    lookback: int = 8,
    prior: np.ndarray | None = None,
    ranking: np.ndarray | None = None,
    stats: ExecStats | None = None,
    return_coverage: bool = False,
):
    """Speculated starting states, shape ``(num_chunks, k)``.

    Chunk 0's first entry is the true initial state (it is never a guess).
    Within each row states are distinct, ordered by decreasing posterior.
    ``ranking`` only breaks ties and orders the zero-posterior padding; it
    defaults to the prior's ordering.

    With ``return_coverage=True`` returns ``(spec, covered)`` where
    ``covered[c]`` flags chunks whose speculation row contains the *whole*
    image of the look-back window
    (:func:`repro.core.convergence.coverage_mask`): the true boundary
    state is then guaranteed to be among the speculated states, which is
    what lets the merges treat converged chunks as guaranteed hits. Chunk
    0 is always covered — its only achievable incoming state is
    ``dfa.start``, which is always speculated.
    """
    n_states = dfa.num_states
    if not 1 <= k <= n_states:
        raise ValueError(f"k must be in [1, {n_states}], got {k}")
    if lookback < 0:
        raise ValueError(f"lookback must be >= 0, got {lookback}")
    if prior is None:
        prior = state_prior(dfa)
    prior = np.asarray(prior, dtype=np.float64)
    if prior.shape != (n_states,):
        raise ValueError(f"prior must have shape ({n_states},), got {prior.shape}")
    if ranking is None:
        order = np.argsort(-prior, kind="stable")
        ranking = np.empty(n_states, dtype=np.int64)
        ranking[order] = np.arange(n_states)
    ranking = np.asarray(ranking, dtype=np.int64)
    if ranking.shape != (n_states,):
        raise ValueError(f"ranking must have shape ({n_states},), got {ranking.shape}")

    n = plan.num_chunks
    inputs = np.asarray(inputs)
    table = dfa.table

    # Propagate every state through each chunk's look-back window.
    M = np.tile(np.arange(n_states, dtype=np.int32), (n, 1))
    starts = plan.starts
    consumed = 0
    if lookback > 0 and n > 1:
        window = np.minimum(lookback, starts)  # clip at the input start
        for j in range(int(window.max())):
            active = window > j
            pos = starts[active] - window[active] + j
            syms = inputs[pos]
            M[active] = table[syms[:, None], M[active]]
            consumed += int(active.sum())
    if stats is not None:
        stats.lookback_symbols += consumed

    # Posterior over boundary states: prior mass transported by the window.
    posterior = np.zeros((n, n_states), dtype=np.float64)
    rows = np.repeat(np.arange(n), n_states)
    np.add.at(posterior, (rows, M.ravel()), np.tile(prior, n))

    # Score: possible states by decreasing posterior (rank as an epsilon
    # tie-break), impossible states after them by global rank — they pad
    # rows whose posterior support is narrower than k.
    score = np.where(
        posterior > 0.0,
        -posterior + ranking[None, :] * 1e-12,
        1.0 + ranking[None, :],
    )
    top = np.argpartition(score, kth=k - 1, axis=1)[:, :k]
    top_scores = np.take_along_axis(score, top, axis=1)
    order = np.argsort(top_scores, axis=1, kind="stable")
    spec = np.take_along_axis(top, order, axis=1).astype(np.int32)

    # Chunk 0 starts from the true initial state, padded best-first.
    row0 = [dfa.start] + [
        int(s) for s in np.argsort(ranking, kind="stable") if int(s) != dfa.start
    ]
    spec[0] = np.asarray(row0[:k], dtype=np.int32)
    if not return_coverage:
        return spec
    from repro.core.convergence import coverage_mask

    covered = coverage_mask(M, spec, n_states)
    # Chunk 0's achievable incoming state is exactly dfa.start == spec[0, 0].
    covered[0] = True
    return spec, covered
