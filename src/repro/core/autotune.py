"""Cost-model-driven selection of the speculation width k and the kernel.

The paper's stated future work: "we will develop a cost model, which
considers the properties of the FSMs, the architecture of GPUs and
property of the input data so that we can decide the optimal value of k".
This module implements exactly that on top of the reproduction's pieces:

1. **probe** — run the engine on a small prefix of the input for each
   candidate k (the probe measures the real speculation success rate and
   re-execution profile for this machine *and* this input);
2. **project** — scale the counted statistics to the full input size;
3. **price** — evaluate the device cost model and pick the argmax.

Because success rates depend on the FSM and the look-back (not on input
length), the probe's rates transfer to the full input, which is what makes
the probe sound. Property tests check that the tuner's choice is never
more than a small factor worse than exhaustively measuring every k.

:func:`choose_kernel` applies the same probe-then-pick discipline to the
stepping-kernel axis (:mod:`repro.core.kernels`): the static
:func:`repro.core.kernels.select_kernel` cost model is cheap but
machine-agnostic, so the tuner *measures* each eligible kernel on a probe
slice of the real input and picks the fastest — table build time is
reported separately because it amortizes across runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.engine import run_speculative
from repro.fsm.dfa import DFA
from repro.gpu.cost import CostModel
from repro.gpu.device import DeviceSpec, TESLA_V100

__all__ = [
    "KChoice",
    "KernelChoice",
    "CollapseChoice",
    "BackendChoice",
    "RouteChoice",
    "choose_k",
    "choose_kernel",
    "choose_collapse",
    "choose_backend",
    "choose_route",
    "candidate_ks",
]


@dataclass(frozen=True)
class KChoice:
    """Outcome of the k auto-tuner."""

    k: int | None  # None = spec-N
    modeled_speedup: float
    per_k: dict  # candidate -> (modeled speedup, success rate)

    @property
    def label(self) -> str:
        """Human-readable spec label."""
        return "spec-N" if self.k is None else f"spec-{self.k}"


def candidate_ks(num_states: int, *, max_k: int = 32) -> list[int | None]:
    """Default candidate grid: powers of two up to the state count, + spec-N."""
    ks: list[int | None] = []
    k = 1
    while k < min(num_states, max_k + 1):
        ks.append(k)
        k *= 2
    ks.append(None)  # spec-N
    return ks


def choose_k(
    dfa: DFA,
    inputs: np.ndarray,
    *,
    num_blocks: int = 80,
    threads_per_block: int = 256,
    lookback: int = 16,
    device: DeviceSpec = TESLA_V100,
    cpu_transition_ns: float | None = None,
    probe_items: int = 1 << 18,
    candidates: list[int | None] | None = None,
    merge: str = "parallel",
    target_items: int | None = None,
) -> KChoice:
    """Pick the spec width that maximizes modeled speedup on ``device``.

    Runs a probe execution per candidate on an input prefix, projects the
    counted statistics to ``target_items`` (default: the full input
    length), and prices them. The probe cost is
    O(len(candidates) * probe_items) actual work.
    """
    inputs = np.asarray(inputs)
    if inputs.size == 0:
        raise ValueError("cannot tune k on an empty input")
    probe = inputs[: min(probe_items, inputs.size)]
    if candidates is None:
        candidates = candidate_ks(dfa.num_states)
    # Candidates at or above the state count are all spec-N: normalize and
    # deduplicate so the report does not show a misleading finite k.
    seen: set = set()
    normalized: list[int | None] = []
    for k in candidates:
        k_norm = None if (k is None or k >= dfa.num_states) else k
        if k_norm not in seen:
            seen.add(k_norm)
            normalized.append(k_norm)
    candidates = normalized
    if target_items is None:
        target_items = int(inputs.size)
    model = CostModel(
        device=device,
        **(
            {"cpu_transition_ns": cpu_transition_ns}
            if cpu_transition_ns is not None
            else {}
        ),
    )
    per_k: dict = {}
    best: tuple[int | None, float] = (1, -1.0)
    for k in candidates:
        result = run_speculative(
            dfa, probe, k=k, num_blocks=num_blocks,
            threads_per_block=threads_per_block, merge=merge,
            lookback=lookback, device=device, price=False,
        )
        projected = result.stats.project(int(target_items))
        timing = model.price(
            projected,
            num_blocks=num_blocks,
            threads_per_block=threads_per_block,
            merge=merge,
            layout_transformed=True,
        )
        per_k[k] = (timing.speedup, result.stats.success_rate)
        if timing.speedup > best[1]:
            best = (k, timing.speedup)
    return KChoice(k=best[0], modeled_speedup=best[1], per_k=per_k)


@dataclass(frozen=True)
class KernelChoice:
    """Outcome of the stepping-kernel auto-tuner.

    ``measured_s`` maps each candidate kernel to its best measured
    execution time on the probe (table build excluded — it is one-time and
    amortizes); ``build_s`` maps stride kernels to their table build cost.
    ``modeled_s`` carries the static cost model's predictions for the same
    candidates so benchmarks can report model-vs-measurement drift.
    """

    kernel: str
    measured_s: dict
    build_s: dict
    modeled_s: dict
    probe_items: int

    @property
    def speedup_vs_lockstep(self) -> float:
        """Measured probe speedup of the chosen kernel over lockstep."""
        base = self.measured_s.get("lockstep")
        if not base:
            return 1.0
        return base / self.measured_s[self.kernel]


def choose_kernel(
    dfa: DFA,
    inputs: np.ndarray,
    *,
    num_chunks: int = 4096,
    k: int = 4,
    lookback: int = 8,
    probe_items: int = 1 << 16,
    repeats: int = 3,
    candidates: tuple[str, ...] = ("lockstep", "stride2", "stride4"),
    table_budget_bytes: int | None = None,
) -> KernelChoice:
    """Measure every eligible kernel on a probe and pick the fastest.

    Each candidate executes the same speculated chunk plan over a prefix
    of ``inputs``; the reported time is the best of ``repeats`` runs of
    the steady-state stepping loop only (compaction, packing, and stride
    tables are built outside the timed region — they are either one-time
    or already amortized by the caller's layout transform). The lockstep
    candidate is timed through the incumbent
    :func:`repro.core.local.process_chunks` so the comparison is against
    the real production path, not a reimplementation.

    Kernel throughput is input-distribution-dependent only through memory
    effects (gather locality), so a prefix probe transfers to the full
    input the same way the k-tuner's success rates do.
    """
    from repro.core.kernels import (
        DEFAULT_TABLE_BUDGET_BYTES,
        KERNELS,
        _predict_costs,
        advance_matrix,
        pack_stride,
        plan_kernel,
    )
    from repro.core.local import process_chunks
    from repro.core.lookback import speculate
    from repro.workloads.chunking import plan_chunks, transform_layout

    if table_budget_bytes is None:
        table_budget_bytes = DEFAULT_TABLE_BUDGET_BYTES
    inputs = np.asarray(inputs)
    if inputs.size == 0:
        raise ValueError("cannot tune the kernel on an empty input")
    probe = np.ascontiguousarray(inputs[: min(probe_items, inputs.size)])
    plan = plan_chunks(probe.size, num_chunks)
    k_eff = min(int(k), dfa.num_states)
    spec = (
        speculate(dfa, probe, plan, k_eff, lookback=lookback)
        if k_eff < dfa.num_states
        else np.tile(np.arange(dfa.num_states, dtype=np.int32), (num_chunks, 1))
    )
    transformed = transform_layout(probe, plan)

    measured: dict = {}
    build: dict = {}
    for name in candidates:
        if name not in KERNELS:
            raise ValueError(f"unknown kernel candidate {name!r}")
        if name == "lockstep":
            def runner():
                return process_chunks(dfa, probe, plan, spec, transformed=transformed)
        elif name == "scalar":
            kplan = plan_kernel(
                dfa, chunk_len=plan.max_len, num_chunks=num_chunks, k=k_eff,
                kernel="scalar", table_budget_bytes=table_budget_bytes,
            )
            build[name] = kplan.build_s

            def runner(kp=kplan):
                from repro.core.kernels import process_chunks_kernel

                return process_chunks_kernel(dfa, probe, plan, spec, kp)
        else:
            m = KERNELS[name].stride
            try:
                kplan = plan_kernel(
                    dfa, chunk_len=plan.max_len, num_chunks=num_chunks,
                    k=k_eff, kernel=name, table_budget_bytes=table_budget_bytes,
                )
            except ValueError:
                continue  # stride table over budget: ineligible
            build[name] = kplan.build_s
            cls = kplan.compaction.remap(probe)
            packed = pack_stride(cls, plan, m, kplan.compaction.num_classes)

            def runner(kp=kplan, pk=packed):
                return advance_matrix(kp, pk, spec)
        best = float("inf")
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            runner()
            best = min(best, time.perf_counter() - t0)
        measured[name] = best

    from repro.fsm.alphabet import compact_alphabet

    comp = compact_alphabet(dfa.table)
    modeled = _predict_costs(
        comp.num_classes, dfa.num_states, plan.max_len, num_chunks, k_eff,
        table_budget_bytes=table_budget_bytes,
    )
    chosen = min(measured, key=measured.get)  # type: ignore[arg-type]
    return KernelChoice(
        kernel=chosen,
        measured_s=measured,
        build_s=build,
        modeled_s={n: modeled[n] for n in measured if n in modeled},
        probe_items=int(probe.size),
    )


@dataclass(frozen=True)
class CollapseChoice:
    """Outcome of the convergence-layer auto-tuner.

    ``measured_s`` maps each candidate's label (``"off"``,
    ``"on(W=32)"``, ...) to its best measured local-processing time on the
    probe. ``probe_cadence`` carries what the cheap analytic probe
    (:func:`repro.core.convergence.probe_cadence`) would have picked, so
    benchmarks can report measured-vs-probe drift.
    """

    config: "object | None"  # CollapseConfig, or None for "off"
    measured_s: dict
    probe_cadence: int | None
    probe_items: int

    @property
    def label(self) -> str:
        """Human-readable form of the winning configuration."""
        return "off" if self.config is None else self.config.label

    @property
    def speedup_vs_off(self) -> float:
        """Measured probe speedup of the winner over collapse-off."""
        base = self.measured_s.get("off")
        if not base:
            return 1.0
        return base / self.measured_s[self.label]


def choose_collapse(
    dfa: DFA,
    inputs: np.ndarray,
    *,
    num_chunks: int = 2048,
    k: int = 8,
    lookback: int = 16,
    probe_items: int = 1 << 16,
    repeats: int = 3,
    cadences: tuple[int, ...] = (8, 32, 128),
) -> CollapseChoice:
    """Measure collapse-off against candidate scan cadences; pick the fastest.

    The measured analog of :func:`repro.core.convergence.probe_cadence`,
    following the :func:`choose_kernel` discipline: every candidate runs
    the same speculated chunk plan over a prefix of ``inputs`` through
    :func:`repro.core.local.process_chunks` (the production lock-step
    path), timed as best-of-``repeats``. On never-converging machines the
    geometric back-off keeps every "on" candidate within noise of "off",
    so the tuner degrades gracefully; on high-convergence machines the
    cadence choice trades scan overhead against how early lanes narrow.
    """
    from repro.core.convergence import CollapseConfig, probe_cadence
    from repro.core.local import process_chunks
    from repro.core.lookback import speculate
    from repro.workloads.chunking import plan_chunks, transform_layout

    inputs = np.asarray(inputs)
    if inputs.size == 0:
        raise ValueError("cannot tune collapse on an empty input")
    probe = np.ascontiguousarray(inputs[: min(probe_items, inputs.size)])
    plan = plan_chunks(probe.size, num_chunks)
    k_eff = min(int(k), dfa.num_states)
    spec = (
        speculate(dfa, probe, plan, k_eff, lookback=lookback)
        if k_eff < dfa.num_states
        else np.tile(np.arange(dfa.num_states, dtype=np.int32), (num_chunks, 1))
    )
    transformed = transform_layout(probe, plan)

    candidates: list = [None]
    candidates += [CollapseConfig(cadence=w) for w in cadences]
    measured: dict = {}
    best: tuple = (None, float("inf"))
    for cfg in candidates:
        label = "off" if cfg is None else cfg.label
        t_best = float("inf")
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            process_chunks(
                dfa, probe, plan, spec, transformed=transformed, collapse=cfg
            )
            t_best = min(t_best, time.perf_counter() - t0)
        measured[label] = t_best
        if t_best < best[1]:
            best = (cfg, t_best)
    return CollapseChoice(
        config=best[0],
        measured_s=measured,
        probe_cadence=probe_cadence(dfa, probe, k=k_eff),
        probe_items=int(probe.size),
    )


@dataclass(frozen=True)
class BackendChoice:
    """Outcome of the local-processing backend auto-tuner.

    ``measured_s`` maps each eligible backend (``"scalar"``,
    ``"vectorized"``, ``"codegen"``, ``"native"``) to its best measured
    execution time on the probe; ``build_s`` carries one-time costs
    (stride-table build, codegen ``exec`` compile, native C compile or
    artifact load) separately because they amortize across runs. An
    unavailable backend (no compiler, over-budget table) is simply absent
    from ``measured_s`` — it can never be chosen.
    """

    backend: str
    measured_s: dict
    build_s: dict
    probe_items: int
    kernel: str
    native_provider: str | None = None

    @property
    def speedup_vs_numpy(self) -> float:
        """Measured probe speedup of the winner over the NumPy path."""
        base = self.measured_s.get("vectorized")
        if not base:
            return 1.0
        return base / self.measured_s[self.backend]


def choose_backend(
    dfa: DFA,
    inputs: np.ndarray,
    *,
    num_chunks: int = 1024,
    k: int = 4,
    lookback: int = 8,
    probe_items: int = 1 << 16,
    repeats: int = 3,
    candidates: tuple[str, ...] = (
        "scalar", "vectorized", "codegen", "native",
    ),
    kernel: str = "auto",
    collapse=None,
    table_budget_bytes: int | None = None,
) -> BackendChoice:
    """Measure every local-processing backend on a probe; pick the fastest.

    The backend axis completes the tuner family (k, kernel, collapse):
    every candidate executes the same speculated chunk plan over a prefix
    of ``inputs``, timed as best-of-``repeats``. ``"vectorized"`` runs the
    planned NumPy kernel (``kernel="auto"`` resolves per machine),
    ``"codegen"`` the generated per-``k`` Python kernel, ``"native"`` the
    compiled C loop (:mod:`repro.core.native`) — which is only *eligible*
    when a provider loads and smoke-checks, so "no compiler" can never win
    by accident, and only *chosen* when it actually measures faster. The
    serving layer calls this at tenant-registration time, off the request
    path.
    """
    from repro.core.kernels import (
        DEFAULT_TABLE_BUDGET_BYTES,
        plan_kernel,
        process_chunks_kernel,
    )
    from repro.core.local import process_chunks
    from repro.core.lookback import speculate
    from repro.core.native import load_native_plan
    from repro.workloads.chunking import plan_chunks, transform_layout

    if table_budget_bytes is None:
        table_budget_bytes = DEFAULT_TABLE_BUDGET_BYTES
    inputs = np.asarray(inputs)
    if inputs.size == 0:
        raise ValueError("cannot tune the backend on an empty input")
    probe = np.ascontiguousarray(inputs[: min(probe_items, inputs.size)])
    plan = plan_chunks(probe.size, num_chunks)
    k_eff = min(int(k), dfa.num_states)
    spec = (
        speculate(dfa, probe, plan, k_eff, lookback=lookback)
        if k_eff < dfa.num_states
        else np.tile(
            np.arange(dfa.num_states, dtype=np.int32), (plan.num_chunks, 1)
        )
    )
    transformed = transform_layout(probe, plan)
    kplan = plan_kernel(
        dfa, chunk_len=plan.max_len, num_chunks=plan.num_chunks, k=k_eff,
        kernel=kernel, table_budget_bytes=table_budget_bytes,
    )

    measured: dict = {}
    build: dict = {"kernel_plan": kplan.build_s}
    native_provider: str | None = None
    runners: dict = {}
    for name in candidates:
        if name == "vectorized":
            if kplan.kernel == "lockstep":
                runners[name] = lambda: process_chunks(
                    dfa, probe, plan, spec, transformed=transformed,
                    collapse=collapse,
                )
            else:
                runners[name] = lambda: process_chunks_kernel(
                    dfa, probe, plan, spec, kplan,
                    transformed=transformed, collapse=collapse,
                )
        elif name == "scalar":
            scalar_kp = plan_kernel(
                dfa, chunk_len=plan.max_len, num_chunks=plan.num_chunks,
                k=k_eff, kernel="scalar",
                table_budget_bytes=table_budget_bytes,
            )
            runners[name] = lambda kp=scalar_kp: process_chunks_kernel(
                dfa, probe, plan, spec, kp, collapse=collapse,
            )
        elif name == "codegen":
            from repro.core.codegen.pykernel import compile_local_kernel

            t0 = time.perf_counter()
            fn = compile_local_kernel(k_eff)
            build[name] = time.perf_counter() - t0
            runners[name] = lambda f=fn: f(
                dfa.table, spec, plan.starts, plan.lengths, probe,
                transformed.main, transformed.tail,
            )
        elif name == "native":
            t0 = time.perf_counter()
            nk = load_native_plan(
                dfa, k=k_eff, kplan=kplan, collapse=collapse,
                table_budget_bytes=table_budget_bytes,
            )
            build[name] = time.perf_counter() - t0
            if nk is None:
                continue  # no compiler / provider: ineligible
            native_provider = nk.provider
            runners[name] = lambda n=nk: n.process_chunks(probe, plan, spec)
        else:
            raise ValueError(f"unknown backend candidate {name!r}")
    for name, runner in runners.items():
        best = float("inf")
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            runner()
            best = min(best, time.perf_counter() - t0)
        measured[name] = best
    chosen = min(measured, key=measured.get)  # type: ignore[arg-type]
    return BackendChoice(
        backend=chosen,
        measured_s=measured,
        build_s=build,
        probe_items=int(probe.size),
        kernel=kplan.kernel,
        native_provider=native_provider,
    )


@dataclass(frozen=True)
class RouteChoice:
    """Outcome of the multi-pattern route auto-tuner.

    ``measured_s`` maps each eligible route (``"batched"``, ``"product"``)
    to its best measured probe time; the product route is absent when the
    reachable product blows the state budget (it can then never be
    chosen). ``product_states`` is the minimised product's state count
    when it was materialized.
    """

    route: str
    measured_s: dict
    probe_items: int
    num_patterns: int
    product_states: int | None = None

    @property
    def speedup_vs_batched(self) -> float:
        """Measured probe speedup of the winner over the batched route."""
        base = self.measured_s.get("batched")
        if not base:
            return 1.0
        return base / self.measured_s[self.route]


def choose_route(
    machines,
    inputs: np.ndarray,
    *,
    k: int = 4,
    num_chunks: int = 64,
    lookback: int = 8,
    probe_items: int = 1 << 16,
    repeats: int = 3,
    kernel: str = "auto",
    collapse="auto",
    product_budget: int | None = None,
) -> "RouteChoice":
    """Measure both multi-pattern routes on a probe; pick the fastest.

    The static selector (:func:`repro.core.multipattern.run_multipattern`
    with ``route="auto"``) only asks whether the product *fits*; this
    tuner asks which route actually *wins* on this machine group and this
    input, with the same probe-then-pick discipline as the other axes.
    The product route is eligible only when the reachable product stays
    under ``product_budget`` states after parallel minimisation.
    """
    from repro.core.multipattern import (
        DEFAULT_PRODUCT_BUDGET,
        _build_product,
        run_multipattern,
        stack_machines,
    )
    from repro.fsm.product import ProductStateBudget

    if product_budget is None:
        product_budget = DEFAULT_PRODUCT_BUDGET
    inputs = np.asarray(inputs)
    if inputs.size == 0:
        raise ValueError("cannot tune the route on an empty input")
    probe = np.ascontiguousarray(inputs[: min(probe_items, inputs.size)])
    stack = stack_machines(list(machines))

    product_states: int | None = None
    routes = ["batched"]
    try:
        prod = _build_product(stack, budget=int(product_budget))
    except ProductStateBudget:
        pass
    else:
        product_states = int(prod.dfa.num_states)
        routes.append("product")

    measured: dict = {}
    for route in routes:
        best = float("inf")
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            run_multipattern(
                stack.machines, probe, k=k, num_chunks=num_chunks,
                lookback=lookback, kernel=kernel, collapse=collapse,
                route=route, collect=(), stack=stack,
            )
            best = min(best, time.perf_counter() - t0)
        measured[route] = best
    chosen = min(measured, key=measured.get)  # type: ignore[arg-type]
    return RouteChoice(
        route=chosen,
        measured_s=measured,
        probe_items=int(probe.size),
        num_patterns=stack.num_patterns,
        product_states=product_states,
    )
