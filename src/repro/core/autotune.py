"""Cost-model-driven selection of the speculation width k.

The paper's stated future work: "we will develop a cost model, which
considers the properties of the FSMs, the architecture of GPUs and
property of the input data so that we can decide the optimal value of k".
This module implements exactly that on top of the reproduction's pieces:

1. **probe** — run the engine on a small prefix of the input for each
   candidate k (the probe measures the real speculation success rate and
   re-execution profile for this machine *and* this input);
2. **project** — scale the counted statistics to the full input size;
3. **price** — evaluate the device cost model and pick the argmax.

Because success rates depend on the FSM and the look-back (not on input
length), the probe's rates transfer to the full input, which is what makes
the probe sound. Property tests check that the tuner's choice is never
more than a small factor worse than exhaustively measuring every k.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import run_speculative
from repro.fsm.dfa import DFA
from repro.gpu.cost import CostModel
from repro.gpu.device import DeviceSpec, TESLA_V100

__all__ = ["KChoice", "choose_k", "candidate_ks"]


@dataclass(frozen=True)
class KChoice:
    """Outcome of the k auto-tuner."""

    k: int | None  # None = spec-N
    modeled_speedup: float
    per_k: dict  # candidate -> (modeled speedup, success rate)

    @property
    def label(self) -> str:
        """Human-readable spec label."""
        return "spec-N" if self.k is None else f"spec-{self.k}"


def candidate_ks(num_states: int, *, max_k: int = 32) -> list[int | None]:
    """Default candidate grid: powers of two up to the state count, + spec-N."""
    ks: list[int | None] = []
    k = 1
    while k < min(num_states, max_k + 1):
        ks.append(k)
        k *= 2
    ks.append(None)  # spec-N
    return ks


def choose_k(
    dfa: DFA,
    inputs: np.ndarray,
    *,
    num_blocks: int = 80,
    threads_per_block: int = 256,
    lookback: int = 16,
    device: DeviceSpec = TESLA_V100,
    cpu_transition_ns: float | None = None,
    probe_items: int = 1 << 18,
    candidates: list[int | None] | None = None,
    merge: str = "parallel",
    target_items: int | None = None,
) -> KChoice:
    """Pick the spec width that maximizes modeled speedup on ``device``.

    Runs a probe execution per candidate on an input prefix, projects the
    counted statistics to ``target_items`` (default: the full input
    length), and prices them. The probe cost is
    O(len(candidates) * probe_items) actual work.
    """
    inputs = np.asarray(inputs)
    if inputs.size == 0:
        raise ValueError("cannot tune k on an empty input")
    probe = inputs[: min(probe_items, inputs.size)]
    if candidates is None:
        candidates = candidate_ks(dfa.num_states)
    # Candidates at or above the state count are all spec-N: normalize and
    # deduplicate so the report does not show a misleading finite k.
    seen: set = set()
    normalized: list[int | None] = []
    for k in candidates:
        k_norm = None if (k is None or k >= dfa.num_states) else k
        if k_norm not in seen:
            seen.add(k_norm)
            normalized.append(k_norm)
    candidates = normalized
    if target_items is None:
        target_items = int(inputs.size)
    model = CostModel(
        device=device,
        **(
            {"cpu_transition_ns": cpu_transition_ns}
            if cpu_transition_ns is not None
            else {}
        ),
    )
    per_k: dict = {}
    best: tuple[int | None, float] = (1, -1.0)
    for k in candidates:
        result = run_speculative(
            dfa, probe, k=k, num_blocks=num_blocks,
            threads_per_block=threads_per_block, merge=merge,
            lookback=lookback, device=device, price=False,
        )
        projected = result.stats.project(int(target_items))
        timing = model.price(
            projected,
            num_blocks=num_blocks,
            threads_per_block=threads_per_block,
            merge=merge,
            layout_transformed=True,
        )
        per_k[k] = (timing.speedup, result.stats.success_rate)
        if timing.speedup > best[1]:
            best = (k, timing.speedup)
    return KChoice(k=best[0], modeled_speedup=best[1], per_k=per_k)
