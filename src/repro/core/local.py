"""Local chunk processing: the lock-step spec-k kernel.

Algorithm 3 of the paper, vectorized. Every simulated GPU thread owns one
chunk and carries ``k`` speculated states; one lock-step iteration advances
*all* threads and all speculated states with a single gather

    S = table[symbols[:, None], S]          # S: (num_threads, k)

which is the NumPy rendering of the paper's unrolled inner loop. With the
transformed layout the per-step symbol vector is one contiguous row of the
interleaved input (the coalesced access of Section 4.1); with the natural
layout it is a strided gather (the uncoalesced pattern) — the functional
results are identical, the stats and real wall-clock differ.

The second-pass helpers (:func:`recover_emissions`,
:func:`recover_accepts`) re-run chunks from their *true* starting states
(known after the merge) to collect application outputs: decoded symbols for
Huffman, token events for HTML, match positions for regexes.
"""

from __future__ import annotations

import numpy as np

from repro.core.convergence import CollapseConfig, LaneCollapser
from repro.core.types import ExecStats
from repro.fsm.dfa import DFA
from repro.workloads.chunking import ChunkPlan, TransformedInput

__all__ = [
    "process_chunks",
    "process_chunks_ragged",
    "recover_emissions",
    "recover_accepts",
]


def process_chunks(
    dfa: DFA,
    inputs: np.ndarray,
    plan: ChunkPlan,
    spec: np.ndarray,
    *,
    transformed: TransformedInput | None = None,
    stats: ExecStats | None = None,
    cache_mask: np.ndarray | None = None,
    count_accepting: bool = False,
    collapse: CollapseConfig | None = None,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Run every chunk from its ``k`` speculated states.

    Returns ``(end, accept_counts)`` where ``end[c, j]`` is the ending state
    of chunk ``c`` started from ``spec[c, j]`` and ``accept_counts`` (only
    when requested) counts accepting-state visits per (chunk, speculation).

    ``cache_mask`` is a boolean per-state array marking transition-table
    rows resident in the simulated shared-memory cache; when provided, hits
    and misses are tallied into ``stats`` (the functional result does not
    change — caching is a performance feature).

    ``collapse`` enables the convergence layer
    (:mod:`repro.core.convergence`): every ``cadence`` steps duplicate
    lanes are deduplicated per chunk and the loop continues on the
    narrower matrix, reconstructing the full ``(num_chunks, k)`` ending
    matrix at the end — bit-identical results, up to ``k×`` fewer
    physically gathered elements. Per-symbol features (``cache_mask``,
    ``count_accepting``) need full-width lanes and disable collapse.
    ``stats.local_transitions`` keeps the lock-step modeled count either
    way; ``stats.local_gathers`` reports the physical elements.
    """
    spec = np.asarray(spec, dtype=np.int32)
    if spec.ndim != 2 or spec.shape[0] != plan.num_chunks:
        raise ValueError(
            f"spec must have shape (num_chunks, k), got {spec.shape} for "
            f"{plan.num_chunks} chunks"
        )
    if plan.max_len - plan.min_len > 1:
        raise ValueError(
            "process_chunks requires a near-equal plan (lengths differ by "
            "<= 1); skewed plans run through process_chunks_ragged or "
            "repro.core.scoreboard.run_chunks_active"
        )
    table = dfa.table
    S = spec.copy()
    acc = (
        np.zeros(spec.shape, dtype=np.int64) if count_accepting else None
    )
    accepting = dfa.accepting
    starts = plan.starts
    q = plan.min_len
    inputs = np.asarray(inputs)

    collapser = None
    if (
        collapse is not None
        and collapse.enabled
        and spec.shape[1] > 1
        and acc is None
        and cache_mask is None
    ):
        collapser = LaneCollapser(spec.shape[1], collapse)

    hits = 0
    total_accesses = 0
    gathered = 0
    consumed = 0

    for j in range(q):
        if transformed is not None:
            syms = transformed.main[j]
        else:
            syms = inputs[starts + j]
        if cache_mask is not None:
            hits += int(cache_mask[S].sum())
            total_accesses += S.size
        if collapser is not None and collapser.rowmap is not None:
            # Spill rows carry straggler lanes of specific chunks; route
            # each storage row to its chunk's symbol.
            syms = syms[collapser.rowmap]
        S = table[syms[:, None], S]
        gathered += S.size
        if acc is not None:
            acc += accepting[S]
        if collapser is not None:
            consumed += 1
            if consumed >= collapser.next_scan:
                S = collapser.scan(S, consumed)

    # The ragged step below addresses chunks by row position, so recover
    # the full (num_chunks, k) layout first.
    if collapser is not None:
        S = collapser.expand(S)

    # Ragged step: the first num_long chunks carry one extra symbol.
    r = plan.num_long
    if r:
        if transformed is not None:
            syms_tail = transformed.tail
        else:
            long_idx = np.flatnonzero(plan.lengths > q)
            syms_tail = inputs[starts[long_idx] + q]
        if cache_mask is not None:
            hits += int(cache_mask[S[:r]].sum())
            total_accesses += S[:r].size
        S[:r] = table[syms_tail[:, None], S[:r]]
        gathered += S[:r].size
        if acc is not None:
            acc[:r] += accepting[S[:r]]

    if stats is not None:
        stats.local_steps += plan.max_len
        stats.local_transitions += int(plan.lengths.sum()) * spec.shape[1]
        stats.local_input_reads += int(plan.lengths.sum())
        stats.local_gathers += gathered
        if collapser is not None:
            stats.collapse_scans += collapser.scans
            stats.lanes_collapsed += collapser.lanes_collapsed
        if cache_mask is not None:
            stats.cache_hits += hits
            stats.cache_misses += total_accesses - hits
    return S, acc


def process_chunks_ragged(
    dfa: DFA,
    inputs: np.ndarray,
    plan: ChunkPlan,
    spec: np.ndarray,
    *,
    stats: ExecStats | None = None,
) -> np.ndarray:
    """Lock-step processing of an arbitrarily skewed plan (barrier semantics).

    Models SIMT divergence faithfully: every step gathers the *full*
    ``(num_chunks, k)`` width for ``max_len`` iterations, masking finished
    chunks in place — a warp whose lanes hold chunks of different lengths
    pays the longest lane's iteration count, which is exactly the straggler
    cost the scoreboard's active-list driver
    (:func:`repro.core.scoreboard.run_chunks_active`) avoids.
    ``stats.local_gathers`` records the divergent physical cost
    (``num_chunks * max_len * k``); the modeled counters keep the same
    semantics as :func:`process_chunks`.
    """
    spec = np.asarray(spec, dtype=np.int32)
    if spec.ndim != 2 or spec.shape[0] != plan.num_chunks:
        raise ValueError(
            f"spec must have shape (num_chunks, k), got {spec.shape} for "
            f"{plan.num_chunks} chunks"
        )
    table = dfa.table
    inputs = np.asarray(inputs)
    S = spec.copy()
    starts = plan.starts
    lengths = plan.lengths
    gathered = 0
    # Safe symbol positions for finished lanes: clamp into the chunk (the
    # gathered value is discarded by the mask, mirroring predicated-off
    # lanes that still occupy their SIMT slot).
    safe = np.maximum(lengths - 1, 0)
    for j in range(plan.max_len):
        running = lengths > j
        pos = starts + np.where(running, j, safe)
        syms = inputs[pos] if inputs.size else np.zeros(len(pos), dtype=np.int64)
        stepped = table[syms[:, None], S]
        gathered += S.size
        S = np.where(running[:, None], stepped, S)
    if stats is not None:
        stats.local_steps += plan.max_len
        stats.local_transitions += int(lengths.sum()) * spec.shape[1]
        stats.local_input_reads += int(lengths.sum())
        stats.local_gathers += gathered
    return S


def _true_state_pass(
    dfa: DFA,
    inputs: np.ndarray,
    plan: ChunkPlan,
    true_starts: np.ndarray,
    visit,
) -> None:
    """Lock-step pass with k=1 from the true chunk states, calling
    ``visit(global_positions, symbols, states_after)`` at every step."""
    true_starts = np.asarray(true_starts, dtype=np.int32)
    if true_starts.shape != (plan.num_chunks,):
        raise ValueError(
            f"true_starts must have shape ({plan.num_chunks},), got {true_starts.shape}"
        )
    if plan.max_len - plan.min_len > 1:
        raise ValueError(
            "output recovery requires a near-equal plan (lengths differ by <= 1)"
        )
    table = dfa.table
    S = true_starts.copy()
    starts = plan.starts
    q = plan.min_len
    for j in range(q):
        pos = starts + j
        syms = inputs[pos]
        S = table[syms, S]
        visit(pos, syms, S)
    r = plan.num_long
    if r:
        long_idx = np.flatnonzero(plan.lengths > q)
        pos = starts[long_idx] + q
        syms = inputs[pos]
        S2 = table[syms, S[long_idx]]
        # visit() before mutating S: callers hold references to the array
        # passed on the previous step and read pre-transition states from it.
        visit(pos, syms, S2)
        S[long_idx] = S2


def recover_emissions(
    dfa: DFA,
    inputs: np.ndarray,
    plan: ChunkPlan,
    true_starts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Transducer outputs in input order: ``(positions, emitted values)``.

    Requires the DFA to carry an ``emit`` table. The pass runs from the true
    starting state of every chunk (obtained from the merge), so the
    emissions equal those of a fully sequential run — property tests assert
    exactly that.
    """
    if dfa.emit is None:
        raise ValueError("DFA has no emission table")
    emit = dfa.emit
    pos_parts: list[np.ndarray] = []
    val_parts: list[np.ndarray] = []

    # visit() receives post-transition states; emissions belong to the
    # transition itself, so we capture pre-transition states by re-deriving
    # the emitted value from (symbol, previous state). Track previous state
    # alongside via closure state.
    prev = {"S": np.asarray(true_starts, dtype=np.int32).copy()}

    def visit(pos: np.ndarray, syms: np.ndarray, after: np.ndarray) -> None:
        before = prev["S"]
        if before.shape != after.shape:  # ragged tail: subset of chunks
            before = before[np.flatnonzero(plan.lengths > plan.min_len)]
        e = emit[syms, before]
        mask = e >= 0
        if mask.any():
            pos_parts.append(pos[mask].astype(np.int64))
            val_parts.append(e[mask].astype(np.int64))
        if after.shape == prev["S"].shape:
            prev["S"] = after
        else:
            updated = prev["S"].copy()
            updated[np.flatnonzero(plan.lengths > plan.min_len)] = after
            prev["S"] = updated

    _true_state_pass(dfa, inputs, plan, true_starts, visit)
    if not pos_parts:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    positions = np.concatenate(pos_parts)
    values = np.concatenate(val_parts)
    order = np.argsort(positions, kind="stable")
    return positions[order], values[order]


def recover_accepts(
    dfa: DFA,
    inputs: np.ndarray,
    plan: ChunkPlan,
    true_starts: np.ndarray,
) -> np.ndarray:
    """Positions at which the machine is in an accepting state.

    For a search DFA (``.*R``) these are exactly the positions where some
    match ends — the paper's regex-matching output.
    """
    accepting = dfa.accepting
    parts: list[np.ndarray] = []

    def visit(pos: np.ndarray, syms: np.ndarray, after: np.ndarray) -> None:
        mask = accepting[after]
        if mask.any():
            parts.append(pos[mask].astype(np.int64))

    _true_state_pass(dfa, inputs, plan, true_starts, visit)
    if not parts:
        return np.zeros(0, dtype=np.int64)
    return np.sort(np.concatenate(parts), kind="stable")
