"""Multi-symbol stepping kernels: alphabet compaction + table powers.

The lock-step kernel (:func:`repro.core.local.process_chunks`) advances one
symbol per NumPy gather, so a length-``L`` chunk costs ``L`` Python-level
dispatches — the reproduction's analog of the paper's memory-bound inner
loop. Transition *functions* compose associatively (the data-parallel
formulation of Mytkowicz et al., the paper's [18]), which permits a
different trade: precompose the transition tables of every ``m``-symbol
string **once**, then step the input ``m`` symbols per gather. The stride
table over the raw alphabet would be ``num_inputs**m`` rows; alphabet
equivalence-class compaction (:func:`repro.fsm.alphabet.compact_alphabet`)
first collapses identical transition rows into ``C`` classes (HTML/regex
machines collapse 128-256 symbols to ~5-20 classes), making ``C**m`` rows
affordable.

Three cooperating pieces:

* **Stride tables** — :func:`build_stride_tables` produces
  ``T_m[c1*C**(m-1) + ... + cm, q]`` = the state reached from ``q`` after
  consuming classes ``c1 .. cm`` in order.
* **Packed inputs** — :func:`pack_stride` radix-packs the class-mapped
  input into one stride index per ``m`` symbols, step-major (the stride
  analog of :func:`repro.workloads.chunking.transform_layout`), with
  leftover rows and the ragged tail kept as single-class steps.
* **Kernel registry + cost model** — :data:`KERNELS` names the available
  kernels (``scalar``, ``lockstep``, ``stride2``, ``stride4``);
  :func:`select_kernel` picks one from class count, state count, chunk
  length, chunk count, speculation width, and a table-memory budget.
  :func:`repro.core.autotune.choose_kernel` is the measured version.

Every kernel computes exactly the same ``spec -> end`` maps as the
lock-step kernel; property tests cross-check all of them against
:func:`repro.fsm.run.run_reference` on randomized machines, strides, and
ragged tails.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.convergence import CollapseConfig, LaneCollapser
from repro.fsm.alphabet import AlphabetCompaction, compact_alphabet
from repro.fsm.dfa import DFA
from repro.obs.trace import add_count, current_trace, trace_span
from repro.workloads.chunking import ChunkPlan, TransformedInput

__all__ = [
    "KernelSpec",
    "KERNELS",
    "StrideTables",
    "KernelPlan",
    "PackedInput",
    "build_stride_tables",
    "stride_table_bytes",
    "pack_stride",
    "select_kernel",
    "plan_kernel",
    "process_chunks_kernel",
    "advance_matrix",
    "run_segment_kernel",
    "DEFAULT_TABLE_BUDGET_BYTES",
]

# Stride tables above this footprint are never built automatically; the
# budget caps C**m * num_states * 4 bytes (plus the build pass that writes
# it), keeping "auto" selection safe for byte alphabets that fail to
# compact. Callers with known reuse can raise it per call.
DEFAULT_TABLE_BUDGET_BYTES = 16 << 20

# Cost-model constants, calibrated to the NumPy substrate on commodity
# x86: a Python-level dispatch of one fancy-index gather costs ~ALPHA
# seconds regardless of size, plus ~BETA per gathered element; building a
# stride table writes C**m * num_states entries at ~GAMMA each. Exact
# values matter little — selection only needs the dispatch-vs-element
# crossover to land in the right decade (the measured autotuner refines).
_ALPHA_DISPATCH_S = 4e-6
_BETA_ELEMENT_S = 1.2e-9
_GAMMA_BUILD_S = 4e-9
# A scalar (per-chunk Python loop) table lookup costs ~this per step.
_SCALAR_STEP_S = 1.5e-7


@dataclass(frozen=True)
class KernelSpec:
    """One registered stepping kernel.

    ``stride`` is the number of input symbols consumed per table gather
    (1 for ``scalar``/``lockstep``); ``vectorized`` distinguishes the
    batched NumPy kernels from the per-chunk Python loop.
    """

    name: str
    stride: int
    vectorized: bool
    description: str


KERNELS: dict[str, KernelSpec] = {
    "scalar": KernelSpec(
        "scalar", 1, False,
        "per-chunk Python loop over compacted classes (tiny inputs, re-exec)",
    ),
    "lockstep": KernelSpec(
        "lockstep", 1, True,
        "one (chunks x k) gather per symbol — the paper's Algorithm 3",
    ),
    "stride2": KernelSpec(
        "stride2", 2, True,
        "one gather per 2 symbols via the C^2 composed table",
    ),
    "stride4": KernelSpec(
        "stride4", 4, True,
        "one gather per 4 symbols via the C^4 composed table",
    ),
}


@dataclass(frozen=True)
class StrideTables:
    """The composed ``m``-symbol transition table over a compacted alphabet.

    ``table_m[idx, q]`` with ``idx = c1*C**(m-1) + ... + cm`` is the state
    reached from ``q`` after consuming classes ``c1 .. cm`` in input order.
    ``build_s`` is the wall-clock cost of composing the table — recorded so
    benchmarks and the pool can report amortization honestly.
    """

    m: int
    table_m: np.ndarray  # (C**m, num_states) int32
    build_s: float

    @property
    def nbytes(self) -> int:
        """Footprint of the composed table."""
        return int(self.table_m.nbytes)


def stride_table_bytes(num_classes: int, num_states: int, m: int) -> int:
    """Footprint of the ``m``-power table: ``C**m * num_states * 4`` bytes."""
    return (num_classes ** m) * num_states * 4


def build_stride_tables(class_table: np.ndarray, m: int) -> StrideTables:
    """Compose the ``m``-symbol stride table from a ``(C, N)`` class table.

    Built by repeated composition: ``T_{j+1}[i*C + c] = Tc[c][T_j[i]]`` —
    ``m - 1`` vectorized gathers over the growing table, so build cost is
    ``O(C**m * N)`` writes, not ``O(m)`` passes over the input.
    """
    if m < 1:
        raise ValueError(f"stride m must be >= 1, got {m}")
    class_table = np.ascontiguousarray(np.asarray(class_table, dtype=np.int32))
    C, _ = class_table.shape
    t0 = time.perf_counter()
    T = class_table
    for _ in range(m - 1):
        # T_next.reshape(prev, C, N)[i, c] = Tc[c, T[i]]
        T = class_table[
            np.arange(C, dtype=np.intp)[None, :, None], T[:, None, :]
        ].reshape(T.shape[0] * C, -1)
    T = np.ascontiguousarray(T)
    return StrideTables(m=m, table_m=T, build_s=time.perf_counter() - t0)


@dataclass(frozen=True)
class KernelPlan:
    """A resolved kernel choice with all tables needed to execute it.

    Produced by :func:`plan_kernel`. ``compaction`` is always present (even
    the lockstep kernel benefits from gathering in the smaller class
    table); ``tables`` is only built for stride kernels. ``build_s`` totals
    compaction plus table composition.
    """

    kernel: str
    compaction: AlphabetCompaction
    tables: StrideTables | None
    build_s: float
    predicted_cost_s: dict[str, float]

    @property
    def m(self) -> int:
        """Symbols consumed per gather."""
        return KERNELS[self.kernel].stride

    @property
    def table_bytes(self) -> int:
        """Footprint of the kernel's tables (class table + stride table)."""
        total = int(self.compaction.table.nbytes)
        if self.tables is not None:
            total += self.tables.nbytes
        return total


def _predict_costs(
    num_classes: int,
    num_states: int,
    chunk_len: int,
    num_chunks: int,
    k: int,
    *,
    table_budget_bytes: int,
    amortize_builds: int = 1,
) -> dict[str, float]:
    """Modeled wall-clock cost (seconds) of each kernel on one run.

    ``amortize_builds`` divides the one-time stride-table build across the
    number of runs expected to reuse it (the pool passes its expected call
    count; single-shot callers leave it at 1).
    """
    L = max(0, chunk_len)
    width = num_chunks * max(1, k)
    costs: dict[str, float] = {}
    costs["scalar"] = num_chunks * max(1, k) * L * _SCALAR_STEP_S
    costs["lockstep"] = L * (_ALPHA_DISPATCH_S + width * _BETA_ELEMENT_S)
    for name, spec in KERNELS.items():
        if spec.stride <= 1:
            continue
        m = spec.stride
        tbytes = stride_table_bytes(num_classes, num_states, m)
        if tbytes > table_budget_bytes:
            continue
        steps = L // m + (L % m)  # packed steps + leftover single steps
        build = (num_classes ** m) * num_states * _GAMMA_BUILD_S
        costs[name] = (
            build / max(1, amortize_builds)
            + steps * (_ALPHA_DISPATCH_S + width * _BETA_ELEMENT_S)
        )
    return costs


def select_kernel(
    num_classes: int,
    num_states: int,
    chunk_len: int,
    num_chunks: int,
    k: int,
    *,
    table_budget_bytes: int = DEFAULT_TABLE_BUDGET_BYTES,
    amortize_builds: int = 1,
) -> str:
    """Pick the cheapest kernel under the cost model.

    Stride tables above ``table_budget_bytes`` are ineligible. The scalar
    kernel only wins for tiny total work (it exists for re-execution of
    single short segments); among vectorized kernels the choice reduces to
    whether ``ceil(L/m)`` dispatches plus an amortized ``C**m * N`` build
    beat ``L`` dispatches.
    """
    costs = _predict_costs(
        num_classes, num_states, chunk_len, num_chunks, k,
        table_budget_bytes=table_budget_bytes, amortize_builds=amortize_builds,
    )
    return min(costs, key=costs.get)  # type: ignore[arg-type]


def plan_kernel(
    dfa: DFA,
    *,
    chunk_len: int,
    num_chunks: int,
    k: int,
    kernel: str = "auto",
    table_budget_bytes: int = DEFAULT_TABLE_BUDGET_BYTES,
    amortize_builds: int = 1,
    compaction: AlphabetCompaction | None = None,
) -> KernelPlan:
    """Resolve ``kernel`` (or ``"auto"``) and build its tables.

    Emits a ``kernel.plan`` span with the choice and records the table
    build time under the ``kernel.table_build_s`` counter (milliseconds
    live in the span; the counter carries seconds x 1e6 as integer
    microseconds for exporters that only sum integers).
    """
    if kernel != "auto" and kernel not in KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r}; available: {sorted(KERNELS)} or 'auto'"
        )
    t0 = time.perf_counter()
    with trace_span(
        "kernel.plan", requested=kernel, chunks=num_chunks, k=k,
        chunk_len=chunk_len,
    ) as sp:
        if compaction is None:
            compaction = compact_alphabet(dfa.table)
        C, N = compaction.num_classes, compaction.num_states
        costs = _predict_costs(
            C, N, chunk_len, num_chunks, k,
            table_budget_bytes=table_budget_bytes,
            amortize_builds=amortize_builds,
        )
        name = kernel if kernel != "auto" else min(costs, key=costs.get)
        spec = KERNELS[name]
        if spec.stride > 1 and stride_table_bytes(C, N, spec.stride) > table_budget_bytes:
            raise ValueError(
                f"kernel {name!r} needs {stride_table_bytes(C, N, spec.stride)} "
                f"table bytes > budget {table_budget_bytes}; raise "
                f"table_budget_bytes or choose another kernel"
            )
        tables = (
            build_stride_tables(compaction.table, spec.stride)
            if spec.stride > 1
            else None
        )
        build_s = time.perf_counter() - t0
        sp.set(
            selected=name, num_classes=C,
            compression=round(compaction.compression, 2),
            build_ms=round(build_s * 1e3, 3),
        )
        obs = current_trace()
        if obs is not None:
            obs.count(f"kernel.selected.{name}", 1)
            obs.count("kernel.table_build_us", int(build_s * 1e6))
            obs.count("kernel.table_bytes", int(
                compaction.table.nbytes + (tables.nbytes if tables else 0)
            ))
    return KernelPlan(
        kernel=name, compaction=compaction, tables=tables,
        build_s=build_s, predicted_cost_s=costs,
    )


@dataclass(frozen=True)
class PackedInput:
    """Step-major stride packing of the class-mapped input.

    ``packed[t, c]`` is the radix-packed stride index consumed by chunk
    ``c`` at packed step ``t`` (covering symbols ``t*m .. t*m + m - 1`` of
    the lock-step prefix). ``rem`` holds the ``min_len % m`` leftover
    prefix rows as single-class steps; ``tail`` the one ragged extra class
    of each longer chunk. Together they cover exactly the same symbols, in
    the same order, as :class:`repro.workloads.chunking.TransformedInput`.
    """

    packed: np.ndarray  # (min_len // m, num_chunks) int64
    rem: np.ndarray  # (min_len % m, num_chunks) int32
    tail: np.ndarray  # (num_long,) int32

    @property
    def nbytes(self) -> int:
        """Footprint of the packed copy."""
        return int(self.packed.nbytes + self.rem.nbytes + self.tail.nbytes)


def pack_stride(
    class_inputs: np.ndarray,
    plan: ChunkPlan,
    m: int,
    num_classes: int,
    *,
    transformed: TransformedInput | None = None,
) -> PackedInput:
    """Radix-pack the class-mapped input for stride-``m`` stepping.

    ``class_inputs`` is the full input already mapped through
    ``compaction.class_of``. When the step-major ``transformed`` layout of
    the *class* input is available its rows are reused directly; otherwise
    the step-major view is gathered here (same cost as
    :func:`repro.workloads.chunking.transform_layout`).
    """
    if m < 1:
        raise ValueError(f"stride m must be >= 1, got {m}")
    q = plan.min_len
    if transformed is not None:
        main = transformed.main
        tail = np.asarray(transformed.tail, dtype=np.int32)
    else:
        idx = plan.starts[None, :] + np.arange(q, dtype=np.int64)[:, None]
        main = class_inputs[idx] if q else np.zeros(
            (0, plan.num_chunks), dtype=np.int32
        )
        long_mask = plan.lengths > q
        tail = (
            class_inputs[(plan.starts + q)[long_mask]].astype(np.int32)
            if long_mask.any()
            else np.zeros(0, dtype=np.int32)
        )
    T = q // m
    if T:
        blocks = np.asarray(main[: T * m], dtype=np.int64).reshape(T, m, -1)
        packed = np.zeros((T, plan.num_chunks), dtype=np.int64)
        for i in range(m):  # radix combine: first symbol is the high digit
            packed *= num_classes
            packed += blocks[:, i, :]
    else:
        packed = np.zeros((0, plan.num_chunks), dtype=np.int64)
    rem = np.ascontiguousarray(np.asarray(main[T * m:], dtype=np.int32))
    return PackedInput(packed=packed, rem=rem, tail=tail)


def advance_matrix(
    kplan: KernelPlan,
    packed: PackedInput,
    S: np.ndarray,
    *,
    collapse: "CollapseConfig | None" = None,
    stats=None,
) -> np.ndarray:
    """Advance a ``(num_chunks, w)`` state matrix through a packed input.

    ``w`` is arbitrary: the spec-k engine passes ``k`` speculated states
    per chunk, the prefix scan passes all ``num_states``. Consumes the
    packed stride steps, then the leftover single-class rows, then the
    ragged tail (first ``tail.size`` chunks only) — the exact symbol order
    of the lock-step kernel.

    ``collapse`` threads the convergence layer through the stride loop
    (:mod:`repro.core.convergence`): duplicate lanes are deduplicated on
    cadence (a stride-``m`` gather weighs ``m`` steps, keeping the
    cadence calibrated in symbols) and the full matrix is reconstructed
    before returning. ``stats`` (when given)
    accumulates ``local_gathers`` / ``collapse_scans`` /
    ``lanes_collapsed``.
    """
    Tc = kplan.compaction.table
    Tm = kplan.tables.table_m if kplan.tables is not None else Tc
    S = S.copy()
    collapser = None
    if collapse is not None and collapse.enabled and S.shape[1] > 1:
        collapser = LaneCollapser(S.shape[1], collapse)
    gathered = 0
    m = kplan.m
    consumed = 0
    for t in range(packed.packed.shape[0]):
        row = packed.packed[t]
        if collapser is not None and collapser.rowmap is not None:
            # Spill rows carry straggler lanes of specific chunks; route
            # each storage row to its chunk's stride index.
            row = row[collapser.rowmap]
        S = Tm[row[:, None], S]
        gathered += S.size
        if collapser is not None:
            consumed += m
            if consumed >= collapser.next_scan:
                S = collapser.scan(S, consumed)
    for row in packed.rem:
        if collapser is not None and collapser.rowmap is not None:
            row = row[collapser.rowmap]
        S = Tc[row[:, None], S]
        gathered += S.size
        if collapser is not None:
            consumed += 1
            if consumed >= collapser.next_scan:
                S = collapser.scan(S, consumed)
    # The ragged tail addresses chunks by row position — recover the full
    # (num_chunks, w) layout first.
    if collapser is not None:
        S = collapser.expand(S)
    r = packed.tail.size
    if r:
        S[:r] = Tc[packed.tail[:, None], S[:r]]
        gathered += r if S.ndim == 1 else S[:r].size
    if stats is not None:
        stats.local_gathers += gathered
        if collapser is not None:
            stats.collapse_scans += collapser.scans
            stats.lanes_collapsed += collapser.lanes_collapsed
    return S


def process_chunks_kernel(
    dfa: DFA,
    inputs: np.ndarray,
    plan: ChunkPlan,
    spec: np.ndarray,
    kplan: KernelPlan,
    *,
    transformed: TransformedInput | None = None,
    stats=None,
    collapse: CollapseConfig | None = None,
    native=None,
) -> np.ndarray:
    """Kernel-dispatched equivalent of :func:`repro.core.local.process_chunks`.

    Returns the ``(num_chunks, k)`` ending-state matrix. Event counters in
    ``stats`` keep the lock-step semantics (transitions = symbols consumed
    x speculation width) so modeled-GPU pricing and projections are
    kernel-independent; the *physical* gather count is what the kernels
    change, and it is visible through wall clock, ``stats.local_gathers``,
    and the ``kernel.*`` observability counters. ``collapse`` threads the
    convergence layer (:mod:`repro.core.convergence`) through the stride
    loop; the scalar kernel deduplicates each chunk's lanes up front
    (its whole row is one collapse scan).

    ``native`` is a loaded :class:`repro.core.native.NativeKernel` for the
    same plan; when given, the whole call is dispatched to the compiled
    loop (collapse behaviour is baked into the artifact, so ``collapse``
    is ignored on that path).
    """
    spec = np.asarray(spec, dtype=np.int32)
    if spec.ndim != 2 or spec.shape[0] != plan.num_chunks:
        raise ValueError(
            f"spec must have shape (num_chunks, k), got {spec.shape} for "
            f"{plan.num_chunks} chunks"
        )
    if native is not None:
        return native.process_chunks(inputs, plan, spec, stats=stats)
    if KERNELS[kplan.kernel].name == "scalar":
        # Class-map the input once (not once per lane) and advance each
        # chunk's lanes as one batch: the per-step table lookup gathers all
        # k lanes in a single fancy index instead of k separate Python
        # loops over the same segment.
        cls = kplan.compaction.remap(inputs)
        dedupe = collapse is not None and collapse.enabled and spec.shape[1] > 1
        end = np.empty_like(spec)
        gathered = 0
        for c in range(plan.num_chunks):
            seg_cls = cls[plan.chunk_slice(c)]
            row = spec[c]
            if dedupe:
                uniq, inv = np.unique(row, return_inverse=True)
                out = _advance_states_packed(kplan, seg_cls, uniq.astype(np.int32))
                end[c] = out[inv]
                gathered += int(seg_cls.size) * int(uniq.size)
                if stats is not None and uniq.size < row.size:
                    stats.collapse_scans += 1
                    stats.lanes_collapsed += int(row.size - uniq.size)
            else:
                end[c] = _advance_states_packed(
                    kplan, seg_cls, row.astype(np.int32)
                )
                gathered += int(seg_cls.size) * int(row.size)
        if stats is not None:
            stats.local_gathers += gathered
    else:
        cls = kplan.compaction.remap(inputs)
        cls_transformed = None
        if transformed is not None:
            cls_transformed = TransformedInput(
                main=kplan.compaction.class_of[transformed.main],
                tail=kplan.compaction.class_of[transformed.tail],
            )
        packed = pack_stride(
            cls, plan, kplan.m, kplan.compaction.num_classes,
            transformed=cls_transformed,
        )
        end = advance_matrix(kplan, packed, spec, collapse=collapse, stats=stats)
        add_count("kernel.gathers", packed.packed.shape[0] + packed.rem.shape[0])
    if stats is not None:
        stats.local_steps += plan.max_len
        stats.local_transitions += int(plan.lengths.sum()) * spec.shape[1]
        stats.local_input_reads += int(plan.lengths.sum())
    return end


def _advance_states_packed(
    kplan: KernelPlan, cls: np.ndarray, states: np.ndarray
) -> np.ndarray:
    """Advance a state *vector* through one class-mapped segment.

    The batched core of the scalar kernel: the segment is radix-packed
    once, then each packed step gathers all ``len(states)`` lanes with a
    single fancy index — ``ceil(L/m)`` dispatches regardless of lane
    count, where the old per-lane loop paid ``L`` per lane.
    """
    states = states.copy()
    if cls.size == 0:
        return states
    m = kplan.m
    rest = cls
    if kplan.tables is not None and cls.size >= m:
        C = kplan.compaction.num_classes
        T = cls.size // m
        blocks = cls[: T * m].astype(np.int64).reshape(T, m)
        idx = np.zeros(T, dtype=np.int64)
        for i in range(m):
            idx *= C
            idx += blocks[:, i]
        table_m = kplan.tables.table_m
        for a in idx.tolist():
            states = table_m[a, states]
        rest = cls[T * m:]
    table_c = kplan.compaction.table
    for a in rest.tolist():
        states = table_c[a, states]
    return states


def run_segment_kernel(kplan: KernelPlan, symbols: np.ndarray, start: int) -> int:
    """Run one segment from one state through the planned kernel — the
    re-execution primitive of the scale-out pool.

    A single-state run is inherently sequential, so the win here is
    iteration count: the symbols are class-mapped and radix-packed
    vectorized, then the Python loop takes ``ceil(L/m)`` scalar lookups in
    the stride table instead of ``L`` in the raw table.
    """
    symbols = np.asarray(symbols)
    if symbols.size == 0:
        return int(start)
    cls = kplan.compaction.remap(symbols)
    state = int(start)
    m = kplan.m
    if kplan.tables is not None and symbols.size >= m:
        C = kplan.compaction.num_classes
        T = symbols.size // m
        blocks = cls[: T * m].astype(np.int64).reshape(T, m)
        idx = np.zeros(T, dtype=np.int64)
        for i in range(m):
            idx *= C
            idx += blocks[:, i]
        table_m = kplan.tables.table_m
        for a in idx.tolist():
            state = table_m[a, state]
        cls = cls[T * m:]
    table_c = kplan.compaction.table
    for a in cls.tolist():
        state = table_c[a, state]
    return int(state)
