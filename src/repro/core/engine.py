"""The spec-k execution engine: one entry point for the whole pipeline.

:func:`run_speculative` is the library's main API. It simulates the paper's
GPU execution functionally — partition, look-back speculation, lock-step
local processing, then a sequential or parallel merge — while counting every
algorithmic event, and (optionally) prices those events into modeled V100
time via :class:`repro.gpu.cost.CostModel`.

``k`` selects the method on the paper's continuum: ``1`` is classic
speculative execution, ``None`` (or ``num_states``) is enumerative
execution (spec-N), anything between is enumerative speculation (spec-k).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cache.hotstates import HotStateCache, plan_hot_states
from repro.core.convergence import (
    CollapseConfig,
    converged_chunks,
    resolve_collapse,
)
from repro.core.kernels import (
    KERNELS,
    KernelPlan,
    plan_kernel,
    process_chunks_kernel,
    run_segment_kernel,
)
from repro.core.local import (
    process_chunks,
    process_chunks_ragged,
    recover_accepts,
    recover_emissions,
)
from repro.core.lookback import enumerative_spec, speculate, state_prior
from repro.core.merge_par import MergeTree, merge_parallel
from repro.core.merge_seq import merge_sequential
from repro.core.predictor import HistoryPredictor
from repro.core.scoreboard import ChunkScoreboard, run_chunks_active
from repro.core.types import ChunkResults, ExecStats
from repro.fsm.dfa import DFA
from repro.gpu.cost import CostModel, TimeBreakdown
from repro.gpu.device import DeviceSpec, TESLA_V100, launch_geometry
from repro.obs.trace import RunTrace, current_trace, trace_span
from repro.util.validation import check_in_set
from repro.workloads.chunking import (
    ChunkPlan,
    plan_chunks,
    plan_from_lengths,
    transform_layout,
)

__all__ = [
    "BatchExecutionResult",
    "EngineConfig",
    "SpecExecutionResult",
    "run_inprocess_fallback",
    "run_speculative",
    "run_speculative_batch",
]


@dataclass(frozen=True)
class EngineConfig:
    """Resolved configuration of one speculative execution.

    Attributes
    ----------
    k:
        Effective speculation width after clamping (states per chunk).
    enumerative:
        True when ``k`` covers every state (spec-N): speculation cannot
        miss and no re-execution ever occurs.
    num_blocks, threads_per_block:
        Simulated launch geometry; ``num_blocks * threads_per_block`` is
        the chunk count (one chunk per simulated thread).
    merge:
        ``"sequential"`` or ``"parallel"`` (the paper's tree merge).
    check:
        Runtime-check implementation actually requested: ``"nested"``,
        ``"hash"``, or ``"auto"`` (hash iff k > 12).
    reexec:
        ``"delayed"`` or ``"eager"`` re-execution (parallel merge only).
    layout:
        Input layout: ``"transformed"`` (coalesced) or ``"natural"``.
    lookback:
        Look-back window length in symbols used for speculation.
    cache_table:
        Whether the hot-state shared-memory cache was enabled.
    device:
        The modeled GPU (pricing and launch-geometry limits).
    kernel:
        The stepping kernel local processing actually ran
        (``"lockstep"``, ``"stride2"``, ``"stride4"``, or ``"scalar"`` —
        the resolved choice when ``"auto"`` was requested).
    collapse:
        Resolved convergence-layer setting: ``"on(W=<cadence>)"`` when
        lane collapse ran, ``"off"`` otherwise (disabled, or ``"auto"``
        probed the machine and found no convergence horizon).
    schedule:
        ``"barrier"`` (lock-step stage pipeline) or ``"ooo"`` (chunk
        scoreboard, :mod:`repro.core.scoreboard`).
    backend:
        The local-processing backend that actually ran: ``"vectorized"``,
        ``"codegen"``, or ``"native"`` (requested ``"native"`` resolves
        to ``"vectorized"`` when no compiler or provider is usable —
        visible here and under the ``native.fallback`` counter).
    """

    k: int
    enumerative: bool
    num_blocks: int
    threads_per_block: int
    merge: str
    check: str
    reexec: str
    layout: str
    lookback: int
    cache_table: bool
    device: DeviceSpec
    kernel: str = "lockstep"
    collapse: str = "off"
    schedule: str = "barrier"
    backend: str = "vectorized"

    @property
    def num_threads(self) -> int:
        """Total simulated threads (= chunks)."""
        return self.num_blocks * self.threads_per_block


@dataclass
class SpecExecutionResult:
    """Everything produced by one :func:`run_speculative` call.

    Attributes
    ----------
    final_state:
        The machine's state after the whole input — always identical to
        the sequential reference run.
    stats:
        Counted algorithmic events (:class:`repro.core.types.ExecStats`).
    config:
        The resolved :class:`EngineConfig` the run executed under.
    accepted:
        Whether ``final_state`` is accepting.
    true_starts:
        Exact per-chunk starting states, ``(num_chunks,)`` int32 — present
        when truth recovery ran (sequential merge, ``measure_success``, or
        output collection).
    accept_counts:
        Per-chunk counts of accepting-state visits (``collect``
        ``"accept_count"`` only).
    match_positions:
        Global input offsets where the machine sat in an accepting state
        (``collect`` ``"match_positions"`` only).
    emissions:
        ``(positions, symbols)`` arrays from the machine's emission table
        (``collect`` ``"emissions"`` only).
    timing:
        Modeled V100 :class:`repro.gpu.cost.TimeBreakdown` in seconds
        (``price=True`` only). Modeled time, not wall clock — wall clock
        lives in ``trace``.
    cache:
        The hot-state cache plan when ``cache_table`` was enabled.
    merge_tree:
        The full parallel-merge reduction history
        (``keep_merge_tree=True`` only).
    trace:
        The :class:`repro.obs.RunTrace` that observed this run (None when
        observability was disabled).
    """

    final_state: int
    stats: ExecStats
    config: EngineConfig
    accepted: bool = False
    true_starts: np.ndarray | None = None
    accept_counts: np.ndarray | None = None
    match_positions: np.ndarray | None = None
    emissions: tuple[np.ndarray, np.ndarray] | None = None
    timing: TimeBreakdown | None = None
    cache: HotStateCache | None = None
    merge_tree: MergeTree | None = field(default=None, repr=False)
    trace: RunTrace | None = field(default=None, repr=False)

    @property
    def success_rate(self) -> float:
        """Speculation success rate over chunk boundaries (0.0–1.0)."""
        return self.stats.success_rate


def run_speculative(
    dfa: DFA,
    inputs: np.ndarray,
    *,
    k: int | None = 4,
    num_blocks: int = 80,
    threads_per_block: int = 256,
    merge: str = "parallel",
    check: str = "auto",
    reexec: str = "delayed",
    layout: str = "transformed",
    lookback: int = 8,
    cache_table: bool = False,
    cache_budget_bytes: int | None = None,
    device: DeviceSpec = TESLA_V100,
    ranking: np.ndarray | None = None,
    measure_success: bool = True,
    collect: tuple[str, ...] = (),
    price: bool = True,
    cpu_transition_ns: float | None = None,
    keep_merge_tree: bool = False,
    backend: str = "vectorized",
    kernel: str = "lockstep",
    collapse: str | CollapseConfig | None = "auto",
    schedule: str = "barrier",
    plan: ChunkPlan | None = None,
    history: HistoryPredictor | str | None = None,
    trace: RunTrace | None = None,
    dist=None,
) -> SpecExecutionResult:
    """Execute ``dfa`` over ``inputs`` with spec-k speculation.

    Parameters
    ----------
    dfa:
        The machine to run (``table`` shape ``(num_inputs, num_states)``).
    inputs:
        1-D array of dense symbol ids in ``range(dfa.num_inputs)``.
    k:
        Speculation width (states speculated per chunk). ``None`` selects
        spec-N (enumerative execution); values are clamped to
        ``dfa.num_states``.
    num_blocks, threads_per_block:
        Simulated launch geometry; one chunk per thread.
    merge:
        ``"sequential"`` (baseline, Figure 4a) or ``"parallel"`` (the
        paper's tree merge).
    check:
        ``"nested"``, ``"hash"``, or ``"auto"`` (hash iff k > 12).
    reexec:
        ``"delayed"`` (Section 3.3) or ``"eager"`` — parallel merge only.
    layout:
        ``"transformed"`` (coalesced, Section 4.1) or ``"natural"``.
    lookback:
        Look-back window length for speculation.
    cache_table:
        Enable the hot-state shared-memory cache (Section 4.2).
    collect:
        Extra outputs: ``"accept_count"``, ``"match_positions"``,
        ``"emissions"``. The latter two require the true chunk states and
        imply ``measure_success``-style truth recovery.
    price:
        Attach a modeled-V100 :class:`TimeBreakdown`.
    cpu_transition_ns:
        CPU baseline cost per input item (defaults to the calibrated
        constant; pass a Table 3-derived value for paper-scale speedups).
    backend:
        ``"vectorized"`` (one ``(n, k)`` gather per step), ``"codegen"``
        (the generated, per-``k`` specialized Python kernel from
        :mod:`repro.core.codegen.pykernel` — the paper's code-generation
        path), or ``"native"`` (the same generator idea compiled to
        machine code: :mod:`repro.core.native` emits specialized C for
        ``(k, kernel, collapse)``, JIT-compiles it with the system
        compiler, and caches artifacts by DFA fingerprint; automatically
        falls back to ``"vectorized"`` when no compiler or provider is
        usable). Functionally identical; codegen and native do not
        support ``cache_table`` or ``accept_count``. ``"dist"`` hands the
        whole run to the cross-host layer (:mod:`repro.dist`) — see the
        ``dist`` parameter; only ``k`` and ``lookback`` carry over, the
        modeled-GPU knobs do not apply across hosts.
    kernel:
        Local-processing stepping kernel: ``"lockstep"`` (default — the
        paper's one-symbol-per-gather Algorithm 3, which is what the
        modeled GPU simulates), ``"stride2"``/``"stride4"`` (multi-symbol
        stepping over composed tables, :mod:`repro.core.kernels`),
        ``"scalar"``, or ``"auto"`` (cost-model selection). Every kernel
        is functionally identical and fills the same algorithmic event
        counters; stride kernels change real wall clock, not modeled
        time. ``cache_table`` and ``accept_count`` need per-symbol
        stepping and force ``lockstep`` under ``"auto"``.
    collapse:
        Convergence layer (:mod:`repro.core.convergence`): ``"auto"``
        (default — probe the machine, enable lane collapse when a
        convergence horizon exists), ``"on"``, ``"off"``, or an explicit
        :class:`CollapseConfig`. When active, duplicate speculative lanes
        are deduplicated mid-chunk (bit-identical results, fewer physical
        gathers) and chunks whose covered speculation rows all converge
        are flagged so the merges skip their semi-join checks entirely.
        Functionally invisible — every mode produces identical results;
        ``stats.local_transitions`` keeps the modeled lock-step count
        either way.
    schedule:
        ``"barrier"`` (default — the lock-step stage pipeline) or
        ``"ooo"`` — the chunk scoreboard
        (:mod:`repro.core.scoreboard`): the merge consumes chunk maps as
        they complete, converged chunks retire immediately, and provable
        speculation misses re-execute *before* the merge finishes.
        Bit-identical results on every merge/kernel/backend/collapse
        combination.
    plan:
        Explicit :class:`repro.workloads.chunking.ChunkPlan` overriding
        the default near-equal partition (its chunk count then overrides
        the launch geometry's). A *skewed* plan (lengths differing by more
        than one — straggler modeling) runs in the natural layout with the
        vectorized lockstep backend, no collapse/cache/collect: under
        ``schedule="barrier"`` via divergent full-width stepping
        (:func:`repro.core.local.process_chunks_ragged`), under
        ``schedule="ooo"`` via the active-list driver that posts each
        chunk to the scoreboard at its true completion time.
    history:
        A :class:`repro.core.predictor.HistoryPredictor` (or a path to its
        JSON store) supplying learned start-state priors: past runs' true
        chunk-boundary states bias this run's speculation ranking, and
        this run's recovered truth is folded back in afterwards.
    trace:
        A :class:`repro.obs.RunTrace` to record per-stage wall-clock spans
        and speculation metrics into. When omitted, the ambient trace (if
        one was activated via ``RunTrace.activate()``) is used; with
        neither, observability is off and adds no measurable overhead.
    dist:
        ``backend="dist"`` only: a live
        :class:`repro.dist.coordinator.ShardCoordinator` (runs on its
        standing cluster), a dict of
        :func:`repro.dist.coordinator.run_distributed` keyword arguments
        (``num_agents``, ``agent_workers``, ``config``, ``net_faults``),
        or None for an ephemeral 2-agent loopback cluster.

    Returns
    -------
    SpecExecutionResult
        Final state, statistics, optional outputs, optional modeled timing,
        and the observing trace (if any).
    """
    if isinstance(dfa, (list, tuple)):
        # Multi-pattern group: one pass answers every machine at once.
        # Dispatches to :func:`repro.core.multipattern.run_multipattern`
        # (route="auto" — batched union stepping, or the minimised product
        # when it fits); use that entry point directly for route control.
        from repro.core.multipattern import run_multipattern

        if backend not in ("vectorized", "native"):
            raise ValueError(
                f"multi-pattern groups support backend='vectorized' or "
                f"'native', got {backend!r}"
            )
        for item in collect:
            check_in_set("collect item", item, ("match_positions",))
        return run_multipattern(
            dfa,
            inputs,
            k=k,
            num_chunks=num_blocks * threads_per_block,
            merge=merge,
            check=check,
            lookback=lookback,
            kernel=kernel,
            collapse=collapse,
            schedule=schedule,
            backend=backend,
            collect=collect,
            plan=plan,
            trace=trace,
        )
    if trace is not None:
        with trace.activate():
            return run_speculative(
                dfa, inputs, k=k, num_blocks=num_blocks,
                threads_per_block=threads_per_block, merge=merge, check=check,
                reexec=reexec, layout=layout, lookback=lookback,
                cache_table=cache_table, cache_budget_bytes=cache_budget_bytes,
                device=device, ranking=ranking, measure_success=measure_success,
                collect=collect, price=price, cpu_transition_ns=cpu_transition_ns,
                keep_merge_tree=keep_merge_tree, backend=backend, kernel=kernel,
                collapse=collapse, schedule=schedule, plan=plan, history=history,
                dist=dist,
            )
    check_in_set("merge", merge, ("sequential", "parallel"))
    check_in_set("check", check, ("auto", "nested", "hash"))
    check_in_set("reexec", reexec, ("delayed", "eager"))
    check_in_set("layout", layout, ("transformed", "natural"))
    check_in_set(
        "backend", backend, ("vectorized", "codegen", "native", "dist")
    )
    if backend == "dist":
        return _run_dist(dfa, inputs, k=k, lookback=lookback, dist=dist)
    check_in_set("kernel", kernel, ("auto",) + tuple(sorted(KERNELS)))
    check_in_set("schedule", schedule, ("barrier", "ooo"))
    if isinstance(collapse, str):
        check_in_set("collapse", collapse, ("auto", "on", "off"))
    for item in collect:
        check_in_set("collect item", item, ("accept_count", "match_positions", "emissions"))

    inputs = np.ascontiguousarray(np.asarray(inputs))
    if inputs.ndim != 1:
        raise ValueError(f"inputs must be 1-D, got shape {inputs.shape}")
    geo = launch_geometry(device, num_blocks, threads_per_block)
    n = geo.total_threads

    enumerative = k is None or k >= dfa.num_states
    k_eff = dfa.num_states if enumerative else int(k)
    if k_eff < 1:
        raise ValueError(f"k must be >= 1, got {k}")

    if plan is None:
        plan = plan_chunks(inputs.size, n)
    else:
        if plan.num_items != inputs.size:
            raise ValueError(
                f"plan covers {plan.num_items} items but inputs has "
                f"{inputs.size}"
            )
        n = plan.num_chunks
    ragged = plan.max_len - plan.min_len > 1
    if ragged:
        # Skewed plans model stragglers; only the natural-layout lockstep
        # paths (vectorized NumPy or the compiled per-chunk loop)
        # understand them.
        if backend == "codegen":
            raise ValueError(
                "skewed plans require backend='vectorized' or 'native'"
            )
        if kernel not in ("auto", "lockstep"):
            raise ValueError(f"skewed plans require kernel='lockstep', got {kernel!r}")
        kernel = "lockstep"
        if cache_table or collect:
            raise ValueError(
                "skewed plans do not support cache_table or collect outputs"
            )
        layout = "natural"
        collapse = "off"

    predictor: HistoryPredictor | None = None
    if history is not None:
        predictor = (
            history
            if isinstance(history, HistoryPredictor)
            else HistoryPredictor(history)
        )

    # --- convergence-layer resolution ------------------------------------- #
    # collapse_requested gates the coverage/converged bookkeeping (cheap,
    # and the merges exploit it even when the probe said lane collapse
    # itself would not pay); collapse_cfg is the resolved scan config, or
    # None when lane collapse stays off. The codegen backend's compiled
    # kernel has no collapse hook; converged-chunk merge skipping still
    # applies there.
    collapse_requested = not (
        collapse is None
        or collapse == "off"
        or (isinstance(collapse, CollapseConfig) and not collapse.enabled)
    )
    if collapse_requested:
        with trace_span("engine.collapse_resolve", k=k_eff) as sp:
            collapse_cfg = resolve_collapse(collapse, dfa, inputs, k=k_eff)
            sp.set(resolved=collapse_cfg.label if collapse_cfg else "off")
    else:
        collapse_cfg = None

    # --- kernel resolution ------------------------------------------------ #
    # Per-symbol features (hot-state cache accounting, accepting-visit
    # counts) are incompatible with multi-symbol stepping; "auto" quietly
    # keeps lockstep there, an explicit stride request is an error.
    needs_per_symbol = cache_table or ("accept_count" in collect)
    kplan = None
    kernel_resolved = "lockstep"
    nplan = None
    if backend == "native":
        if needs_per_symbol:
            raise ValueError(
                "backend='native' does not support cache_table or "
                "accept_count; use the default vectorized backend"
            )
        from repro.core.native import load_native_plan

        # Collapse behaviour is baked into the artifact; the plan is built
        # inside the loader (lockstep included — the compiled per-symbol
        # loop still removes the per-step dispatch).
        nplan = load_native_plan(
            dfa, k=k_eff, kernel=kernel, collapse=collapse_cfg,
            chunk_len=plan.max_len, num_chunks=n,
        )
        if nplan is None:
            # No compiler / compile failure / smoke mismatch — already
            # counted under native.fallback.*; the NumPy path is always
            # functionally identical.
            backend = "vectorized"
        else:
            kplan = nplan.kplan
            kernel_resolved = kplan.kernel
            # Native reads the natural layout directly (explicit
            # starts/lengths per chunk); skip the transform copy.
            layout = "natural"
    if nplan is None and kernel not in ("lockstep",):
        if backend == "codegen" or needs_per_symbol:
            if kernel != "auto":
                raise ValueError(
                    f"kernel={kernel!r} requires per-symbol-free local "
                    "processing; cache_table, accept_count, and "
                    "backend='codegen' support only kernel='lockstep'"
                )
        else:
            kplan = plan_kernel(
                dfa, chunk_len=plan.max_len, num_chunks=n, k=k_eff,
                kernel=kernel,
            )
            if kplan.kernel == "lockstep":
                kplan = None  # incumbent path is the tuned lockstep kernel
            else:
                kernel_resolved = kplan.kernel

    config = EngineConfig(
        k=k_eff,
        enumerative=enumerative,
        num_blocks=num_blocks,
        threads_per_block=threads_per_block,
        merge=merge,
        check=check,
        reexec=reexec,
        layout=layout,
        lookback=lookback,
        cache_table=cache_table,
        device=device,
        kernel=kernel_resolved,
        collapse=collapse_cfg.label if collapse_cfg is not None else "off",
        schedule=schedule,
        backend="native" if nplan is not None else backend,
    )
    stats = ExecStats(
        num_items=int(inputs.size),
        num_chunks=n,
        k=k_eff,
        num_states=dfa.num_states,
        num_inputs=dfa.num_inputs,
    )

    # --- speculation ------------------------------------------------------ #
    covered: np.ndarray | None = None
    with trace_span("engine.speculate", chunks=n, k=k_eff, lookback=lookback):
        if enumerative:
            spec = enumerative_spec(dfa, n)
            if collapse_requested:
                # spec-N enumerates every state: the true boundary state
                # is always among the speculated ones.
                covered = np.ones(n, dtype=bool)
        else:
            prior = None
            if ranking is None and inputs.size:
                # Weight states by measured occupancy over an input-prefix
                # sample — the offline-profiling analog of principled
                # speculation. This is preprocessing (like the paper's
                # look-back tables), not counted execution work.
                from repro.core.lookback import state_prior

                prior = state_prior(dfa, sample=inputs[: 1 << 14])
            if ranking is None and predictor is not None:
                # Learned boundary-state occupancy from past runs of this
                # machine — the branch-predictor analog. Blended evenly
                # with the sample prior (history measures exactly the
                # boundary distribution speculation needs; the sample
                # keeps a fresh input from being mis-ranked by stale
                # history).
                hist = predictor.prior(dfa)
                if hist is not None:
                    prior = hist if prior is None else 0.5 * (prior + hist)
            out = speculate(
                dfa,
                inputs,
                plan,
                k_eff,
                lookback=lookback,
                prior=prior,
                ranking=ranking,
                stats=stats,
                return_coverage=collapse_requested,
            )
            spec, covered = out if collapse_requested else (out, None)

    # --- hot-state cache plan ---------------------------------------------- #
    cache = None
    cache_mask = None
    if cache_table:
        budget = (
            cache_budget_bytes
            if cache_budget_bytes is not None
            else device.shared_mem_per_sm_bytes // 2
        )
        cache = plan_hot_states(dfa, shared_budget_bytes=budget)
        cache_mask = cache.resident
        stats.cache_rows_resident = cache.rows_resident

    # --- local processing ---------------------------------------------------- #
    with trace_span("engine.layout", layout=layout):
        transformed = (
            transform_layout(inputs, plan) if layout == "transformed" else None
        )
    with trace_span(
        "engine.local_exec", backend=backend, chunks=n, k=k_eff,
        kernel=kernel_resolved, schedule=schedule,
    ):
        if ragged and nplan is None:
            acc = None
            if schedule == "ooo":
                # Deferred: the active-list driver executes chunks and
                # posts them to the scoreboard as they complete, inside
                # the merge stage below.
                end = None
            else:
                end = process_chunks_ragged(dfa, inputs, plan, spec, stats=stats)
        elif nplan is not None:
            # One compiled call covers near-equal and skewed plans alike
            # (per-chunk lengths are explicit in the native loop); under
            # schedule="ooo" the executed chunks are posted shortest-first
            # below, like any barrier backend.
            end = nplan.process_chunks(inputs, plan, spec, stats=stats)
            acc = None
        elif backend == "codegen":
            if cache_mask is not None or "accept_count" in collect:
                raise ValueError(
                    "backend='codegen' does not support cache_table or accept_count; "
                    "use the default vectorized backend"
                )
            from repro.core.codegen.pykernel import compile_local_kernel

            kernel = compile_local_kernel(k_eff)
            end = kernel(
                dfa.table,
                spec,
                plan.starts,
                plan.lengths,
                inputs,
                transformed.main if transformed is not None else None,
                transformed.tail if transformed is not None else None,
            )
            acc = None
            stats.local_steps += plan.max_len
            stats.local_transitions += int(plan.lengths.sum()) * k_eff
            stats.local_input_reads += int(plan.lengths.sum())
        elif kplan is not None:
            end = process_chunks_kernel(
                dfa, inputs, plan, spec, kplan,
                transformed=transformed, stats=stats, collapse=collapse_cfg,
            )
            acc = None
        else:
            end, acc = process_chunks(
                dfa,
                inputs,
                plan,
                spec,
                transformed=transformed,
                stats=stats,
                cache_mask=cache_mask,
                count_accepting="accept_count" in collect,
                collapse=collapse_cfg,
            )
    converged = None
    if collapse_requested:
        converged = converged_chunks(end, covered)
        stats.chunks_converged += int(converged.sum())

    # --- merge ------------------------------------------------------------------
    tree = None
    true_starts: np.ndarray | None = None
    with trace_span(
        "engine.merge", strategy=merge, check=check, reexec=reexec,
        schedule=schedule,
    ):
        if schedule == "ooo":
            reexec_fn = None
            if nplan is not None:
                # Provable speculation misses re-execute inside the
                # compiled loop instead of the Python step loop.
                def reexec_fn(c: int, s: int) -> int:
                    return nplan.run_segment(inputs[plan.chunk_slice(c)], s)
            board = ChunkScoreboard(
                dfa, inputs, plan, k_eff, mode=merge, check=check, stats=stats,
                reexec_fn=reexec_fn,
            )
            if end is None:
                # Ragged plan: the active-list driver executes the chunks
                # and posts each one the step it finishes — short chunks
                # merge (and provable misses re-execute) while stragglers
                # are still stepping.
                run_chunks_active(dfa, inputs, plan, spec, board, stats=stats)
            else:
                # Near-equal plan already executed by a barrier backend:
                # chunks complete in (simulated) length order, so post
                # shortest-first to exercise out-of-order arrival.
                for c in np.argsort(plan.lengths, kind="stable"):
                    board.post(
                        int(c),
                        spec[c],
                        end[c],
                        converged=(
                            bool(converged[c]) if converged is not None else False
                        ),
                    )
            final_state, true_starts = board.resolve()
            results = ChunkResults(
                spec=board.spec, end=board.end, valid=board.valid,
                converged=converged,
            )
        else:
            results = ChunkResults(
                spec=spec, end=end, valid=np.ones_like(spec, dtype=bool),
                converged=converged,
            )
            if merge == "sequential":
                final_state, true_starts = merge_sequential(
                    dfa, inputs, plan, results, check=check, stats=stats
                )
            else:
                final_state, tree = merge_parallel(
                    dfa,
                    inputs,
                    plan,
                    results,
                    check=check,
                    reexec=reexec,
                    threads_per_block=threads_per_block,
                    warp_size=device.warp_size,
                    stats=stats,
                )

    # --- truth recovery (instrumentation; uncounted) --------------------------- #
    need_truth = (
        true_starts is None
        and (measure_success or "match_positions" in collect or "emissions" in collect)
    )
    with trace_span("engine.truth_recovery", ran=need_truth):
        if need_truth:
            from repro.core.merge_seq import true_boundary_walk

            _, true_starts = true_boundary_walk(dfa, inputs, plan, results)
        if (
            merge == "parallel"
            and schedule == "barrier"  # the scoreboard counts during resolution
            and measure_success
            and true_starts is not None
            and n > 1
        ):
            hits = int(
                ((spec[1:] == true_starts[1:, None]).any(axis=1)).sum()
            )
            stats.success_hits += hits
            stats.success_total += n - 1
        if predictor is not None and true_starts is not None:
            # Ground-truth boundary states feed the cross-run history — the
            # branch-predictor update step.
            predictor.observe(dfa, true_starts)

    # --- output recovery ----------------------------------------------------------
    match_positions = None
    emissions = None
    if collect:
        with trace_span("engine.output_recovery", collect=list(collect)):
            if "match_positions" in collect:
                match_positions = recover_accepts(dfa, inputs, plan, true_starts)
            if "emissions" in collect:
                emissions = recover_emissions(dfa, inputs, plan, true_starts)

    # --- modeled timing --------------------------------------------------------------
    timing = None
    if price:
        with trace_span("engine.price"):
            model = CostModel(
                device=device,
                **(
                    {"cpu_transition_ns": cpu_transition_ns}
                    if cpu_transition_ns is not None
                    else {}
                ),
            )
            timing = model.price(
                stats,
                num_blocks=num_blocks,
                threads_per_block=threads_per_block,
                merge=merge,
                layout_transformed=(layout == "transformed"),
                cache_enabled=cache_table,
            )
    run_trace = current_trace()
    if run_trace is not None:
        run_trace.count("engine.runs", 1)
        if stats.success_total:
            run_trace.count("speculation.boundary_hits", stats.success_hits)
            run_trace.count("speculation.boundary_total", stats.success_total)
        if stats.collapse_scans:
            run_trace.count("spec.collapse_scans", stats.collapse_scans)
        if stats.lanes_collapsed:
            run_trace.count("spec.lanes_collapsed", stats.lanes_collapsed)
        if stats.chunks_converged:
            run_trace.count("spec.chunks_converged", stats.chunks_converged)
        if stats.checks_skipped:
            run_trace.count("spec.checks_skipped", stats.checks_skipped)

    return SpecExecutionResult(
        final_state=final_state,
        stats=stats,
        config=config,
        accepted=bool(dfa.accepting[final_state]),
        true_starts=true_starts,
        accept_counts=acc,
        match_positions=match_positions,
        emissions=emissions,
        timing=timing,
        cache=cache,
        merge_tree=tree if keep_merge_tree else None,
        trace=run_trace,
    )


@dataclass
class BatchExecutionResult:
    """Per-request outcomes of one :func:`run_speculative_batch` call.

    Attributes
    ----------
    final_states:
        ``(num_requests,)`` int32 — each request's machine state after its
        own segment, identical to running that segment alone.
    accepted:
        ``(num_requests,)`` bool — whether each final state is accepting.
    stats:
        Counted algorithmic events for the whole coalesced batch (one
        :class:`repro.core.types.ExecStats` — per-request attribution is
        not meaningful once chunks share a plan).
    num_requests:
        Number of coalesced requests (including empty ones).
    plan:
        The coalesced :class:`repro.workloads.chunking.ChunkPlan`, or None
        when every segment was empty.
    owners:
        ``(num_chunks,)`` int32 mapping each chunk of ``plan`` back to the
        request it belongs to (None when ``plan`` is None).
    """

    final_states: np.ndarray
    accepted: np.ndarray
    stats: ExecStats
    num_requests: int
    plan: ChunkPlan | None = None
    owners: np.ndarray | None = None


def run_speculative_batch(
    dfa: DFA,
    segments: list[np.ndarray],
    *,
    starts: list[int] | np.ndarray | None = None,
    k: int | None = 4,
    lookback: int = 8,
    check: str = "auto",
    chunk_items: int = 1 << 13,
    kernel_plan: KernelPlan | None = None,
    prior: np.ndarray | None = None,
    stats: ExecStats | None = None,
    native=None,
) -> BatchExecutionResult:
    """Coalesce many independent requests into one speculative execution.

    Every request shares ``dfa`` but is otherwise independent: request
    ``r`` starts at ``starts[r]`` (default ``dfa.start``) and its final
    state is exactly what running it alone would produce. The segments are
    concatenated into a single chunk plan (each request contributes
    ``ceil(len/chunk_items)`` chunks), speculated once, executed by the
    active-list driver, and resolved on one seeded
    :class:`repro.core.scoreboard.ChunkScoreboard` — each request's head
    chunk carries a ``seeds`` entry, so resolution fronts never propagate
    across request boundaries and no cross-request composition occurs.

    This is the serving layer's execution primitive
    (:mod:`repro.serve`): the per-call overhead of ``run_speculative``
    (prior sampling, planning, a Python step loop per request) is paid
    once for the whole batch instead of once per request.

    Parameters
    ----------
    dfa:
        The machine shared by every request in the batch.
    segments:
        One 1-D dense-symbol array per request (empty arrays allowed —
        they resolve to their start state without executing).
    starts:
        Optional per-request starting states (defaults to ``dfa.start``);
        lets streaming callers batch continuation segments.
    k:
        Speculation width per chunk (None = enumerative spec-N).
    lookback:
        Look-back window for speculation (head chunks additionally get
        their true start pinned into the speculation row).
    check:
        Runtime-check implementation for scoreboard probes.
    chunk_items:
        Target items per chunk; requests longer than this split into
        multiple chunks so stragglers don't serialize the batch.
    kernel_plan:
        Optional :class:`repro.core.kernels.KernelPlan` used for scalar
        re-execution of speculation misses (stride kernels cut the Python
        loop count); the fingerprint-keyed serving cache passes one in.
    prior:
        Optional state-occupancy prior for speculation ranking (cached per
        DFA by the serving layer; sampled from the batch input otherwise).
    stats:
        Accumulate events into an existing
        :class:`repro.core.types.ExecStats` (the server carries one per
        round) instead of a fresh one.
    native:
        A loaded :class:`repro.core.native.NativeKernel` compiled for
        this machine at width ``k`` (the serving layer compiles one at
        tenant-registration time, off the request path). When given, the
        batch's chunks execute in the compiled loop and speculation
        misses re-execute natively; the seeded scoreboard resolution is
        unchanged and results stay bit-identical.
    """
    if starts is None:
        starts_arr = np.full(len(segments), dfa.start, dtype=np.int64)
    else:
        starts_arr = np.asarray(starts, dtype=np.int64)
        if starts_arr.shape != (len(segments),):
            raise ValueError(
                f"starts must have one entry per segment, got "
                f"{starts_arr.shape} for {len(segments)} segments"
            )
        if starts_arr.size and (
            starts_arr.min() < 0 or starts_arr.max() >= dfa.num_states
        ):
            raise ValueError("starts contain states outside the machine")
    segs = []
    for i, seg in enumerate(segments):
        seg = np.ascontiguousarray(np.asarray(seg))
        if seg.ndim != 1:
            raise ValueError(f"segment {i} must be 1-D, got shape {seg.shape}")
        segs.append(seg)
    if chunk_items < 1:
        raise ValueError(f"chunk_items must be >= 1, got {chunk_items}")

    num_requests = len(segs)
    enumerative = k is None or k >= dfa.num_states
    k_eff = dfa.num_states if enumerative else int(k)
    if k_eff < 1:
        raise ValueError(f"k must be >= 1, got {k}")

    final_states = np.empty(num_requests, dtype=np.int32)
    lengths: list[int] = []
    owners: list[int] = []
    heads: dict[int, int] = {}
    tail_chunk = np.full(num_requests, -1, dtype=np.int64)
    for r, seg in enumerate(segs):
        if not seg.size:
            final_states[r] = starts_arr[r]  # resolved out-of-band
            continue
        nch = -(-seg.size // chunk_items)
        heads[len(lengths)] = int(starts_arr[r])
        lengths.extend(plan_chunks(seg.size, nch).lengths.tolist())
        tail_chunk[r] = len(lengths) - 1
        owners.extend([r] * nch)

    if not lengths:
        stats = stats or ExecStats(
            num_items=0, num_chunks=0, k=k_eff,
            num_states=dfa.num_states, num_inputs=dfa.num_inputs,
        )
        return BatchExecutionResult(
            final_states=final_states,
            accepted=dfa.accepting[final_states].astype(bool),
            stats=stats,
            num_requests=num_requests,
        )

    concat = np.concatenate([s for s in segs if s.size])
    plan = plan_from_lengths(np.asarray(lengths, dtype=np.int64))
    n = plan.num_chunks
    if stats is None:
        stats = ExecStats(
            num_items=int(concat.size), num_chunks=n, k=k_eff,
            num_states=dfa.num_states, num_inputs=dfa.num_inputs,
        )

    with trace_span(
        "engine.batch", requests=num_requests, chunks=n, k=k_eff,
        items=int(concat.size),
    ):
        with trace_span("engine.speculate", chunks=n, k=k_eff, lookback=lookback):
            if enumerative:
                spec = enumerative_spec(dfa, n)
            else:
                if prior is None:
                    prior = state_prior(dfa, sample=concat[: 1 << 14])
                spec = speculate(
                    dfa, concat, plan, k_eff,
                    lookback=lookback, prior=prior, stats=stats,
                )
                # Head chunks are request boundaries, not speculative ones:
                # their true incoming state is known. Pin it into the row so
                # the seeded probe hits instead of forcing a re-execution
                # (the look-back window of a head chunk reads the previous
                # request's tail, which predicts nothing).
                for h, s in heads.items():
                    if not (spec[h] == s).any():
                        spec[h, -1] = s
        reexec_fn = None
        if native is not None and native.spec.k == k_eff:
            def reexec_fn(c: int, s: int) -> int:
                return native.run_segment(concat[plan.chunk_slice(c)], s)
        elif kernel_plan is not None:
            def reexec_fn(c: int, s: int) -> int:
                return run_segment_kernel(
                    kernel_plan, concat[plan.chunk_slice(c)], s
                )
        board = ChunkScoreboard(
            dfa, concat, plan, k_eff, mode="parallel", check=check,
            stats=stats, reexec_fn=reexec_fn, seeds=heads,
        )
        if native is not None and native.spec.k == k_eff:
            # Execute the whole batch in one compiled call, then post the
            # finished chunks shortest-first (simulated completion order —
            # the same arrival pattern the active-list driver produces).
            end = native.process_chunks(concat, plan, spec, stats=stats)
            for c in np.argsort(plan.lengths, kind="stable"):
                board.post(int(c), spec[c], end[c])
        else:
            run_chunks_active(dfa, concat, plan, spec, board, stats=stats)
        board.resolve()
        live = tail_chunk >= 0
        final_states[live] = board.out_state[tail_chunk[live]]

    return BatchExecutionResult(
        final_states=final_states,
        accepted=dfa.accepting[final_states].astype(bool),
        stats=stats,
        num_requests=num_requests,
        plan=plan,
        owners=np.asarray(owners, dtype=np.int32),
    )


def _run_dist(dfa, inputs, *, k, lookback, dist) -> SpecExecutionResult:
    """``backend="dist"``: delegate the run to the cross-host layer.

    ``dist`` selects the infrastructure: a live
    :class:`repro.dist.coordinator.ShardCoordinator` runs on its standing
    cluster; a dict is keyword arguments for
    :func:`repro.dist.coordinator.run_distributed` (``num_agents``,
    ``agent_workers``, ``config``, ``net_faults``); None gets an
    ephemeral 2-agent loopback cluster. Results are bit-exact with every
    other backend; the modeled-GPU instrumentation (pricing, layouts,
    caches) does not apply across hosts and is omitted.
    """
    from repro.dist.coordinator import DistConfig, ShardCoordinator, run_distributed

    inputs = np.ascontiguousarray(np.asarray(inputs, dtype=np.int32))
    if inputs.ndim != 1:
        raise ValueError(f"inputs must be 1-D, got shape {inputs.shape}")
    if isinstance(dist, ShardCoordinator):
        res = dist.run(inputs)
    else:
        opts = dict(dist) if dist else {}
        opts.setdefault("config", DistConfig(k=k, lookback=lookback))
        res = run_distributed(dfa, inputs, **opts)
    k_eff = dfa.num_states if (k is None or k >= dfa.num_states) else int(k)
    config = EngineConfig(
        k=k_eff,
        enumerative=k_eff >= dfa.num_states,
        num_blocks=1,
        threads_per_block=max(1, res.num_shards),
        merge="parallel",
        check="auto",
        reexec="delayed",
        layout="natural",
        lookback=lookback,
        cache_table=False,
        device=TESLA_V100,
        kernel="lockstep",
        collapse="off",
        schedule="barrier",
        backend="dist",
    )
    return SpecExecutionResult(
        final_state=int(res.final_state),
        stats=res.stats,
        config=config,
        accepted=bool(dfa.accepting[int(res.final_state)]),
        trace=current_trace(),
    )


def run_inprocess_fallback(
    dfa: DFA,
    inputs: np.ndarray,
    *,
    start: int | None = None,
    k: int | None = 4,
    kernel: str = "lockstep",
) -> SpecExecutionResult:
    """Degraded-mode execution: one process, no pool, guaranteed to finish.

    The resilience layer (:mod:`repro.core.resilience`) calls this when a
    :class:`repro.core.mp_executor.ScaleoutPool` run cannot be recovered —
    retries exhausted or the pool below quorum. It is a thin wrapper over
    :func:`run_speculative` with pricing and success measurement switched
    off (a degraded run wants an answer, not instrumentation), honouring a
    carried ``start`` state for streaming callers.
    """
    run_dfa = dfa if start is None or start == dfa.start else dfa.with_start(start)
    return run_speculative(
        run_dfa,
        inputs,
        k=k,
        num_blocks=1,
        threads_per_block=64,
        price=False,
        measure_success=False,
        kernel=kernel,
    )
