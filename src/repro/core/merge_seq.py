"""Sequential merge — the baseline whose cost grows linearly in thread count.

A single (simulated) thread walks the chunk results in order, carrying the
one true state (Figure 4a). Every step probes the next chunk's ``k``
speculated states; a miss triggers a re-execution that is always *necessary*
(the walk knows the true incoming state). This is the merge whose O(n) cost
caps the scalability of every spec-k configuration in Figure 3.

The walk also yields the true starting state of every chunk, which the
engine reuses for speculation-success measurement and output recovery.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.checks import count_hash, count_nested, count_skipped, select_check
from repro.core.types import ChunkResults, ExecStats
from repro.fsm.dfa import DFA
from repro.fsm.run import run_segment
from repro.obs.trace import current_trace, trace_span
from repro.workloads.chunking import ChunkPlan

__all__ = ["merge_sequential", "true_boundary_walk"]

# Dense-LUT fast path bound: n_chunks * num_states entries (int32).
_LUT_ENTRY_BUDGET = 64_000_000


def true_boundary_walk(
    dfa: DFA,
    inputs: np.ndarray,
    plan: ChunkPlan,
    results: ChunkResults,
) -> tuple[int, np.ndarray]:
    """Uncounted truth recovery: ``(final_state, true_starts)``.

    Semantically identical to :func:`merge_sequential` with ``stats=None``
    but built for speed: the per-chunk speculation maps are scattered into
    a dense ``(num_chunks, num_states)`` lookup table once, so the walk is
    a scalar chain of O(1) indexings instead of per-chunk searches. Used
    by the engine for success-rate measurement and output recovery after a
    parallel merge (instrumentation, not part of the algorithm's cost).
    """
    n, n_states = results.num_chunks, dfa.num_states
    if n * n_states > _LUT_ENTRY_BUDGET:
        return merge_sequential(dfa, inputs, plan, results, stats=None)
    lut = np.full((n, n_states), -1, dtype=np.int32)
    rows = np.repeat(np.arange(n), results.k)
    valid = results.valid.ravel()
    lut[rows[valid], results.spec.ravel()[valid]] = results.end.ravel()[valid]

    true_starts = np.empty(n, dtype=np.int32)
    cur = int(dfa.start)
    starts, lengths = plan.starts, plan.lengths
    for c in range(n):
        true_starts[c] = cur
        nxt = int(lut[c, cur])
        if nxt < 0:
            lo = int(starts[c])
            nxt = run_segment(dfa, inputs[lo : lo + int(lengths[c])], cur)
        cur = nxt
    return cur, true_starts


def merge_sequential(
    dfa: DFA,
    inputs: np.ndarray,
    plan: ChunkPlan,
    results: ChunkResults,
    *,
    check: str = "auto",
    stats: ExecStats | None = None,
) -> tuple[int, np.ndarray]:
    """Walk chunk results sequentially; return ``(final_state, true_starts)``.

    ``true_starts[c]`` is the exact state the machine is in when chunk ``c``
    begins — ground truth for success-rate measurement. When ``stats`` is
    None the walk is uncounted (the engine uses that mode to obtain truth
    for parallel-merge runs without polluting their cost profile).
    """
    n = results.num_chunks
    k = results.k
    impl = select_check(k, check)
    true_starts = np.empty(n, dtype=np.int32)
    cur = np.int32(dfa.start)

    spec = results.spec
    end = results.end
    valid = results.valid

    counted = stats is not None
    if counted:
        stats.seq_merge_steps += n

    # Observability accumulators — kept as locals in the walk's hot loop and
    # published once at the end (one counter update per run, not per chunk).
    obs = current_trace()
    semijoin_match = 0
    reexec_time = 0.0
    reexec_items_obs = 0

    reexec_runs = 0
    with trace_span("merge.sequential_walk", chunks=n):
        (
            cur, reexec_runs, semijoin_match, semijoin_skipped,
            reexec_time, reexec_items_obs,
        ) = _walk(
            dfa, inputs, plan, spec, end, valid, results.converged,
            true_starts, cur,
            n=n, k=k, impl=impl, stats=stats, counted=counted, obs=obs,
        )
    if counted and reexec_runs:
        # In the sequential walk, every re-execution is on the critical path.
        stats.reexec_max_chain = max(stats.reexec_max_chain, reexec_runs)
    if obs is not None:
        obs.count("merge.semijoin.match", semijoin_match)
        obs.count("merge.semijoin.miss", n - semijoin_match - semijoin_skipped)
        if semijoin_skipped:
            obs.count("merge.semijoin.skipped", semijoin_skipped)
        if reexec_runs:
            obs.observe("reexec.seq_s", reexec_time)
            obs.count("reexec.seq.items", reexec_items_obs)
    return int(cur), true_starts


def _walk(
    dfa: DFA,
    inputs: np.ndarray,
    plan: ChunkPlan,
    spec: np.ndarray,
    end: np.ndarray,
    valid: np.ndarray,
    converged: np.ndarray | None,
    true_starts: np.ndarray,
    cur: np.int32,
    *,
    n: int,
    k: int,
    impl: str,
    stats: ExecStats | None,
    counted: bool,
    obs,
) -> tuple[np.int32, int, int, int, float, int]:
    """The sequential walk body; returns the carried state and accumulators."""
    semijoin_match = 0
    semijoin_skipped = 0
    reexec_runs = 0
    reexec_time = 0.0
    reexec_items_obs = 0
    for c in range(n):
        true_starts[c] = cur
        if converged is not None and converged[c]:
            # Converged chunk: the map is a total constant over achievable
            # incoming states, and ``cur`` (the true state) is achievable —
            # a guaranteed hit with a known answer, no semi-join needed.
            cur = end[c, 0]
            semijoin_skipped += 1
            if counted:
                count_skipped(1, stats)
                if c > 0:
                    stats.success_total += 1
                    stats.success_hits += 1
            continue
        row_valid = valid[c]
        # Semi-join of the single true state against the chunk's spec set.
        hits = np.flatnonzero((spec[c] == cur) & row_valid)
        found = hits.size > 0
        idx = int(hits[0]) if found else 0
        if counted:
            mi = np.array([[idx]])
            fo = np.array([[found]])
            vl = np.array([[True]])
            if impl == "nested":
                count_nested(mi, fo, vl, k, stats)
            else:
                count_hash(
                    np.array([[cur]]), vl, spec[c][None, :], row_valid[None, :],
                    mi, fo, stats,
                )
        if c > 0 and counted:
            stats.success_total += 1
            if found:
                stats.success_hits += 1
        if found:
            cur = end[c, idx]
            semijoin_match += 1
        else:
            t0 = time.perf_counter() if obs is not None else 0.0
            seg = inputs[plan.chunk_slice(c)]
            cur = np.int32(run_segment(dfa, seg, int(cur)))
            reexec_runs += 1
            if counted:
                stats.reexec_chunks_seq += 1
                stats.reexec_items_seq += int(seg.size)
            if obs is not None:
                reexec_time += time.perf_counter() - t0
                reexec_items_obs += int(seg.size)
    return (
        cur, reexec_runs, semijoin_match, semijoin_skipped,
        reexec_time, reexec_items_obs,
    )
