"""History-based start-state prediction: priors learned across runs.

Look-back speculation ranks candidate boundary states by a *prior* over
state occupancy (:func:`repro.core.lookback.state_prior`), normally
measured from an input-prefix sample. Ko et al.'s speculative parallel
membership test shows that historical success statistics make a better
predictor than any single sample: real deployments run the same machine
over many inputs, and the empirical distribution of *true* chunk-boundary
states converges quickly.

:class:`HistoryPredictor` is that branch-predictor analog for the chunk
scoreboard. It keys observations by a content fingerprint of the machine
(:func:`dfa_fingerprint`), accumulates the true per-chunk starting states
recovered after each run (ground truth from the merge, not a guess), and
feeds the learned occupancy back into the ranking used by
:func:`repro.core.lookback.state_ranking` / ``speculate`` on the next run.
Persistence is an optional JSON file written atomically (temp + rename),
so concurrent runs never observe a torn store; with no path the predictor
learns in memory only.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

import numpy as np

from repro.fsm.dfa import DFA
from repro.obs.trace import add_count

__all__ = ["dfa_fingerprint", "HistoryPredictor"]

_FORMAT_VERSION = 1


def dfa_fingerprint(dfa: DFA) -> str:
    """Content hash identifying a machine across processes and runs.

    Covers the transition table, the start state, and the accepting mask —
    two machines with the same fingerprint have identical speculation
    behaviour, so their boundary-state histories are interchangeable.
    """
    h = hashlib.sha1()
    h.update(np.ascontiguousarray(dfa.table, dtype=np.int32).tobytes())
    h.update(int(dfa.start).to_bytes(4, "little"))
    h.update(np.ascontiguousarray(dfa.accepting, dtype=np.bool_).tobytes())
    return h.hexdigest()


class HistoryPredictor:
    """Per-machine priors over true chunk-boundary states, learned over runs.

    Parameters
    ----------
    path:
        JSON store location. ``None`` keeps the history in memory only
        (useful for tests and single-process sessions); with a path the
        store is loaded eagerly and re-written atomically after every
        :meth:`observe`.
    smoothing:
        Laplace term added to the learned counts so states never observed
        at a boundary remain speculable.
    """

    def __init__(self, path: str | os.PathLike | None = None, *, smoothing: float = 0.5):
        self.path = os.fspath(path) if path is not None else None
        self.smoothing = float(smoothing)
        self._store: dict[str, dict] = {}
        if self.path is not None and os.path.exists(self.path):
            self._load()

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as f:
                raw = json.load(f)
        except (OSError, ValueError):
            # A torn or foreign file is treated as an empty history — the
            # predictor degrades to the sample prior, never to an error —
            # and the corruption is made visible on the ambient trace.
            add_count("predictor.load_corrupt")
            self._store = {}
            return
        if not isinstance(raw, dict) or raw.get("version") != _FORMAT_VERSION:
            add_count("predictor.load_corrupt")
            self._store = {}
            return
        machines = raw.get("machines", {})
        if not isinstance(machines, dict):
            add_count("predictor.load_corrupt")
            self._store = {}
            return
        store: dict[str, dict] = {}
        dropped = False
        for fp, entry in machines.items():
            if not (
                isinstance(entry, dict)
                and isinstance(entry.get("counts"), list)
                and all(
                    isinstance(c, (int, float)) and not isinstance(c, bool)
                    for c in entry["counts"]
                )
            ):
                dropped = True
                continue
            store[fp] = entry
        if dropped:
            # Partial corruption: keep the sound entries, count the rot.
            add_count("predictor.load_corrupt")
        self._store = store

    def save(self) -> None:
        """Write the store atomically (temp file + rename); no-op in memory mode."""
        if self.path is None:
            return
        payload = {"version": _FORMAT_VERSION, "machines": self._store}
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(payload, f)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------ #
    # prediction
    # ------------------------------------------------------------------ #

    def runs_observed(self, dfa: DFA) -> int:
        """How many runs have contributed history for this machine."""
        entry = self._store.get(dfa_fingerprint(dfa))
        return int(entry["runs"]) if entry else 0

    def prior(self, dfa: DFA) -> np.ndarray | None:
        """Learned occupancy prior for ``dfa``, or None with no history.

        Normalized over ``dfa.num_states`` with Laplace smoothing; suitable
        as the ``prior=`` argument of :func:`repro.core.lookback.speculate`
        or :func:`repro.core.lookback.state_ranking`.
        """
        entry = self._store.get(dfa_fingerprint(dfa))
        if entry is None:
            return None
        counts = np.asarray(entry["counts"], dtype=np.float64)
        if counts.shape != (dfa.num_states,):
            return None  # stale entry from a differently-sized machine
        counts = counts + self.smoothing
        return counts / counts.sum()

    def ranking(self, dfa: DFA) -> np.ndarray | None:
        """Learned state priority (0 = most likely), or None with no history."""
        prior = self.prior(dfa)
        if prior is None:
            return None
        from repro.core.lookback import state_ranking

        return state_ranking(dfa, prior=prior)

    # ------------------------------------------------------------------ #
    # learning
    # ------------------------------------------------------------------ #

    def observe(self, dfa: DFA, true_starts: np.ndarray) -> None:
        """Fold one run's recovered true chunk-starting states into history.

        ``true_starts`` is the ground-truth per-chunk incoming-state vector
        the merge recovered (``SpecExecutionResult.true_starts``). Chunk 0
        is excluded — its state is the machine's start, never predicted.
        Persists immediately when a ``path`` was given.
        """
        true_starts = np.asarray(true_starts)
        if true_starts.ndim != 1:
            raise ValueError(
                f"true_starts must be 1-D, got shape {true_starts.shape}"
            )
        boundary_states = true_starts[1:]
        fp = dfa_fingerprint(dfa)
        entry = self._store.get(fp)
        counts = (
            np.asarray(entry["counts"], dtype=np.int64)
            if entry is not None
            and len(entry.get("counts", ())) == dfa.num_states
            else np.zeros(dfa.num_states, dtype=np.int64)
        )
        if boundary_states.size:
            counts += np.bincount(
                boundary_states.astype(np.int64), minlength=dfa.num_states
            )
        self._store[fp] = {
            "counts": counts.tolist(),
            "runs": (int(entry["runs"]) if entry else 0) + 1,
        }
        self.save()
