"""Multiprocessing backend: real scale-out on CPU cores.

The GPU in this reproduction is simulated, but the *algorithm* scales out on
real hardware too. This backend splits the input into one segment per
worker process; each worker runs the lock-step engine over its segment and
returns its segment's ``speculated -> ending`` map, and the parent composes
the per-segment maps with the same binary tree merge (delayed invalidation
plus fix-up descent) the simulated GPU uses — so the parent-side combine
step is O(log workers) probes instead of the O(workers) left fold the
paper's Figure 4a identifies as the scaling bottleneck.

Two worker flavours, selected by ``k``:

* ``k=None`` (spec-N): each worker's map is exact for every possible
  incoming state, so no cross-process re-execution is ever needed;
* a finite ``k`` runs speculative workers. The parent speculates each
  *segment boundary* by look-back over the global input (workers cannot see
  their left neighbour's tail) and ships each worker its boundary row;
  worker 0's row always carries the true start state pinned into it, so
  segment 0 never re-executes. On a genuine boundary miss the tree merge
  marks the composition invalid and the fix-up descent re-executes only the
  segments actually needed.

:class:`ScaleoutPool` is the persistent form of the backend: the DFA table,
the state prior, and the input buffer live in ``multiprocessing.shared_memory``
segments created once per pool (the input buffer grows geometrically when a
larger input arrives), and the worker processes stay alive across ``run``
calls — a dispatch pickles only segment names and a ``k``-entry boundary
row, not the table or the input. The pool also resolves a stepping kernel
(:mod:`repro.core.kernels`) at construction and publishes the compacted
class map plus any composed stride table to shared memory, so workers step
the input ``m`` symbols per gather with zero per-dispatch table rebuild.
:func:`run_multiprocess` keeps the one-shot API by wrapping a temporary
pool.

Worker processes run under the supervision layer in
:mod:`repro.core.resilience`: per-task deadlines, bounded retry with
backoff, dead-worker respawn with shared-memory re-attach, and — when the
pool drops below quorum or retries exhaust — graceful degradation to the
in-process engine, so :meth:`ScaleoutPool.run` returns a correct
:class:`MultiprocessResult` (flagged ``degraded=True``) instead of raising.
Deterministic failure drills come from :mod:`repro.core.faultinject`.
"""

from __future__ import annotations

import atexit
import os
import pickle
import signal
import threading
import time
import weakref
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from repro.core.convergence import (
    CollapseConfig,
    converged_chunks,
    resolve_collapse,
)
from repro.core.engine import run_inprocess_fallback
from repro.core.faultinject import FaultPlan, FaultSpec, chaos_plan_from_env
from repro.core.kernels import (
    DEFAULT_TABLE_BUDGET_BYTES,
    KERNELS,
    KernelPlan,
    StrideTables,
    plan_kernel,
    process_chunks_kernel,
    run_segment_kernel,
)
from repro.core.local import process_chunks, process_chunks_ragged, recover_accepts
from repro.core.lookback import speculate, state_prior
from repro.core.merge_par import compose_maps, merge_parallel
from repro.core.merge_seq import true_boundary_walk
from repro.core.scoreboard import ChunkScoreboard
from repro.core.resilience import (
    DEFAULT_RESILIENCE,
    DegradedExecution,
    PoolClosedError,
    ResilienceConfig,
    SupervisedWorkerPool,
    SupervisionReport,
)
from repro.core.types import ChunkResults, ExecStats
from repro.fsm.alphabet import AlphabetCompaction
from repro.fsm.dfa import DFA
from repro.obs.trace import add_count, current_trace, trace_span
from repro.workloads.chunking import plan_chunks, plan_from_lengths

__all__ = [
    "BatchRunResult",
    "ScaleoutPool",
    "fold_segment_map",
    "run_multiprocess",
    "MultiprocessResult",
    "PoolClosedError",
    "PoolRunTiming",
    "WorkerTiming",
]


@dataclass(frozen=True)
class WorkerTiming:
    """Wall-clock breakdown of one worker's task (seconds, worker's clock).

    ``attach_s`` covers shared-memory segment attach/eviction, ``exec_s``
    the speculation plus lock-step local processing, ``fold_s`` the
    semi-join fold of sub-chunk maps (including any local re-execution).
    ``total_s`` is measured independently around the whole task, so
    ``attach_s + exec_s + fold_s <= total_s`` up to clock resolution.
    """

    attach_s: float
    exec_s: float
    fold_s: float
    total_s: float


@dataclass(frozen=True)
class PoolRunTiming:
    """Parent-side wall-clock breakdown of one :meth:`ScaleoutPool.run`.

    All fields are seconds on the parent's clock. ``dispatch_s`` is task
    serialization + submission; ``wait_s`` the wait for worker results
    (covers the workers' own execution); ``merge_s`` the parent's binary
    tree merge including any fix-up re-execution. ``total_s`` is measured
    independently around the whole call — the stage test asserts the
    components sum to within tolerance of it.
    """

    speculate_s: float
    publish_s: float
    dispatch_s: float
    wait_s: float
    merge_s: float
    total_s: float
    collect_s: float = 0.0

    @property
    def stages_s(self) -> float:
        """Sum of the attributed stage components (seconds)."""
        return (
            self.speculate_s + self.publish_s + self.dispatch_s
            + self.wait_s + self.merge_s + self.collect_s
        )


@dataclass
class MultiprocessResult:
    """Outcome of a multiprocess run.

    ``timing`` and ``worker_timings`` are always populated by
    :meth:`ScaleoutPool.run` (they cost a handful of ``perf_counter``
    reads); ``worker_timings`` is empty for degenerate runs that never
    dispatched (empty input, single worker).

    ``degraded`` is True when supervision gave up on the pool and the
    result came from the in-process fallback — still correct, just not
    scaled out. ``recovery`` carries the run's
    :class:`repro.core.resilience.SupervisionReport` whenever any recovery
    action fired (always on degraded runs; None on clean runs).

    ``match_positions`` (``collect_matches=True`` runs only) holds the
    sorted global positions at which the machine sat in an accepting
    state — identical to the in-process engine's
    ``collect=("match_positions",)`` output.
    """

    final_state: int
    num_workers: int
    segment_reexecs: int
    stats: ExecStats
    reexec_segments: tuple[int, ...] = ()
    timing: PoolRunTiming | None = None
    worker_timings: tuple[WorkerTiming, ...] = field(default=())
    degraded: bool = False
    recovery: SupervisionReport | None = None
    match_positions: np.ndarray | None = None


@dataclass
class BatchRunResult:
    """Outcome of one :meth:`ScaleoutPool.run_batch` call.

    Per-request final states and accept flags for a coalesced multi-request
    batch — each entry identical to running that request alone. ``degraded``
    means supervision gave up and every request was finished in-process
    (still exact); ``recovery`` carries the
    :class:`repro.core.resilience.SupervisionReport` whenever any recovery
    action fired.
    """

    final_states: np.ndarray
    accepted: np.ndarray
    num_requests: int
    num_workers: int
    stats: ExecStats
    degraded: bool = False
    recovery: SupervisionReport | None = None


# --------------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------------- #

# Shared-memory attachments live for the worker process's whole life; a task
# carries segment *names* only. Keyed by name; segments whose names are not in
# the current task are stale (the parent grew the input buffer) and are closed.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}

# Native artifacts load once per worker process and are reused across tasks
# (the parent ships the compiled .so *path* the same way it ships SHM segment
# names). A failed load caches None so every retry doesn't re-attempt dlopen.
_NATIVE_MISS = object()
_NATIVE_LIBS: dict[str, object] = {}


def _worker_native(path, meta, kplan):
    """Resolve the shipped native artifact inside a worker (cached).

    The returned kernel binds the *first* task's kernel-plan views; those
    views alias the pool's shared segments, whose names stay in every
    task's keep-set for the pool's life, so reuse across tasks is safe.
    Returns None (and caches the failure) when loading is impossible —
    the worker then runs its NumPy path, bit-identically.
    """
    if path is None:
        return None
    nk = _NATIVE_LIBS.get(path, _NATIVE_MISS)
    if nk is _NATIVE_MISS:
        from repro.core.native import load_artifact

        nk = load_artifact(path, tuple(meta), kplan)
        _NATIVE_LIBS[path] = nk
    return nk


_TRACKER_INHERITED: bool | None = None


def _tracker_inherited() -> bool:
    """Whether this process shares the pool parent's resource tracker.

    Forked workers inherit the parent's tracker: their attach-registrations
    deduplicate against the parent's and the parent's ``unlink`` clears
    them, so nothing extra is needed. A *spawned* worker starts its own
    tracker, which would unlink the pool's live segments when the worker
    exits — those registrations must be withdrawn after each attach.
    Snapshot before the first attach (attaching starts a tracker itself).
    """
    global _TRACKER_INHERITED
    if _TRACKER_INHERITED is None:
        try:
            from multiprocessing.resource_tracker import _resource_tracker

            _TRACKER_INHERITED = _resource_tracker._fd is not None
        except Exception:  # pragma: no cover - stdlib internals moved
            _TRACKER_INHERITED = False
    return _TRACKER_INHERITED


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment; cleanup stays with the creating process."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        shm = shared_memory.SharedMemory(name=name)
        if not _tracker_inherited():
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(
                    getattr(shm, "_name", name), "shared_memory"
                )
            except Exception:  # pragma: no cover - best effort
                pass
        return shm


def _attached_array(name: str, shape: tuple[int, ...], dtype) -> np.ndarray:
    shm = _ATTACHED.get(name)
    if shm is None:
        shm = _ATTACHED[name] = _attach_shm(name)
    return np.ndarray(shape, dtype=dtype, buffer=shm.buf)


def _evict_stale(keep: frozenset) -> None:
    for name in [n for n in _ATTACHED if n not in keep]:
        try:
            _ATTACHED.pop(name).close()
        except BufferError:  # a view from the previous task is still alive
            pass


def _segment_match_positions(
    dfa: DFA,
    segment: np.ndarray,
    true_start: int,
    *,
    sub_chunks: int,
    k: int | None,
    lookback: int,
    prior: np.ndarray | None = None,
) -> np.ndarray:
    """Accepting positions over one segment whose true start is known.

    The standard two-pass output recovery, self-contained per segment:
    speculative chunk maps, an uncounted truth walk pinned at
    ``true_start``, then :func:`repro.core.local.recover_accepts` from the
    true per-chunk states. Positions are segment-relative (the caller adds
    the segment's global offset). Runs identically in a worker process and
    in the parent (single-worker and degraded paths).
    """
    segment = np.asarray(segment)
    if segment.size == 0:
        return np.zeros(0, dtype=np.int64)
    plan = plan_chunks(segment.size, sub_chunks)
    n_states = dfa.num_states
    if k is None or k >= n_states:
        spec = np.tile(
            np.arange(n_states, dtype=np.int32), (plan.num_chunks, 1)
        )
    else:
        spec = speculate(dfa, segment, plan, k, lookback=lookback, prior=prior)
        if not (spec[0] == true_start).any():
            spec[0, 0] = true_start
    end, _ = process_chunks(dfa, segment, plan, spec)
    results = ChunkResults(
        spec=spec, end=end, valid=np.ones_like(spec, dtype=bool)
    )
    dfa_seg = dfa if int(dfa.start) == int(true_start) else dfa.with_start(int(true_start))
    _, tstarts = true_boundary_walk(dfa_seg, segment, plan, results)
    return recover_accepts(dfa_seg, segment, plan, tstarts)


def _worker_run(task: tuple) -> tuple[np.ndarray, np.ndarray, object, int, tuple, tuple]:
    """Run one segment task; return its result plus per-worker timings.

    Four task modes, selected by the task's ``mode`` field:

    * ``"fold"`` (the classic path): run ``sub_chunks`` speculative chunks
      and fold their maps left to right; return shape ``(spec_row,
      end_row, reexec_chunks, reexec_items, timings, counters)``.
    * ``"maps"`` (scoreboard streaming): run the chunks but do **not**
      fold — return the full per-chunk matrices ``(spec, end,
      converged_mask_or_None, 0, timings, counters)`` so the parent's
      :class:`repro.core.scoreboard.ChunkScoreboard` consumes each chunk
      map individually as worker results arrive.
    * ``"bmaps"`` (coalesced-batch streaming, :meth:`ScaleoutPool.run_batch`):
      like ``"maps"``, but the segment is a contiguous span of a
      multi-request batch with *ragged* chunk lengths: ``aux_start``
      carries ``(chunk_lengths, pins)`` where ``pins`` are
      ``(local_chunk, state)`` request heads inside the span whose true
      incoming state is known and gets pinned into the speculation row.
      Chunks run under the divergent ragged driver; the return shape
      matches ``"maps"`` with a ``None`` converged mask.
    * ``"collect"`` (second pass): the parent ships the segment's *true*
      starting state in ``aux_start``; return ``(global_positions,
      empty, 0, 0, timings, counters)`` where ``global_positions`` are
      the accepting positions inside the segment offset to global input
      coordinates.

    ``timings`` is ``(attach_s, exec_s, fold_s, total_s, new_attaches)``
    and ``counters`` is ``(local_gathers, collapse_scans,
    lanes_collapsed, chunks_converged, checks_skipped)`` — they ride the
    result path because worker processes cannot see the parent's ambient
    :class:`repro.obs.RunTrace`; the parent folds them into
    :class:`WorkerTiming` / :class:`ExecStats` and its trace.

    Executed inside a worker process. Attaches the pool's shared segments
    (cached across calls), runs the lock-step kernel over ``sub_chunks``
    chunks of its input slice; in fold mode a speculation miss re-executes
    the sub-chunk locally, so the returned map is always complete over
    ``spec_row``. When the parent shipped a collapse cadence, duplicate
    lanes are collapsed mid-advancement and the fold short-circuits
    converged sub-chunks (constant maps over achievable incoming states) —
    the collapse state is rebuilt from the task alone, so a retried or
    respawned worker reproduces it exactly.

    When the parent shipped a compiled native artifact (``native_path`` +
    ``native_meta``, riding the task tuple like the SHM segment names),
    the worker dlopens it once per process and runs local processing and
    the fold through :mod:`repro.core.native` — bit-identical to the
    NumPy path, which remains the fallback whenever the artifact cannot
    be loaded (e.g. the cache directory is not shared with the worker).
    """
    (
        table_name,
        num_inputs,
        num_states,
        acc_name,
        prior_name,
        input_name,
        input_len,
        input_dtype,
        lo,
        hi,
        start,
        k,
        sub_chunks,
        lookback,
        boundary_row,
        kernel_name,
        num_classes,
        stride_m,
        class_of_name,
        class_table_name,
        stride_name,
        collapse_spec,
        mode,
        aux_start,
        native_path,
        native_meta,
    ) = task
    t_task = time.perf_counter()
    _tracker_inherited()  # snapshot before the first attach registers anything
    keep = {table_name, acc_name, prior_name, input_name,
            class_of_name, class_table_name}
    if stride_name is not None:
        keep.add(stride_name)
    _evict_stale(frozenset(keep))
    attached_before = len(_ATTACHED)
    table = _attached_array(table_name, (num_inputs, num_states), np.int32)
    accepting = _attached_array(acc_name, (num_states,), np.bool_)
    prior = _attached_array(prior_name, (num_states,), np.float64)
    inputs = _attached_array(input_name, (input_len,), np.dtype(input_dtype))
    class_of = _attached_array(class_of_name, (num_inputs,), np.int32)
    class_table = _attached_array(
        class_table_name, (num_classes, num_states), np.int32
    )
    tables = None
    if stride_name is not None:
        table_m = _attached_array(
            stride_name, (num_classes ** stride_m, num_states), np.int32
        )
        tables = StrideTables(m=stride_m, table_m=table_m, build_s=0.0)
    # The kernel plan is rebuilt as *views* on the pool's shared segments:
    # the parent paid compaction and table composition once at publish
    # time, workers pay one attach.
    kplan = KernelPlan(
        kernel=kernel_name,
        compaction=AlphabetCompaction(
            class_of=class_of, table=class_table, num_symbols=num_inputs
        ),
        tables=tables,
        build_s=0.0,
        predicted_cost_s={},
    )
    segment = inputs[lo:hi]
    new_attaches = len(_ATTACHED) - attached_before
    t_attach = time.perf_counter()

    dfa = DFA(table=table, start=start, accepting=accepting)
    if mode == "collect":
        positions = _segment_match_positions(
            dfa, segment, int(aux_start),
            sub_chunks=sub_chunks, k=k, lookback=lookback, prior=prior,
        )
        positions = positions + lo  # globalize to input coordinates
        t_done = time.perf_counter()
        timings = (
            t_attach - t_task, t_done - t_attach, 0.0, t_done - t_task,
            new_attaches,
        )
        return positions, np.zeros(0, dtype=np.int32), 0, 0, timings, (0, 0, 0, 0, 0)
    if mode == "bmaps":
        chunk_lengths, pins = aux_start
        plan = plan_from_lengths(np.asarray(chunk_lengths, dtype=np.int64))
        if k is None or k >= num_states:
            spec = np.tile(
                np.arange(num_states, dtype=np.int32), (plan.num_chunks, 1)
            )
        else:
            spec = speculate(dfa, segment, plan, k, lookback=lookback, prior=prior)
            # Chunk 0's look-back crosses into the previous span, which
            # only the parent can see — use the boundary row it shipped.
            spec[0] = boundary_row
            for ci, s in pins:
                if not (spec[ci] == s).any():
                    spec[ci, -1] = s
        wstats = ExecStats()
        nk = _worker_native(native_path, native_meta, kplan)
        if nk is not None and nk.spec.k == spec.shape[1]:
            end = nk.process_chunks(segment, plan, spec, stats=wstats)
        else:
            end = process_chunks_ragged(dfa, segment, plan, spec, stats=wstats)
        t_done = time.perf_counter()
        timings = (
            t_attach - t_task, t_done - t_attach, 0.0, t_done - t_task,
            new_attaches,
        )
        counters = (
            int(wstats.local_gathers),
            int(wstats.collapse_scans),
            int(wstats.lanes_collapsed),
            0,
            0,
        )
        return spec, end, None, 0, timings, counters
    plan = plan_chunks(segment.size, sub_chunks)
    collapse_cfg = (
        CollapseConfig(cadence=collapse_spec[0], backoff=collapse_spec[1])
        if collapse_spec is not None
        else None
    )
    covered = None
    if k is None or k >= num_states:
        spec = np.tile(np.arange(num_states, dtype=np.int32), (sub_chunks, 1))
        if collapse_cfg is not None:
            covered = np.ones(sub_chunks, dtype=bool)
    elif collapse_cfg is not None:
        spec, covered = speculate(
            dfa, segment, plan, k, lookback=lookback, prior=prior,
            return_coverage=True,
        )
        # Chunk 0's incoming states are the *segment boundary's*, which only
        # the parent can see (they depend on the left neighbour's tail); use
        # the boundary row it shipped. Its coverage is unknown here — the
        # parent assesses segment-boundary coverage itself.
        spec[0] = boundary_row
        covered[0] = False
    else:
        spec = speculate(dfa, segment, plan, k, lookback=lookback, prior=prior)
        spec[0] = boundary_row
    wstats = ExecStats()
    nk = _worker_native(native_path, native_meta, kplan)
    if nk is not None and nk.spec.k == spec.shape[1]:
        # Collapse (when enabled) is baked into the artifact's cadence.
        end = nk.process_chunks(segment, plan, spec, stats=wstats)
    elif kernel_name == "lockstep":
        end, _ = process_chunks(
            dfa, segment, plan, spec, stats=wstats, collapse=collapse_cfg
        )
    else:
        end = process_chunks_kernel(
            dfa, segment, plan, spec, kplan, stats=wstats, collapse=collapse_cfg
        )
    converged = (
        converged_chunks(end, covered) if covered is not None else None
    )
    chunks_conv = int(converged.sum()) if converged is not None else 0
    t_exec = time.perf_counter()

    if mode == "maps":
        # Scoreboard streaming: no fold — the parent consumes each chunk's
        # (speculated -> ending) map individually, in arrival order.
        timings = (
            t_attach - t_task, t_exec - t_attach, 0.0, t_exec - t_task,
            new_attaches,
        )
        counters = (
            int(wstats.local_gathers),
            int(wstats.collapse_scans),
            int(wstats.lanes_collapsed),
            chunks_conv,
            0,
        )
        return spec, end, converged, 0, timings, counters

    # Fold chunk maps into one segment map over chunk 0's speculation row:
    # repeated semi-join composition, vectorized over the k entries.
    if nk is not None and nk.spec.k == spec.shape[1]:
        # Native fold: first-match semi-join with in-C re-execution on
        # misses and the same converged-chunk short-circuit.
        row, fc = nk.fold_maps(
            spec, end, segment, plan.starts, plan.lengths, converged=converged
        )
        t_done = time.perf_counter()
        timings = (
            t_attach - t_task, t_exec - t_attach, t_done - t_exec,
            t_done - t_task, new_attaches,
        )
        counters = (
            int(wstats.local_gathers) + fc.gathers,
            int(wstats.collapse_scans),
            int(wstats.lanes_collapsed),
            chunks_conv,
            fc.checks_skipped,
        )
        return (
            spec[0].copy(), row, fc.reexec_chunks, fc.reexec_items,
            timings, counters,
        )
    spec_row = spec[0].copy()
    cur_end = end[0][None, :].copy()
    all_valid = np.ones((1, spec.shape[1]), dtype=bool)
    reexec_chunks = 0
    reexec_items = 0
    checks_skipped = 0
    for c in range(1, sub_chunks):
        if converged is not None and converged[c]:
            # Converged sub-chunk: constant map over achievable incoming
            # states — every running entry composes to the same known
            # ending state, no semi-join and no possible local miss.
            cur_end = np.full_like(cur_end, end[c, 0])
            checks_skipped += int(cur_end.shape[1])
            continue
        nxt, found, _ = compose_maps(
            cur_end, all_valid, spec[c][None, :], end[c][None, :], all_valid
        )
        misses = np.flatnonzero(~found[0])
        if misses.size:
            # Kernel-dispatched re-execution: class-mapped, stride-packed
            # scalar stepping — ceil(L/m) lookups instead of L per miss.
            sub = segment[plan.chunk_slice(c)]
            for j in misses:
                nxt[0, j] = run_segment_kernel(kplan, sub, int(cur_end[0, j]))
            reexec_chunks += 1
            reexec_items += int(sub.size) * int(misses.size)
        cur_end = nxt
    t_done = time.perf_counter()
    timings = (
        t_attach - t_task,  # attach_s
        t_exec - t_attach,  # exec_s
        t_done - t_exec,  # fold_s
        t_done - t_task,  # total_s
        new_attaches,
    )
    counters = (
        int(wstats.local_gathers),
        int(wstats.collapse_scans),
        int(wstats.lanes_collapsed),
        chunks_conv,
        checks_skipped,
    )
    return spec_row, cur_end[0], reexec_chunks, reexec_items, timings, counters


def fold_segment_map(
    dfa: DFA,
    kplan: KernelPlan,
    inputs: np.ndarray,
    boundary_row: np.ndarray,
    *,
    sub_chunks: int = 16,
    k: int | None = None,
    lookback: int = 8,
    prior: np.ndarray | None = None,
    native=None,
) -> np.ndarray:
    """In-process ``speculated -> ending`` map of one segment.

    Lane ``j`` of the returned row is the machine's state after
    ``inputs`` when it entered at ``boundary_row[j]`` — the same folded
    segment map a pool worker computes, without a pool: the segment is
    split into ``sub_chunks`` speculative chunks, processed through the
    kernel layer, and folded left to right with
    :func:`repro.core.merge_par.compose_maps`, re-executing speculation
    misses locally so the map is always complete over ``boundary_row``.

    This is the single-process leaf of the cross-host hierarchy
    (:mod:`repro.dist`): a host agent with one worker, or a pool whose
    supervision degraded, still returns an exact map for the
    coordinator's host-level tree merge. ``boundary_row`` length must
    equal the speculation width the caller runs everywhere else
    (``k``, or ``num_states`` for spec-N).
    """
    boundary_row = np.ascontiguousarray(
        np.asarray(boundary_row, dtype=np.int32)
    )
    if boundary_row.ndim != 1:
        raise ValueError(
            f"boundary_row must be 1-D, got shape {boundary_row.shape}"
        )
    width = int(boundary_row.size)
    k_eff = dfa.num_states if (k is None or k >= dfa.num_states) else int(k)
    if width != k_eff:
        raise ValueError(
            f"boundary_row has {width} lanes but k_eff is {k_eff}"
        )
    inputs = np.ascontiguousarray(np.asarray(inputs, dtype=np.int32))
    if inputs.size == 0:
        return boundary_row.copy()
    sub_chunks = max(1, min(int(sub_chunks), int(inputs.size)))
    plan = plan_chunks(int(inputs.size), sub_chunks)
    if k is None or k >= dfa.num_states:
        spec = np.tile(
            np.arange(dfa.num_states, dtype=np.int32), (sub_chunks, 1)
        )
    else:
        spec = speculate(
            dfa, inputs, plan, k_eff, lookback=lookback, prior=prior
        )
    spec[0] = boundary_row
    wstats = ExecStats()
    if native is not None and native.spec.k == spec.shape[1]:
        end = native.process_chunks(inputs, plan, spec, stats=wstats)
        row, _fc = native.fold_maps(
            spec, end, inputs, plan.starts, plan.lengths
        )
        return row
    if kplan.kernel == "lockstep":
        end, _ = process_chunks(dfa, inputs, plan, spec, stats=wstats)
    else:
        end = process_chunks_kernel(
            dfa, inputs, plan, spec, kplan, stats=wstats
        )
    cur_end = end[0][None, :].copy()
    all_valid = np.ones((1, spec.shape[1]), dtype=bool)
    for c in range(1, sub_chunks):
        nxt, found, _ = compose_maps(
            cur_end, all_valid, spec[c][None, :], end[c][None, :], all_valid
        )
        misses = np.flatnonzero(~found[0])
        if misses.size:
            sub = inputs[plan.chunk_slice(c)]
            for j in misses:
                nxt[0, j] = run_segment_kernel(kplan, sub, int(cur_end[0, j]))
        cur_end = nxt
    return cur_end[0].copy()


# --------------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------------- #

# Pools still open at interpreter exit: abnormal teardown (an exception that
# skips `close`, a test harness that drops the reference) must not leak
# /dev/shm segments, so one atexit hook closes whatever remains. The WeakSet
# never keeps a pool alive — __del__ stays the ordinary cleanup path.
_LIVE_POOLS: weakref.WeakSet = weakref.WeakSet()


def _close_live_pools() -> None:
    """Close any pool still registered at interpreter shutdown."""
    for pool in list(_LIVE_POOLS):
        try:
            pool.close()
        except Exception:  # pragma: no cover - best effort at shutdown
            pass


atexit.register(_close_live_pools)

# The atexit hook covers normal interpreter exit, but a SIGTERM/SIGINT with
# the *default* disposition kills the process without running atexit — and
# with it, leaks every live pool's /dev/shm segments and worker processes.
# The first pool constructed from the main thread therefore installs a
# teardown handler for both signals, only where the handler is still the
# Python default (a host application's own handlers are never clobbered,
# and then owns teardown — the atexit path still covers it if its handler
# exits cleanly). The handler closes every live pool, then re-delivers the
# signal's default behaviour so exit status and KeyboardInterrupt semantics
# are unchanged.
_SIGNAL_TEARDOWN_INSTALLED = False


def _signal_teardown(signum: int, frame) -> None:
    """Close live pools, then re-deliver the signal's default action."""
    _close_live_pools()
    if signum == signal.SIGINT:
        signal.signal(signum, signal.default_int_handler)
        raise KeyboardInterrupt
    signal.signal(signum, signal.SIG_DFL)
    os.kill(os.getpid(), signum)


def _install_signal_teardown() -> None:
    """Install the teardown handler once, from the main thread only."""
    global _SIGNAL_TEARDOWN_INSTALLED
    if _SIGNAL_TEARDOWN_INSTALLED:
        return
    if threading.current_thread() is not threading.main_thread():
        return  # signal.signal is main-thread-only; retry on a later pool
    try:
        for sig in (signal.SIGTERM, signal.SIGINT):
            if signal.getsignal(sig) in (
                signal.SIG_DFL, signal.default_int_handler,
            ):
                signal.signal(sig, _signal_teardown)
    except (ValueError, OSError):  # pragma: no cover - exotic platform
        return
    _SIGNAL_TEARDOWN_INSTALLED = True


class ScaleoutPool:
    """A persistent shared-memory worker pool for CPU scale-out.

    Created once per machine: the DFA table, accepting mask, and state prior
    are published to shared memory at construction, the input buffer on the
    first :meth:`run` (grown geometrically afterwards), and worker processes
    persist across calls — so repeated runs (streaming blocks, many inputs
    against one machine) pay no per-call pickling of tables or input and no
    process spawn after warm-up.

    Use as a context manager, or call :meth:`close` when done — the pool
    owns operating-system resources (processes and shared-memory segments).

    Parameters
    ----------
    dfa:
        The machine all runs execute.
    num_workers:
        Worker process count (one input segment each).
    k:
        ``None`` for spec-N workers (exact maps, no re-execution — right
        choice for small machines); a finite width for speculative workers
        (right choice when ``num_states`` is large enough that enumerating
        every state costs more than the occasional boundary miss).
    sub_chunks_per_worker:
        Lock-step chunks inside each worker (its internal parallelism).
    lookback:
        Look-back window for boundary and worker-internal speculation.
    kernel:
        Stepping kernel for worker-side local processing
        (:mod:`repro.core.kernels`): ``"auto"`` (default, cost-model
        choice), ``"lockstep"``, ``"stride2"``, or ``"stride4"``. The
        compacted class map and any stride table are built **once at
        construction** and published to shared memory alongside the raw
        table, so workers pay zero rebuild cost per dispatch.
    table_budget_bytes:
        Memory cap for the composed stride table (``"auto"`` never picks
        a kernel whose table exceeds it).
    collapse:
        Convergence layer (:mod:`repro.core.convergence`) for worker-side
        local processing and the merge short-circuit: ``"auto"`` (default
        — probe the machine on the first run, enable when a convergence
        horizon exists), ``"on"``, ``"off"``, or an explicit
        :class:`CollapseConfig`. The resolved cadence ships inside each
        task tuple, so retried and respawned workers rebuild the same
        collapse state deterministically.
    backend:
        Hot-path implementation: ``"numpy"`` (default) or ``"native"``
        (compile the specialized C kernel via :mod:`repro.core.native`,
        matching the engine's explicit ``backend="native"`` opt-in). The
        parent compiles **once** — lazily, after collapse resolution so
        the cadence is baked in — and ships the artifact *path* inside
        each task tuple the same way it ships shared-memory segment
        names; each worker dlopens it once per process. Every failure
        mode (no compiler, load error, smoke-check mismatch) falls back
        to the NumPy path, bit-identically.
    resilience:
        :class:`repro.core.resilience.ResilienceConfig` governing worker
        supervision (deadlines, retry, respawn, quorum). The default keeps
        supervision on with conservative policies; pass ``None`` to run
        unsupervised (worker failure raises — the pre-resilience
        semantics, kept for overhead baselines).
    fault_plan:
        Deterministic fault injection
        (:class:`repro.core.faultinject.FaultPlan`) for drills and tests.
        When omitted *and* supervision is on, the ``REPRO_CHAOS``
        environment variable arms a seeded one-kill-per-pool plan (the CI
        chaos job); otherwise no faults are injected.
    """

    def __init__(
        self,
        dfa: DFA,
        *,
        num_workers: int = 4,
        k: int | None = None,
        sub_chunks_per_worker: int = 64,
        lookback: int = 8,
        kernel: str = "auto",
        table_budget_bytes: int = DEFAULT_TABLE_BUDGET_BYTES,
        collapse: str | CollapseConfig | None = "auto",
        backend: str = "numpy",
        resilience: ResilienceConfig | None = DEFAULT_RESILIENCE,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        # Everything `close` touches exists before anything can fail, so
        # teardown after a failed construction (from the except below,
        # `__del__`, or the atexit hook) never trips an AttributeError and
        # never leaks a published segment.
        self._closed = False
        # Serializes input-segment (re)publication against close(): a
        # signal handler tearing the pool down mid-run must either see a
        # registered segment (and unlink it) or make the publisher unlink
        # its own orphan. RLock — the handler runs on the main thread and
        # may interrupt a publisher on the main thread.
        self._shm_lock = threading.RLock()
        self._sup: SupervisedWorkerPool | None = None
        self._table_shm = None
        self._acc_shm = None
        self._prior_shm = None
        self._class_of_shm = None
        self._class_table_shm = None
        self._stride_shm = None
        self._input_shm: shared_memory.SharedMemory | None = None
        self._input_capacity = 0
        try:
            if num_workers < 1:
                raise ValueError(f"num_workers must be >= 1, got {num_workers}")
            if k is not None and k < 1:
                raise ValueError(f"k must be >= 1 or None, got {k}")
            if kernel != "auto" and kernel not in KERNELS:
                raise ValueError(
                    f"unknown kernel {kernel!r}; available: "
                    f"{sorted(KERNELS)} or 'auto'"
                )
            if isinstance(collapse, str) and collapse not in ("auto", "on", "off"):
                raise ValueError(
                    f"collapse must be 'auto', 'on', 'off', or a "
                    f"CollapseConfig, got {collapse!r}"
                )
            if backend not in ("native", "numpy"):
                raise ValueError(
                    f"backend must be 'native' or 'numpy', got {backend!r}"
                )
            self._backend = backend
            self._native = None
            # Sentinel distinct from any collapse tag: "never loaded".
            self._native_tag: object = ("unloaded",)
            self._collapse_mode = collapse
            self._collapse_requested = not (
                collapse is None
                or collapse == "off"
                or (isinstance(collapse, CollapseConfig) and not collapse.enabled)
            )
            # "auto" needs an input sample to probe; resolved lazily on the
            # first non-empty run and cached for the pool's life.
            self._collapse_cfg: CollapseConfig | None = None
            self._collapse_resolved = not self._collapse_requested
            self.dfa = dfa
            self.num_workers = int(num_workers)
            self.k = None if (k is None or k >= dfa.num_states) else int(k)
            self.k_eff = dfa.num_states if self.k is None else self.k
            self.sub_chunks_per_worker = int(sub_chunks_per_worker)
            self.lookback = int(lookback)
            self.calls = 0
            self._input_dtype = np.dtype(np.int32)
            self.resilience = resilience
            if fault_plan is None and resilience is not None:
                fault_plan = chaos_plan_from_env(self.num_workers)
            self._fault_plan = fault_plan if fault_plan is not None else FaultPlan()
            self._bps_ewma: float | None = None
            # Multi-pattern group state (set by `for_group`).
            self._stack = None
            self._mp_widths: tuple = ()
            self._mp_k: int | None = None
            self._mp_native = None
            self._mp_native_loaded = False

            # Resolve the stepping kernel once, for the pool's whole life.
            # The chunk length is unknown until inputs arrive, so selection
            # assumes pool-scale segments (the pool exists for large
            # inputs) and amortizes the one-time table build over the
            # expected call volume.
            if kernel == "scalar":
                kernel = "lockstep"  # vectorized workers; scalar is re-exec only
            self._kplan = plan_kernel(
                dfa,
                chunk_len=1 << 14,
                num_chunks=self.num_workers * self.sub_chunks_per_worker,
                k=self.k_eff,
                kernel=kernel,
                table_budget_bytes=table_budget_bytes,
                amortize_builds=16,
            )
            self.kernel = self._kplan.kernel

            # Segments that outlive every call: table, accepting mask,
            # prior, and the kernel layer's class map / class table /
            # stride table.
            self._prior = state_prior(dfa)
            self._table_shm = self._publish(dfa.table)
            self._acc_shm = self._publish(dfa.accepting)
            self._prior_shm = self._publish(self._prior)
            self._class_of_shm = self._publish(self._kplan.compaction.class_of)
            self._class_table_shm = self._publish(self._kplan.compaction.table)
            self._stride_shm = (
                self._publish(self._kplan.tables.table_m)
                if self._kplan.tables is not None
                else None
            )
            self._sup = SupervisedWorkerPool(
                _worker_run,
                self.num_workers,
                config=resilience,
                fault_plan=self._fault_plan,
            )
        except BaseException:
            self.close()
            raise
        _install_signal_teardown()
        _LIVE_POOLS.add(self)

    # ------------------------------------------------------------------ #
    # shared-memory plumbing
    # ------------------------------------------------------------------ #

    @staticmethod
    def _publish(array: np.ndarray) -> shared_memory.SharedMemory:
        array = np.ascontiguousarray(array)
        shm = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
        np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)[...] = array
        return shm

    def _ensure_input_capacity(self, n: int) -> None:
        if n <= self._input_capacity and self._input_shm is not None:
            return
        capacity = max(n, 2 * self._input_capacity, 1)
        # Create *inside* the lock: close() flips ``_closed`` and snapshots
        # the segment list under the same lock, so a segment is either
        # refused (pool already closed) or registered before the closing
        # sweep runs — never created-but-unregistered when a signal
        # handler tears the pool down concurrently.
        with self._shm_lock:
            if self._closed:
                raise PoolClosedError("ScaleoutPool is closed")
            new = shared_memory.SharedMemory(
                create=True, size=capacity * self._input_dtype.itemsize
            )
            old = self._input_shm
            self._input_shm = new
            self._input_capacity = capacity
        if old is not None:
            old.close()
            try:
                old.unlink()
            except FileNotFoundError:  # an injected unlink race got there first
                pass

    @property
    def shm_bytes(self) -> int:
        """Bytes currently held in shared-memory segments."""
        total = self._table_shm.size + self._acc_shm.size + self._prior_shm.size
        total += self._class_of_shm.size + self._class_table_shm.size
        if self._stride_shm is not None:
            total += self._stride_shm.size
        if self._input_shm is not None:
            total += self._input_shm.size
        return total

    # ------------------------------------------------------------------ #
    # resilience plumbing
    # ------------------------------------------------------------------ #

    def _apply_parent_fault(self, spec: FaultSpec, report: SupervisionReport) -> None:
        """Inject one parent-side fault (the SHM unlink race)."""
        if spec.kind != "shm_unlink" or self._input_shm is None:
            return
        try:
            self._input_shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double injection
            pass
        if self._fault_plan.mark_fired(spec.fault_id):
            report.faults_fired += 1
            add_count("fault.injected")
            report.record("fault_fired", detail=spec.fault_id)

    def _input_segment_missing(self) -> bool:
        """Whether the input segment's name has vanished from /dev/shm."""
        if self._input_shm is None:
            return True
        try:
            probe = _attach_shm(self._input_shm.name)
        except FileNotFoundError:
            return True
        probe.close()
        return False

    def _republish_input(self, inputs: np.ndarray) -> None:
        """Publish the input under a fresh segment name (after an unlink).

        Retried tasks are rebuilt via :meth:`_make_task`, which reads the
        live segment name, so workers re-attach the new segment on their
        next attempt.
        """
        n = int(inputs.size)
        capacity = max(self._input_capacity, n, 1)
        # Same create-inside-the-lock discipline as _ensure_input_capacity;
        # the fill stays under the lock too, so a concurrent close cannot
        # unmap the fresh segment mid-copy (republishes are rare — this
        # only runs on the injected unlink-race fault path).
        with self._shm_lock:
            if self._closed:
                raise PoolClosedError("ScaleoutPool is closed")
            new = shared_memory.SharedMemory(
                create=True, size=capacity * self._input_dtype.itemsize
            )
            np.ndarray((n,), dtype=self._input_dtype, buffer=new.buf)[:] = inputs
            old = self._input_shm
            self._input_shm = new
            self._input_capacity = capacity
        if old is not None:
            old.close()
            try:
                old.unlink()
            except FileNotFoundError:  # the injected race already removed it
                pass

    def _valid_worker_map(self, payload: tuple) -> bool:
        """Reject corrupted worker results (states outside the machine)."""
        if not (isinstance(payload, tuple) and len(payload) == 6):
            return False
        num_states = self.dfa.num_states
        for row in (payload[0], payload[1]):
            if not isinstance(row, np.ndarray):
                return False
            if row.size and not bool(((row >= 0) & (row < num_states)).all()):
                return False
        return True

    def _ensure_native(self):
        """Resolve the pool's native kernel lazily (compile once, reuse).

        Called at each point of use rather than in ``__init__`` so the
        artifact can bake in the collapse cadence, which ``"auto"``
        collapse only resolves on the first non-empty run. If the
        resolved collapse changes after an early load (a single-worker
        or batch call preceding the first multi-worker run), the kernel
        is reloaded under the new tag — cheap through the memory/disk
        caches. Returns None whenever native execution is unavailable;
        callers use the NumPy path unchanged.
        """
        if self._backend != "native":
            return None
        cfg = self._collapse_cfg if self._collapse_resolved else None
        tag = None if cfg is None else (cfg.enabled, cfg.cadence, cfg.backoff)
        if tag == self._native_tag:
            return self._native
        from repro.core.native import load_native_plan

        self._native = load_native_plan(
            self.dfa,
            k=self.k_eff,
            kplan=self._kplan,
            collapse=cfg,
            num_chunks=self.num_workers * self.sub_chunks_per_worker,
        )
        self._native_tag = tag
        return self._native

    def _native_task_fields(self) -> tuple:
        """The ``(artifact_path, meta)`` pair shipped inside task tuples.

        ``(None, None)`` when native is off or the provider has no
        on-disk artifact to ship (numba) — workers then run NumPy while
        the parent still re-executes natively.
        """
        nk = self._native
        if nk is None or nk.artifact_path is None:
            return None, None
        return nk.artifact_path, nk.meta

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def run(
        self,
        inputs: np.ndarray,
        *,
        start: int | None = None,
        schedule: str = "barrier",
        collect_matches: bool = False,
    ) -> MultiprocessResult:
        """Compute the final state of ``inputs``, starting from ``start``.

        ``start`` defaults to the machine's initial state; streaming callers
        pass the carried state instead. The result is bit-identical to the
        sequential reference (property tests assert this over machines ×
        inputs × worker counts × k).

        ``schedule`` selects how worker results are combined:
        ``"barrier"`` (default) stacks every worker's folded segment map
        and runs the binary tree merge; ``"ooo"`` has workers stream their
        *per-chunk* maps back and a parent-side
        :class:`repro.core.scoreboard.ChunkScoreboard` consumes each one
        the moment it arrives — provable speculation misses re-execute
        (kernel-dispatched, in the parent) before the slowest worker has
        even reported, and a retried or hedged task is re-issued on the
        scoreboard rather than handled as a special case.

        ``collect_matches=True`` adds a second task round that recovers
        the accepting-state positions (regex match ends) from each
        segment's true starting state; they come back on
        ``MultiprocessResult.match_positions``, sorted and global.

        With supervision on (the default), worker failure is recovered —
        killed workers are respawned, stragglers and errors retried, and
        an unrecoverable pool degrades to the in-process engine — so this
        method raises only :class:`PoolClosedError` (used after
        :meth:`close`) and input-validation errors, never worker errors.
        """
        if self._closed:
            raise PoolClosedError("ScaleoutPool is closed")
        if schedule not in ("barrier", "ooo"):
            raise ValueError(
                f"schedule must be 'barrier' or 'ooo', got {schedule!r}"
            )
        t_run = time.perf_counter()
        obs = current_trace()
        dfa = self.dfa
        start = dfa.start if start is None else int(start)
        if not 0 <= start < dfa.num_states:
            raise ValueError(f"start state {start} out of range [0, {dfa.num_states})")
        inputs = np.ascontiguousarray(np.asarray(inputs, dtype=self._input_dtype))
        if inputs.ndim != 1:
            raise ValueError(f"inputs must be 1-D, got shape {inputs.shape}")
        n = int(inputs.size)
        w = self.num_workers
        self.calls += 1

        stats = ExecStats(
            num_items=n,
            num_chunks=w,
            k=self.k_eff,
            num_states=dfa.num_states,
            num_inputs=dfa.num_inputs,
        )
        stats.pool_calls += 1
        empty_pos = np.zeros(0, dtype=np.int64)
        if n == 0:
            return MultiprocessResult(
                start, w, 0, stats,
                match_positions=empty_pos if collect_matches else None,
            )
        if w == 1:
            # Single-worker degenerate case: no dispatch, run in-process —
            # through the native kernel when available, else the kernel
            # layer's stride stepping from the tables built at construction.
            nk1 = self._ensure_native()
            final = (
                nk1.run_segment(inputs, start)
                if nk1 is not None
                else run_segment_kernel(self._kplan, inputs, start)
            )
            stats.pool_shm_bytes = self.shm_bytes
            positions = None
            if collect_matches:
                positions = _segment_match_positions(
                    dfa, inputs, start,
                    sub_chunks=self.sub_chunks_per_worker, k=self.k,
                    lookback=self.lookback, prior=self._prior,
                )
            return MultiprocessResult(
                final, 1, 0, stats, match_positions=positions,
            )

        with trace_span("pool.publish_input", bytes=int(inputs.nbytes)):
            self._ensure_input_capacity(n)
            shm = self._input_shm
            assert shm is not None
            buf = np.ndarray((n,), dtype=self._input_dtype, buffer=shm.buf)
            buf[:] = inputs
        t_publish = time.perf_counter()
        stats.pool_shm_bytes = self.shm_bytes
        if obs is not None:
            obs.count("pool.shm.input_bytes", int(inputs.nbytes))

        report = SupervisionReport()
        for fault in self._fault_plan.parent_faults(self.calls):
            self._apply_parent_fault(fault, report)

        seg_plan = plan_chunks(n, w)
        run_dfa = dfa if start == dfa.start else dfa.with_start(start)

        if not self._collapse_resolved:
            self._collapse_cfg = resolve_collapse(
                self._collapse_mode, dfa, inputs, k=self.k_eff
            )
            self._collapse_resolved = True
        collapse_spec = (
            (self._collapse_cfg.cadence, self._collapse_cfg.backoff)
            if self._collapse_cfg is not None
            else None
        )
        # Native kernel (compiled once per pool, after collapse resolution
        # so the cadence is baked); its artifact path rides the task tuple.
        nkern = self._ensure_native()
        native_path, native_meta = self._native_task_fields()

        # Segment-boundary speculation rows, from look-back over the global
        # input (one vectorized call covering every boundary). Worker 0's
        # row must contain the true start state — `speculate` pins it first,
        # and the explicit guard keeps that invariant under any ranking.
        boundary = None
        seg_covered = None
        with trace_span("pool.speculate", workers=w, k=self.k_eff):
            if self.k is not None:
                out = speculate(
                    run_dfa,
                    inputs,
                    seg_plan,
                    self.k,
                    lookback=self.lookback,
                    prior=self._prior,
                    stats=stats,
                    return_coverage=self._collapse_requested,
                )
                if self._collapse_requested:
                    boundary, seg_covered = out
                else:
                    boundary = out
                if not (boundary[0] == start).any():
                    boundary[0, 0] = start
                    # Segment 0's only achievable incoming state is `start`,
                    # which the guard just pinned — still covered.
            elif self._collapse_requested:
                # spec-N workers enumerate every state at each boundary.
                seg_covered = np.ones(w, dtype=bool)
        t_spec = time.perf_counter()

        run_mode = "maps" if schedule == "ooo" else "fold"

        def make_task(i: int, mode: str | None = None, aux: int = -1) -> tuple:
            # Reads the *live* input segment name: a task rebuilt for retry
            # after a republish points workers at the fresh segment.
            return (
                self._table_shm.name,
                dfa.num_inputs,
                dfa.num_states,
                self._acc_shm.name,
                self._prior_shm.name,
                self._input_shm.name,
                n,
                self._input_dtype.str,
                int(seg_plan.starts[i]),
                int(seg_plan.starts[i] + seg_plan.lengths[i]),
                start,
                self.k,
                self.sub_chunks_per_worker,
                self.lookback,
                None if boundary is None else boundary[i],
                self.kernel,
                self._kplan.compaction.num_classes,
                self._kplan.m,
                self._class_of_shm.name,
                self._class_table_shm.name,
                None if self._stride_shm is None else self._stride_shm.name,
                collapse_spec,
                run_mode if mode is None else mode,
                aux,
                native_path,
                native_meta,
            )

        # Out-of-order schedule: a parent-side scoreboard over every
        # worker's sub-chunks, fed by the supervision loop's result stream.
        board: ChunkScoreboard | None = None
        gplan = None
        sub = self.sub_chunks_per_worker
        on_result = None
        on_retry = None
        if schedule == "ooo":
            gplan = plan_from_lengths(
                np.concatenate([
                    plan_chunks(int(seg_plan.lengths[i]), sub).lengths
                    for i in range(w)
                ])
            )
            if nkern is not None:
                reexec_fn = lambda c, s: nkern.run_segment(  # noqa: E731
                    inputs[gplan.chunk_slice(c)], s
                )
            else:
                reexec_fn = lambda c, s: run_segment_kernel(  # noqa: E731
                    self._kplan, inputs[gplan.chunk_slice(c)], s
                )
            board = ChunkScoreboard(
                run_dfa, inputs, gplan, self.k_eff, mode="parallel",
                stats=stats,
                reexec_fn=reexec_fn,
            )

            def on_result(tid: int, payload: tuple) -> None:
                # Stream this worker's chunk maps onto the scoreboard the
                # moment its result is accepted — merging (and any provably
                # necessary re-execution) overlaps the remaining workers.
                smat, emat, conv = payload[0], payload[1], payload[2]
                base = tid * sub
                for c in range(smat.shape[0]):
                    board.post(
                        base + c, smat[c], emat[c],
                        converged=bool(conv[c]) if conv is not None else False,
                    )

            def on_retry(tid: int) -> None:
                # A retried/hedged task is a scoreboard re-issue: its chunks
                # rewind to SPECULATED and wait for the next attempt's post.
                base = tid * sub
                for c in range(base, base + sub):
                    board.reissue(c)

        def on_error(
            tid: int, exc_type: str, exc_repr: str, rep: SupervisionReport
        ) -> None:
            # A worker that cannot find the input segment hit an unlink
            # race: republish under a fresh name before the retry fires.
            if exc_type == "FileNotFoundError" and self._input_segment_missing():
                self._republish_input(inputs)
                rep.shm_republishes += 1
                add_count("fault.shm_republished")
                rep.record("shm_republish", task=tid, detail=exc_repr)

        with trace_span("pool.dispatch", workers=w) as dispatch_span:
            tasks = [make_task(i) for i in range(w)]
            task_bytes = sum(len(pickle.dumps(t)) for t in tasks)
            stats.pool_task_bytes += task_bytes
            dispatch_span.set(task_bytes=task_bytes)
        seg_nbytes = [
            int(seg_plan.lengths[i]) * self._input_dtype.itemsize for i in range(w)
        ]
        t_dispatch = time.perf_counter()
        try:
            with trace_span("pool.wait", workers=w, schedule=schedule):
                maps = self._sup.run_tasks(
                    tasks,
                    task_nbytes=seg_nbytes,
                    bytes_per_sec=self._bps_ewma,
                    rebuild=make_task,
                    validate=lambda _tid, payload: self._valid_worker_map(payload),
                    on_error=on_error,
                    on_result=on_result,
                    on_retry=on_retry,
                    report=report,
                )
        except DegradedExecution:
            return self._degraded_result(
                inputs, start, stats, report,
                t_run=t_run, t_publish=t_publish, t_spec=t_spec,
                t_dispatch=t_dispatch, collect_matches=collect_matches,
            )
        t_wait = time.perf_counter()

        worker_timings = []
        for i, m in enumerate(maps):
            if schedule == "barrier":
                stats.reexec_chunks_seq += m[2]
                stats.reexec_items_seq += m[3]
            gathers, scans, lanes, conv, skipped = m[5]
            stats.local_gathers += gathers
            stats.collapse_scans += scans
            stats.lanes_collapsed += lanes
            stats.chunks_converged += conv
            stats.checks_skipped += skipped
            attach_s, exec_s, fold_s, total_s, new_attaches = m[4]
            worker_timings.append(
                WorkerTiming(
                    attach_s=attach_s, exec_s=exec_s, fold_s=fold_s, total_s=total_s
                )
            )
            if obs is not None:
                # Workers run on their own clocks; draw each one inside the
                # parent's wait window (start-aligned) on its own trace row.
                wait_t0 = obs.to_trace_time(t_dispatch)
                sp = obs.add_span(
                    "pool.worker", wait_t0, wait_t0 + total_s,
                    tid=i + 1, worker=i,
                    attach_s=attach_s, exec_s=exec_s, fold_s=fold_s,
                )
                if schedule == "barrier":
                    sp.set(reexec_chunks=m[2], reexec_items=m[3])
                obs.count("pool.shm.attaches", new_attaches)
                obs.observe("pool.worker_exec_s", exec_s)
                obs.observe("pool.worker_fold_s", fold_s)

        # Refresh the measured throughput the deadline model feeds on (EWMA
        # across workers and calls, newest observation weighted 0.3).
        for nbytes_i, wt in zip(seg_nbytes, worker_timings):
            if wt.total_s > 1e-9:
                bps = nbytes_i / wt.total_s
                self._bps_ewma = (
                    bps
                    if self._bps_ewma is None
                    else 0.7 * self._bps_ewma + 0.3 * bps
                )

        true_chunk_starts = None
        if schedule == "ooo":
            # The scoreboard consumed every chunk map inside the wait loop;
            # resolve() only flushes obs counters and reads the tail state.
            with trace_span("pool.merge", workers=w, schedule="ooo"):
                final, true_chunk_starts = board.resolve()
            reexec_chunk_ids = sorted({c for _, c, _ in board.reexec_log})
            reexec_segments = tuple(sorted({c // sub for c in reexec_chunk_ids}))
            results = ChunkResults(
                spec=board.spec, end=board.end, valid=board.valid,
            )
        else:
            # Parent-side combine: the same binary tree merge as the
            # simulated GPU — delayed invalidation, then a fix-up descent
            # that re-executes only the segments whose boundary speculation
            # genuinely missed. A segment whose boundary row covers its
            # look-back image and whose returned map is constant is
            # converged: the tree skips its checks.
            spec_rows = np.stack([m[0] for m in maps])
            end_rows = np.stack([m[1] for m in maps])
            seg_converged = None
            if seg_covered is not None:
                seg_converged = converged_chunks(end_rows, seg_covered)
                stats.chunks_converged += int(seg_converged.sum())
            with trace_span("pool.merge", workers=w):
                results = ChunkResults(
                    spec=spec_rows, end=end_rows,
                    valid=np.ones_like(spec_rows, dtype=bool),
                    converged=seg_converged,
                )
                final, tree = merge_parallel(
                    run_dfa, inputs, seg_plan, results, reexec="delayed",
                    stats=stats,
                )
            reexec_segments = tuple(tree.reexecuted)
            stats.success_total += w - 1
            stats.success_hits += (w - 1) - sum(1 for c in reexec_segments if c > 0)
        t_merge = time.perf_counter()
        if obs is not None:
            if stats.collapse_scans:
                obs.count("spec.collapse_scans", stats.collapse_scans)
            if stats.lanes_collapsed:
                obs.count("spec.lanes_collapsed", stats.lanes_collapsed)
            if stats.chunks_converged:
                obs.count("spec.chunks_converged", stats.chunks_converged)
            if stats.checks_skipped:
                obs.count("spec.checks_skipped", stats.checks_skipped)

        # Second task round: recover accepting positions from each
        # segment's now-known true starting state.
        match_positions = None
        degraded = False
        t_collect = t_merge
        if collect_matches:
            if schedule == "ooo":
                seg_first = np.arange(w) * sub
                if true_chunk_starts is not None:
                    seg_true = true_chunk_starts[seg_first]
                else:
                    _, tfull = true_boundary_walk(run_dfa, inputs, gplan, results)
                    seg_true = tfull[seg_first]
            else:
                _, seg_true = true_boundary_walk(run_dfa, inputs, seg_plan, results)

            def make_collect_task(i: int) -> tuple:
                return make_task(i, mode="collect", aux=int(seg_true[i]))

            def valid_positions(tid: int, payload: object) -> bool:
                if not (isinstance(payload, tuple) and len(payload) == 6):
                    return False
                pos = payload[0]
                if not isinstance(pos, np.ndarray) or pos.ndim != 1:
                    return False
                lo = int(seg_plan.starts[tid])
                hi = lo + int(seg_plan.lengths[tid])
                return not pos.size or bool(((pos >= lo) & (pos < hi)).all())

            try:
                with trace_span("pool.collect", workers=w):
                    outs = self._sup.run_tasks(
                        [make_collect_task(i) for i in range(w)],
                        task_nbytes=seg_nbytes,
                        bytes_per_sec=self._bps_ewma,
                        rebuild=make_collect_task,
                        validate=valid_positions,
                        on_error=on_error,
                        report=report,
                    )
                match_positions = np.concatenate(
                    [np.asarray(o[0], dtype=np.int64) for o in outs]
                )
            except DegradedExecution:
                # The final state is already exact; only the output pass
                # degrades — recover the positions in-process.
                self._check_open_for_fallback()
                degraded = True
                match_positions = _segment_match_positions(
                    dfa, inputs, start,
                    sub_chunks=self.sub_chunks_per_worker, k=self.k,
                    lookback=self.lookback, prior=self._prior,
                )
            t_collect = time.perf_counter()

        timing = PoolRunTiming(
            speculate_s=t_spec - t_publish,
            publish_s=t_publish - t_run,
            dispatch_s=t_dispatch - t_spec,
            wait_s=t_wait - t_dispatch,
            merge_s=t_merge - t_wait,
            total_s=t_collect - t_run,
            collect_s=t_collect - t_merge,
        )
        return MultiprocessResult(
            int(final), w, len(reexec_segments), stats, reexec_segments,
            timing=timing, worker_timings=tuple(worker_timings),
            degraded=degraded,
            recovery=report if report.events else None,
            match_positions=match_positions,
        )

    # ------------------------------------------------------------------ #
    # multi-pattern groups
    # ------------------------------------------------------------------ #

    @classmethod
    def for_group(
        cls, machines, *, k: int | None = 4, **kwargs
    ) -> "ScaleoutPool":
        """Build a pool answering a whole pattern group in one pass.

        The group is stacked into its block-diagonal union machine
        (:func:`repro.core.multipattern.stack_machines`) and the pool is
        constructed **on the union**: the joint-class union table, class
        map, and any composed stride table are published to shared memory
        once, here, and serve every subsequent :meth:`run_multi` call for
        free. ``k`` is the *per-pattern* speculation width (clamped to
        each pattern's state count); the workers step all patterns' lanes
        through one fused gather per symbol, exactly like the in-process
        batched route.
        """
        from repro.core.multipattern import _pattern_widths, stack_machines

        stack = stack_machines(machines)
        widths = _pattern_widths(stack, k)
        pool = cls(stack.union_dfa, k=int(sum(widths)), **kwargs)
        pool._stack = stack
        pool._mp_widths = tuple(int(w_) for w_ in widths)
        pool._mp_k = k
        return pool

    def _ensure_native_multi(self):
        """Native kernel for group runs: total lane width, collapse off.

        Worker-internal speculation rows over the union are not
        group-structured (lanes land wherever the prior puts them), so
        the group-aware collapse fast path cannot be enabled here — the
        artifact is compiled with ``cadence=0``, where lane stepping is
        layout-agnostic. Compiled once per pool; ``None`` (NumPy path)
        on any failure.
        """
        if self._backend != "native" or self._stack is None:
            return None
        if self._mp_native_loaded:
            return self._mp_native
        from repro.core.native import load_native_plan

        self._mp_native = load_native_plan(
            self.dfa,
            k=self.k_eff,
            kplan=self._kplan,
            collapse=None,
            num_chunks=self.num_workers * self.sub_chunks_per_worker,
        )
        self._mp_native_loaded = True
        return self._mp_native

    def run_multi(self, inputs: np.ndarray, *, collect_matches: bool = False):
        """Answer "which patterns fired, and where" in one scaled-out pass.

        Requires a pool built with :meth:`for_group`. The raw symbol
        stream is remapped through the group's joint alphabet compaction
        (one gather), published to the shared input segment, and every
        worker folds its segment's per-chunk maps over the union machine
        — all patterns advance through one table gather per symbol. The
        parent then resolves each pattern independently: a left-to-right
        semi-join fold over the workers' segment maps, probing each
        pattern's trajectory against the returned speculation rows, with
        a provable miss re-executed on the kernel plan. Returns a
        :class:`repro.core.multipattern.MultiPatternResult` with
        ``route="pool"``; bit-exact against the per-pattern sequential
        reference. An unrecoverable pool degrades to the in-process
        batched route (same result shape).
        """
        from repro.core.multipattern import (
            MultiPatternResult,
            PatternResult,
            _batched_accept_matrix,
            _pattern_widths,
            _recover_group_matches,
            run_multipattern,
        )
        from repro.core.lookback import enumerative_spec

        if self._closed:
            raise PoolClosedError("ScaleoutPool is closed")
        stack = self._stack
        if stack is None:
            raise ValueError(
                "run_multi requires a pool built with ScaleoutPool.for_group"
            )
        t_run = time.perf_counter()
        union = self.dfa
        P = stack.num_patterns
        widths = np.asarray(self._mp_widths, dtype=np.int64)
        lane_off = np.concatenate([[0], np.cumsum(widths)])
        K_total = int(lane_off[-1])
        starts_u = (
            stack.offsets[:-1]
            + np.array([m.start for m in stack.machines], dtype=np.int64)
        )

        inputs = np.ascontiguousarray(np.asarray(inputs))
        if inputs.ndim != 1:
            raise ValueError(f"inputs must be 1-D, got shape {inputs.shape}")
        cls_stream = np.ascontiguousarray(
            stack.joint.remap(inputs).astype(self._input_dtype)
        )
        n = int(cls_stream.size)
        w = self.num_workers
        self.calls += 1

        stats = ExecStats(
            num_items=n, num_chunks=w, k=K_total,
            num_states=union.num_states, num_inputs=union.num_inputs,
        )
        stats.pool_calls += 1

        def _local(reason: str):
            # Degenerate / degraded path: the in-process batched route on
            # the already-built stack (no re-stacking, no re-compaction).
            res = run_multipattern(
                list(stack.machines), inputs,
                k=self._mp_k, num_chunks=max(2, self.sub_chunks_per_worker),
                route="batched", stack=stack,
                collect=("match_positions",) if collect_matches else (),
            )
            add_count(f"mp.pool.{reason}")
            return res

        if n == 0:
            patterns = tuple(
                PatternResult(
                    name=m.name or f"pattern_{p}",
                    accepted=bool(m.accepting[m.start]),
                    final_state=int(m.start),
                    match_positions=(
                        np.zeros(0, dtype=np.int64) if collect_matches else None
                    ),
                    true_starts=None,
                )
                for p, m in enumerate(stack.machines)
            )
            return MultiPatternResult(
                route="pool", patterns=patterns, stats=stats,
                plan=plan_chunks(0, 1), stack=stack,
            )
        if w == 1:
            return _local("single_worker")

        with trace_span("pool.publish_input", bytes=int(cls_stream.nbytes)):
            self._ensure_input_capacity(n)
            shm = self._input_shm
            assert shm is not None
            buf = np.ndarray((n,), dtype=self._input_dtype, buffer=shm.buf)
            buf[:] = cls_stream
        stats.pool_shm_bytes = self.shm_bytes

        report = SupervisionReport()
        for fault in self._fault_plan.parent_faults(self.calls):
            self._apply_parent_fault(fault, report)

        seg_plan = plan_chunks(n, w)
        nkern = self._ensure_native_multi()
        native_path, native_meta = (
            (None, None)
            if nkern is None or nkern.artifact_path is None
            else (nkern.artifact_path, nkern.meta)
        )

        # Per-pattern boundary speculation over the class machines,
        # stacked into union lanes; segment 0 pins every pattern's start.
        boundary = np.empty((w, K_total), dtype=np.int32)
        with trace_span("pool.speculate", workers=w, k=K_total, patterns=P):
            sample = cls_stream[: 1 << 14]
            for p, cdfa in enumerate(stack.class_dfas):
                lo, hi = int(lane_off[p]), int(lane_off[p + 1])
                if widths[p] >= cdfa.num_states:
                    spec_p = enumerative_spec(cdfa, w)
                else:
                    prior = stack.pattern_prior(p, sample)
                    spec_p = speculate(
                        cdfa, cls_stream, seg_plan, int(widths[p]),
                        lookback=self.lookback, prior=prior, stats=stats,
                    )
                boundary[:, lo:hi] = spec_p + int(stack.offsets[p])
                if not (boundary[0, lo:hi] == starts_u[p]).any():
                    boundary[0, lo] = starts_u[p]

        def make_task(i: int, mode: str | None = None, aux: int = -1) -> tuple:
            return (
                self._table_shm.name,
                union.num_inputs,
                union.num_states,
                self._acc_shm.name,
                self._prior_shm.name,
                self._input_shm.name,
                n,
                self._input_dtype.str,
                int(seg_plan.starts[i]),
                int(seg_plan.starts[i] + seg_plan.lengths[i]),
                union.start,
                K_total if K_total < union.num_states else None,
                self.sub_chunks_per_worker,
                self.lookback,
                boundary[i],
                self.kernel,
                self._kplan.compaction.num_classes,
                self._kplan.m,
                self._class_of_shm.name,
                self._class_table_shm.name,
                None if self._stride_shm is None else self._stride_shm.name,
                None,  # multi-block rows cannot collapse at full-row grain
                "fold" if mode is None else mode,
                aux,
                native_path,
                native_meta,
            )

        def on_error(
            tid: int, exc_type: str, exc_repr: str, rep: SupervisionReport
        ) -> None:
            if exc_type == "FileNotFoundError" and self._input_segment_missing():
                self._republish_input(cls_stream)
                rep.shm_republishes += 1
                add_count("fault.shm_republished")
                rep.record("shm_republish", task=tid, detail=exc_repr)

        seg_nbytes = [
            int(seg_plan.lengths[i]) * self._input_dtype.itemsize
            for i in range(w)
        ]
        with trace_span("pool.dispatch", workers=w) as dispatch_span:
            tasks = [make_task(i) for i in range(w)]
            task_bytes = sum(len(pickle.dumps(t)) for t in tasks)
            stats.pool_task_bytes += task_bytes
            dispatch_span.set(task_bytes=task_bytes)
        try:
            with trace_span("pool.wait", workers=w, schedule="multi"):
                maps = self._sup.run_tasks(
                    tasks,
                    task_nbytes=seg_nbytes,
                    bytes_per_sec=self._bps_ewma,
                    rebuild=make_task,
                    validate=lambda _tid, payload: self._valid_worker_map(payload),
                    on_error=on_error,
                    report=report,
                )
        except DegradedExecution:
            self._check_open_for_fallback()
            res = _local("degraded")
            return res

        for m in maps:
            stats.reexec_chunks_seq += m[2]
            stats.reexec_items_seq += m[3]
            gathers, scans, lanes, conv, skipped = m[5]
            stats.local_gathers += gathers
            stats.collapse_scans += scans
            stats.lanes_collapsed += lanes
            stats.chunks_converged += conv
            stats.checks_skipped += skipped

        # Parent-side resolution: one left-to-right semi-join fold per
        # pattern over the workers' segment maps. All P trajectories probe
        # each segment's speculation row at once; a pattern whose true
        # incoming state was not speculated re-executes that segment on
        # the kernel plan (class-mapped, stride-packed).
        seg_true = np.empty((w, P), dtype=np.int64)
        vec = starts_u.copy()
        with trace_span("pool.merge", workers=w, schedule="multi", patterns=P):
            for i in range(w):
                seg_true[i] = vec
                sp_row, en_row = maps[i][0], maps[i][1]
                eq = sp_row[None, :] == vec[:, None]
                found = eq.any(axis=1)
                first = eq.argmax(axis=1)
                nxt = en_row[first].astype(np.int64)
                misses = np.flatnonzero(~found)
                if misses.size:
                    seg = cls_stream[
                        seg_plan.starts[i]:
                        seg_plan.starts[i] + seg_plan.lengths[i]
                    ]
                    for p in misses:
                        if nkern is not None:
                            nxt[p] = nkern.run_segment(seg, int(vec[p]))
                        else:
                            nxt[p] = run_segment_kernel(
                                self._kplan, seg, int(vec[p])
                            )
                    stats.reexec_chunks_seq += 1
                    stats.reexec_items_seq += int(seg.size) * int(misses.size)
                vec = nxt
            stats.success_total += (w - 1) * P
            stats.success_hits += (w - 1) * P - int(stats.reexec_chunks_seq)

        matches: list = [None] * P
        if collect_matches:
            with trace_span("pool.collect", route="pool", patterns=P):
                accept_matrix = _batched_accept_matrix(stack)
                matches = _recover_group_matches(
                    union.table, accept_matrix, cls_stream, seg_plan,
                    seg_true.astype(np.int32),
                )

        patterns = tuple(
            PatternResult(
                name=stack.machines[p].name or f"pattern_{p}",
                accepted=bool(union.accepting[int(vec[p])]),
                final_state=int(vec[p] - stack.offsets[p]),
                match_positions=matches[p],
                true_starts=(seg_true[:, p] - int(stack.offsets[p])).astype(
                    np.int32
                ),
            )
            for p in range(P)
        )
        add_count("mp.pool.runs")
        obs = current_trace()
        if obs is not None:
            obs.count("mp.patterns", P)
            obs.observe("pool.multi_total_s", time.perf_counter() - t_run)
        return MultiPatternResult(
            route="pool", patterns=patterns, stats=stats,
            plan=seg_plan, stack=stack,
        )

    def run_map(
        self,
        inputs: np.ndarray,
        boundary_row: np.ndarray,
    ) -> np.ndarray:
        """Compute this segment's ``speculated -> ending`` map over the pool.

        Lane ``j`` of the returned row is the machine's state after
        ``inputs`` when entered at ``boundary_row[j]``. Unlike
        :meth:`run`, no lane is pinned to a known true start: the caller
        — the cross-host :class:`repro.dist.coordinator.ShardCoordinator`
        — owns boundary speculation for the *shard* boundaries, ships
        each host its row, and composes the returned host maps with the
        same binary tree merge the pool applies to its workers. The pool
        is the middle level of that hierarchy: the shard is split across
        workers, each worker folds its sub-chunks, and the parent folds
        the worker maps left to right, re-executing lane misses through
        the kernel layer.

        ``boundary_row`` must have ``k_eff`` lanes (the pool's ``k``, or
        ``num_states`` for spec-N pools, where the row must enumerate
        every state). Supervision failures degrade internally to
        :func:`fold_segment_map`, so the method always returns a
        complete exact map — the coordinator sees a slow host, never a
        wrong one.
        """
        if self._closed:
            raise PoolClosedError("ScaleoutPool is closed")
        dfa = self.dfa
        boundary_row = np.ascontiguousarray(
            np.asarray(boundary_row, dtype=np.int32)
        )
        if boundary_row.ndim != 1 or boundary_row.size != self.k_eff:
            raise ValueError(
                f"boundary_row must have {self.k_eff} lanes, got shape "
                f"{boundary_row.shape}"
            )
        if self.k is None and not np.array_equal(
            np.sort(boundary_row), np.arange(dfa.num_states, dtype=np.int32)
        ):
            raise ValueError(
                "spec-N pools need boundary_row to enumerate every state"
            )
        inputs = np.ascontiguousarray(np.asarray(inputs, dtype=self._input_dtype))
        if inputs.ndim != 1:
            raise ValueError(f"inputs must be 1-D, got shape {inputs.shape}")
        n = int(inputs.size)
        if n == 0:
            return boundary_row.copy()
        self.calls += 1
        w = self.num_workers
        if not self._collapse_resolved:
            self._collapse_cfg = resolve_collapse(
                self._collapse_mode, dfa, inputs, k=self.k_eff
            )
            self._collapse_resolved = True
        nkern = self._ensure_native()

        def local_map() -> np.ndarray:
            return fold_segment_map(
                dfa, self._kplan, inputs, boundary_row,
                sub_chunks=self.sub_chunks_per_worker, k=self.k,
                lookback=self.lookback, prior=self._prior, native=nkern,
            )

        if w == 1 or n < w:
            return local_map()

        with trace_span("pool.publish_input", bytes=int(inputs.nbytes)):
            self._ensure_input_capacity(n)
            shm = self._input_shm
            assert shm is not None
            buf = np.ndarray((n,), dtype=self._input_dtype, buffer=shm.buf)
            buf[:] = inputs

        report = SupervisionReport()
        seg_plan = plan_chunks(n, w)
        collapse_spec = (
            (self._collapse_cfg.cadence, self._collapse_cfg.backoff)
            if self._collapse_cfg is not None
            else None
        )
        native_path, native_meta = self._native_task_fields()
        # Interior worker boundaries speculate from look-back inside the
        # shard; worker 0 enters at the coordinator's row, unpinned.
        if self.k is not None:
            boundary = speculate(
                dfa, inputs, seg_plan, self.k,
                lookback=self.lookback, prior=self._prior,
            )
            boundary[0] = boundary_row
        else:
            boundary = None

        def make_task(i: int) -> tuple:
            return (
                self._table_shm.name,
                dfa.num_inputs,
                dfa.num_states,
                self._acc_shm.name,
                self._prior_shm.name,
                self._input_shm.name,
                n,
                self._input_dtype.str,
                int(seg_plan.starts[i]),
                int(seg_plan.starts[i] + seg_plan.lengths[i]),
                int(dfa.start),
                self.k,
                self.sub_chunks_per_worker,
                self.lookback,
                None if boundary is None else boundary[i],
                self.kernel,
                self._kplan.compaction.num_classes,
                self._kplan.m,
                self._class_of_shm.name,
                self._class_table_shm.name,
                None if self._stride_shm is None else self._stride_shm.name,
                collapse_spec,
                "fold",
                -1,
                native_path,
                native_meta,
            )

        def on_error(
            tid: int, exc_type: str, exc_repr: str, rep: SupervisionReport
        ) -> None:
            if exc_type == "FileNotFoundError" and self._input_segment_missing():
                self._republish_input(inputs)
                rep.shm_republishes += 1
                add_count("fault.shm_republished")
                rep.record("shm_republish", task=tid, detail=exc_repr)

        seg_nbytes = [
            int(seg_plan.lengths[i]) * self._input_dtype.itemsize
            for i in range(w)
        ]
        try:
            with trace_span("pool.wait", workers=w, schedule="map"):
                maps = self._sup.run_tasks(
                    [make_task(i) for i in range(w)],
                    task_nbytes=seg_nbytes,
                    bytes_per_sec=self._bps_ewma,
                    rebuild=make_task,
                    validate=lambda _t, payload: self._valid_worker_map(payload),
                    on_error=on_error,
                    report=report,
                )
        except DegradedExecution:
            self._check_open_for_fallback()
            with trace_span("fault.degrade", reason=report.degrade_reason):
                return local_map()

        # Fold worker maps left to right over the coordinator's lanes —
        # the k-lane generalization of the true-start walk in run().
        spec0 = maps[0][0]
        cur = np.asarray(maps[0][1], dtype=np.int32)
        if not np.array_equal(spec0, boundary_row):
            # spec-N workers return maps over arange(num_states); align
            # the lane order to the coordinator's row.
            if not np.array_equal(
                spec0, np.arange(dfa.num_states, dtype=np.int32)
            ):  # pragma: no cover - worker protocol guarantees one of the two
                return local_map()
            cur = cur[boundary_row]
        cur = cur[None, :].copy()
        all_valid = np.ones((1, self.k_eff), dtype=bool)
        with trace_span("pool.merge", workers=w, schedule="map"):
            for i in range(1, w):
                spec_i = np.asarray(maps[i][0], dtype=np.int32)
                end_i = np.asarray(maps[i][1], dtype=np.int32)
                nxt, found, _ = compose_maps(
                    cur, all_valid, spec_i[None, :], end_i[None, :], all_valid
                )
                misses = np.flatnonzero(~found[0])
                if misses.size:
                    seg = inputs[seg_plan.chunk_slice(i)]
                    for j in misses:
                        nxt[0, j] = (
                            nkern.run_segment(seg, int(cur[0, j]))
                            if nkern is not None
                            else run_segment_kernel(
                                self._kplan, seg, int(cur[0, j])
                            )
                        )
                    add_count("pool.map_lane_reexecs", int(misses.size))
                cur = nxt
        return cur[0].copy()

    def run_batch(
        self,
        segments: list[np.ndarray],
        *,
        starts: list[int] | np.ndarray | None = None,
        deadline_s: float | None = None,
    ) -> BatchRunResult:
        """Resolve many independent requests in one coalesced dispatch.

        The serving layer's pool primitive: every request shares the
        pool's machine but starts at its own ``starts[r]`` (default
        ``dfa.start``) and gets exactly the final state running alone
        would produce. Segments are concatenated into one ragged chunk
        plan, split into contiguous per-worker spans balanced by item
        count, and executed in ``"bmaps"`` mode; the parent resolves the
        streamed chunk maps on one *seeded*
        :class:`repro.core.scoreboard.ChunkScoreboard` — each request head
        is a seed, so resolution never composes across request boundaries.

        ``deadline_s`` clamps the supervision layer's per-task deadline
        from above (the server passes the tightest remaining request
        slack, so stragglers are hedged before the requests riding on
        them expire). Worker failure recovers exactly as in :meth:`run`;
        an unrecoverable pool degrades to in-process per-request
        execution and flags the result ``degraded=True``.
        """
        if self._closed:
            raise PoolClosedError("ScaleoutPool is closed")
        obs = current_trace()
        dfa = self.dfa
        num_requests = len(segments)
        if starts is None:
            starts_arr = np.full(num_requests, dfa.start, dtype=np.int64)
        else:
            starts_arr = np.asarray(starts, dtype=np.int64)
            if starts_arr.shape != (num_requests,):
                raise ValueError(
                    f"starts must have one entry per segment, got "
                    f"{starts_arr.shape} for {num_requests} segments"
                )
            if starts_arr.size and (
                starts_arr.min() < 0 or starts_arr.max() >= dfa.num_states
            ):
                raise ValueError("starts contain states outside the machine")
        segs = []
        for i, seg in enumerate(segments):
            seg = np.ascontiguousarray(np.asarray(seg, dtype=self._input_dtype))
            if seg.ndim != 1:
                raise ValueError(f"segment {i} must be 1-D, got shape {seg.shape}")
            segs.append(seg)
        w = self.num_workers
        stats = ExecStats(
            num_chunks=w,
            k=self.k_eff,
            num_states=dfa.num_states,
            num_inputs=dfa.num_inputs,
        )
        stats.pool_calls += 1

        final_states = np.empty(num_requests, dtype=np.int32)
        total = sum(int(s.size) for s in segs)
        stats.num_items = total
        # Target chunk length: fill every worker sub-slot, but never chunk
        # finer than the requests themselves require.
        target = max(1, -(-total // max(1, w * self.sub_chunks_per_worker)))
        lengths: list[int] = []
        heads: dict[int, int] = {}
        tail_chunk = np.full(num_requests, -1, dtype=np.int64)
        for r, seg in enumerate(segs):
            if not seg.size:
                final_states[r] = starts_arr[r]  # resolved out-of-band
                continue
            nch = -(-seg.size // target)
            heads[len(lengths)] = int(starts_arr[r])
            lengths.extend(plan_chunks(seg.size, nch).lengths.tolist())
            tail_chunk[r] = len(lengths) - 1
        accepted = lambda: dfa.accepting[final_states].astype(bool)  # noqa: E731

        if not lengths:
            return BatchRunResult(
                final_states, accepted(), num_requests, w, stats,
            )
        concat = np.concatenate([s for s in segs if s.size])
        gplan = plan_from_lengths(np.asarray(lengths, dtype=np.int64))
        n_chunks = gplan.num_chunks
        self.calls += 1
        nkern = self._ensure_native()
        native_path, native_meta = self._native_task_fields()

        def _resolve_one(seg: np.ndarray, s0: int) -> int:
            if nkern is not None:
                return nkern.run_segment(seg, s0)
            return run_segment_kernel(self._kplan, seg, s0)

        if w == 1:
            # Degenerate single worker: no dispatch — resolve in-process
            # through the native kernel or the kernel layer.
            for r, seg in enumerate(segs):
                if seg.size:
                    final_states[r] = _resolve_one(seg, int(starts_arr[r]))
            stats.pool_shm_bytes = self.shm_bytes
            return BatchRunResult(
                final_states, accepted(), num_requests, 1, stats,
            )

        with trace_span(
            "pool.batch", requests=num_requests, chunks=n_chunks,
            items=total, workers=w,
        ):
            with trace_span("pool.publish_input", bytes=int(concat.nbytes)):
                self._ensure_input_capacity(total)
                shm = self._input_shm
                assert shm is not None
                np.ndarray(
                    (total,), dtype=self._input_dtype, buffer=shm.buf
                )[:] = concat
            stats.pool_shm_bytes = self.shm_bytes
            if obs is not None:
                obs.count("pool.shm.input_bytes", int(concat.nbytes))
            report = SupervisionReport()
            for fault in self._fault_plan.parent_faults(self.calls):
                self._apply_parent_fault(fault, report)

            # Contiguous per-worker chunk spans, balanced by item count.
            csum = np.cumsum(gplan.lengths)
            num_tasks = min(w, n_chunks)
            cuts = (
                np.searchsorted(
                    csum,
                    np.arange(1, num_tasks) * (total / num_tasks),
                    side="left",
                )
                + 1
            )
            bounds = np.unique(np.concatenate(([0], cuts, [n_chunks])))
            num_tasks = bounds.size - 1
            span_items = np.diff(
                np.concatenate(([0], csum[bounds[1:] - 1]))
            )

            # Span-boundary speculation rows over the global concatenation
            # (workers cannot see their left neighbour's tail). Spans that
            # open on a request head get the known start pinned via pins.
            boundary = None
            with trace_span("pool.speculate", workers=num_tasks, k=self.k_eff):
                if self.k is not None:
                    boundary = speculate(
                        dfa,
                        concat,
                        plan_from_lengths(span_items),
                        self.k,
                        lookback=self.lookback,
                        prior=self._prior,
                        stats=stats,
                    )

            board = ChunkScoreboard(
                dfa, concat, gplan, self.k_eff, mode="parallel",
                stats=stats, seeds=heads,
                reexec_fn=lambda c, s: _resolve_one(
                    concat[gplan.chunk_slice(c)], s
                ),
            )

            def make_btask(t: int) -> tuple:
                lo_c, hi_c = int(bounds[t]), int(bounds[t + 1])
                lo_item = 0 if lo_c == 0 else int(csum[lo_c - 1])
                hi_item = int(csum[hi_c - 1])
                span_lengths = tuple(
                    int(x) for x in gplan.lengths[lo_c:hi_c]
                )
                pins = tuple(
                    (c - lo_c, heads[c]) for c in heads if lo_c <= c < hi_c
                )
                return (
                    self._table_shm.name,
                    dfa.num_inputs,
                    dfa.num_states,
                    self._acc_shm.name,
                    self._prior_shm.name,
                    self._input_shm.name,
                    total,
                    self._input_dtype.str,
                    lo_item,
                    hi_item,
                    dfa.start,
                    self.k,
                    hi_c - lo_c,
                    self.lookback,
                    None if boundary is None else boundary[t],
                    self.kernel,
                    self._kplan.compaction.num_classes,
                    self._kplan.m,
                    self._class_of_shm.name,
                    self._class_table_shm.name,
                    None if self._stride_shm is None else self._stride_shm.name,
                    None,
                    "bmaps",
                    (span_lengths, pins),
                    native_path,
                    native_meta,
                )

            def on_result(tid: int, payload: tuple) -> None:
                smat, emat = payload[0], payload[1]
                base = int(bounds[tid])
                for c in range(smat.shape[0]):
                    board.post(base + c, smat[c], emat[c])

            def on_retry(tid: int) -> None:
                for c in range(int(bounds[tid]), int(bounds[tid + 1])):
                    board.reissue(c)

            def on_error(
                tid: int, exc_type: str, exc_repr: str, rep: SupervisionReport
            ) -> None:
                if (
                    exc_type == "FileNotFoundError"
                    and self._input_segment_missing()
                ):
                    self._republish_input(concat)
                    rep.shm_republishes += 1
                    add_count("fault.shm_republished")
                    rep.record("shm_republish", task=tid, detail=exc_repr)

            tasks = [make_btask(t) for t in range(num_tasks)]
            stats.pool_task_bytes += sum(len(pickle.dumps(t)) for t in tasks)
            span_nbytes = [
                int(x) * self._input_dtype.itemsize for x in span_items
            ]
            t_dispatch = time.perf_counter()
            try:
                with trace_span("pool.wait", workers=num_tasks, schedule="batch"):
                    maps = self._sup.run_tasks(
                        tasks,
                        task_nbytes=span_nbytes,
                        bytes_per_sec=self._bps_ewma,
                        rebuild=make_btask,
                        validate=lambda _t, p: self._valid_worker_map(p),
                        on_error=on_error,
                        on_result=on_result,
                        on_retry=on_retry,
                        report=report,
                        deadline_cap_s=deadline_s,
                    )
            except DegradedExecution:
                self._check_open_for_fallback()
                with trace_span(
                    "fault.degrade", reason=report.degrade_reason, workers=w
                ):
                    for r, seg in enumerate(segs):
                        if seg.size:
                            final_states[r] = _resolve_one(
                                seg, int(starts_arr[r])
                            )
                return BatchRunResult(
                    final_states, accepted(), num_requests, w, stats,
                    degraded=True, recovery=report,
                )
            t_wait = time.perf_counter()

            for m in maps:
                stats.local_gathers += m[5][0]
            for nbytes_t, m in zip(span_nbytes, maps):
                total_s = m[4][3]
                if total_s > 1e-9:
                    bps = nbytes_t / total_s
                    self._bps_ewma = (
                        bps
                        if self._bps_ewma is None
                        else 0.7 * self._bps_ewma + 0.3 * bps
                    )
            if obs is not None:
                obs.observe("pool.batch_wait_s", t_wait - t_dispatch)

            with trace_span("pool.merge", workers=num_tasks, schedule="batch"):
                board.resolve()
            live = tail_chunk >= 0
            final_states[live] = board.out_state[tail_chunk[live]]

        return BatchRunResult(
            final_states, accepted(), num_requests, w, stats,
            recovery=report if report.events else None,
        )

    def _check_open_for_fallback(self) -> None:
        """Refuse the in-process fallback on a closed pool.

        Degradation preserves results for live callers; a pool closed
        mid-run (the signal-teardown handler, ``atexit``) has no caller
        left to serve, and a daemon thread still inside a long native
        call while the interpreter finalizes can crash teardown.
        """
        if self._closed:
            raise PoolClosedError("ScaleoutPool closed during run")

    def _degraded_result(
        self,
        inputs: np.ndarray,
        start: int,
        stats: ExecStats,
        report: SupervisionReport,
        *,
        t_run: float,
        t_publish: float,
        t_spec: float,
        t_dispatch: float,
        collect_matches: bool = False,
    ) -> MultiprocessResult:
        """Finish an unrecoverable run on the in-process engine.

        The bottom of the degradation ladder: correctness is preserved (the
        fallback is the reference speculative engine), scale-out is not.
        The returned result is flagged ``degraded=True`` and carries the
        full :class:`SupervisionReport` of everything tried first.
        """
        self._check_open_for_fallback()
        with trace_span(
            "fault.degrade", reason=report.degrade_reason,
            workers=self.num_workers,
        ):
            fallback = run_inprocess_fallback(
                self.dfa, inputs, start=start, k=self.k, kernel="lockstep"
            )
        positions = None
        if collect_matches:
            positions = _segment_match_positions(
                self.dfa, inputs, start,
                sub_chunks=self.sub_chunks_per_worker, k=self.k,
                lookback=self.lookback, prior=self._prior,
            )
        t_done = time.perf_counter()
        stats = stats.merged_with(fallback.stats)
        stats.pool_shm_bytes = self.shm_bytes
        timing = PoolRunTiming(
            speculate_s=t_spec - t_publish,
            publish_s=t_publish - t_run,
            dispatch_s=t_dispatch - t_spec,
            wait_s=t_done - t_dispatch,
            merge_s=0.0,
            total_s=t_done - t_run,
        )
        return MultiprocessResult(
            int(fallback.final_state), self.num_workers, 0, stats,
            timing=timing, degraded=True, recovery=report,
            match_positions=positions,
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has released the pool's resources."""
        return self._closed

    def close(self) -> None:
        """Shut down workers and release every shared-memory segment.

        Idempotent, and safe from ``__del__`` even after a failed
        ``__init__`` (every attribute it touches is pre-initialised).
        Pools left open at interpreter exit are closed by an ``atexit``
        hook, so abnormal teardown never leaks ``/dev/shm`` segments.
        """
        if getattr(self, "_closed", True):
            return
        with self._shm_lock:
            if self._closed:  # lost the race to a concurrent close
                return
            self._closed = True
            segments = (
                self._table_shm, self._acc_shm, self._prior_shm,
                self._class_of_shm, self._class_table_shm, self._stride_shm,
                self._input_shm,
            )
        _LIVE_POOLS.discard(self)
        if self._sup is not None:
            self._sup.close()
        for shm in segments:
            if shm is None:
                continue
            # Unlink first: removing the /dev/shm name is the part that
            # must never be skipped. Unmapping can legitimately fail (a
            # run thread may still hold a view of the buffer) — the
            # mapping is reclaimed at process exit either way, and
            # unmapping under a concurrent writer would be a segfault.
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            try:
                shm.close()
            except BufferError:  # a live view pins the mapping
                pass

    def __enter__(self) -> "ScaleoutPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass


def run_multiprocess(
    dfa: DFA,
    inputs: np.ndarray,
    *,
    num_workers: int = 4,
    k: int | None = None,
    sub_chunks_per_worker: int = 64,
    lookback: int = 8,
    kernel: str = "auto",
    collapse: str | CollapseConfig | None = "auto",
    backend: str = "numpy",
    resilience: ResilienceConfig | None = DEFAULT_RESILIENCE,
    fault_plan: FaultPlan | None = None,
    pool: ScaleoutPool | None = None,
    schedule: str = "barrier",
    collect_matches: bool = False,
) -> MultiprocessResult:
    """Compute the final state using a pool of worker processes.

    ``k=None`` (spec-N workers) guarantees zero re-execution; a finite ``k``
    runs speculative workers and the parent's tree merge re-executes a
    segment only when its boundary speculation missed. Pass a
    :class:`ScaleoutPool` to reuse live workers and shared-memory segments
    across calls (the other keyword arguments are then taken from the
    pool); without one, a temporary pool is created and torn down around
    the single call. ``resilience``/``fault_plan`` configure worker
    supervision and deterministic failure drills exactly as on
    :class:`ScaleoutPool`; ``schedule``/``collect_matches`` are forwarded
    to :meth:`ScaleoutPool.run`.
    """
    if pool is not None:
        return pool.run(
            inputs, schedule=schedule, collect_matches=collect_matches
        )
    with ScaleoutPool(
        dfa,
        num_workers=num_workers,
        k=k,
        sub_chunks_per_worker=sub_chunks_per_worker,
        lookback=lookback,
        kernel=kernel,
        collapse=collapse,
        backend=backend,
        resilience=resilience,
        fault_plan=fault_plan,
    ) as temp:
        return temp.run(
            inputs, schedule=schedule, collect_matches=collect_matches
        )
