"""Multiprocessing backend: real scale-out on CPU cores.

The GPU in this reproduction is simulated, but the *algorithm* scales out on
real hardware too: this backend splits the input into one segment per
worker process, each worker runs the lock-step engine over its segment with
**enumerative** speculation (spec-N: its segment map is exact for every
possible incoming state, so no cross-process re-execution is ever needed),
and the parent composes the per-segment maps — a two-level version of the
paper's merge.

Workers receive the DFA as plain arrays (cheap to pickle); inputs are
sliced before dispatch so each worker only receives its own segment.

For FSMs whose state count is large, spec-N per worker is wasteful — pass a
``k`` to run speculative workers instead; the parent-side composition then
re-executes a worker's segment on a speculation miss (counted, and
exercised in tests via adversarial machines like Div7 with small ``k``).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.local import process_chunks
from repro.core.lookback import speculate
from repro.core.types import ExecStats
from repro.fsm.dfa import DFA
from repro.fsm.run import run_segment
from repro.workloads.chunking import plan_chunks

__all__ = ["run_multiprocess", "MultiprocessResult"]


@dataclass
class MultiprocessResult:
    """Outcome of a multiprocess run."""

    final_state: int
    num_workers: int
    segment_reexecs: int
    stats: ExecStats


def _worker_segment_map(
    table: np.ndarray,
    start: int,
    accepting: np.ndarray,
    segment: np.ndarray,
    k: int | None,
    sub_chunks: int,
    lookback: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Run one segment; return ``(spec_row, end_row)`` — its speculation map.

    Executed inside a worker process. Rebuilds a lightweight DFA from the
    shipped arrays, runs the lock-step kernel over ``sub_chunks`` chunks and
    folds the per-chunk maps left to right (all arrays are exact under
    spec-N; under spec-k a missing entry invalidates that speculation).
    """
    dfa = DFA(table=table, start=start, accepting=accepting)
    n_states = dfa.num_states
    plan = plan_chunks(segment.size, sub_chunks)
    if k is None or k >= n_states:
        spec = np.tile(np.arange(n_states, dtype=np.int32), (sub_chunks, 1))
    else:
        spec = speculate(dfa, segment, plan, k, lookback=lookback)
        # Worker chunk 0 must cover *all* speculated incoming states of the
        # segment, not just the machine start: use the same speculation row
        # as the segment boundary would produce. (The parent handles misses.)
    end, _ = process_chunks(dfa, segment, plan, spec, stats=None)

    # Fold chunk maps into one segment map over chunk 0's speculation row.
    # On a speculation miss the worker re-executes its own sub-chunk (it
    # holds the data locally), so the returned map is always complete.
    cur_spec = spec[0].copy()
    cur_end = end[0].copy()
    for c in range(1, sub_chunks):
        nxt = np.empty_like(cur_end)
        for j in range(cur_end.size):
            hits = np.flatnonzero(spec[c] == cur_end[j])
            if hits.size:
                nxt[j] = end[c, hits[0]]
            else:
                nxt[j] = run_segment(dfa, segment[plan.chunk_slice(c)], int(cur_end[j]))
        cur_end = nxt
    return cur_spec, cur_end


def run_multiprocess(
    dfa: DFA,
    inputs: np.ndarray,
    *,
    num_workers: int = 4,
    k: int | None = None,
    sub_chunks_per_worker: int = 64,
    lookback: int = 8,
) -> MultiprocessResult:
    """Compute the final state using a pool of worker processes.

    ``k=None`` (spec-N workers) guarantees zero re-execution; a finite ``k``
    runs speculative workers and the parent re-executes a segment serially
    when its map misses the needed state.
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    inputs = np.ascontiguousarray(np.asarray(inputs))
    stats = ExecStats(
        num_items=int(inputs.size),
        num_chunks=num_workers,
        k=dfa.num_states if (k is None or k >= dfa.num_states) else int(k),
        num_states=dfa.num_states,
        num_inputs=dfa.num_inputs,
    )
    seg_plan = plan_chunks(inputs.size, num_workers)
    segments = [inputs[seg_plan.chunk_slice(w)] for w in range(num_workers)]

    if num_workers == 1:
        final = run_segment(dfa, segments[0], dfa.start)
        return MultiprocessResult(final, 1, 0, stats)

    with ProcessPoolExecutor(max_workers=num_workers) as pool:
        futures = [
            pool.submit(
                _worker_segment_map,
                dfa.table,
                dfa.start,
                dfa.accepting,
                seg,
                k,
                sub_chunks_per_worker,
                lookback,
            )
            for seg in segments
        ]
        maps = [f.result() for f in futures]

    cur = dfa.start
    reexecs = 0
    for w, (spec_row, end_row) in enumerate(maps):
        hits = np.flatnonzero((spec_row == cur) & (end_row >= 0))
        if hits.size:
            cur = int(end_row[hits[0]])
            if w > 0:
                stats.success_hits += 1
        else:
            cur = run_segment(dfa, segments[w], cur)
            reexecs += 1
            stats.reexec_items_seq += int(segments[w].size)
            stats.reexec_chunks_seq += 1
        if w > 0:
            stats.success_total += 1
    return MultiprocessResult(int(cur), num_workers, reexecs, stats)
