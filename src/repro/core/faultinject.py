"""Deterministic fault injection for the CPU scale-out resilience layer.

The resilience machinery in :mod:`repro.core.resilience` recovers from
process-level failure — killed workers, stragglers, corrupted result maps,
shared-memory segments unlinked from under a live pool. Those failures are
rare and non-deterministic in the wild, so this module makes them *cheap and
reproducible*: a :class:`FaultPlan` is a list of :class:`FaultSpec` entries,
each naming one failure class and one precise site (``worker N`` at its
``M``-th task, or pool ``run`` call ``M`` for parent-side faults), and every
spec fires **exactly once** at that site — never again, not even after the
worker that hosted it is respawned.

Four fault classes (the spec constructors below):

* :func:`kill_worker` — the worker process ``os._exit``\\ s mid-task,
  simulating an OOM kill / node loss (no result, no cleanup);
* :func:`delay_task` — the worker sleeps before executing, simulating a
  straggler that the deadline machinery must hedge against;
* :func:`corrupt_result_map` — the worker's ``speculated -> ending`` map is
  overwritten with :data:`CORRUPT_SENTINEL`, simulating bit-rot that the
  parent's result validation must catch;
* :func:`shm_unlink_race` — the parent's input segment is unlinked between
  publish and dispatch, simulating an external ``/dev/shm`` cleaner racing a
  live pool.

Worker-side specs travel to worker processes as plain tuples
(:meth:`FaultPlan.worker_wire`) so they survive both ``fork`` and ``spawn``
start methods; parent-side bookkeeping (which spec has fired) stays in the
parent and is excluded from the wire payload a respawned worker receives.

Chaos mode: :func:`chaos_plan_from_env` turns the ``REPRO_CHAOS`` environment
variable into a seeded one-kill-per-pool plan, which is how the CI ``chaos``
job runs the whole tier-1 suite under randomized-but-reproducible worker
loss.
"""

from __future__ import annotations

import itertools
import os
import random
import time
from dataclasses import dataclass

import numpy as np

__all__ = [
    "CORRUPT_SENTINEL",
    "KILLED_EXIT_CODE",
    "FaultPlan",
    "FaultSpec",
    "chaos_plan_from_env",
    "corrupt_result_map",
    "delay_task",
    "kill_worker",
    "shm_unlink_race",
]

#: Exit code used by the kill fault, distinguishable from normal exits.
KILLED_EXIT_CODE = 173

#: Value the corrupt fault writes into result maps — far outside any valid
#: state id, so parent-side range validation always detects it.
CORRUPT_SENTINEL = -999

#: Fault kinds applied inside worker processes.
WORKER_KINDS = ("kill", "delay", "corrupt")

#: Fault kinds applied by the pool parent.
PARENT_KINDS = ("shm_unlink",)

_SPEC_IDS = itertools.count()
_CHAOS_SEQ = itertools.count()


@dataclass
class FaultSpec:
    """One fault: a failure class bound to a single injection site.

    ``worker``/``at_task`` locate worker-side faults (``at_task`` counts the
    tasks one worker *incarnation* has executed, 0-based); ``at_call``
    locates parent-side faults on the pool's 1-based ``run`` call counter.
    ``fired`` is parent-side bookkeeping — a fired spec is never shipped to
    a respawned worker and never re-applied by the parent.
    """

    fault_id: str
    kind: str
    worker: int | None = None
    at_task: int | None = None
    at_call: int | None = None
    delay_s: float = 0.0
    fired: bool = False

    def matches_site(self, worker_id: int, task_seq: int) -> bool:
        """Whether this (worker-side) spec fires for this worker/task."""
        return self.worker == worker_id and self.at_task == task_seq

    def to_wire(self) -> tuple:
        """Serialize to a plain tuple for shipment into a worker process."""
        return (
            self.fault_id, self.kind, self.worker, self.at_task,
            self.at_call, self.delay_s,
        )

    @classmethod
    def from_wire(cls, wire: tuple) -> "FaultSpec":
        """Rebuild a spec from :meth:`to_wire` output."""
        fault_id, kind, worker, at_task, at_call, delay_s = wire
        return cls(
            fault_id=fault_id, kind=kind, worker=worker, at_task=at_task,
            at_call=at_call, delay_s=delay_s,
        )


def kill_worker(worker: int, at_task: int = 0) -> FaultSpec:
    """Worker ``worker`` hard-exits (``os._exit``) on its ``at_task``-th task."""
    return FaultSpec(
        fault_id=f"kill:w{worker}@t{at_task}#{next(_SPEC_IDS)}",
        kind="kill", worker=worker, at_task=at_task,
    )


def delay_task(worker: int, at_task: int = 0, seconds: float = 0.25) -> FaultSpec:
    """Worker ``worker`` sleeps ``seconds`` before its ``at_task``-th task."""
    return FaultSpec(
        fault_id=f"delay:w{worker}@t{at_task}#{next(_SPEC_IDS)}",
        kind="delay", worker=worker, at_task=at_task, delay_s=float(seconds),
    )


def corrupt_result_map(worker: int, at_task: int = 0) -> FaultSpec:
    """Worker ``worker`` returns a sentinel-poisoned map on task ``at_task``."""
    return FaultSpec(
        fault_id=f"corrupt:w{worker}@t{at_task}#{next(_SPEC_IDS)}",
        kind="corrupt", worker=worker, at_task=at_task,
    )


def shm_unlink_race(at_call: int = 1) -> FaultSpec:
    """The parent unlinks the input segment during ``run`` call ``at_call``."""
    return FaultSpec(
        fault_id=f"shm_unlink:c{at_call}#{next(_SPEC_IDS)}",
        kind="shm_unlink", at_call=at_call,
    )


class FaultPlan:
    """An ordered set of faults plus fired-state bookkeeping.

    The plan object lives in the pool parent; worker processes receive
    tuple copies of the *unfired worker-side* specs at (re)spawn time. The
    parent marks specs fired when workers report them (delay/corrupt ride
    the result tuple), when a matching worker death is detected (kill), or
    when it applies a parent-side fault itself (shm_unlink).
    """

    def __init__(self, faults: tuple | list = ()) -> None:
        self.specs: list[FaultSpec] = list(faults)
        for spec in self.specs:
            if spec.kind not in WORKER_KINDS + PARENT_KINDS:
                raise ValueError(f"unknown fault kind {spec.kind!r}")

    def __len__(self) -> int:
        return len(self.specs)

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing (the production default)."""
        return not self.specs

    @property
    def fired_ids(self) -> set[str]:
        """Ids of specs that have already fired."""
        return {s.fault_id for s in self.specs if s.fired}

    def spec(self, fault_id: str) -> FaultSpec | None:
        """Look up a spec by id (None when unknown)."""
        for s in self.specs:
            if s.fault_id == fault_id:
                return s
        return None

    def mark_fired(self, fault_id: str) -> bool:
        """Mark a spec fired; returns True if it was previously unfired."""
        s = self.spec(fault_id)
        if s is None or s.fired:
            return False
        s.fired = True
        return True

    def is_fired(self, fault_id: str) -> bool:
        """Whether the named spec has fired."""
        s = self.spec(fault_id)
        return s is not None and s.fired

    def worker_wire(self) -> tuple:
        """Unfired worker-side specs as wire tuples (for worker spawn)."""
        return tuple(
            s.to_wire()
            for s in self.specs
            if s.kind in WORKER_KINDS and not s.fired
        )

    def parent_faults(self, call: int) -> list[FaultSpec]:
        """Unfired parent-side specs scheduled for pool ``run`` call ``call``."""
        return [
            s for s in self.specs
            if s.kind in PARENT_KINDS and not s.fired and s.at_call == call
        ]

    def match_worker_kind(self, worker_id: int, kind: str) -> list[FaultSpec]:
        """Unfired specs of ``kind`` bound to ``worker_id`` (any task site)."""
        return [
            s for s in self.specs
            if s.kind == kind and not s.fired and s.worker == worker_id
        ]


# --------------------------------------------------------------------------- #
# worker-side application
# --------------------------------------------------------------------------- #


def specs_from_wire(wire_specs: tuple) -> list[FaultSpec]:
    """Rebuild the worker's private spec copies from wire tuples."""
    return [FaultSpec.from_wire(w) for w in wire_specs]


def apply_pre_faults(
    specs: list[FaultSpec], worker_id: int, task_seq: int, fired: list[str]
) -> None:
    """Apply kill/delay faults due at this site, before the task runs.

    Appends the ids of observably-fired faults to ``fired`` (the worker
    ships them back on its result tuple); a kill fault never returns.
    """
    for spec in specs:
        if spec.fired or not spec.matches_site(worker_id, task_seq):
            continue
        if spec.kind == "delay":
            spec.fired = True
            time.sleep(spec.delay_s)
            fired.append(spec.fault_id)
        elif spec.kind == "kill":
            # Simulate SIGKILL/OOM: no result, no flush, no cleanup.
            os._exit(KILLED_EXIT_CODE)


def apply_post_faults(
    specs: list[FaultSpec],
    worker_id: int,
    task_seq: int,
    result: tuple,
    fired: list[str],
) -> tuple:
    """Apply corrupt faults due at this site to the task's result."""
    for spec in specs:
        if spec.fired or spec.kind != "corrupt":
            continue
        if spec.matches_site(worker_id, task_seq):
            spec.fired = True
            result = corrupt_worker_result(result)
            fired.append(spec.fault_id)
    return result


def corrupt_worker_result(result: tuple) -> tuple:
    """Poison a scale-out worker result's ending-state row with the sentinel.

    Targets the ``(spec_row, end_row, ...)`` tuple shape returned by
    :func:`repro.core.mp_executor._worker_run`; anything else is returned
    unchanged (the harness is specific to the pool worker protocol).
    """
    if (
        isinstance(result, tuple)
        and len(result) >= 2
        and isinstance(result[1], np.ndarray)
    ):
        poisoned = np.full_like(result[1], CORRUPT_SENTINEL)
        return (result[0], poisoned) + tuple(result[2:])
    return result


# --------------------------------------------------------------------------- #
# chaos mode
# --------------------------------------------------------------------------- #


def chaos_plan_from_env(num_workers: int, env=None) -> FaultPlan | None:
    """A seeded one-kill plan when ``REPRO_CHAOS`` is set, else None.

    Each call draws a fresh (but deterministic, given the env token and the
    process-wide call sequence) victim worker, so a test suite run under
    ``REPRO_CHAOS=<seed>`` kills one worker per pool in a reproducible
    pattern. Pools too small to lose a worker (``num_workers < 2``) get no
    plan.
    """
    env = os.environ if env is None else env
    token = env.get("REPRO_CHAOS", "")
    if not token or num_workers < 2:
        return None
    rng = random.Random(f"{token}:{next(_CHAOS_SEQ)}")
    return FaultPlan([kill_worker(rng.randrange(num_workers), at_task=0)])
