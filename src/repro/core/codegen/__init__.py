"""Kernel code generation (the paper's Clang-libtooling generator, Sec. 4).

The paper generates CUDA kernels specialized on compile-time ``num_guess``
so the speculated-state array unrolls into registers, and selects the
runtime-check implementation (nested loop vs hash) per configuration. This
subpackage reproduces both halves:

* :mod:`repro.core.codegen.select` — the selection logic: check
  implementation (hash iff k > 12), spec-k vs spec-N path, register/spill
  assessment, hot-state cache sizing;
* :mod:`repro.core.codegen.pykernel` — generates *executable Python*
  kernels specialized on ``k`` (states unrolled into scalar locals), used
  by the engine's ``backend="codegen"`` path and equivalence-tested against
  the vectorized kernel;
* :mod:`repro.core.codegen.cuda_src` — emits the CUDA C source the paper's
  generator would produce (local-processing kernel, warp/block/global merge
  stages, checks, optional shared-memory cache). There is no ``nvcc`` here,
  so the output is structurally tested, not compiled.
"""

from repro.core.codegen.cuda_src import generate_cuda_kernel
from repro.core.codegen.pykernel import compile_local_kernel, generate_local_source
from repro.core.codegen.select import KernelPlan, plan_kernel

__all__ = [
    "KernelPlan",
    "compile_local_kernel",
    "generate_cuda_kernel",
    "generate_local_source",
    "plan_kernel",
]
