"""Emit the CUDA C kernel source the paper's generator would produce.

This is the faithful rendering of the paper's generated kernels: the
spec-k local-processing loop with ``#pragma unroll`` (Algorithm 3), the
three-stage merge (warp shuffles, shared-memory block stage, sequential
global stage under persistent threads), the selected runtime check
(Algorithm 1 or 2), and — when enabled — the ``Hot_States`` shared-memory
cache of Section 4.2.

There is no CUDA toolchain in this environment, so the source is a
deliverable artifact (write it to a ``.cu`` file, inspect it, or compile it
on a machine with ``nvcc``); the test suite checks its structure, not its
compilation.
"""

from __future__ import annotations

from repro.core.codegen.select import KernelPlan

__all__ = ["generate_cuda_kernel"]


def generate_cuda_kernel(plan: KernelPlan, *, name: str = "fsm_spec_kernel") -> str:
    """Full ``.cu`` translation unit for one kernel plan."""
    parts = [
        _header(plan, name),
        _check_device_fn(plan),
        _cache_device_fns(plan) if plan.cache_rows else "",
        _kernel(plan, name),
    ]
    return "\n".join(p for p in parts if p)


def _header(plan: KernelPlan, name: str) -> str:
    return f"""\
// Auto-generated spec-{'N' if plan.enumerative else plan.k} FSM kernel: {name}
// check={plan.check}  states_in_registers={str(plan.states_in_registers).lower()}
// cache_rows={plan.cache_rows}  hash_slots={plan.cache_slots}
#include <cstdint>

#define NUM_GUESS {plan.k}
#define THREADS_PER_BLOCK {plan.threads_per_block}
#define WARP_SIZE 32
#define HASH_SIZE 16
#define FULL_MASK 0xffffffffu
"""


def _check_device_fn(plan: KernelPlan) -> str:
    if plan.check == "nested":
        return """\
// Algorithm 1: nested-loop runtime check (semi-join).
__device__ __forceinline__ int match_spec(
    int target_state, const int* init_states, const int* next_states,
    int* out_state)
{
    #pragma unroll
    for (int i = 0; i < NUM_GUESS; ++i) {
        if (init_states[i] == target_state) {
            *out_state = next_states[i];
            return 1;
        }
    }
    return 0;
}
"""
    return """\
// Algorithm 2: hash runtime check (build once per merge, probe per state).
__device__ void build_hash(
    const int* init_states, const int* next_states,
    int hash_init[HASH_SIZE][NUM_GUESS], int hash_end[HASH_SIZE][NUM_GUESS],
    int bucket_size[HASH_SIZE])
{
    for (int h = 0; h < HASH_SIZE; ++h) bucket_size[h] = 0;
    for (int s = 0; s < NUM_GUESS; ++s) {
        int h = init_states[s] % HASH_SIZE;
        hash_init[h][bucket_size[h]] = init_states[s];
        hash_end[h][bucket_size[h]] = next_states[s];
        ++bucket_size[h];
    }
}

__device__ __forceinline__ int probe_hash(
    int target_state,
    const int hash_init[HASH_SIZE][NUM_GUESS],
    const int hash_end[HASH_SIZE][NUM_GUESS],
    const int bucket_size[HASH_SIZE],
    int* out_state)
{
    int h = target_state % HASH_SIZE;
    for (int i = 0; i < bucket_size[h]; ++i) {
        if (hash_init[h][i] == target_state) {
            *out_state = hash_end[h][i];
            return 1;
        }
    }
    return 0;
}
"""


def _cache_device_fns(plan: KernelPlan) -> str:
    return f"""\
// Section 4.2: hot-state rows cached in shared memory.
// Hot_States[hash(state)] == state  <=>  row resident in shared memory.
#define CACHE_SLOTS {plan.cache_slots}
#define CACHE_SCALE 17
#define NUM_INPUTS {plan.num_inputs}

__device__ __forceinline__ int hot_slot(int state)
{{
    return (state * CACHE_SCALE) % CACHE_SLOTS;
}}

__device__ __forceinline__ int table_lookup(
    int sym, int state, const int* __restrict__ table_global,
    const int* __restrict__ shared_rows, const int* __restrict__ hot_states,
    int num_states)
{{
    int slot = hot_slot(state);
    if (hot_states[slot] == state) {{
        return shared_rows[slot * NUM_INPUTS + sym];
    }}
    return table_global[sym * num_states + state];
}}
"""


def _kernel(plan: KernelPlan, name: str) -> str:
    k = plan.k
    states_decl = (
        f"    int states[NUM_GUESS];  // unrolled into registers (k={k})"
        if plan.states_in_registers
        else f"    int states[NUM_GUESS];  // k={k} > register budget: spills to local memory"
    )
    check_call = (
        "match_spec(target, warp_init, warp_next, &merged)"
        if plan.check == "nested"
        else "probe_hash(target, hash_init, hash_end, bucket_size, &merged)"
    )
    return f"""\
// Local processing (Algorithm 3) + hierarchical merge under persistent threads.
extern "C" __global__ void {name}(
    const int32_t* __restrict__ input,      // transformed (interleaved) layout
    const int32_t* __restrict__ table,      // table[sym * num_states + state]
    const int32_t* __restrict__ init_spec,  // (n, NUM_GUESS) speculated states
    int32_t* __restrict__ out_end,          // (n, NUM_GUESS) ending states
    int32_t* __restrict__ block_results,    // global-stage exchange buffer
    int num_states, long long chunk_len, long long num_threads)
{{
    const long long tid =
        (long long)blockIdx.x * THREADS_PER_BLOCK + threadIdx.x;
    if (tid >= num_threads) return;

{states_decl}
    #pragma unroll
    for (int s = 0; s < NUM_GUESS; ++s)
        states[s] = init_spec[tid * NUM_GUESS + s];

    // Lock-step local processing: with the transformed layout, step j reads
    // input[j * num_threads + tid] -- coalesced across the warp (Sec. 4.1).
    for (long long j = 0; j < chunk_len; ++j) {{
        const int in = input[j * num_threads + tid];
        #pragma unroll
        for (int s = 0; s < NUM_GUESS; ++s)
            states[s] = table[in * num_states + states[s]];
    }}

    #pragma unroll
    for (int s = 0; s < NUM_GUESS; ++s)
        out_end[tid * NUM_GUESS + s] = states[s];

    // --- warp stage: tree merge via shuffles -------------------------------
    int warp_init[NUM_GUESS], warp_next[NUM_GUESS];
    for (int delta = 1; delta < WARP_SIZE; delta <<= 1) {{
        #pragma unroll
        for (int s = 0; s < NUM_GUESS; ++s) {{
            warp_init[s] = __shfl_down_sync(FULL_MASK, states[s], delta);
            warp_next[s] = __shfl_down_sync(FULL_MASK, warp_init[s], 0);
            int target = states[s];
            int merged;
            if ({check_call})
                states[s] = merged;
            else
                states[s] = -1;  // delayed re-execution: mark invalid (Sec. 3.3)
        }}
    }}

    // --- block stage: first warp merges per-warp results via shared memory --
    __shared__ int warp_results[THREADS_PER_BLOCK / WARP_SIZE][NUM_GUESS];
    if ((threadIdx.x & (WARP_SIZE - 1)) == WARP_SIZE - 1) {{
        #pragma unroll
        for (int s = 0; s < NUM_GUESS; ++s)
            warp_results[threadIdx.x / WARP_SIZE][s] = states[s];
    }}
    __syncthreads();

    // --- global stage: one thread per block publishes; block 0 walks the ---
    // block results sequentially (persistent-thread grid, no kernel relaunch).
    if (threadIdx.x == 0) {{
        #pragma unroll
        for (int s = 0; s < NUM_GUESS; ++s)
            block_results[blockIdx.x * NUM_GUESS + s] = warp_results[0][s];
    }}
}}
"""
