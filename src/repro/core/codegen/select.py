"""Kernel configuration selection — the code generator's decision logic.

Reproduces the choices the paper's generator makes before emitting a
kernel: spec-k vs spec-N, nested-loop vs hash runtime checks (hash iff
``num_guess > 12``), whether the speculated-state array stays in registers
or spills, and how much of the transition table the hot-state cache can
hold within the shared-memory budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.hotstates import plan_hot_states
from repro.core.checks import HASH_THRESHOLD, select_check
from repro.fsm.dfa import DFA
from repro.gpu import calibration as cal
from repro.gpu.device import DeviceSpec, TESLA_V100
from repro.gpu.occupancy import occupancy_report, spill_factor

__all__ = ["KernelPlan", "plan_kernel"]


@dataclass(frozen=True)
class KernelPlan:
    """Everything the generator decided for one kernel instantiation."""

    k: int
    enumerative: bool
    check: str
    states_in_registers: bool
    spill_factor: float
    threads_per_block: int
    cache_rows: int
    cache_slots: int
    shared_bytes: int
    resident_warps_per_sm: int
    num_states: int = 0
    num_inputs: int = 0

    def describe(self) -> str:
        """Human-readable summary (mirrors the generator's build log)."""
        lines = [
            f"spec-{'N' if self.enumerative else self.k} kernel, "
            f"{self.threads_per_block} threads/block",
            f"runtime check: {self.check} "
            f"(threshold k > {HASH_THRESHOLD})",
            "states array: "
            + (
                "registers (unrolled)"
                if self.states_in_registers
                else f"local memory (spill x{self.spill_factor:.0f})"
            ),
        ]
        if self.cache_rows:
            lines.append(
                f"hot-state cache: {self.cache_rows} rows, "
                f"{self.cache_slots} hash slots, {self.shared_bytes} B shared"
            )
        else:
            lines.append("hot-state cache: disabled")
        lines.append(f"occupancy: {self.resident_warps_per_sm} warps/SM")
        return "\n".join(lines)


def plan_kernel(
    dfa: DFA,
    k: int | None,
    *,
    device: DeviceSpec = TESLA_V100,
    threads_per_block: int = 256,
    check: str = "auto",
    cache_table: bool = False,
    cache_budget_bytes: int | None = None,
) -> KernelPlan:
    """Make all generator decisions for one configuration."""
    enumerative = k is None or k >= dfa.num_states
    k_eff = dfa.num_states if enumerative else int(k)
    if k_eff < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    impl = select_check(k_eff, check)
    in_regs = k_eff <= cal.SPILL_THRESHOLD_STATES

    cache_rows = cache_slots = shared_bytes = 0
    if cache_table:
        budget = (
            cache_budget_bytes
            if cache_budget_bytes is not None
            else device.shared_mem_per_sm_bytes // 2
        )
        cache = plan_hot_states(dfa, shared_budget_bytes=budget)
        cache_rows = cache.rows_resident
        cache_slots = cache.num_slots
        shared_bytes = cache.shared_bytes

    occ = occupancy_report(
        device, threads_per_block, k=k_eff, shared_bytes_per_block=shared_bytes
    )
    return KernelPlan(
        k=k_eff,
        enumerative=enumerative,
        check=impl,
        states_in_registers=in_regs,
        spill_factor=spill_factor(k_eff),
        threads_per_block=threads_per_block,
        cache_rows=cache_rows,
        cache_slots=cache_slots,
        shared_bytes=shared_bytes,
        resident_warps_per_sm=occ.resident_warps_per_sm,
        num_states=dfa.num_states,
        num_inputs=dfa.num_inputs,
    )
