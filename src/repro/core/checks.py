"""Runtime checks for the merge: nested-loop (Alg. 1) and hash (Alg. 2).

Merging two adjacent results must match each ending state of the left side
against the speculated states of the right side — a semi-join. The paper
implements it two ways and lets the code generator choose:

* **nested loop** — O(k^2) comparisons, but fully register-resident and
  branch-friendly; best for small ``k``;
* **hash** — O(k) expected, but the dynamically indexed arrays spill to
  GPU local memory; chosen only when ``k > HASH_THRESHOLD`` (the paper's
  empirically derived 12).

The vectorized :func:`match_pairs` computes the *results* of the semi-join
for whole levels of the merge tree at once (results are check-independent);
:func:`count_nested` / :func:`count_hash` account the cost each
implementation would have paid, faithfully to the pseudocode's early-exit
and bucket-scan behaviour. The scalar ``*_reference`` functions transcribe
the paper's pseudocode directly and anchor the unit tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import ExecStats

__all__ = [
    "HASH_THRESHOLD",
    "DEFAULT_HASH_SIZE",
    "select_check",
    "match_pairs",
    "count_nested",
    "count_hash",
    "count_skipped",
    "nested_loop_check_reference",
    "hash_check_reference",
]

HASH_THRESHOLD = 12  # paper, Section 3.2: hash only when num_guess > 12
DEFAULT_HASH_SIZE = 16


def select_check(k: int, requested: str = "auto") -> str:
    """Resolve the check implementation for speculation width ``k``.

    ``auto`` follows the paper's code generator: hash iff ``k > 12``.
    """
    if requested == "auto":
        return "hash" if k > HASH_THRESHOLD else "nested"
    if requested in ("nested", "hash"):
        return requested
    raise ValueError(f"check must be 'auto', 'nested', or 'hash', got {requested!r}")


def match_pairs(
    end_left: np.ndarray,
    valid_left: np.ndarray,
    spec_right: np.ndarray,
    valid_right: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Semi-join of left ending states against right speculated states.

    All arrays are ``(num_pairs, k)``. Returns ``(match_idx, found)`` where
    ``found[p, j]`` says the valid left entry ``j`` of pair ``p`` matched a
    valid right entry, and ``match_idx[p, j]`` is the first such right index
    (undefined where not found). Invalid left entries report not-found.
    """
    eq = end_left[:, :, None] == spec_right[:, None, :]
    hit = eq & valid_right[:, None, :]
    found = hit.any(axis=2) & valid_left
    match_idx = hit.argmax(axis=2)
    return match_idx, found


def count_nested(
    match_idx: np.ndarray,
    found: np.ndarray,
    valid_left: np.ndarray,
    k: int,
    stats: ExecStats,
) -> None:
    """Charge nested-loop comparison counts for one batch of pair merges.

    The inner loop breaks at the first match, so a hit costs ``idx + 1``
    comparisons and a miss costs ``k`` — exactly Algorithm 1's behaviour.
    Only valid left entries probe at all.
    """
    probes = valid_left
    cost = np.where(found, match_idx + 1, k)
    stats.check_comparisons += int(cost[probes].sum())


def count_hash(
    end_left: np.ndarray,
    valid_left: np.ndarray,
    spec_right: np.ndarray,
    valid_right: np.ndarray,
    match_idx: np.ndarray,
    found: np.ndarray,
    stats: ExecStats,
    *,
    hash_size: int = DEFAULT_HASH_SIZE,
) -> None:
    """Charge hash-implementation counts for one batch of pair merges.

    Build: one insert per valid right entry. Probe: one hash computation
    per valid left entry plus a scan of its bucket — up to and including
    the matching entry on a hit, the whole bucket on a miss (Algorithm 2).
    """
    k = spec_right.shape[1]
    stats.hash_inserts += int(valid_right.sum())
    stats.hash_probes += int(valid_left.sum())
    hl = end_left % hash_size
    hr = spec_right % hash_size
    same_bucket = (hl[:, :, None] == hr[:, None, :]) & valid_right[:, None, :]
    bucket_sizes = same_bucket.sum(axis=2)
    upto = np.arange(k)[None, None, :] <= match_idx[:, :, None]
    scanned_to_hit = (same_bucket & upto).sum(axis=2)
    steps = np.where(found, scanned_to_hit, bucket_sizes)
    stats.hash_probe_steps += int(steps[valid_left].sum())


def count_skipped(num_probes: int, stats: ExecStats | None) -> None:
    """Attribute semi-join probes elided by the convergence layer.

    A merge against a *converged* segment (total-constant map over
    achievable incoming states, :mod:`repro.core.convergence`) needs no
    check at all — neither nested-loop comparisons nor hash build/probe
    work is charged. The elided probes are recorded in
    ``stats.checks_skipped`` so benchmarks can assert that converged
    chunks contribute zero check cost.
    """
    if stats is not None and num_probes:
        stats.checks_skipped += int(num_probes)


# --------------------------------------------------------------------------- #
# scalar reference transcriptions of the paper's pseudocode
# --------------------------------------------------------------------------- #


def nested_loop_check_reference(
    states: np.ndarray,
    init_states: np.ndarray,
    next_states: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Algorithm 1, verbatim: returns ``(new_states, needs_reexec, compares)``.

    ``states`` are the current chunk's ending states; ``init_states`` and
    ``next_states`` are the next chunk's speculated and ending states.
    ``needs_reexec[s]`` is True where no match was found (line 15).
    """
    num_guess = len(states)
    out = np.asarray(states).copy()
    needs = np.zeros(num_guess, dtype=bool)
    compares = 0
    for s in range(num_guess):
        target_state = states[s]
        found = 0
        i = 0
        for i in range(num_guess):
            compares += 1
            if init_states[i] == target_state:
                found = 1
                break
        if found == 0:
            needs[s] = True
        else:
            out[s] = next_states[i]
    return out, needs, compares


def hash_check_reference(
    states: np.ndarray,
    init_states: np.ndarray,
    next_states: np.ndarray,
    *,
    hash_size: int = DEFAULT_HASH_SIZE,
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Algorithm 2, verbatim: ``(new_states, needs_reexec, inserts, probe_steps)``.

    Step 1 builds bucket lists keyed by ``init_state % hash_size``; step 2
    probes each ending state's bucket linearly.
    """
    num_guess = len(states)
    buckets_init: list[list[int]] = [[] for _ in range(hash_size)]
    buckets_end: list[list[int]] = [[] for _ in range(hash_size)]
    inserts = 0
    for s in range(num_guess):
        h = int(init_states[s]) % hash_size
        buckets_init[h].append(int(init_states[s]))
        buckets_end[h].append(int(next_states[s]))
        inserts += 1
    out = np.asarray(states).copy()
    needs = np.zeros(num_guess, dtype=bool)
    probe_steps = 0
    for s in range(num_guess):
        target_state = int(states[s])
        h = target_state % hash_size
        found = 0
        i = 0
        for i in range(len(buckets_init[h])):
            probe_steps += 1
            if buckets_init[h][i] == target_state:
                found = 1
                break
        if found == 0:
            needs[s] = True
        else:
            out[s] = buckets_end[h][i]
    return out, needs, inserts, probe_steps
