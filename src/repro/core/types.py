"""Core data types: chunk-result algebra and execution statistics.

A chunk processed under spec-k yields a *partial map* from its ``k``
speculated starting states to ending states. Merging two adjacent chunks is
function composition restricted to matching states — the semi-join of
Section 3.2 — with a validity bit per entry carrying the paper's *delayed
re-execution* marking (Section 3.3).

:class:`ExecStats` is the bridge between the functional simulation and the
GPU cost model: every algorithmic event (transition, comparison, hash probe,
re-executed item, merge step) is counted here during a real run, and
:mod:`repro.gpu.cost` prices those counts in modeled V100 time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

import numpy as np

__all__ = ["ChunkResults", "SegmentMaps", "ExecStats"]


@dataclass
class ChunkResults:
    """Per-chunk speculation maps after local processing.

    ``spec[c, j] -> end[c, j]`` for chunk ``c``; entries are valid unless a
    delayed merge marked them invalid. Speculated states within a chunk are
    distinct by construction (the look-back planner deduplicates).

    ``converged[c]`` (optional) flags chunks whose map is a *total
    constant* over achievable incoming states: the speculation row covers
    the chunk's look-back image and every lane ended in the same state
    (:func:`repro.core.convergence.converged_chunks`). The merges
    short-circuit the semi-join against such chunks — any achievable
    incoming state is a guaranteed hit with a known answer.
    """

    spec: np.ndarray  # (num_chunks, k) int32
    end: np.ndarray  # (num_chunks, k) int32
    valid: np.ndarray  # (num_chunks, k) bool
    converged: np.ndarray | None = None  # (num_chunks,) bool

    def __post_init__(self) -> None:
        if not (self.spec.shape == self.end.shape == self.valid.shape):
            raise ValueError(
                f"shape mismatch: spec {self.spec.shape}, end {self.end.shape}, "
                f"valid {self.valid.shape}"
            )
        if self.spec.ndim != 2:
            raise ValueError(f"chunk results must be 2-D, got {self.spec.shape}")
        if self.converged is not None and self.converged.shape != (
            self.spec.shape[0],
        ):
            raise ValueError(
                f"converged must have shape ({self.spec.shape[0]},), got "
                f"{self.converged.shape}"
            )

    @property
    def num_chunks(self) -> int:
        """Number of chunks (one per simulated thread)."""
        return self.spec.shape[0]

    @property
    def k(self) -> int:
        """Number of speculated states per chunk."""
        return self.spec.shape[1]

    def lookup(self, c: int, state: int) -> int | None:
        """Ending state for ``state`` in chunk ``c``, or None if not covered."""
        row = self.spec[c]
        hits = np.flatnonzero((row == state) & self.valid[c])
        if hits.size == 0:
            return None
        return int(self.end[c, hits[0]])


@dataclass
class SegmentMaps:
    """Speculation maps of contiguous chunk *segments* during a tree merge.

    Entry ``i`` covers chunks ``chunk_lo[i] .. chunk_hi[i]`` (half-open) and
    maps ``spec[i, j] -> end[i, j]`` where valid. Merging entries ``2i`` and
    ``2i+1`` composes the maps; the result inherits the left side's
    speculated states, exactly as in Figure 4b of the paper.
    """

    spec: np.ndarray  # (m, k)
    end: np.ndarray  # (m, k)
    valid: np.ndarray  # (m, k) bool
    chunk_lo: np.ndarray  # (m,) int64
    chunk_hi: np.ndarray  # (m,) int64
    converged: np.ndarray | None = None  # (m,) bool

    @property
    def num_segments(self) -> int:
        """Number of segments at this merge level."""
        return self.spec.shape[0]

    @property
    def k(self) -> int:
        """Speculation width."""
        return self.spec.shape[1]

    def converged_mask(self) -> np.ndarray:
        """The convergence flags, defaulting to all-False when absent."""
        if self.converged is None:
            return np.zeros(self.num_segments, dtype=bool)
        return self.converged

    @classmethod
    def from_chunks(cls, results: ChunkResults) -> "SegmentMaps":
        """Level-0 segments: one per chunk."""
        n = results.num_chunks
        return cls(
            spec=results.spec.copy(),
            end=results.end.copy(),
            valid=results.valid.copy(),
            chunk_lo=np.arange(n, dtype=np.int64),
            chunk_hi=np.arange(1, n + 1, dtype=np.int64),
            converged=(
                None if results.converged is None else results.converged.copy()
            ),
        )


@dataclass
class ExecStats:
    """Event counters from one speculative execution.

    All counters are totals over the whole run unless suffixed otherwise.
    ``project(factor)`` scales the input-size-proportional counters to model
    a larger input with identical per-chunk-boundary behaviour (speculation
    success depends on the FSM and look-back, not on chunk length), which is
    how bench runs at 10^6 items are priced at the paper's 2^30 scale.
    """

    # --- configuration echoes (not scaled) -----------------------------
    num_items: int = 0
    num_chunks: int = 0
    k: int = 0
    num_states: int = 0
    num_inputs: int = 0

    # --- local processing (scale with input size) -----------------------
    local_steps: int = 0  # lock-step iterations (= max chunk length)
    local_transitions: int = 0  # table lookups in local processing
    local_input_reads: int = 0  # one per (chunk, step)

    # --- convergence layer (repro.core.convergence) -----------------------
    # ``local_transitions`` above keeps lock-step *modeled* semantics
    # (symbols consumed x speculation width) so GPU pricing is
    # collapse-independent; ``local_gathers`` counts the *physical*
    # elements actually gathered, which lane collapse shrinks.
    local_gathers: int = 0  # physical gathered elements in local processing
    collapse_scans: int = 0  # duplicate scans performed
    lanes_collapsed: int = 0  # lane slots eliminated by collapse scans
    chunks_converged: int = 0  # chunks with a constant, covered spec->end map
    checks_skipped: int = 0  # merge semi-join probes skipped via convergence

    # --- speculation ------------------------------------------------------
    lookback_symbols: int = 0  # symbols consumed by look-back
    success_hits: int = 0  # chunks (excl. 0) whose true state was speculated
    success_total: int = 0

    # --- runtime checks ----------------------------------------------------
    check_comparisons: int = 0  # nested-loop equality tests
    hash_inserts: int = 0  # hash build operations
    hash_probes: int = 0  # hash probe operations
    hash_probe_steps: int = 0  # bucket entries scanned

    # --- merge structure ----------------------------------------------------
    seq_merge_steps: int = 0  # sequential merge walk length
    merge_pair_ops: int = 0  # pairwise segment merges (tree)
    merge_levels_warp: int = 0
    merge_levels_block: int = 0
    merge_global_steps: int = 0  # sequential steps across block results

    # --- re-execution ---------------------------------------------------------
    reexec_chunks_seq: int = 0  # necessary re-executions in sequential merge
    reexec_items_seq: int = 0
    reexec_chunks_eager: int = 0  # tree-merge eager re-executions (incl. unnecessary)
    reexec_items_eager: int = 0
    reexec_wall_items: int = 0  # critical-path items: sum over levels of the
    # largest single eager resolution at that level
    reexec_max_chain: int = 0  # longest dependent chain of re-executions
    reexec_chunks_early: int = 0  # scoreboard misses re-executed pre-merge-completion
    reexec_items_early: int = 0
    fixup_chunks: int = 0  # necessary re-executions in delayed fix-up
    fixup_items: int = 0
    fixup_probes: int = 0  # map lookups during fix-up descent
    fixup_chain: int = 0  # longest run of consecutive chunks re-executed

    # --- table cache (filled by repro.cache when enabled) ---------------------
    cache_hits: int = 0
    cache_misses: int = 0
    cache_rows_resident: int = 0

    # --- CPU scale-out pool (filled by repro.core.mp_executor) -----------------
    pool_calls: int = 0  # dispatches through a ScaleoutPool
    pool_task_bytes: int = 0  # bytes pickled per dispatch (names + boundary rows)
    pool_shm_bytes: int = 0  # shared segments resident (gauge, not summed)

    # --- derived ----------------------------------------------------------- #
    @property
    def success_rate(self) -> float:
        """Fraction of chunk boundaries whose true state was speculated."""
        if self.success_total == 0:
            return 1.0
        return self.success_hits / self.success_total

    @property
    def total_reexec_items(self) -> int:
        """All re-executed items regardless of strategy."""
        return (
            self.reexec_items_seq + self.reexec_items_eager
            + self.reexec_items_early + self.fixup_items
        )

    @property
    def cache_hit_rate(self) -> float:
        """Transition-table cache hit rate (1.0 when cache disabled/unused)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 1.0

    def merged_with(self, other: "ExecStats") -> "ExecStats":
        """Sum all counters (config echoes keep ``self``'s values)."""
        out = replace(self)
        for f in fields(ExecStats):
            if f.name in (
                "num_items",
                "num_chunks",
                "k",
                "num_states",
                "num_inputs",
                "pool_shm_bytes",
            ):
                continue
            setattr(out, f.name, getattr(self, f.name) + getattr(other, f.name))
        return out

    def project(self, target_items: int) -> "ExecStats":
        """Scale input-size-proportional counters to ``target_items``.

        Chunk count, speculation width, merge structure, and *rates* are
        preserved; per-item work (transitions, re-executed items, input
        reads, local steps) scales linearly. This models running the same
        thread configuration on a longer input, where each chunk simply
        grows by the same factor.
        """
        if self.num_items <= 0:
            raise ValueError("cannot project stats with num_items == 0")
        if target_items < 0:
            raise ValueError(f"target_items must be >= 0, got {target_items}")
        factor = target_items / self.num_items
        scaled = replace(
            self,
            num_items=target_items,
            local_steps=int(round(self.local_steps * factor)),
            local_transitions=int(round(self.local_transitions * factor)),
            local_input_reads=int(round(self.local_input_reads * factor)),
            local_gathers=int(round(self.local_gathers * factor)),
            reexec_items_seq=int(round(self.reexec_items_seq * factor)),
            reexec_items_eager=int(round(self.reexec_items_eager * factor)),
            reexec_items_early=int(round(self.reexec_items_early * factor)),
            reexec_wall_items=int(round(self.reexec_wall_items * factor)),
            fixup_items=int(round(self.fixup_items * factor)),
            cache_hits=int(round(self.cache_hits * factor)),
            cache_misses=int(round(self.cache_misses * factor)),
        )
        return scaled
