"""repro — Speculative execution of FSMs with parallel merge (PPoPP'20).

A from-scratch Python reproduction of Xia, Jiang & Agrawal, *Scaling Out
Speculative Execution of Finite-State Machines with Parallel Merge*
(PPoPP 2020). The package provides:

* a DFA/NFA/regex substrate (:mod:`repro.fsm`, :mod:`repro.regex`);
* the paper's applications — Huffman decoding, regex matching, HTML
  tokenization, Div7 (:mod:`repro.apps`) — with workload generators
  (:mod:`repro.workloads`);
* the spec-k speculative engine with sequential and parallel merge
  (:mod:`repro.core`), the central entry point being
  :func:`repro.run_speculative`;
* a V100-shaped cost model that prices the counted execution events into
  modeled GPU time (:mod:`repro.gpu`), plus the hot-state transition-table
  cache (:mod:`repro.cache`);
* the per-figure experiment harness (:mod:`repro.bench`);
* unified observability — per-stage wall-clock tracing, speculation
  metrics, JSON/Chrome-trace export (:mod:`repro.obs`; see
  ``python -m repro.bench --profile``).

Quick start::

    import repro
    from repro.apps import div7_dfa
    from repro.workloads import random_bits

    dfa = div7_dfa()
    bits = random_bits(1_000_000, rng=0)
    result = repro.run_speculative(dfa, bits, k=None, num_blocks=20)
    assert result.final_state == dfa.run(bits)
    print(result.timing.speedup)
"""

from repro.core.engine import (
    BatchExecutionResult,
    EngineConfig,
    SpecExecutionResult,
    run_speculative,
    run_speculative_batch,
)
from repro.core.multipattern import (
    MachineStack,
    MultiPatternResult,
    PatternResult,
    run_multipattern,
    run_multipattern_batch,
    stack_machines,
)
from repro.core.types import ExecStats
from repro.fsm.dfa import DFA
from repro.gpu.cost import CostModel, TimeBreakdown
from repro.gpu.device import DeviceSpec, TESLA_V100
from repro.obs.trace import RunTrace, trace_span

__version__ = "1.1.0"

__all__ = [
    "BatchExecutionResult",
    "CostModel",
    "DFA",
    "DeviceSpec",
    "EngineConfig",
    "ExecStats",
    "MachineStack",
    "MultiPatternResult",
    "PatternResult",
    "RunTrace",
    "SpecExecutionResult",
    "TESLA_V100",
    "TimeBreakdown",
    "__version__",
    "run_multipattern",
    "run_multipattern_batch",
    "run_speculative",
    "run_speculative_batch",
    "stack_machines",
    "trace_span",
]
