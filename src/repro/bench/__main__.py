"""``python -m repro.bench`` — regenerate the paper's evaluation section."""

import sys

from repro.bench.report import main

if __name__ == "__main__":
    sys.exit(main())
