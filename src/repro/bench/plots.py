"""ASCII rendering of the paper's figures.

No plotting stack is available offline, so the harness renders each
figure's series as horizontal bar charts — close enough to eyeball the
shapes (sequential merge's peak-and-decline, parallel merge's monotone
climb) directly in a terminal or the markdown report.
"""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = ["bar_chart", "grouped_bar_chart"]

_BAR = "#"
_WIDTH = 48


def bar_chart(
    items: Iterable[tuple[str, float]],
    *,
    title: str = "",
    width: int = _WIDTH,
    unit: str = "",
) -> str:
    """Horizontal bars, one per (label, value); scaled to the maximum."""
    rows = list(items)
    if not rows:
        return (title + "\n" if title else "") + "(no data)"
    peak = max(v for _, v in rows)
    label_w = max(len(label) for label, _ in rows)
    lines = [title] if title else []
    for label, value in rows:
        n = 0 if peak <= 0 else int(round(width * value / peak))
        lines.append(
            f"{label.rjust(label_w)} | {_BAR * n}{' ' * (width - n)} "
            f"{value:g}{unit}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    rows: Iterable[Mapping[str, object]],
    *,
    group_key: str,
    label_key: str,
    value_key: str,
    title: str = "",
    width: int = _WIDTH,
) -> str:
    """Bars grouped under headers — one section per distinct ``group_key``.

    Values are scaled to the global maximum so groups stay comparable.
    """
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no data)"
    peak = max(float(r[value_key]) for r in rows)  # type: ignore[arg-type]
    groups: dict[str, list] = {}
    for r in rows:
        groups.setdefault(str(r[group_key]), []).append(r)
    label_w = max(len(str(r[label_key])) for r in rows)
    lines = [title] if title else []
    for gname, grows in groups.items():
        lines.append(f"[{gname}]")
        for r in grows:
            value = float(r[value_key])  # type: ignore[arg-type]
            n = 0 if peak <= 0 else int(round(width * value / peak))
            lines.append(
                f"  {str(r[label_key]).rjust(label_w)} | "
                f"{_BAR * n}{' ' * (width - n)} {value:g}"
            )
    return "\n".join(lines)
