"""Experiment harness: one function per paper table/figure.

:mod:`repro.bench.experiments` defines the experiments; each returns an
:class:`repro.bench.runner.ExperimentResult` whose rows reproduce the
series the paper plots, alongside the paper's reported values where the
paper gives them. :mod:`repro.bench.tables` renders results as aligned
text tables; ``benchmarks/`` wraps each experiment in a pytest-benchmark
target and archives its table under ``benchmarks/out/``.
"""

from repro.bench.experiments import (
    ablation_cache_budget,
    ablation_check_crossover,
    ablation_device_comparison,
    ablation_divm_family,
    ablation_eager_vs_delayed,
    fig3_motivation,
    fig5_state_frequency_cdf,
    fig6_success_rates,
    fig12_13_k_sweep,
    fig14_layout,
    fig15_hot_cache,
    scaling_figure,
    table3_applications,
    table4_huffman_inputs,
    table5_regexes,
)
from repro.bench.runner import BenchConfig, ExperimentResult, measure
from repro.bench.tables import format_table

__all__ = [
    "BenchConfig",
    "ExperimentResult",
    "ablation_cache_budget",
    "ablation_check_crossover",
    "ablation_device_comparison",
    "ablation_divm_family",
    "ablation_eager_vs_delayed",
    "fig3_motivation",
    "fig5_state_frequency_cdf",
    "fig6_success_rates",
    "fig12_13_k_sweep",
    "fig14_layout",
    "fig15_hot_cache",
    "format_table",
    "measure",
    "scaling_figure",
    "table3_applications",
    "table4_huffman_inputs",
    "table5_regexes",
]
