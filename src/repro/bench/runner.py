"""Shared experiment machinery: configuration, measurement, result records.

``measure`` runs the functional engine once on a bench-scale input,
projects its statistics to the paper's input size, and prices the modeled
V100 time with the application's Table 3 CPU baseline — the exact pipeline
described in DESIGN.md. Application instances (machine + input) are cached
per (name, size, seed) so a figure's many configurations share one build.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.apps.registry import Application, get_application
from repro.core.engine import run_speculative
from repro.fsm.dfa import DFA
from repro.gpu.cost import CostModel, TimeBreakdown
from repro.gpu.device import TESLA_V100

__all__ = ["BenchConfig", "ExperimentResult", "measure", "bench_items", "app_instance"]

_DEFAULT_ITEMS = 1_000_000


def bench_items() -> int:
    """Functional input size for experiments (env ``REPRO_BENCH_ITEMS``)."""
    return int(os.environ.get("REPRO_BENCH_ITEMS", _DEFAULT_ITEMS))


@dataclass(frozen=True)
class BenchConfig:
    """One engine configuration to measure."""

    app: str
    k: int | None  # None = spec-N
    num_blocks: int = 80
    threads_per_block: int = 256
    merge: str = "parallel"
    check: str = "auto"
    reexec: str = "delayed"
    layout: str = "transformed"
    lookback: int | None = None  # None = application default
    cache_table: bool = False

    def label(self) -> str:
        """Short human-readable identifier."""
        kk = "N" if self.k is None else str(self.k)
        return f"{self.app}/spec-{kk}/{self.merge}/B{self.num_blocks}"


@dataclass
class ExperimentResult:
    """Rows reproducing one paper table/figure, plus context."""

    experiment_id: str
    title: str
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def to_text(self, columns: list[str] | None = None) -> str:
        """Render as a text report."""
        from repro.bench.tables import format_table

        parts = [format_table(self.rows, columns=columns, title=f"{self.experiment_id}: {self.title}")]
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)


@lru_cache(maxsize=16)
def app_instance(name: str, num_items: int, seed: int) -> tuple[DFA, np.ndarray]:
    """Cached (machine, input) build for one application."""
    return get_application(name).build_instance(num_items, seed=seed)


@dataclass(frozen=True)
class Measurement:
    """Engine outcome plus modeled paper-scale timing."""

    config: BenchConfig
    timing: TimeBreakdown
    success_rate: float
    reexec_items: int
    check_comparisons: int
    hash_probe_steps: int
    cache_hit_rate: float

    @property
    def speedup(self) -> float:
        """Modeled speedup over the paper-scale CPU baseline."""
        return self.timing.speedup


def measure(
    config: BenchConfig,
    *,
    num_items: int | None = None,
    seed: int = 1,
    project_to_paper_scale: bool = True,
) -> Measurement:
    """Run one configuration functionally and price it at paper scale."""
    app: Application = get_application(config.app)
    n = num_items if num_items is not None else bench_items()
    dfa, inputs = app_instance(config.app, n, seed)
    lookback = (
        config.lookback if config.lookback is not None else app.default_lookback
    )
    result = run_speculative(
        dfa,
        inputs,
        k=config.k,
        num_blocks=config.num_blocks,
        threads_per_block=config.threads_per_block,
        merge=config.merge,
        check=config.check,
        reexec=config.reexec,
        layout=config.layout,
        lookback=lookback,
        cache_table=config.cache_table,
        price=False,
    )
    stats = result.stats
    if project_to_paper_scale:
        stats = stats.project(app.paper_num_items)
    model = CostModel(
        device=TESLA_V100, cpu_transition_ns=app.paper_cpu_ns_per_item
    )
    timing = model.price(
        stats,
        num_blocks=config.num_blocks,
        threads_per_block=config.threads_per_block,
        merge=config.merge,
        layout_transformed=(config.layout == "transformed"),
        cache_enabled=config.cache_table,
    )
    return Measurement(
        config=config,
        timing=timing,
        success_rate=result.stats.success_rate,
        reexec_items=result.stats.total_reexec_items,
        check_comparisons=result.stats.check_comparisons,
        hash_probe_steps=result.stats.hash_probe_steps,
        cache_hit_rate=result.stats.cache_hit_rate,
    )
