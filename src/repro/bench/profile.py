"""``python -m repro.bench --profile`` — wall-clock stage profiling.

Runs one registry application through the engine with a
:class:`repro.obs.RunTrace` active, measures real wall time around the
call, and reports the paper's stage decomposition (local exec / checks /
merge-by-level / re-exec) instead of a single opaque number. Three
artifacts per run:

* the text table on stdout (:func:`repro.obs.export.format_profile`);
* ``runtrace_<app>.json`` — the structured span/metric record, the file
  CI uploads as a workflow artifact;
* ``chrome_trace_<app>.json`` — open at ``chrome://tracing`` to see the
  merge tree's per-level timing as a flame chart.

The printed table is built by *re-loading* the JSON record, so every
profile run also exercises the export round-trip.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.obs.export import (
    format_profile,
    load_run_trace,
    write_chrome_trace,
    write_run_trace,
)
from repro.obs.trace import RunTrace

__all__ = ["run_profile"]


def run_profile(
    app_name: str = "huffman",
    *,
    num_items: int = 400_000,
    k: int | None = None,
    num_blocks: int = 20,
    threads_per_block: int = 256,
    merge: str = "parallel",
    out_dir: str | Path = ".",
    seed: int = 0,
) -> tuple[str, float, Path, Path]:
    """Profile one application run; return ``(text, wall_s, json, chrome)``.

    ``k`` defaults to the application's paper-best width. ``wall_s`` is
    the measured wall time (seconds) around the engine call; the printed
    stage spans are checked against it, not against modeled time.
    """
    from repro.apps.registry import get_application
    from repro.core.engine import run_speculative

    app = get_application(app_name)
    dfa, inputs = app.build_instance(num_items, seed=seed)
    k_run = app.best_k if k is None else k

    trace = RunTrace(
        f"{app_name} profile",
        app=app_name,
        items=num_items,
        k="N" if k_run is None else k_run,
        num_blocks=num_blocks,
        threads_per_block=threads_per_block,
        merge=merge,
    )
    # The engine's stage spans land as trace roots (speculate, layout,
    # local_exec, merge with its per-level children, truth recovery,
    # pricing) — so "stages total" in the table is directly comparable to
    # the wall time measured here.
    with trace.activate():
        t0 = time.perf_counter()
        result = run_speculative(
            dfa,
            inputs,
            k=k_run,
            num_blocks=num_blocks,
            threads_per_block=threads_per_block,
            merge=merge,
            lookback=app.default_lookback,
        )
        wall_s = time.perf_counter() - t0
    trace.meta["final_state"] = int(result.final_state)
    trace.meta["success_rate"] = round(result.success_rate, 4)

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    json_path = write_run_trace(trace, out_dir / f"runtrace_{app_name}.json")
    chrome_path = write_chrome_trace(
        trace, out_dir / f"chrome_trace_{app_name}.json"
    )

    # Build the table from the JSON record — the profile path doubles as a
    # round-trip check of the exporter.
    loaded = load_run_trace(json_path)
    text = format_profile(loaded, wall_s=wall_s)
    return text, wall_s, json_path, chrome_path
