"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = ["format_table"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    rows: Iterable[Mapping[str, object]],
    *,
    columns: list[str] | None = None,
    title: str = "",
) -> str:
    """Render dict-rows as an aligned monospace table.

    ``columns`` fixes the column order (defaults to first-row key order).
    """
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_fmt(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(col.ljust(w) for col, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
