"""The experiments: one function per paper table/figure (see DESIGN.md).

Each function runs the functional engine at bench scale, projects to the
paper's input sizes, prices with the V100 cost model, and returns an
:class:`repro.bench.runner.ExperimentResult` whose rows put our numbers
next to the paper's reported values (``paper`` columns; blank where the
paper gives no number for that point).
"""

from __future__ import annotations

import numpy as np

from repro.apps.registry import APPLICATIONS, get_application
from repro.bench.runner import (
    BenchConfig,
    ExperimentResult,
    app_instance,
    bench_items,
    measure,
)
from repro.fsm.analysis import dynamic_state_frequency
from repro.util.stats import cdf_by_frequency

__all__ = [
    "ablation_cache_budget",
    "ablation_device_comparison",
    "ablation_divm_family",
    "table3_applications",
    "table4_huffman_inputs",
    "table5_regexes",
    "fig3_motivation",
    "fig5_state_frequency_cdf",
    "fig6_success_rates",
    "scaling_figure",
    "fig12_13_k_sweep",
    "fig14_layout",
    "fig15_hot_cache",
    "ablation_check_crossover",
    "ablation_eager_vs_delayed",
    "PAPER_SCALING",
]

BLOCK_COUNTS = (20, 40, 80)

# Speedups the paper reports in Figures 7-11 (by app, series, block count).
# None = the paper does not give a readable number for that point.
PAPER_SCALING: dict[str, dict[str, dict[int, float | None]]] = {
    "huffman": {
        "spec-k/sequential": {20: 60.44, 40: 55.07, 80: 39.70},
        "spec-k/parallel": {20: 289.72, 40: 355.32, 80: 407.23},
        "spec-N/sequential": {20: 3.98, 40: 7.86, 80: 15.06},
        "spec-N/parallel": {20: 3.99, 40: 7.94, 80: 15.80},
    },
    "regex1": {
        "spec-k/sequential": {20: None, 40: 72.31, 80: None},
        "spec-k/parallel": {20: None, 40: None, 80: 353.99},
        "spec-N/parallel": {20: None, 40: None, 80: 164.68},
    },
    "regex2": {
        "spec-k/sequential": {20: None, 40: None, 80: None},
        "spec-k/parallel": {20: None, 40: None, 80: None},
    },
    "html": {
        "spec-k/sequential": {20: None, 40: 184.44, 80: None},
        "spec-k/parallel": {20: None, 40: None, 80: 420.74},
        "spec-N/parallel": {20: None, 40: None, 80: 103.46},
    },
    "div7": {
        "spec-N/sequential": {20: 104.84, 40: None, 80: None},
        "spec-N/parallel": {20: None, 40: None, 80: 397.93},
    },
}


# --------------------------------------------------------------------------- #
# tables
# --------------------------------------------------------------------------- #


def table3_applications(*, num_items: int | None = None, seed: int = 1) -> ExperimentResult:
    """Table 3: application characteristics (ours vs paper)."""
    n = num_items if num_items is not None else bench_items()
    res = ExperimentResult("table3", "Applications and machine sizes")
    for name, app in APPLICATIONS.items():
        dfa, _ = app_instance(name, n, seed)
        res.rows.append(
            {
                "application": name,
                "num_states": dfa.num_states,
                "paper_states": app.paper_num_states,
                "num_inputs": dfa.num_inputs,
                "paper_inputs": app.paper_num_inputs,
                "paper_seq_time_us": app.paper_seq_time_us,
                "paper_items": app.paper_num_items,
                "cpu_ns_per_item": round(app.paper_cpu_ns_per_item, 3),
            }
        )
    res.notes.append(
        "regex DFA state counts are construction-dependent (see EXPERIMENTS.md); "
        "input-class counts match the paper exactly."
    )
    return res


def table4_huffman_inputs(*, chars_per_book: int = 1 << 17, seed: int = 0) -> ExperimentResult:
    """Table 4: per-book Huffman FSM sizes for four texts plus 'combined'."""
    from repro.apps.huffman import HuffmanCode
    from repro.workloads.text import synthetic_library

    paper = {0: 179, 1: 203, 2: 177, 3: 179, "combined": 205}
    books = synthetic_library(4, chars_per_book, rng=seed)
    res = ExperimentResult("table4", "Huffman input texts and FSM sizes")
    for i, book in enumerate(books):
        code = HuffmanCode.from_data(book, num_symbols=256)
        res.rows.append(
            {
                "text": f"book_{i}",
                "fsm_states": code.decoder_dfa().num_states,
                "paper_states": paper[i],
            }
        )
    combined = np.concatenate(books)
    code = HuffmanCode.from_data(combined, num_symbols=256)
    res.rows.append(
        {
            "text": "combined",
            "fsm_states": code.decoder_dfa().num_states,
            "paper_states": paper["combined"],
        }
    )
    return res


def table5_regexes() -> ExperimentResult:
    """Table 5: the two regular expressions and their machines."""
    from repro.apps.paper_regexes import (
        REGEX1_PATTERN,
        REGEX2_PATTERN,
        build_regex1,
        build_regex2,
    )

    r1u, class1 = build_regex1(compressed=True, minimize=False)
    r1m, _ = build_regex1(compressed=True, minimize=True)
    r2, _ = build_regex2()
    res = ExperimentResult("table5", "Regular expressions")
    res.rows.append(
        {
            "name": "regex1",
            "pattern": REGEX1_PATTERN,
            "dfa_states": r1u.num_states,
            "minimal_states": r1m.num_states,
            "paper_states": 18,
            "input_classes": r1u.num_inputs,
            "paper_classes": 7,
        }
    )
    res.rows.append(
        {
            "name": "regex2",
            "pattern": REGEX2_PATTERN,
            "dfa_states": r2.num_states,
            "minimal_states": r2.num_states,
            "paper_states": 29,
            "input_classes": r2.num_inputs,
            "paper_classes": 3,
        }
    )
    assert class1 is not None and int(class1.max()) + 1 == r1u.num_inputs
    return res


# --------------------------------------------------------------------------- #
# motivation & analysis figures
# --------------------------------------------------------------------------- #


def fig3_motivation(*, num_items: int | None = None, seed: int = 1) -> ExperimentResult:
    """Figure 3: sequential merge caps scalability for every k (regex 2)."""
    res = ExperimentResult(
        "fig3", "Sequential-merge speedups vs thread blocks (regex 2)"
    )
    app = get_application("regex2")
    ks: list[int | None] = [4, 8, 16, None]
    for k in ks:
        for blocks in (10, 20, 40, 60, 80):
            m = measure(
                BenchConfig(app="regex2", k=k, num_blocks=blocks, merge="sequential"),
                num_items=num_items,
                seed=seed,
            )
            res.rows.append(
                {
                    "k": "N" if k is None else k,
                    "blocks": blocks,
                    "speedup": round(m.speedup, 2),
                }
            )
    res.notes.append(
        "expected shape: for every k the speedup stops growing (or drops) "
        "beyond 20-40 blocks; smaller k is better (less redundant work)."
    )
    del app
    return res


def fig5_state_frequency_cdf(*, num_items: int = 1 << 17, seed: int = 1) -> ExperimentResult:
    """Figure 5: state-frequency CDF for regex 1 (top 8 states ~= 95%)."""
    dfa, inputs = app_instance("regex1", num_items, seed)
    freq = dynamic_state_frequency(dfa, inputs[: 1 << 16])
    cdf = cdf_by_frequency(freq)
    res = ExperimentResult("fig5", "State frequency CDF, regex 1")
    for i in (0, 1, 3, 7, 15, min(31, cdf.size - 1), cdf.size - 1):
        res.rows.append({"top_states": i + 1, "cumulative_share": round(float(cdf[i]), 4)})
    res.notes.append(
        f"paper: most frequent 8 of 18 states cover ~95%; "
        f"ours: top 8 of {cdf.size} cover {cdf[min(7, cdf.size - 1)]:.1%}."
    )
    return res


def fig6_success_rates(
    *, num_items: int | None = None, seed: int = 1,
    ks: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
) -> ExperimentResult:
    """Figure 6: speculation success rate vs k for every application."""
    res = ExperimentResult("fig6", "Speculation success rates")
    for name, app in APPLICATIONS.items():
        n_states = None
        for k in ks:
            dfa, _ = app_instance(name, num_items if num_items else bench_items(), seed)
            n_states = dfa.num_states
            if k > n_states:
                continue
            m = measure(
                BenchConfig(app=name, k=k, num_blocks=20, merge="parallel"),
                num_items=num_items,
                seed=seed,
            )
            res.rows.append(
                {"application": name, "k": k, "success_rate": round(m.success_rate, 4)}
            )
        del n_states
    res.notes.append(
        "expected: html/regex2 ~1.0 at k=1; regex1 reaches ~1.0 by k=8; "
        "huffman rises with k; div7 is linear in k (k/7)."
    )
    return res


# --------------------------------------------------------------------------- #
# scaling figures 7-11
# --------------------------------------------------------------------------- #


def scaling_figure(
    app_name: str, *, num_items: int | None = None, seed: int = 1
) -> ExperimentResult:
    """Figures 7-11: sequential vs parallel merge, spec-k and spec-N."""
    app = get_application(app_name)
    fig_id = {"huffman": "fig7", "regex1": "fig8", "regex2": "fig9",
              "html": "fig10", "div7": "fig11"}[app_name]
    res = ExperimentResult(
        fig_id, f"Merge scalability, {app_name} (spec-k uses the paper's best k)"
    )
    paper = PAPER_SCALING.get(app_name, {})
    series: list[tuple[str, int | None]] = []
    if app.best_k is not None:
        series.append(("spec-k", app.best_k))
    series.append(("spec-N", None))
    for label, k in series:
        for merge in ("sequential", "parallel"):
            for blocks in BLOCK_COUNTS:
                m = measure(
                    BenchConfig(
                        app=app_name,
                        k=k,
                        num_blocks=blocks,
                        merge=merge,
                        cache_table=(app_name == "huffman"),
                    ),
                    num_items=num_items,
                    seed=seed,
                )
                ref = paper.get(f"{label}/{merge}", {}).get(blocks)
                res.rows.append(
                    {
                        "series": f"{label}/{merge}",
                        "blocks": blocks,
                        "speedup": round(m.speedup, 2),
                        "paper": "" if ref is None else ref,
                        "success": round(m.success_rate, 4),
                    }
                )
    res.notes.append(
        "expected shape: sequential merge peaks at 20-40 blocks and declines; "
        "parallel merge increases monotonically through 80 blocks."
    )
    return res


# --------------------------------------------------------------------------- #
# k sweeps, layout, cache
# --------------------------------------------------------------------------- #


def fig12_13_k_sweep(
    app_name: str, *, num_items: int | None = None, seed: int = 1,
    ks: tuple[int, ...] = (1, 2, 4, 8, 16),
    seeds: tuple[int, ...] | None = None,
) -> ExperimentResult:
    """Figures 12/13: speedup vs k (parallel merge, 80 blocks).

    ``seeds`` averages each point over several workload seeds — fix-up
    costs at marginal success rates are dominated by where miss clusters
    happen to fall, so single-seed points are noisy exactly where the
    figure is most interesting.
    """
    fig_id = "fig12" if app_name == "regex1" else "fig13"
    res = ExperimentResult(fig_id, f"Speedup vs k, {app_name}")
    seed_list = seeds if seeds is not None else (seed,)
    best = (None, -1.0)
    for k in ks:
        speedups, successes = [], []
        for s in seed_list:
            m = measure(
                BenchConfig(app=app_name, k=k, num_blocks=80, merge="parallel"),
                num_items=num_items,
                seed=s,
            )
            speedups.append(m.speedup)
            successes.append(m.success_rate)
        mean_speedup = float(np.mean(speedups))
        if mean_speedup > best[1]:
            best = (k, mean_speedup)
        res.rows.append(
            {
                "k": k,
                "speedup": round(mean_speedup, 2),
                "success": round(float(np.mean(successes)), 4),
            }
        )
    paper_best = get_application(app_name).best_k
    res.notes.append(
        f"best k: ours={best[0]}, paper={paper_best}"
        + (f" (mean of {len(seed_list)} seeds)" if len(seed_list) > 1 else "")
    )
    return res


def fig14_layout(*, num_items: int | None = None, seed: int = 1) -> ExperimentResult:
    """Figure 14: effect of the input layout transformation."""
    res = ExperimentResult("fig14", "Input layout transformation")
    gains = []
    for name, app in APPLICATIONS.items():
        speeds = {}
        for layout in ("transformed", "natural"):
            m = measure(
                BenchConfig(
                    app=name, k=app.best_k, num_blocks=80, merge="parallel",
                    layout=layout,
                ),
                num_items=num_items,
                seed=seed,
            )
            speeds[layout] = m.speedup
        gain = speeds["transformed"] / speeds["natural"]
        gains.append(gain)
        res.rows.append(
            {
                "application": name,
                "transformed": round(speeds["transformed"], 2),
                "natural": round(speeds["natural"], 2),
                "gain": round(gain, 2),
            }
        )
    res.notes.append(
        f"average gain {np.mean(gains):.2f}x (paper: 3.79x average)."
    )
    return res


def fig15_hot_cache(*, num_items: int | None = None, seed: int = 1) -> ExperimentResult:
    """Figure 15: effect of caching hot transition-table rows (Huffman)."""
    res = ExperimentResult("fig15", "Hot-state caching, Huffman decoding")
    for blocks in BLOCK_COUNTS:
        speeds = {}
        hit = None
        for cached in (False, True):
            m = measure(
                BenchConfig(
                    app="huffman", k=8, num_blocks=blocks, merge="parallel",
                    cache_table=cached,
                ),
                num_items=num_items,
                seed=seed,
            )
            speeds[cached] = m.speedup
            if cached:
                hit = m.cache_hit_rate
        res.rows.append(
            {
                "blocks": blocks,
                "cached": round(speeds[True], 2),
                "uncached": round(speeds[False], 2),
                "gain": round(speeds[True] / speeds[False], 2),
                "hit_rate": round(hit, 4),
            }
        )
    res.notes.append("paper: caching yields ~50% (1.5x) for Huffman.")
    return res


# --------------------------------------------------------------------------- #
# ablations (ours)
# --------------------------------------------------------------------------- #


def ablation_check_crossover(
    *, num_items: int | None = None, seed: int = 1,
    ks: tuple[int, ...] = (2, 4, 8, 12, 16, 24, 48),
) -> ExperimentResult:
    """Nested-loop vs hash runtime checks as k grows (Huffman machine).

    Reproduces the code generator's selection rule: nested wins for small
    k, hash wins past the threshold (paper: k = 12).
    """
    from repro import run_speculative
    from repro.bench.runner import bench_items
    from repro.fsm.dfa import DFA
    from repro.gpu import calibration as cal
    from repro.workloads.binary import random_symbols

    res = ExperimentResult("ablation-check", "Runtime check crossover")
    n = min(num_items if num_items is not None else bench_items(), 200_000)
    # Miss-heavy regime: a random non-converging machine where most probes
    # scan the whole row — the worst case the generator's threshold guards
    # against. (With ranked speculation rows and high hit rates, nested wins
    # at every k; the note records that regime too.)
    dfa = DFA.random(64, 3, rng=seed, accepting_fraction=0.2)
    inputs = random_symbols(n, 3, rng=seed)

    def check_ns(k_eff: int, check: str) -> float:
        r = run_speculative(
            dfa, inputs, k=k_eff, num_blocks=20, threads_per_block=256,
            merge="parallel", check=check, reexec="delayed", lookback=0,
            price=False, measure_success=False,
        )
        s = r.stats
        if check == "nested":
            ns = s.check_comparisons * cal.CMP_NS
        else:
            ns = (
                s.hash_inserts + s.hash_probes + s.hash_probe_steps
            ) * cal.HASH_OP_NS
        return ns / max(1, s.merge_pair_ops)

    for k in ks:
        k_eff = min(k, dfa.num_states)
        nested = check_ns(k_eff, "nested")
        hashed = check_ns(k_eff, "hash")
        res.rows.append(
            {
                "k": k_eff,
                "nested_ns_per_merge": round(nested, 2),
                "hash_ns_per_merge": round(hashed, 2),
                "winner": "nested" if nested <= hashed else "hash",
            }
        )
    res.notes.append(
        "miss-heavy regime (random 64-state machine, no look-back): nested "
        "scans cost O(k^2) and hash overtakes near the paper's k=12 "
        "threshold. With ranked rows and ~1.0 hit rates nested wins at "
        "every k — the generator's rule is a worst-case guard."
    )
    return res


def ablation_divm_family(
    *, num_items: int | None = None, seed: int = 1,
    moduli: tuple[int, ...] = (3, 5, 6, 7, 8, 12),
) -> ExperimentResult:
    """Speculation success across the div-m machine family.

    Our extension of the Div7 discussion: divisibility machines split into
    two regimes by ``gcd(base, m)``. With ``gcd(2, m) == 1`` (m = 3, 5, 7)
    multiplication by 2 permutes the residues — no two states ever
    converge and success at width k is exactly ``k/m``. With a shared
    factor (m = 6, 8, 12) residues collapse onto a sub-lattice and
    speculation succeeds far above ``k/m``. The FSM's algebraic structure,
    not its size, decides whether speculation works.
    """
    import repro
    from repro.apps.div import div_dfa, residues_converge
    from repro.bench.runner import bench_items
    from repro.workloads.binary import random_bits

    res = ExperimentResult("ablation-divm", "Speculation vs convergence (div-m family)")
    n = min(num_items if num_items is not None else bench_items(), 300_000)
    bits = random_bits(n, rng=seed)
    for m in moduli:
        dfa = div_dfa(m)
        k = max(1, m // 3)
        r = repro.run_speculative(
            dfa, bits, k=k, num_blocks=8, threads_per_block=64, lookback=8,
            price=False,
        )
        res.rows.append(
            {
                "modulus": m,
                "k": k,
                "converges": residues_converge(m),
                "success": round(r.stats.success_rate, 3),
                "blind_rate_k_over_m": round(k / m, 3),
            }
        )
    res.notes.append(
        "gcd(2, m) == 1 -> success == k/m exactly (no convergence); "
        "a shared factor lets look-back collapse the state set and success "
        "jumps above the blind rate."
    )
    return res


def ablation_device_comparison(
    *, num_items: int | None = None, seed: int = 1
) -> ExperimentResult:
    """Cross-device scaling: V100 vs GTX 1080 Ti.

    Our extension: the same counted execution priced on a smaller device
    (28 SMs). The parallel merge's advantage persists but its headroom is
    bounded by residency — "scaling out" stops at the device's SM count,
    the persistent-thread constraint of Section 4.1.
    """
    import repro
    from repro.bench.runner import app_instance, bench_items
    from repro.gpu.cost import CostModel
    from repro.gpu.device import GTX_1080TI, TESLA_V100

    res = ExperimentResult("ablation-device", "V100 vs GTX 1080 Ti")
    app = get_application("div7")
    n = num_items if num_items is not None else bench_items()
    dfa, inputs = app_instance("div7", n, seed)
    for device in (TESLA_V100, GTX_1080TI):
        for blocks in (14, 28, 56, 80):
            if blocks > device.max_resident_blocks:
                resident_note = "oversubscribed"
            else:
                resident_note = ""
            r = repro.run_speculative(
                dfa, inputs, k=None, num_blocks=blocks, threads_per_block=256,
                merge="parallel", device=device, price=False,
                measure_success=False,
            )
            model = CostModel(device=device,
                              cpu_transition_ns=app.paper_cpu_ns_per_item)
            tb = model.price(
                r.stats.project(app.paper_num_items), num_blocks=blocks,
                threads_per_block=256, merge="parallel",
                layout_transformed=True,
            )
            res.rows.append(
                {
                    "device": device.name,
                    "blocks": blocks,
                    "speedup": round(tb.speedup, 1),
                    "note": resident_note,
                }
            )
    res.notes.append(
        "beyond the device's SM count, extra blocks serialize into waves "
        "(persistent threads launch at most #SM blocks)."
    )
    return res


def ablation_cache_budget(
    *, num_items: int | None = None, seed: int = 1,
    budgets: tuple[int, ...] = (0, 64, 256, 1024, 4096, 48 * 1024),
) -> ExperimentResult:
    """Hot-state cache: hit rate and modeled gain vs shared-memory budget.

    Our extension of Figure 15: how much shared memory does the cache need
    before the gain saturates? With the paper's static target-count ranking
    the hottest few rows capture most accesses (Figure 5's skew).
    """
    import repro
    from repro.bench.runner import app_instance, bench_items
    from repro.gpu.cost import price_at_scale

    res = ExperimentResult("ablation-cache-budget", "Cache budget sweep (Huffman)")
    app = get_application("huffman")
    n = num_items if num_items is not None else bench_items()
    dfa, inputs = app_instance("huffman", n, seed)
    base_run = repro.run_speculative(
        dfa, inputs, k=8, num_blocks=80, threads_per_block=256,
        lookback=16, cache_table=False, measure_success=False,
    )
    base = price_at_scale(
        base_run, app.paper_num_items,
        cpu_transition_ns=app.paper_cpu_ns_per_item,
    )
    for budget in budgets:
        r = repro.run_speculative(
            dfa, inputs, k=8, num_blocks=80, threads_per_block=256,
            lookback=16, cache_table=True, cache_budget_bytes=budget,
            measure_success=False,
        )
        tb = price_at_scale(
            r, app.paper_num_items, cpu_transition_ns=app.paper_cpu_ns_per_item
        )
        res.rows.append(
            {
                "budget_bytes": budget,
                "rows_resident": r.cache.rows_resident,
                "hit_rate": round(r.stats.cache_hit_rate, 4),
                "speedup": round(tb.speedup, 1),
                "gain_vs_uncached": round(tb.speedup / base.speedup, 2),
            }
        )
    res.notes.append(
        f"uncached baseline: {base.speedup:.1f}x. The hash-check overhead "
        "makes tiny budgets a net loss; gains saturate once the hot rows fit."
    )
    return res


def ablation_eager_vs_delayed(
    *, num_items: int | None = None, seed: int = 1
) -> ExperimentResult:
    """Eager vs delayed re-execution: wasted work under the tree merge.

    Uses Div7 at small k — the adversarial no-convergence machine — where
    eager re-execution resolves speculative mismatches that are mostly off
    the true path.
    """
    res = ExperimentResult("ablation-reexec", "Eager vs delayed re-execution")
    for k in (1, 2, 4):
        row = {"k": k}
        for reexec in ("eager", "delayed"):
            m = measure(
                BenchConfig(
                    app="div7", k=k, num_blocks=20, merge="parallel", reexec=reexec
                ),
                num_items=num_items,
                seed=seed,
            )
            row[f"{reexec}_reexec_items"] = m.reexec_items
            row[f"{reexec}_speedup"] = round(m.speedup, 2)
        row["waste_ratio"] = round(
            row["eager_reexec_items"] / max(1, row["delayed_reexec_items"]), 2
        )
        res.rows.append(row)
    res.notes.append(
        "delayed re-executes only chunks on the true path (Section 3.3); "
        "eager also resolves mismatches that never mattered."
    )
    return res
