"""One-shot reproduction report: run every experiment, emit one document.

``python -m repro.bench [--items N] [--out PATH]`` runs all tables,
figures, and ablations and writes a single markdown report — the quickest
way to regenerate the paper's whole evaluation section.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

__all__ = ["build_report", "main"]


def _all_experiments(num_items: int):
    """Yield (callable, kwargs) for every experiment in DESIGN.md's index."""
    from repro.bench import experiments as ex

    yield ex.table3_applications, {"num_items": num_items}
    yield ex.table4_huffman_inputs, {}
    yield ex.table5_regexes, {}
    yield ex.fig3_motivation, {"num_items": num_items}
    yield ex.fig5_state_frequency_cdf, {}
    yield ex.fig6_success_rates, {"num_items": num_items}
    for app in ("huffman", "regex1", "regex2", "html", "div7"):
        yield ex.scaling_figure, {"app_name": app, "num_items": num_items}
    yield ex.fig12_13_k_sweep, {"app_name": "regex1", "num_items": num_items}
    yield ex.fig12_13_k_sweep, {"app_name": "regex2", "num_items": num_items}
    yield ex.fig14_layout, {"num_items": num_items}
    yield ex.fig15_hot_cache, {"num_items": num_items}
    yield ex.ablation_check_crossover, {"num_items": num_items}
    yield ex.ablation_eager_vs_delayed, {"num_items": num_items}
    yield ex.ablation_device_comparison, {"num_items": num_items}
    yield ex.ablation_cache_budget, {"num_items": num_items}
    yield ex.ablation_divm_family, {"num_items": num_items}


def _chart_for(result) -> str:
    """ASCII chart for figure-shaped results (empty string otherwise)."""
    from repro.bench.plots import bar_chart, grouped_bar_chart

    rows = result.rows
    if not rows:
        return ""
    keys = set(rows[0])
    if {"series", "blocks", "speedup"} <= keys:
        return grouped_bar_chart(
            rows, group_key="series", label_key="blocks", value_key="speedup"
        )
    if {"k", "speedup"} <= keys and "blocks" not in keys:
        return bar_chart(
            [(f"k={r['k']}", float(r["speedup"])) for r in rows], unit="x"
        )
    if {"k", "blocks", "speedup"} <= keys:
        return grouped_bar_chart(
            rows, group_key="k", label_key="blocks", value_key="speedup"
        )
    return ""


def build_report(num_items: int = 400_000, *, progress=None) -> str:
    """Run everything; return the consolidated markdown report."""
    lines = [
        "# Reproduction report",
        "",
        f"functional input size: {num_items:,} items "
        "(statistics projected to the paper's input sizes before pricing)",
        "",
    ]
    t0 = time.perf_counter()
    for fn, kwargs in _all_experiments(num_items):
        if progress is not None:
            label = kwargs.get("app_name", "")
            progress(f"{fn.__name__}({label})")
        result = fn(**kwargs)
        lines.append(f"## {result.experiment_id}: {result.title}")
        lines.append("")
        lines.append("```")
        lines.append(result.to_text())
        chart = _chart_for(result)
        if chart:
            lines.append("")
            lines.append(chart)
        lines.append("```")
        lines.append("")
    lines.append(f"_total experiment time: {time.perf_counter() - t0:.1f}s_")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro.bench``).

    Two modes: the default regenerates the full markdown report;
    ``--profile [APP]`` instead runs one application with observability
    on and prints the wall-clock stage breakdown (writing the RunTrace
    JSON and a Chrome trace next to it).
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate every table and figure of the paper, or "
        "profile one application's stage breakdown (--profile).",
    )
    parser.add_argument(
        "--items", type=int, default=400_000,
        help="functional input size per experiment (default 400000)",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("reproduction_report.md"),
        help="output markdown path (default ./reproduction_report.md)",
    )
    parser.add_argument(
        "--profile", nargs="?", const="huffman", default=None, metavar="APP",
        help="profile one application (default huffman) with per-stage "
        "wall-clock tracing instead of building the report",
    )
    parser.add_argument(
        "--profile-out", type=Path, default=Path("."),
        help="directory for runtrace/chrome JSON artifacts (default .)",
    )
    parser.add_argument(
        "--profile-merge", choices=("parallel", "sequential"),
        default="parallel", help="merge strategy for --profile runs",
    )
    args = parser.parse_args(argv)

    if args.profile is not None:
        from repro.bench.profile import run_profile

        text, wall_s, json_path, chrome_path = run_profile(
            args.profile,
            num_items=args.items,
            merge=args.profile_merge,
            out_dir=args.profile_out,
        )
        print(text)
        print()
        print(f"wrote {json_path} and {chrome_path}")
        return 0

    def progress(label: str) -> None:
        print(f"[bench] {label}", file=sys.stderr, flush=True)

    report = build_report(args.items, progress=progress)
    args.out.write_text(report)
    print(f"wrote {args.out} ({len(report):,} chars)")
    return 0
