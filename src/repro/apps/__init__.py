"""The paper's FSM applications, built from scratch.

* :mod:`repro.apps.huffman` — Huffman coding: tree construction, encoder,
  and the bit-level decoder FSM (Table 3's 205-state machine).
* :mod:`repro.apps.html_tok` — an HTML tokenizer FSM (~38 states over 128
  ASCII inputs) plus an independent reference tokenizer.
* :mod:`repro.apps.div` — divisibility FSMs (Div7 and the general div-by-m).
* :mod:`repro.apps.paper_regexes` — the two regular expressions of Table 5.
* :mod:`repro.apps.registry` — one-stop construction of each benchmark
  application together with its workload generator and paper metadata.
"""

from repro.apps.div import div_dfa, div7_dfa
from repro.apps.huffman import HuffmanCode
from repro.apps.html_tok import (
    TOKEN_NAMES,
    build_html_tokenizer,
    reference_tokenize,
)
from repro.apps.paper_regexes import (
    REGEX1_PATTERN,
    REGEX2_PATTERN,
    build_regex1,
    build_regex2,
)
from repro.apps.csv_tok import (
    build_csv_tokenizer,
    reference_tokenize_csv,
    synthetic_csv,
)
from repro.apps.registry import APPLICATIONS, Application, get_application
from repro.apps.utf8 import encode_utf8_workload, utf8_validator_dfa

__all__ = [
    "APPLICATIONS",
    "Application",
    "HuffmanCode",
    "REGEX1_PATTERN",
    "REGEX2_PATTERN",
    "TOKEN_NAMES",
    "build_csv_tokenizer",
    "build_html_tokenizer",
    "build_regex1",
    "build_regex2",
    "div7_dfa",
    "div_dfa",
    "encode_utf8_workload",
    "get_application",
    "reference_tokenize",
    "reference_tokenize_csv",
    "synthetic_csv",
    "utf8_validator_dfa",
]
