"""HTML tokenizer as a 38-state character-level FSM.

A simplified (but complete-table) HTML5-style tokenizer over the 128 ASCII
code points, sized to match the paper's Table 3 machine (38 states, 128
inputs). It covers: text data, character references (named / decimal / hex),
start and end tags, attributes (double-quoted, single-quoted, unquoted),
self-closing tags, comments (including the ``--`` end-game), bogus comments,
and DOCTYPE declarations with quoted public/system identifiers.

Deliberate simplifications versus the full WHATWG spec (documented here and
in DESIGN.md): no RCDATA/RAWTEXT/script-data modes (those need tag-name
memory beyond a DFA of this size), character references are not decoded
inside attribute values, and tag names are not lower-cased (tokenization
only reports token boundaries, not token text).

The machine is a Mealy transducer: it emits a token-type id on the
transition that *completes* each token. :func:`reference_tokenize` is an
independently written per-character tokenizer used to cross-check the table.
"""

from __future__ import annotations

import numpy as np

from repro.fsm.alphabet import Alphabet
from repro.fsm.dfa import DFA

__all__ = [
    "build_html_tokenizer",
    "reference_tokenize",
    "TOKEN_NAMES",
    "STATE_NAMES",
]

# --- token-type ids emitted by the transducer --------------------------- #
TOK_START_TAG = 0
TOK_SELF_CLOSING_TAG = 1
TOK_END_TAG = 2
TOK_COMMENT = 3
TOK_DOCTYPE = 4
TOK_CHARREF = 5

TOKEN_NAMES = (
    "start_tag",
    "self_closing_tag",
    "end_tag",
    "comment",
    "doctype",
    "charref",
)

# --- state ids ----------------------------------------------------------- #
DATA = 0
CHARREF = 1  # '&' seen in data
CHARREF_NAMED = 2  # '&' + letters
CHARREF_NUMERIC = 3  # '&#'
CHARREF_DEC = 4  # '&#' + digits
CHARREF_HEX_START = 5  # '&#x'
CHARREF_HEX = 6  # '&#x' + hex digits
TAG_OPEN = 7  # '<'
END_TAG_OPEN = 8  # '</'
TAG_NAME = 9
END_TAG_NAME = 10
SELF_CLOSING_START = 11  # '/' inside a tag
BEFORE_ATTR_NAME = 12
ATTR_NAME = 13
AFTER_ATTR_NAME = 14
BEFORE_ATTR_VALUE = 15
ATTR_VALUE_DQ = 16
ATTR_VALUE_SQ = 17
ATTR_VALUE_UNQ = 18
AFTER_ATTR_VALUE_Q = 19
MARKUP_DECL_OPEN = 20  # '<!'
COMMENT_START_DASH = 21  # '<!-'
COMMENT = 22  # inside '<!--'
COMMENT_END_DASH = 23  # '-' inside comment
COMMENT_END = 24  # '--' inside comment
BOGUS_COMMENT = 25  # '<!x' ... until '>'
DOCTYPE_D = 26  # '<!D'
DOCTYPE_DO = 27
DOCTYPE_DOC = 28
DOCTYPE_DOCT = 29
DOCTYPE_DOCTY = 30
DOCTYPE_DOCTYP = 31
DOCTYPE_DOCTYPE = 32  # full '<!DOCTYPE'
BEFORE_DOCTYPE_NAME = 33
DOCTYPE_NAME = 34
AFTER_DOCTYPE_NAME = 35
DOCTYPE_ID_DQ = 36  # inside a quoted public/system identifier
DOCTYPE_ID_SQ = 37

NUM_STATES = 38
NUM_INPUTS = 128

STATE_NAMES = (
    "data", "charref", "charref_named", "charref_numeric", "charref_dec",
    "charref_hex_start", "charref_hex", "tag_open", "end_tag_open",
    "tag_name", "end_tag_name", "self_closing_start", "before_attr_name",
    "attr_name", "after_attr_name", "before_attr_value", "attr_value_dq",
    "attr_value_sq", "attr_value_unq", "after_attr_value_q",
    "markup_decl_open", "comment_start_dash", "comment", "comment_end_dash",
    "comment_end", "bogus_comment", "doctype_d", "doctype_do", "doctype_doc",
    "doctype_doct", "doctype_docty", "doctype_doctyp", "doctype_doctype",
    "before_doctype_name", "doctype_name", "after_doctype_name",
    "doctype_id_dq", "doctype_id_sq",
)

_WHITESPACE = tuple(ord(c) for c in " \t\n\r\f")
_LETTERS = tuple(range(ord("a"), ord("z") + 1)) + tuple(range(ord("A"), ord("Z") + 1))
_DIGITS = tuple(range(ord("0"), ord("9") + 1))
_HEX_LETTERS = tuple(ord(c) for c in "abcdefABCDEF")


def build_html_tokenizer() -> DFA:
    """Construct the 38-state tokenizer transducer.

    The table is built as "default transition per state" plus targeted
    overrides, which keeps each tokenizer rule visible as one line.
    """
    table = np.zeros((NUM_INPUTS, NUM_STATES), dtype=np.int32)
    emit = np.full((NUM_INPUTS, NUM_STATES), -1, dtype=np.int32)

    def default(state: int, target: int) -> None:
        table[:, state] = target

    def on(state: int, chars, target: int, token: int | None = None) -> None:
        if isinstance(chars, str):
            ids = [ord(c) for c in chars]
        else:
            ids = list(chars)
        for cid in ids:
            table[cid, state] = target
            if token is not None:
                emit[cid, state] = token

    LT, GT, SLASH, BANG, AMP = ord("<"), ord(">"), ord("/"), ord("!"), ord("&")
    EQ, DQ, SQ, HASH, SEMI, DASH, X = (
        ord("="), ord('"'), ord("'"), ord("#"), ord(";"), ord("-"), ord("x"),
    )

    # -- data ------------------------------------------------------------ #
    default(DATA, DATA)
    on(DATA, [LT], TAG_OPEN)
    on(DATA, [AMP], CHARREF)

    # -- character references --------------------------------------------- #
    # '&' then: '#' -> numeric, letter -> named, '<' back to tag open,
    # anything else -> plain data (the '&' was literal).
    default(CHARREF, DATA)
    on(CHARREF, [HASH], CHARREF_NUMERIC)
    on(CHARREF, _LETTERS, CHARREF_NAMED)
    on(CHARREF, [LT], TAG_OPEN)
    on(CHARREF, [AMP], CHARREF)

    default(CHARREF_NAMED, DATA)
    on(CHARREF_NAMED, _LETTERS + _DIGITS, CHARREF_NAMED)
    on(CHARREF_NAMED, [SEMI], DATA, TOK_CHARREF)
    on(CHARREF_NAMED, [LT], TAG_OPEN)
    on(CHARREF_NAMED, [AMP], CHARREF)

    default(CHARREF_NUMERIC, DATA)
    on(CHARREF_NUMERIC, _DIGITS, CHARREF_DEC)
    on(CHARREF_NUMERIC, [X, ord("X")], CHARREF_HEX_START)
    on(CHARREF_NUMERIC, [LT], TAG_OPEN)
    on(CHARREF_NUMERIC, [AMP], CHARREF)

    default(CHARREF_DEC, DATA)
    on(CHARREF_DEC, _DIGITS, CHARREF_DEC)
    on(CHARREF_DEC, [SEMI], DATA, TOK_CHARREF)
    on(CHARREF_DEC, [LT], TAG_OPEN)
    on(CHARREF_DEC, [AMP], CHARREF)

    default(CHARREF_HEX_START, DATA)
    on(CHARREF_HEX_START, _DIGITS + _HEX_LETTERS, CHARREF_HEX)
    on(CHARREF_HEX_START, [LT], TAG_OPEN)
    on(CHARREF_HEX_START, [AMP], CHARREF)

    default(CHARREF_HEX, DATA)
    on(CHARREF_HEX, _DIGITS + _HEX_LETTERS, CHARREF_HEX)
    on(CHARREF_HEX, [SEMI], DATA, TOK_CHARREF)
    on(CHARREF_HEX, [LT], TAG_OPEN)
    on(CHARREF_HEX, [AMP], CHARREF)

    # -- tag open ---------------------------------------------------------- #
    default(TAG_OPEN, DATA)  # '<' followed by junk is literal text
    on(TAG_OPEN, _LETTERS, TAG_NAME)
    on(TAG_OPEN, [SLASH], END_TAG_OPEN)
    on(TAG_OPEN, [BANG], MARKUP_DECL_OPEN)
    on(TAG_OPEN, [LT], TAG_OPEN)
    on(TAG_OPEN, [AMP], CHARREF)

    default(END_TAG_OPEN, BOGUS_COMMENT)  # '</3' etc. parses as bogus comment
    on(END_TAG_OPEN, _LETTERS, END_TAG_NAME)
    on(END_TAG_OPEN, [GT], DATA)  # '</>' is dropped

    default(TAG_NAME, TAG_NAME)
    on(TAG_NAME, _WHITESPACE, BEFORE_ATTR_NAME)
    on(TAG_NAME, [SLASH], SELF_CLOSING_START)
    on(TAG_NAME, [GT], DATA, TOK_START_TAG)

    default(END_TAG_NAME, END_TAG_NAME)
    on(END_TAG_NAME, _WHITESPACE, END_TAG_NAME)
    on(END_TAG_NAME, [GT], DATA, TOK_END_TAG)

    default(SELF_CLOSING_START, ATTR_NAME)  # '<a/b': 'b' starts an attr name
    on(SELF_CLOSING_START, _WHITESPACE, BEFORE_ATTR_NAME)
    on(SELF_CLOSING_START, [GT], DATA, TOK_SELF_CLOSING_TAG)
    on(SELF_CLOSING_START, [SLASH], SELF_CLOSING_START)

    # -- attributes -------------------------------------------------------- #
    default(BEFORE_ATTR_NAME, ATTR_NAME)
    on(BEFORE_ATTR_NAME, _WHITESPACE, BEFORE_ATTR_NAME)
    on(BEFORE_ATTR_NAME, [SLASH], SELF_CLOSING_START)
    on(BEFORE_ATTR_NAME, [GT], DATA, TOK_START_TAG)
    on(BEFORE_ATTR_NAME, [EQ], ATTR_NAME)  # '=' before a name: treated as name char

    default(ATTR_NAME, ATTR_NAME)
    on(ATTR_NAME, _WHITESPACE, AFTER_ATTR_NAME)
    on(ATTR_NAME, [EQ], BEFORE_ATTR_VALUE)
    on(ATTR_NAME, [SLASH], SELF_CLOSING_START)
    on(ATTR_NAME, [GT], DATA, TOK_START_TAG)

    default(AFTER_ATTR_NAME, ATTR_NAME)  # new attribute begins
    on(AFTER_ATTR_NAME, _WHITESPACE, AFTER_ATTR_NAME)
    on(AFTER_ATTR_NAME, [EQ], BEFORE_ATTR_VALUE)
    on(AFTER_ATTR_NAME, [SLASH], SELF_CLOSING_START)
    on(AFTER_ATTR_NAME, [GT], DATA, TOK_START_TAG)

    default(BEFORE_ATTR_VALUE, ATTR_VALUE_UNQ)
    on(BEFORE_ATTR_VALUE, _WHITESPACE, BEFORE_ATTR_VALUE)
    on(BEFORE_ATTR_VALUE, [DQ], ATTR_VALUE_DQ)
    on(BEFORE_ATTR_VALUE, [SQ], ATTR_VALUE_SQ)
    on(BEFORE_ATTR_VALUE, [GT], DATA, TOK_START_TAG)  # '=>' ends the tag

    default(ATTR_VALUE_DQ, ATTR_VALUE_DQ)
    on(ATTR_VALUE_DQ, [DQ], AFTER_ATTR_VALUE_Q)

    default(ATTR_VALUE_SQ, ATTR_VALUE_SQ)
    on(ATTR_VALUE_SQ, [SQ], AFTER_ATTR_VALUE_Q)

    default(ATTR_VALUE_UNQ, ATTR_VALUE_UNQ)
    on(ATTR_VALUE_UNQ, _WHITESPACE, BEFORE_ATTR_NAME)
    on(ATTR_VALUE_UNQ, [GT], DATA, TOK_START_TAG)

    default(AFTER_ATTR_VALUE_Q, ATTR_NAME)  # sloppy 'a="v"b' starts a name
    on(AFTER_ATTR_VALUE_Q, _WHITESPACE, BEFORE_ATTR_NAME)
    on(AFTER_ATTR_VALUE_Q, [SLASH], SELF_CLOSING_START)
    on(AFTER_ATTR_VALUE_Q, [GT], DATA, TOK_START_TAG)

    # -- markup declarations: comments, doctype, bogus --------------------- #
    default(MARKUP_DECL_OPEN, BOGUS_COMMENT)
    on(MARKUP_DECL_OPEN, [DASH], COMMENT_START_DASH)
    on(MARKUP_DECL_OPEN, [ord("D"), ord("d")], DOCTYPE_D)
    on(MARKUP_DECL_OPEN, [GT], DATA, TOK_COMMENT)  # '<!>' = empty bogus comment

    default(COMMENT_START_DASH, BOGUS_COMMENT)
    on(COMMENT_START_DASH, [DASH], COMMENT)
    on(COMMENT_START_DASH, [GT], DATA, TOK_COMMENT)  # '<!->' ends bogus comment

    default(COMMENT, COMMENT)
    on(COMMENT, [DASH], COMMENT_END_DASH)

    default(COMMENT_END_DASH, COMMENT)
    on(COMMENT_END_DASH, [DASH], COMMENT_END)

    default(COMMENT_END, COMMENT)
    on(COMMENT_END, [DASH], COMMENT_END)  # '--->' style runs of dashes
    on(COMMENT_END, [GT], DATA, TOK_COMMENT)

    default(BOGUS_COMMENT, BOGUS_COMMENT)
    on(BOGUS_COMMENT, [GT], DATA, TOK_COMMENT)

    # -- doctype: match 'OCTYPE' letter by letter --------------------------- #
    for state, expected, nxt in (
        (DOCTYPE_D, "oO", DOCTYPE_DO),
        (DOCTYPE_DO, "cC", DOCTYPE_DOC),
        (DOCTYPE_DOC, "tT", DOCTYPE_DOCT),
        (DOCTYPE_DOCT, "yY", DOCTYPE_DOCTY),
        (DOCTYPE_DOCTY, "pP", DOCTYPE_DOCTYP),
        (DOCTYPE_DOCTYP, "eE", DOCTYPE_DOCTYPE),
    ):
        default(state, BOGUS_COMMENT)
        on(state, expected, nxt)
        on(state, [GT], DATA, TOK_COMMENT)  # truncated '<!DOC>' = bogus comment

    default(DOCTYPE_DOCTYPE, BOGUS_COMMENT)
    on(DOCTYPE_DOCTYPE, _WHITESPACE, BEFORE_DOCTYPE_NAME)
    on(DOCTYPE_DOCTYPE, [GT], DATA, TOK_DOCTYPE)

    default(BEFORE_DOCTYPE_NAME, DOCTYPE_NAME)
    on(BEFORE_DOCTYPE_NAME, _WHITESPACE, BEFORE_DOCTYPE_NAME)
    on(BEFORE_DOCTYPE_NAME, [GT], DATA, TOK_DOCTYPE)

    default(DOCTYPE_NAME, DOCTYPE_NAME)
    on(DOCTYPE_NAME, _WHITESPACE, AFTER_DOCTYPE_NAME)
    on(DOCTYPE_NAME, [GT], DATA, TOK_DOCTYPE)

    default(AFTER_DOCTYPE_NAME, AFTER_DOCTYPE_NAME)
    on(AFTER_DOCTYPE_NAME, [DQ], DOCTYPE_ID_DQ)
    on(AFTER_DOCTYPE_NAME, [SQ], DOCTYPE_ID_SQ)
    on(AFTER_DOCTYPE_NAME, [GT], DATA, TOK_DOCTYPE)

    default(DOCTYPE_ID_DQ, DOCTYPE_ID_DQ)
    on(DOCTYPE_ID_DQ, [DQ], AFTER_DOCTYPE_NAME)

    default(DOCTYPE_ID_SQ, DOCTYPE_ID_SQ)
    on(DOCTYPE_ID_SQ, [SQ], AFTER_DOCTYPE_NAME)

    accepting = np.zeros(NUM_STATES, dtype=bool)
    accepting[DATA] = True  # document is well-terminated iff we end in data
    return DFA(
        table=table,
        start=DATA,
        accepting=accepting,
        alphabet=Alphabet.ascii(NUM_INPUTS),
        emit=emit,
        name="html_tokenizer",
        state_names=STATE_NAMES,
    )


def reference_tokenize(text: str) -> list[tuple[int, int]]:
    """Independent per-character tokenizer: ``[(position, token_id), ...]``.

    Implements the same simplified tokenization rules as
    :func:`build_html_tokenizer` but as straight-line Python conditionals —
    an intentionally separate code path used to validate the table.
    Positions are the index of the character that completed the token.
    """
    dfa = build_html_tokenizer()
    # NOTE: the reference deliberately avoids the table; it re-derives each
    # transition from the rules. The DFA object above is used only to map
    # characters outside ASCII-128 to errors consistently.
    del dfa

    ws = set(" \t\n\r\f")
    letters = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ")
    digits = set("0123456789")
    hexdig = digits | set("abcdefABCDEF")
    out: list[tuple[int, int]] = []
    state = "data"
    doctype_word = "doctype"
    doctype_idx = 0

    for i, ch in enumerate(text):
        if ord(ch) >= NUM_INPUTS:
            raise ValueError(f"character {ch!r} at {i} outside ASCII-{NUM_INPUTS}")
        if state == "data":
            if ch == "<":
                state = "tag_open"
            elif ch == "&":
                state = "charref"
        elif state == "charref":
            if ch == "#":
                state = "charref_numeric"
            elif ch in letters:
                state = "charref_named"
            elif ch == "<":
                state = "tag_open"
            elif ch == "&":
                pass
            else:
                state = "data"
        elif state == "charref_named":
            if ch in letters or ch in digits:
                pass
            elif ch == ";":
                out.append((i, TOK_CHARREF))
                state = "data"
            elif ch == "<":
                state = "tag_open"
            elif ch == "&":
                state = "charref"
            else:
                state = "data"
        elif state == "charref_numeric":
            if ch in digits:
                state = "charref_dec"
            elif ch in "xX":
                state = "charref_hex_start"
            elif ch == "<":
                state = "tag_open"
            elif ch == "&":
                state = "charref"
            else:
                state = "data"
        elif state == "charref_dec":
            if ch in digits:
                pass
            elif ch == ";":
                out.append((i, TOK_CHARREF))
                state = "data"
            elif ch == "<":
                state = "tag_open"
            elif ch == "&":
                state = "charref"
            else:
                state = "data"
        elif state == "charref_hex_start":
            if ch in hexdig:
                state = "charref_hex"
            elif ch == "<":
                state = "tag_open"
            elif ch == "&":
                state = "charref"
            else:
                state = "data"
        elif state == "charref_hex":
            if ch in hexdig:
                pass
            elif ch == ";":
                out.append((i, TOK_CHARREF))
                state = "data"
            elif ch == "<":
                state = "tag_open"
            elif ch == "&":
                state = "charref"
            else:
                state = "data"
        elif state == "tag_open":
            if ch in letters:
                state = "tag_name"
            elif ch == "/":
                state = "end_tag_open"
            elif ch == "!":
                state = "markup_decl_open"
            elif ch == "<":
                pass
            elif ch == "&":
                state = "charref"
            else:
                state = "data"
        elif state == "end_tag_open":
            if ch in letters:
                state = "end_tag_name"
            elif ch == ">":
                state = "data"
            else:
                state = "bogus_comment"
        elif state == "tag_name":
            if ch in ws:
                state = "before_attr_name"
            elif ch == "/":
                state = "self_closing_start"
            elif ch == ">":
                out.append((i, TOK_START_TAG))
                state = "data"
        elif state == "end_tag_name":
            if ch == ">":
                out.append((i, TOK_END_TAG))
                state = "data"
        elif state == "self_closing_start":
            if ch == ">":
                out.append((i, TOK_SELF_CLOSING_TAG))
                state = "data"
            elif ch == "/":
                pass
            else:
                state = "before_attr_name" if ch in ws else "attr_name"
        elif state == "before_attr_name":
            if ch in ws:
                pass
            elif ch == "/":
                state = "self_closing_start"
            elif ch == ">":
                out.append((i, TOK_START_TAG))
                state = "data"
            else:
                state = "attr_name"
        elif state == "attr_name":
            if ch in ws:
                state = "after_attr_name"
            elif ch == "=":
                state = "before_attr_value"
            elif ch == "/":
                state = "self_closing_start"
            elif ch == ">":
                out.append((i, TOK_START_TAG))
                state = "data"
        elif state == "after_attr_name":
            if ch in ws:
                pass
            elif ch == "=":
                state = "before_attr_value"
            elif ch == "/":
                state = "self_closing_start"
            elif ch == ">":
                out.append((i, TOK_START_TAG))
                state = "data"
            else:
                state = "attr_name"
        elif state == "before_attr_value":
            if ch in ws:
                pass
            elif ch == '"':
                state = "attr_value_dq"
            elif ch == "'":
                state = "attr_value_sq"
            elif ch == ">":
                out.append((i, TOK_START_TAG))
                state = "data"
            else:
                state = "attr_value_unq"
        elif state == "attr_value_dq":
            if ch == '"':
                state = "after_attr_value_q"
        elif state == "attr_value_sq":
            if ch == "'":
                state = "after_attr_value_q"
        elif state == "attr_value_unq":
            if ch in ws:
                state = "before_attr_name"
            elif ch == ">":
                out.append((i, TOK_START_TAG))
                state = "data"
        elif state == "after_attr_value_q":
            if ch in ws:
                state = "before_attr_name"
            elif ch == "/":
                state = "self_closing_start"
            elif ch == ">":
                out.append((i, TOK_START_TAG))
                state = "data"
            else:
                state = "attr_name"
        elif state == "markup_decl_open":
            if ch == "-":
                state = "comment_start_dash"
            elif ch in "dD":
                state = "doctype_match"
                doctype_idx = 1
            elif ch == ">":
                out.append((i, TOK_COMMENT))
                state = "data"
            else:
                state = "bogus_comment"
        elif state == "comment_start_dash":
            if ch == "-":
                state = "comment"
            elif ch == ">":
                out.append((i, TOK_COMMENT))
                state = "data"
            else:
                state = "bogus_comment"
        elif state == "comment":
            if ch == "-":
                state = "comment_end_dash"
        elif state == "comment_end_dash":
            state = "comment_end" if ch == "-" else "comment"
        elif state == "comment_end":
            if ch == ">":
                out.append((i, TOK_COMMENT))
                state = "data"
            elif ch == "-":
                pass
            else:
                state = "comment"
        elif state == "bogus_comment":
            if ch == ">":
                out.append((i, TOK_COMMENT))
                state = "data"
        elif state == "doctype_match":
            if doctype_idx < len(doctype_word) and ch.lower() == doctype_word[doctype_idx]:
                doctype_idx += 1
                if doctype_idx == len(doctype_word):
                    state = "doctype_matched"
            elif ch == ">":
                out.append((i, TOK_COMMENT))
                state = "data"
            else:
                state = "bogus_comment"
        elif state == "doctype_matched":
            if ch in ws:
                state = "before_doctype_name"
            elif ch == ">":
                out.append((i, TOK_DOCTYPE))
                state = "data"
            else:
                state = "bogus_comment"
        elif state == "before_doctype_name":
            if ch in ws:
                pass
            elif ch == ">":
                out.append((i, TOK_DOCTYPE))
                state = "data"
            else:
                state = "doctype_name"
        elif state == "doctype_name":
            if ch in ws:
                state = "after_doctype_name"
            elif ch == ">":
                out.append((i, TOK_DOCTYPE))
                state = "data"
        elif state == "after_doctype_name":
            if ch == '"':
                state = "doctype_id_dq"
            elif ch == "'":
                state = "doctype_id_sq"
            elif ch == ">":
                out.append((i, TOK_DOCTYPE))
                state = "data"
        elif state == "doctype_id_dq":
            if ch == '"':
                state = "after_doctype_name"
        elif state == "doctype_id_sq":
            if ch == "'":
                state = "after_doctype_name"
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown state {state}")
    return out
