"""UTF-8 validation as an FSM — an extension application.

Byte-level UTF-8 validation is a classic FSM workload (the paper's
"data decoding" family): 9 states over 256 byte values, rejecting overlong
encodings, surrogates (U+D800..DFFF), and code points above U+10FFFF —
the same structure as Hoehrmann's well-known DFA. Useful here both as an
extra benchmark machine (moderate states, very wide input alphabet) and
as another independently verifiable app: Python's own ``bytes.decode``
is the reference oracle in tests.
"""

from __future__ import annotations

import numpy as np

from repro.fsm.alphabet import Alphabet
from repro.fsm.dfa import DFA

__all__ = ["utf8_validator_dfa", "encode_utf8_workload"]

ACCEPT = 0
REJECT = 1
CONT_1 = 2  # expect one continuation byte
CONT_2 = 3  # expect two continuation bytes
CONT_3 = 4  # expect three continuation bytes
AFTER_E0 = 5  # second byte restricted to A0..BF (no overlong 3-byte)
AFTER_ED = 6  # second byte restricted to 80..9F (no surrogates)
AFTER_F0 = 7  # second byte restricted to 90..BF (no overlong 4-byte)
AFTER_F4 = 8  # second byte restricted to 80..8F (<= U+10FFFF)

NUM_STATES = 9

STATE_NAMES = (
    "accept", "reject", "cont1", "cont2", "cont3",
    "after_e0", "after_ed", "after_f0", "after_f4",
)


def utf8_validator_dfa() -> DFA:
    """The 9-state UTF-8 validation DFA over all 256 byte values.

    The machine is in ``accept`` exactly at the positions where the byte
    stream so far is a complete, valid UTF-8 sequence; ``reject`` is
    absorbing.
    """
    table = np.full((256, NUM_STATES), REJECT, dtype=np.int32)

    def on(state: int, lo: int, hi: int, target: int) -> None:
        table[lo : hi + 1, state] = target

    # From ACCEPT: classify the lead byte.
    on(ACCEPT, 0x00, 0x7F, ACCEPT)
    on(ACCEPT, 0xC2, 0xDF, CONT_1)
    on(ACCEPT, 0xE0, 0xE0, AFTER_E0)
    on(ACCEPT, 0xE1, 0xEC, CONT_2)
    on(ACCEPT, 0xED, 0xED, AFTER_ED)
    on(ACCEPT, 0xEE, 0xEF, CONT_2)
    on(ACCEPT, 0xF0, 0xF0, AFTER_F0)
    on(ACCEPT, 0xF1, 0xF3, CONT_3)
    on(ACCEPT, 0xF4, 0xF4, AFTER_F4)
    # 0x80-0xBF (bare continuation), 0xC0-0xC1 (overlong), 0xF5-0xFF: reject.

    on(CONT_1, 0x80, 0xBF, ACCEPT)
    on(CONT_2, 0x80, 0xBF, CONT_1)
    on(CONT_3, 0x80, 0xBF, CONT_2)
    on(AFTER_E0, 0xA0, 0xBF, CONT_1)
    on(AFTER_ED, 0x80, 0x9F, CONT_1)
    on(AFTER_F0, 0x90, 0xBF, CONT_2)
    on(AFTER_F4, 0x80, 0x8F, CONT_2)
    # REJECT rows stay all-REJECT (absorbing).

    accepting = np.zeros(NUM_STATES, dtype=bool)
    accepting[ACCEPT] = True
    return DFA(
        table=table,
        start=ACCEPT,
        accepting=accepting,
        alphabet=Alphabet.from_symbols(range(256)),
        name="utf8_validator",
        state_names=STATE_NAMES,
    )


def encode_utf8_workload(
    n_bytes: int,
    *,
    corruption_rate: float = 0.0,
    rng: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """A UTF-8 byte stream of roughly ``n_bytes`` bytes (``int32`` ids).

    Encodes synthetic English-like text (including multi-byte sequences
    from the generator's high-byte tail) to UTF-8. ``corruption_rate``
    randomly overwrites that fraction of bytes, producing invalid
    sequences for failure-path testing.
    """
    from repro.util.rng import ensure_rng
    from repro.workloads.text import synthetic_book

    if n_bytes < 0:
        raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
    if not 0.0 <= corruption_rate <= 1.0:
        raise ValueError(f"corruption_rate must be in [0, 1], got {corruption_rate}")
    gen = ensure_rng(rng)
    # High-tail characters encode to 2 bytes; oversample then trim.
    chars = synthetic_book(n_bytes, rng=gen)
    text = "".join(chr(int(c)) for c in chars)
    raw = np.frombuffer(text.encode("utf-8"), dtype=np.uint8).astype(np.int32)
    raw = raw[:n_bytes].copy()
    # Trimming can split a final multi-byte sequence; chop trailing
    # continuation bytes and a dangling lead byte so the stream stays valid.
    while raw.size and 0x80 <= raw[-1] <= 0xBF:
        raw = raw[:-1]
    if raw.size and raw[-1] >= 0xC0:
        raw = raw[:-1]
    if corruption_rate > 0 and raw.size:
        flips = gen.random(raw.size) < corruption_rate
        raw[flips] = gen.integers(0, 256, size=int(flips.sum()))
    return raw
