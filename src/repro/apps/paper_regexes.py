"""The two regular expressions of the paper's Table 5.

* Regular expression 1: ``(.*l.*i.*k.*e)|(.*a.*p.*p.*l.*e)`` — matches
  strings containing ``like`` or ``apple`` as a (scattered) subsequence.
  The paper runs it over random lowercase text; after input-class
  compression the machine has 7 input kinds ({a,e,i,k,l,p} + other),
  matching Table 3's ``num_inputs = 7``.
* Regular expression 2: ``(.+,.+\\.){4}|(.+,){4}|(.+\\.){4}`` (the paper
  writes repetition as a superscript). Its input classes are
  {',', '.', other} — Table 3's ``num_inputs = 3``.

The paper reports 18 and 29 DFA states. Our pipeline (Thompson + subset +
Hopcroft) yields the *minimal* machines — 14 and 48 states with these
published patterns — because DFA size is construction-dependent while the
recognized language is not. EXPERIMENTS.md records both numbers; all
behavioural results (input classes, speculation rates, scaling shapes) are
insensitive to this delta.
"""

from __future__ import annotations

import numpy as np

from repro.fsm.alphabet import Alphabet
from repro.fsm.dfa import DFA
from repro.regex.compile import compile_search, compress_inputs

__all__ = [
    "REGEX1_PATTERN",
    "REGEX2_PATTERN",
    "build_regex1",
    "build_regex2",
    "regex1_alphabet",
    "regex2_alphabet",
]

REGEX1_PATTERN = "(.*l.*i.*k.*e)|(.*a.*p.*p.*l.*e)"
REGEX2_PATTERN = "(.+,.+\\.){4}|(.+,){4}|(.+\\.){4}"


def regex1_alphabet() -> Alphabet:
    """Raw alphabet for regex 1: the 26 lowercase letters."""
    return Alphabet.lowercase()


def regex2_alphabet() -> Alphabet:
    """Raw alphabet for regex 2: comma, period, and a generic letter.

    The paper's input is "random low-case characters"; for regex 2 every
    character other than ``,`` and ``.`` behaves identically, so the raw
    alphabet already is the 3-class compressed one. We generate inputs
    directly in this 3-symbol space (class probabilities configurable in
    the workload generator).
    """
    return Alphabet.from_symbols([",", ".", "x"])


def build_regex1(
    *, compressed: bool = True, minimize: bool = False
) -> tuple[DFA, np.ndarray | None]:
    """Streaming search DFA for regex 1.

    Returns ``(dfa, class_of)``: with ``compressed=True`` (the paper's
    setting) the DFA consumes input classes and ``class_of`` maps raw
    lowercase symbol ids to classes; otherwise ``class_of`` is ``None`` and
    the DFA consumes the 26-letter alphabet directly.

    ``minimize`` defaults to False: the *unminimized* subset-construction
    machine preserves boundary-state diversity (several live states that
    Hopcroft would merge), which is what gives regex 1 its characteristic
    success-vs-k curve (reaching ~1 at k = 8, Figures 6 and 12). The fully
    minimized machine collapses to ~2 live states over long random inputs
    and makes speculation trivially easy — evidently not what the paper's
    18-state tool output did.
    """
    dfa = compile_search(
        REGEX1_PATTERN, regex1_alphabet(), minimize=minimize, name="regex1"
    )
    if not compressed:
        return dfa, None
    comp = compress_inputs(dfa)
    return comp.dfa.with_name("regex1"), comp.class_of


def build_regex2() -> tuple[DFA, None]:
    """Streaming search DFA for regex 2 over the native 3-class alphabet."""
    dfa = compile_search(REGEX2_PATTERN, regex2_alphabet(), name="regex2")
    return dfa, None
