"""Registry of the paper's benchmark applications (Table 3).

Each :class:`Application` bundles the FSM builder, the workload generator,
and the paper-reported metadata (state/input counts, sequential execution
time, the spec-k width the paper found best). The benchmark harness and the
examples go through this registry so every experiment uses identical
machine/workload constructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.apps.div import div7_dfa
from repro.apps.html_tok import build_html_tokenizer
from repro.apps.huffman import HuffmanCode
from repro.apps.paper_regexes import build_regex1, build_regex2
from repro.fsm.alphabet import Alphabet
from repro.fsm.dfa import DFA
from repro.workloads.binary import random_bits, random_symbols
from repro.workloads.html import synthetic_pages
from repro.workloads.text import random_lowercase, synthetic_book

__all__ = ["Application", "APPLICATIONS", "get_application"]


@dataclass(frozen=True)
class Application:
    """One benchmark application: machine + workload + paper metadata."""

    name: str
    build: Callable[[int, int], tuple[DFA, np.ndarray]]
    paper_num_states: int
    paper_num_inputs: int
    paper_seq_time_us: int  # Table 3
    paper_num_items: int  # input size used in the paper
    best_k: int | None  # paper's best spec width (None = spec-N)
    default_lookback: int

    def build_instance(self, num_items: int, seed: int = 0) -> tuple[DFA, np.ndarray]:
        """Construct the DFA and an input of ``num_items`` symbols."""
        return self.build(num_items, seed)

    @property
    def paper_cpu_ns_per_item(self) -> float:
        """Table 3 sequential time divided by input size (ns/item)."""
        return self.paper_seq_time_us * 1e3 / self.paper_num_items


def _build_huffman(num_items: int, seed: int) -> tuple[DFA, np.ndarray]:
    # Build the code from a large synthetic sample (the "combined" text of
    # Table 4), then encode enough fresh text to cover num_items bits.
    sample = synthetic_book(1 << 18, rng=seed)
    code = HuffmanCode.from_data(sample, num_symbols=256)
    avg_bits = max(1.0, code.encoded_length(sample) / sample.size)
    # Encode text sized to overshoot, then trim to num_items whole... bits
    # can be trimmed anywhere: the decoder FSM tolerates mid-codeword ends
    # (the run simply finishes off-root).
    need_chars = int(num_items / avg_bits * 1.1) + 16
    text = synthetic_book(need_chars, rng=seed + 1)
    # Drop characters absent from the code-building sample (zero frequency).
    coded = code.code_lengths > 0
    text = text[coded[text]]
    bits = code.encode(text)
    if bits.size < num_items:  # extremely unlikely; pad by repetition
        reps = int(np.ceil(num_items / max(1, bits.size)))
        bits = np.tile(bits, reps)
    return code.decoder_dfa(), bits[:num_items].astype(np.int32)


def _build_regex1(num_items: int, seed: int) -> tuple[DFA, np.ndarray]:
    dfa, class_of = build_regex1(compressed=True)
    raw = random_lowercase(num_items, rng=seed)
    return dfa, class_of[raw].astype(np.int32)


def _build_regex2(num_items: int, seed: int) -> tuple[DFA, np.ndarray]:
    # The paper's input is "random low-case characters": lowercase letters
    # never include ',' or '.', so every symbol lands in the 'other' input
    # class. That makes the machine's boundary dynamics almost constant —
    # which is precisely why the paper measures a ~1.0 speculation success
    # rate at k = 1 (Fig. 6) and best performance at k = 1 (Fig. 13). A tiny
    # delimiter rate keeps the machine from being literally constant while
    # preserving those properties (see bench_fig13 for a delimiter sweep).
    dfa, _ = build_regex2()
    probs = np.array([0.0, 0.0, 1.0])
    return dfa, random_symbols(num_items, 3, probs=probs, rng=seed)


def _build_html(num_items: int, seed: int) -> tuple[DFA, np.ndarray]:
    dfa = build_html_tokenizer()
    text = synthetic_pages(num_items, rng=seed)
    ids = Alphabet.ascii(128).encode_text(text[:num_items])
    return dfa, ids.astype(np.int32)


def _build_div7(num_items: int, seed: int) -> tuple[DFA, np.ndarray]:
    return div7_dfa(), random_bits(num_items, rng=seed)


APPLICATIONS: dict[str, Application] = {
    "huffman": Application(
        name="huffman",
        build=_build_huffman,
        paper_num_states=205,
        paper_num_inputs=2,
        paper_seq_time_us=2_765_070,
        paper_num_items=1_243_106_627,
        best_k=8,
        default_lookback=16,
    ),
    "regex1": Application(
        name="regex1",
        build=_build_regex1,
        paper_num_states=18,
        paper_num_inputs=7,
        paper_seq_time_us=2_188_510,
        paper_num_items=1_073_741_824,
        best_k=8,
        default_lookback=0,
    ),
    "regex2": Application(
        name="regex2",
        build=_build_regex2,
        paper_num_states=29,
        paper_num_inputs=3,
        paper_seq_time_us=2_185_900,
        paper_num_items=1_073_741_824,
        best_k=1,
        default_lookback=16,
    ),
    "html": Application(
        name="html",
        build=_build_html,
        paper_num_states=38,
        paper_num_inputs=128,
        paper_seq_time_us=2_399_090,
        paper_num_items=1_060_900_492,
        best_k=1,
        default_lookback=64,
    ),
    "div7": Application(
        name="div7",
        build=_build_div7,
        paper_num_states=7,
        paper_num_inputs=2,
        paper_seq_time_us=2_394_750,
        paper_num_items=1_073_741_824,
        best_k=None,  # the paper runs Div7 with spec-N
        default_lookback=0,
    ),
}


def get_application(name: str) -> Application:
    """Look up an application by name; raises ``KeyError`` with choices."""
    try:
        return APPLICATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; available: {sorted(APPLICATIONS)}"
        ) from None
