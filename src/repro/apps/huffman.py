"""Huffman coding: tree construction, encoder, and the decoder FSM.

Huffman decoding is the paper's largest-table application (205 states,
binary input — Table 3). Decoding walks the Huffman tree bit by bit and
emits a symbol at each leaf; that walk *is* a finite-state transducer whose
states are the internal tree nodes:

    state = root
    for each bit b:
        child = tree.child(state, b)
        if child is a leaf:  emit child.symbol; state = root-after-restart
        else:                state = child

:meth:`HuffmanCode.decoder_dfa` materializes exactly this machine as a
:class:`repro.fsm.dfa.DFA` with an emission table, so the speculative engine
can run it like any other FSM. ``num_states`` equals the number of internal
nodes, i.e. ``num_symbols - 1`` — the paper's 205-state machine corresponds
to a 206-symbol text alphabet.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.fsm.alphabet import Alphabet
from repro.fsm.dfa import DFA

__all__ = ["HuffmanCode"]


@dataclass(frozen=True)
class _Node:
    weight: int
    order: int  # tie-breaker for deterministic trees
    symbol: int | None = None
    left: "_Node | None" = None
    right: "_Node | None" = None

    def __lt__(self, other: "_Node") -> bool:
        return (self.weight, self.order) < (other.weight, other.order)

    @property
    def is_leaf(self) -> bool:
        return self.symbol is not None


class HuffmanCode:
    """A Huffman code over dense symbol ids ``0 .. num_symbols-1``.

    Build with :meth:`from_frequencies` (or :meth:`from_data`). The code is
    deterministic for a given frequency vector (ties broken by insertion
    order), so encoder, decoder, and FSM always agree.
    """

    def __init__(self, root: _Node, num_symbols: int) -> None:
        self._root = root
        self._num_symbols = num_symbols
        self._codes, self._lengths = self._build_codebook()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_frequencies(cls, freqs: np.ndarray) -> "HuffmanCode":
        """Build the code for a non-negative frequency vector.

        Symbols with zero frequency are excluded from the tree (encoding
        them raises). At least one symbol must have positive frequency.
        """
        freqs = np.asarray(freqs, dtype=np.int64)
        if freqs.ndim != 1:
            raise ValueError(f"freqs must be 1-D, got shape {freqs.shape}")
        if freqs.size and freqs.min() < 0:
            raise ValueError("frequencies must be non-negative")
        present = np.flatnonzero(freqs > 0)
        if present.size == 0:
            raise ValueError("at least one symbol must have positive frequency")
        heap: list[_Node] = []
        order = 0
        for s in present:
            heap.append(_Node(weight=int(freqs[s]), order=order, symbol=int(s)))
            order += 1
        heapq.heapify(heap)
        if len(heap) == 1:
            # Degenerate single-symbol code: give it a 1-bit code so the
            # decoder FSM still has a well-defined binary transition.
            only = heap[0]
            root = _Node(weight=only.weight, order=order, left=only, right=only)
            return cls(root, int(freqs.size))
        while len(heap) > 1:
            a = heapq.heappop(heap)
            b = heapq.heappop(heap)
            heapq.heappush(heap, _Node(weight=a.weight + b.weight, order=order, left=a, right=b))
            order += 1
        return cls(heap[0], int(freqs.size))

    @classmethod
    def from_data(cls, data: np.ndarray, num_symbols: int | None = None) -> "HuffmanCode":
        """Build the code from a sample of symbol ids."""
        data = np.asarray(data)
        if num_symbols is None:
            num_symbols = int(data.max()) + 1 if data.size else 1
        freqs = np.bincount(data, minlength=num_symbols)
        return cls.from_frequencies(freqs)

    def _build_codebook(self) -> tuple[list[np.ndarray | None], np.ndarray]:
        codes: list[np.ndarray | None] = [None] * self._num_symbols
        lengths = np.zeros(self._num_symbols, dtype=np.int64)

        def walk(node: _Node, prefix: list[int]) -> None:
            if node.is_leaf:
                codes[node.symbol] = np.asarray(prefix, dtype=np.uint8)
                lengths[node.symbol] = len(prefix)
                return
            walk(node.left, prefix + [0])
            walk(node.right, prefix + [1])

        # The degenerate single-symbol tree reuses one leaf for both
        # children; walk left only to assign code [0].
        if self._root.left is self._root.right and self._root.left is not None:
            walk(self._root.left, [0])
        else:
            walk(self._root, [])
        return codes, lengths

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #

    @property
    def num_symbols(self) -> int:
        """Size of the symbol space (including zero-frequency symbols)."""
        return self._num_symbols

    @property
    def num_coded_symbols(self) -> int:
        """Number of symbols with a code (positive frequency)."""
        return sum(c is not None for c in self._codes)

    @property
    def code_lengths(self) -> np.ndarray:
        """Per-symbol code lengths (0 for uncoded symbols)."""
        return self._lengths.copy()

    def codebook(self) -> dict[int, str]:
        """Human-readable ``{symbol: '0101'}`` map for coded symbols."""
        return {
            s: "".join(map(str, c.tolist()))
            for s, c in enumerate(self._codes)
            if c is not None
        }

    def encoded_length(self, data: np.ndarray) -> int:
        """Exact bit count :meth:`encode` would produce for ``data``."""
        return int(self._lengths[np.asarray(data)].sum())

    # ------------------------------------------------------------------ #
    # encode / decode
    # ------------------------------------------------------------------ #

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode symbol ids into a 0/1 bit array (vectorized).

        Builds a dense ``(num_symbols, max_len)`` code matrix and scatters
        rows via a boolean mask — one pass, no Python-level loop over data.
        """
        data = np.asarray(data)
        if data.size == 0:
            return np.zeros(0, dtype=np.uint8)
        lengths = self._lengths[data]
        if (self._lengths[np.unique(data)] == 0).any():
            bad = int(np.unique(data)[self._lengths[np.unique(data)] == 0][0])
            raise ValueError(f"symbol {bad} has zero frequency and no code")
        max_len = int(self._lengths.max())
        matrix = np.zeros((self._num_symbols, max_len), dtype=np.uint8)
        for s, code in enumerate(self._codes):
            if code is not None:
                matrix[s, : code.size] = code
        rows = matrix[data]  # (n, max_len)
        mask = np.arange(max_len)[None, :] < lengths[:, None]
        return rows[mask]  # row-major ravel keeps symbol order

    def decode_reference(self, bits: np.ndarray) -> np.ndarray:
        """Trusted tree-walk decoder (ground truth for tests).

        Raises ``ValueError`` if the stream ends mid-codeword.
        """
        out: list[int] = []
        node = self._root
        for b in np.asarray(bits):
            node = node.left if b == 0 else node.right
            if node is None:
                raise ValueError("invalid bit stream: fell off the tree")
            if node.is_leaf:
                out.append(node.symbol)
                node = self._root
        if node is not self._root:
            raise ValueError("bit stream ended mid-codeword")
        return np.asarray(out, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # the decoder FSM
    # ------------------------------------------------------------------ #

    def decoder_dfa(self) -> DFA:
        """The bit-level decoder as a Mealy transducer DFA.

        States are the internal nodes of the Huffman tree (root = state 0 =
        start). On bit ``b`` the machine moves to the corresponding child;
        if that child is a leaf it emits the leaf's symbol and the next
        state is the root (restart). ``accepting`` marks the root — the
        stream is a whole number of codewords iff the run ends there.
        """
        internal: list[_Node] = []
        ids: dict[int, int] = {}

        def number(node: _Node) -> int:
            nid = ids.get(id(node))
            if nid is None:
                nid = len(internal)
                ids[id(node)] = nid
                internal.append(node)
                for child in (node.left, node.right):
                    if child is not None and not child.is_leaf:
                        number(child)
            return nid

        number(self._root)
        n = len(internal)
        table = np.zeros((2, n), dtype=np.int32)
        emit = np.full((2, n), -1, dtype=np.int32)
        for q, node in enumerate(internal):
            for b, child in enumerate((node.left, node.right)):
                if child.is_leaf:
                    table[b, q] = 0  # back to the root
                    emit[b, q] = child.symbol
                else:
                    table[b, q] = ids[id(child)]
        accepting = np.zeros(n, dtype=bool)
        accepting[0] = True
        return DFA(
            table=table,
            start=0,
            accepting=accepting,
            alphabet=Alphabet.binary(),
            emit=emit,
            name="huffman_decoder",
        )
