"""CSV tokenizer as a 4-state FSM — an extension application.

RFC 4180-style CSV with double-quoted fields and ``""`` escapes, LF record
terminators. The machine is tiny (4 states over 128 ASCII inputs) but its
*quoted* state makes chunk-boundary speculation interesting: a chunk
starting inside a quoted field behaves completely differently from one
starting outside, the same ambiguity class as the paper's HTML attribute
values.

Emissions: ``FIELD_SEP`` when a field ends at a comma, ``RECORD_SEP`` when
a record ends at a newline. :func:`reference_tokenize_csv` is the
independent oracle; :func:`synthetic_csv` generates workloads.
"""

from __future__ import annotations

import numpy as np

from repro.fsm.alphabet import Alphabet
from repro.fsm.dfa import DFA
from repro.util.rng import ensure_rng

__all__ = [
    "build_csv_tokenizer",
    "reference_tokenize_csv",
    "synthetic_csv",
    "FIELD_SEP",
    "RECORD_SEP",
]

FIELD_SEP = 0
RECORD_SEP = 1

FIELD_START = 0  # at the start of a field
UNQUOTED = 1  # inside an unquoted field
QUOTED = 2  # inside a quoted field
QUOTE_Q = 3  # just saw '"' inside a quoted field

NUM_STATES = 4
NUM_INPUTS = 128

_COMMA, _QUOTE, _LF = ord(","), ord('"'), ord("\n")


def build_csv_tokenizer() -> DFA:
    """The 4-state CSV tokenizer transducer."""
    table = np.zeros((NUM_INPUTS, NUM_STATES), dtype=np.int32)
    emit = np.full((NUM_INPUTS, NUM_STATES), -1, dtype=np.int32)

    # FIELD_START
    table[:, FIELD_START] = UNQUOTED
    table[_QUOTE, FIELD_START] = QUOTED
    table[_COMMA, FIELD_START] = FIELD_START
    emit[_COMMA, FIELD_START] = FIELD_SEP
    table[_LF, FIELD_START] = FIELD_START
    emit[_LF, FIELD_START] = RECORD_SEP

    # UNQUOTED
    table[:, UNQUOTED] = UNQUOTED
    table[_COMMA, UNQUOTED] = FIELD_START
    emit[_COMMA, UNQUOTED] = FIELD_SEP
    table[_LF, UNQUOTED] = FIELD_START
    emit[_LF, UNQUOTED] = RECORD_SEP

    # QUOTED: everything is data until the closing quote
    table[:, QUOTED] = QUOTED
    table[_QUOTE, QUOTED] = QUOTE_Q

    # QUOTE_Q: '""' escapes, comma/newline close the field, junk continues
    table[:, QUOTE_Q] = UNQUOTED  # sloppy trailing data after the quote
    table[_QUOTE, QUOTE_Q] = QUOTED
    table[_COMMA, QUOTE_Q] = FIELD_START
    emit[_COMMA, QUOTE_Q] = FIELD_SEP
    table[_LF, QUOTE_Q] = FIELD_START
    emit[_LF, QUOTE_Q] = RECORD_SEP

    accepting = np.zeros(NUM_STATES, dtype=bool)
    accepting[FIELD_START] = True  # well-terminated iff between fields
    return DFA(
        table=table,
        start=FIELD_START,
        accepting=accepting,
        alphabet=Alphabet.ascii(NUM_INPUTS),
        emit=emit,
        name="csv_tokenizer",
        state_names=("field_start", "unquoted", "quoted", "quote_q"),
    )


def reference_tokenize_csv(text: str) -> list[tuple[int, int]]:
    """Independent per-character tokenizer: ``[(position, token_id), ...]``."""
    out: list[tuple[int, int]] = []
    state = "field_start"
    for i, ch in enumerate(text):
        if ord(ch) >= NUM_INPUTS:
            raise ValueError(f"character {ch!r} at {i} outside ASCII-{NUM_INPUTS}")
        if state == "field_start":
            if ch == '"':
                state = "quoted"
            elif ch == ",":
                out.append((i, FIELD_SEP))
            elif ch == "\n":
                out.append((i, RECORD_SEP))
            else:
                state = "unquoted"
        elif state == "unquoted":
            if ch == ",":
                out.append((i, FIELD_SEP))
                state = "field_start"
            elif ch == "\n":
                out.append((i, RECORD_SEP))
                state = "field_start"
        elif state == "quoted":
            if ch == '"':
                state = "quote_q"
        elif state == "quote_q":
            if ch == '"':
                state = "quoted"
            elif ch == ",":
                out.append((i, FIELD_SEP))
                state = "field_start"
            elif ch == "\n":
                out.append((i, RECORD_SEP))
                state = "field_start"
            else:
                state = "unquoted"
    return out


_WORDS = (
    "alpha", "beta", "gamma", "delta", "sigma", "omega", "value",
    "metric", "total", "sample", "x", "y",
)


def synthetic_csv(
    approx_chars: int,
    *,
    columns: int = 6,
    quoted_fraction: float = 0.3,
    rng: int | np.random.Generator | None = 0,
) -> str:
    """Generate CSV text: mixed quoted/unquoted fields, embedded commas,
    newlines and escaped quotes inside quoted fields."""
    if approx_chars < 0:
        raise ValueError(f"approx_chars must be >= 0, got {approx_chars}")
    if columns < 1:
        raise ValueError(f"columns must be >= 1, got {columns}")
    if not 0.0 <= quoted_fraction <= 1.0:
        raise ValueError(f"quoted_fraction must be in [0, 1], got {quoted_fraction}")
    gen = ensure_rng(rng)
    parts: list[str] = []
    size = 0
    while size < approx_chars:
        fields = []
        for _ in range(columns):
            word = _WORDS[int(gen.integers(0, len(_WORDS)))]
            if gen.random() < quoted_fraction:
                inner = word
                roll = gen.random()
                if roll < 0.25:
                    inner += ", " + _WORDS[int(gen.integers(0, len(_WORDS)))]
                elif roll < 0.4:
                    inner += '""' + _WORDS[int(gen.integers(0, len(_WORDS)))] + '""'
                elif roll < 0.5:
                    inner += "\n" + _WORDS[int(gen.integers(0, len(_WORDS)))]
                fields.append(f'"{inner}"')
            else:
                suffix = str(int(gen.integers(0, 10_000)))
                fields.append(word + suffix)
        row = ",".join(fields) + "\n"
        parts.append(row)
        size += len(row)
    return "".join(parts)
