"""Divisibility FSMs.

Div7 (Figure 11 of the paper) tests whether a binary sequence, read MSB
first, is divisible by seven. The machine's states are the residues mod 7;
consuming bit ``b`` maps residue ``s`` to ``(2*s + b) mod 7``. For any input
symbol the seven states map to seven *distinct* states (multiplication by 2
is invertible mod 7), so no pair of states ever converges — the adversarial
case for speculation, which is why the paper runs Div7 with spec-N.
"""

from __future__ import annotations

import numpy as np

from repro.fsm.alphabet import Alphabet
from repro.fsm.dfa import DFA

__all__ = ["div_dfa", "div7_dfa", "residues_converge"]


def div_dfa(modulus: int, base: int = 2) -> DFA:
    """DFA accepting base-``base`` numerals divisible by ``modulus``.

    States are residues ``0 .. modulus-1``; reading digit ``d`` maps residue
    ``s`` to ``(base*s + d) % modulus``. The empty string (residue 0) is
    accepted, matching the convention of prior FSM-parallelization work.
    """
    if modulus < 1:
        raise ValueError(f"modulus must be >= 1, got {modulus}")
    if base < 2:
        raise ValueError(f"base must be >= 2, got {base}")
    states = np.arange(modulus, dtype=np.int64)
    table = np.empty((base, modulus), dtype=np.int32)
    for d in range(base):
        table[d] = (base * states + d) % modulus
    accepting = states == 0
    return DFA(
        table=table,
        start=0,
        accepting=accepting,
        alphabet=Alphabet.from_symbols(range(base)),
        name=f"div{modulus}" + (f"_base{base}" if base != 2 else ""),
    )


def div7_dfa() -> DFA:
    """The paper's Div7 machine (7 states, binary input)."""
    return div_dfa(7)


def residues_converge(modulus: int, base: int = 2) -> bool:
    """Whether any two residues can converge under some digit.

    ``False`` iff ``gcd(base, modulus) == 1`` — multiplication by ``base`` is
    then a bijection on residues, so speculation can never be helped by
    convergence (the Div7 property the paper highlights).
    """
    from math import gcd

    return gcd(base, modulus) != 1
