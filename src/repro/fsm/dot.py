"""Graphviz DOT export for automata.

Debugging aid: render machines like the paper's Figure 1a. Symbols on
parallel edges between the same pair of states are grouped into one label,
and character alphabets print their symbols directly. The output is plain
DOT text — pipe it to ``dot -Tpng`` where Graphviz is available.
"""

from __future__ import annotations

from collections import defaultdict

from repro.fsm.dfa import DFA
from repro.fsm.nfa import NFA

__all__ = ["dfa_to_dot", "nfa_to_dot"]


def _escape(label: str) -> str:
    return label.replace("\\", "\\\\").replace('"', '\\"')


def _symbol_label(dfa: DFA, sym_id: int) -> str:
    if dfa.alphabet is not None:
        return str(dfa.alphabet.symbol_of(sym_id))
    return str(sym_id)


def _state_label(dfa: DFA, q: int) -> str:
    if dfa.state_names:
        return str(dfa.state_names[q])
    return str(q)


def dfa_to_dot(
    dfa: DFA,
    *,
    max_states: int = 200,
    rankdir: str = "LR",
) -> str:
    """Render ``dfa`` as DOT. Raises for machines beyond ``max_states``."""
    if dfa.num_states > max_states:
        raise ValueError(
            f"machine has {dfa.num_states} states > max_states={max_states}; "
            "raise the limit explicitly to render anyway"
        )
    lines = [
        f'digraph "{_escape(dfa.name or "dfa")}" {{',
        f"  rankdir={rankdir};",
        '  __start [shape=point, label=""];',
    ]
    for q in range(dfa.num_states):
        shape = "doublecircle" if dfa.accepting[q] else "circle"
        lines.append(
            f'  q{q} [shape={shape}, label="{_escape(_state_label(dfa, q))}"];'
        )
    lines.append(f"  __start -> q{dfa.start};")
    # group symbols per (src, dst) edge
    grouped: dict[tuple[int, int], list[str]] = defaultdict(list)
    for a in range(dfa.num_inputs):
        for q in range(dfa.num_states):
            grouped[(q, int(dfa.table[a, q]))].append(_symbol_label(dfa, a))
    for (src, dst), symbols in sorted(grouped.items()):
        label = ",".join(symbols) if len(symbols) <= 6 else f"{len(symbols)} symbols"
        lines.append(f'  q{src} -> q{dst} [label="{_escape(label)}"];')
    lines.append("}")
    return "\n".join(lines)


def nfa_to_dot(nfa: NFA, *, rankdir: str = "LR") -> str:
    """Render an NFA as DOT (epsilon edges labeled with a lowercase 'eps')."""
    lines = [
        'digraph "nfa" {',
        f"  rankdir={rankdir};",
        '  __start [shape=point, label=""];',
    ]
    for q in range(nfa.num_states):
        shape = "doublecircle" if q in nfa.accepting else "circle"
        lines.append(f'  q{q} [shape={shape}, label="{q}"];')
    lines.append(f"  __start -> q{nfa.start};")
    for q, edges in enumerate(nfa.transitions):
        grouped: dict[int, list[str]] = defaultdict(list)
        for sym, targets in edges.items():
            for t in targets:
                grouped[t].append("eps" if sym is None else str(sym))
        for dst, symbols in sorted(grouped.items()):
            lines.append(
                f'  q{q} -> q{dst} [label="{_escape(",".join(sorted(symbols)))}"];'
            )
    lines.append("}")
    return "\n".join(lines)
