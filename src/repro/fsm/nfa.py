"""Non-deterministic finite automata with epsilon transitions.

NFAs appear in the regex pipeline (Thompson construction) and are immediately
determinized by :func:`repro.fsm.subset.subset_construction`. The
representation is adjacency dictionaries — NFAs here are small compile-time
objects, not execution-time ones, so clarity beats vectorization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["NFA"]

EPSILON = None  # sentinel symbol id for epsilon edges


@dataclass
class NFA:
    """An NFA over dense symbol ids ``0 .. num_inputs-1`` plus epsilon.

    States are dense integers allocated through :meth:`add_state`.
    ``transitions[q]`` maps a symbol id (or ``None`` for epsilon) to a set of
    successor states.
    """

    num_inputs: int
    transitions: list[dict] = field(default_factory=list)
    start: int = 0
    accepting: set = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.num_inputs < 1:
            raise ValueError(f"num_inputs must be >= 1, got {self.num_inputs}")

    @property
    def num_states(self) -> int:
        """Number of allocated states."""
        return len(self.transitions)

    def add_state(self) -> int:
        """Allocate and return a new state id."""
        self.transitions.append({})
        return len(self.transitions) - 1

    def add_edge(self, src: int, symbol: int | None, dst: int) -> None:
        """Add a transition on ``symbol`` (``None`` = epsilon)."""
        self._check_state(src)
        self._check_state(dst)
        if symbol is not None and not 0 <= symbol < self.num_inputs:
            raise ValueError(f"symbol {symbol} out of range [0, {self.num_inputs})")
        self.transitions[src].setdefault(symbol, set()).add(dst)

    def add_edges(self, src: int, symbols, dst: int) -> None:
        """Add transitions on each symbol in ``symbols``."""
        for a in symbols:
            self.add_edge(src, a, dst)

    def _check_state(self, q: int) -> None:
        if not 0 <= q < self.num_states:
            raise ValueError(f"state {q} out of range [0, {self.num_states})")

    # ------------------------------------------------------------------ #
    # semantics
    # ------------------------------------------------------------------ #

    def epsilon_closure(self, states: frozenset | set) -> frozenset:
        """All states reachable from ``states`` via epsilon edges."""
        stack = list(states)
        seen = set(states)
        while stack:
            q = stack.pop()
            for r in self.transitions[q].get(EPSILON, ()):
                if r not in seen:
                    seen.add(r)
                    stack.append(r)
        return frozenset(seen)

    def move(self, states: frozenset | set, symbol: int) -> set:
        """States reachable from ``states`` by one ``symbol`` edge (no closure)."""
        out: set = set()
        for q in states:
            out |= self.transitions[q].get(symbol, set())
        return out

    def run(self, symbols: np.ndarray) -> frozenset:
        """Set of states active after consuming ``symbols`` (reference semantics)."""
        current = self.epsilon_closure({self.start})
        for a in np.asarray(symbols):
            current = self.epsilon_closure(self.move(current, int(a)))
            if not current:
                break
        return frozenset(current)

    def accepts(self, symbols: np.ndarray) -> bool:
        """True when some active final state is accepting."""
        return bool(self.run(symbols) & self.accepting)
