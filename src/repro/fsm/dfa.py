"""Deterministic finite automata over dense transition tables.

The :class:`DFA` is the central object of the library. Its transition table
follows the paper's orientation (Figure 1c): ``table[symbol, state]`` is the
state reached from ``state`` on ``symbol``. Keeping symbols on the leading
axis means one lock-step execution step for a batch of machines is a single
fancy-index gather ``table[syms[:, None], states]`` — the NumPy analog of the
paper's inner loop, vectorized across threads and speculated states at once.

A DFA may optionally be a Mealy transducer: ``emit[symbol, state]`` gives an
output id produced *by the transition* (or -1 for none). Huffman decoding and
HTML tokenization use this to recover decoded characters / token boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

import numpy as np

from repro.fsm.alphabet import Alphabet

__all__ = ["DFA"]


@dataclass(frozen=True)
class DFA:
    """A deterministic FSM ``(Q, Sigma, q0, delta, F)`` with dense tables.

    Parameters
    ----------
    table:
        ``int32`` array of shape ``(num_inputs, num_states)``;
        ``table[a, q]`` is ``delta(q, a)``.
    start:
        The initial state ``q0``.
    accepting:
        Boolean mask of shape ``(num_states,)`` for ``F``. May be all-False
        for pure transducers.
    alphabet:
        Optional :class:`Alphabet` describing raw symbols.
    emit:
        Optional ``int32`` array of shape ``(num_inputs, num_states)``;
        ``emit[a, q]`` is an output id emitted when taking transition
        ``(q, a)``, or -1 for no output.
    name:
        Human-readable identifier used in reports.
    """

    table: np.ndarray
    start: int
    accepting: np.ndarray
    alphabet: Alphabet | None = None
    emit: np.ndarray | None = None
    name: str = ""
    state_names: tuple = field(default=(), compare=False)

    def __post_init__(self) -> None:
        table = np.ascontiguousarray(np.asarray(self.table, dtype=np.int32))
        if table.ndim != 2:
            raise ValueError(f"table must be 2-D (num_inputs, num_states), got {table.shape}")
        num_inputs, num_states = table.shape
        if num_states < 1 or num_inputs < 1:
            raise ValueError(f"table must be non-empty, got shape {table.shape}")
        if table.size and (int(table.min()) < 0 or int(table.max()) >= num_states):
            raise ValueError("transition table contains out-of-range states")
        accepting = np.ascontiguousarray(np.asarray(self.accepting, dtype=bool))
        if accepting.shape != (num_states,):
            raise ValueError(
                f"accepting must have shape ({num_states},), got {accepting.shape}"
            )
        if not 0 <= self.start < num_states:
            raise ValueError(f"start state {self.start} out of range [0, {num_states})")
        if self.alphabet is not None and self.alphabet.size != num_inputs:
            raise ValueError(
                f"alphabet size {self.alphabet.size} != num_inputs {num_inputs}"
            )
        emit = self.emit
        if emit is not None:
            emit = np.ascontiguousarray(np.asarray(emit, dtype=np.int32))
            if emit.shape != table.shape:
                raise ValueError(f"emit shape {emit.shape} != table shape {table.shape}")
        if self.state_names and len(self.state_names) != num_states:
            raise ValueError("state_names length must equal num_states")
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "accepting", accepting)
        object.__setattr__(self, "emit", emit)
        object.__setattr__(self, "start", int(self.start))

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #

    @property
    def num_states(self) -> int:
        """``N`` in the paper's terminology."""
        return self.table.shape[1]

    @property
    def num_inputs(self) -> int:
        """``num_inputs`` in the paper's terminology."""
        return self.table.shape[0]

    @property
    def table_entries(self) -> int:
        """Number of transition-table entries (``num_states * num_inputs``)."""
        return int(self.table.size)

    @property
    def is_transducer(self) -> bool:
        """True when the machine carries an emission table."""
        return self.emit is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"DFA({tag.strip()} states={self.num_states} inputs={self.num_inputs}"
            f" start={self.start} accepting={int(self.accepting.sum())})"
        )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_dict(
        cls,
        transitions: dict,
        start,
        accepting: Iterable,
        *,
        alphabet: Alphabet | None = None,
        name: str = "",
    ) -> "DFA":
        """Build a DFA from ``{(state, symbol): next_state}``.

        States and symbols may be arbitrary hashables; they are assigned
        dense ids in first-seen order (states) and alphabet order (symbols,
        when an :class:`Alphabet` is given; otherwise first-seen order).
        """
        state_ids: dict = {}

        def sid(s) -> int:
            if s not in state_ids:
                state_ids[s] = len(state_ids)
            return state_ids[s]

        sid(start)
        if alphabet is None:
            symbols: list = []
            sym_ids: dict = {}
            for (_, a) in transitions:
                if a not in sym_ids:
                    sym_ids[a] = len(symbols)
                    symbols.append(a)
            alphabet = Alphabet.from_symbols(symbols)
        for (q, _a), r in transitions.items():
            sid(q)
            sid(r)
        n = len(state_ids)
        table = np.zeros((alphabet.size, n), dtype=np.int32)
        seen = np.zeros((alphabet.size, n), dtype=bool)
        for (q, a), r in transitions.items():
            table[alphabet.id_of(a), state_ids[q]] = state_ids[r]
            seen[alphabet.id_of(a), state_ids[q]] = True
        if not seen.all():
            missing = np.argwhere(~seen)[0]
            raise ValueError(
                f"transition table incomplete: no transition for symbol id "
                f"{int(missing[0])} from state id {int(missing[1])}"
            )
        acc = np.zeros(n, dtype=bool)
        for s in accepting:
            acc[state_ids[s]] = True
        names = tuple(str(s) for s in state_ids)
        return cls(
            table=table,
            start=state_ids[start],
            accepting=acc,
            alphabet=alphabet,
            name=name,
            state_names=names,
        )

    @classmethod
    def random(
        cls,
        num_states: int,
        num_inputs: int,
        *,
        rng: int | np.random.Generator | None = 0,
        accepting_fraction: float = 0.25,
        name: str = "random",
    ) -> "DFA":
        """A uniformly random complete DFA (used heavily by property tests)."""
        from repro.util.rng import ensure_rng

        if num_states < 1 or num_inputs < 1:
            raise ValueError("num_states and num_inputs must be >= 1")
        gen = ensure_rng(rng)
        table = gen.integers(0, num_states, size=(num_inputs, num_states), dtype=np.int32)
        accepting = gen.random(num_states) < accepting_fraction
        return cls(table=table, start=0, accepting=accepting, name=name)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def step(self, state: int, symbol: int) -> int:
        """Single transition ``delta(state, symbol)``."""
        return int(self.table[symbol, state])

    def step_batch(self, states: np.ndarray, symbols: np.ndarray) -> np.ndarray:
        """Vectorized transition for paired ``states``/``symbols`` arrays."""
        return self.table[symbols, states]

    def run(self, symbols: np.ndarray, start: int | None = None) -> int:
        """Run the machine over a symbol-id array, returning the final state.

        This is the trusted scalar reference (the paper's Figure 1c loop);
        see :mod:`repro.fsm.run` for faster batched runners.
        """
        state = self.start if start is None else int(start)
        table = self.table
        for a in np.asarray(symbols):
            state = table[a, state]
        return int(state)

    def accepts(self, symbols: np.ndarray, start: int | None = None) -> bool:
        """True when the run ends in an accepting state."""
        return bool(self.accepting[self.run(symbols, start)])

    def encode(self, raw) -> np.ndarray:
        """Encode raw input using the attached alphabet."""
        if self.alphabet is None:
            raise ValueError("DFA has no alphabet; pass symbol ids directly")
        if isinstance(raw, str):
            return self.alphabet.encode_text(raw)
        return self.alphabet.encode(raw)

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #

    def with_start(self, start: int) -> "DFA":
        """Copy of this DFA with a different initial state."""
        return replace(self, start=int(start))

    def with_name(self, name: str) -> "DFA":
        """Copy of this DFA with a different name."""
        return replace(self, name=name)

    def renumber(self, order: Sequence[int]) -> "DFA":
        """Relabel states so old state ``order[i]`` becomes new state ``i``.

        ``order`` must be a permutation of ``range(num_states)``. Hot-state
        caching uses this to place frequent states at low ids.
        """
        order = np.asarray(order, dtype=np.int64)
        n = self.num_states
        if sorted(order.tolist()) != list(range(n)):
            raise ValueError("order must be a permutation of range(num_states)")
        inverse = np.empty(n, dtype=np.int32)
        inverse[order] = np.arange(n, dtype=np.int32)
        table = inverse[self.table[:, order]]
        accepting = self.accepting[order]
        emit = None if self.emit is None else self.emit[:, order]
        names = tuple(self.state_names[i] for i in order) if self.state_names else ()
        return DFA(
            table=table,
            start=int(inverse[self.start]),
            accepting=accepting,
            alphabet=self.alphabet,
            emit=emit,
            name=self.name,
            state_names=names,
        )

    def language_equal_on(self, other: "DFA", inputs: np.ndarray) -> bool:
        """Check acceptance agreement on a single concrete input (test helper)."""
        return self.accepts(inputs) == other.accepts(inputs)
