"""FSM analysis: state frequencies, reachability, and convergence.

Three quantities from the paper live here:

* **Static state frequency** (Section 4.2): how often each state appears as a
  *target* in the transition table. The paper's hot-state cache ranks states
  by this static count ("the frequency of each of states a and c is 4 ...
  thus we assume that state a and state c are hot states").
* **Dynamic state frequency**: measured occupancy during an actual run —
  used for Figure 5's CDF and for validating the static heuristic.
* **State convergence** (Mytkowicz et al., discussed in Related Work): how
  many distinct final states survive when a machine is run from *all* states
  over a window of input. Low convergence (Div7: none) makes speculation
  hard; high convergence makes look-back accurate.
"""

from __future__ import annotations

import numpy as np

from repro.fsm.dfa import DFA

__all__ = [
    "static_state_frequency",
    "dynamic_state_frequency",
    "reachable_states",
    "state_convergence",
    "stationary_distribution",
]


def static_state_frequency(dfa: DFA) -> np.ndarray:
    """Count of each state's appearances as a transition target.

    Shape ``(num_states,)``; sums to ``num_states * num_inputs``.
    """
    return np.bincount(dfa.table.ravel(), minlength=dfa.num_states).astype(np.int64)


def dynamic_state_frequency(
    dfa: DFA, symbols: np.ndarray, start: int | None = None
) -> np.ndarray:
    """Occupancy count of each state over an actual run.

    Counts the state *after* each transition (the row accessed next), which
    is the access pattern the shared-memory cache sees.
    """
    from repro.fsm.run import run_reference_trace

    trace = run_reference_trace(dfa, symbols, start)
    return np.bincount(trace, minlength=dfa.num_states).astype(np.int64)


def dynamic_state_frequency_sampled(
    dfa: DFA,
    symbols: np.ndarray,
    *,
    sample: int = 1 << 16,
    start: int | None = None,
) -> np.ndarray:
    """Like :func:`dynamic_state_frequency` but over a prefix sample.

    The frequency profile stabilizes quickly for ergodic machines; the cache
    planner uses a prefix to avoid a full sequential pass at build time.
    """
    symbols = np.asarray(symbols)
    return dynamic_state_frequency(dfa, symbols[: min(sample, symbols.size)], start)


def reachable_states(dfa: DFA, start: int | None = None) -> np.ndarray:
    """Boolean mask of states reachable from ``start`` (default: q0)."""
    mask = np.zeros(dfa.num_states, dtype=bool)
    s0 = dfa.start if start is None else int(start)
    mask[s0] = True
    stack = [s0]
    while stack:
        q = stack.pop()
        for r in dfa.table[:, q]:
            r = int(r)
            if not mask[r]:
                mask[r] = True
                stack.append(r)
    return mask


def state_convergence(
    dfa: DFA, symbols: np.ndarray, *, window: int | None = None
) -> int:
    """Number of distinct final states when running from *all* states.

    Runs the machine from every state over ``symbols`` (or its first
    ``window`` items) and counts the surviving distinct endpoints. 1 means
    total convergence (speculation always succeeds after the window);
    ``num_states`` (e.g. Div7) means the machine is a permutation over the
    window and speculation can only succeed by luck.
    """
    from repro.fsm.run import run_all_starts

    symbols = np.asarray(symbols)
    if window is not None:
        symbols = symbols[:window]
    return int(np.unique(run_all_starts(dfa, symbols)).size)


def stationary_distribution(
    dfa: DFA, symbol_probs: np.ndarray | None = None, *, iterations: int = 200
) -> np.ndarray:
    """Approximate long-run state occupancy under i.i.d. symbol draws.

    Treats the DFA as a Markov chain with symbol distribution
    ``symbol_probs`` (uniform by default) and power-iterates the transition
    matrix. Used by look-back ranking when no input sample is available.
    """
    n, m = dfa.num_states, dfa.num_inputs
    if symbol_probs is None:
        probs = np.full(m, 1.0 / m)
    else:
        probs = np.asarray(symbol_probs, dtype=np.float64)
        if probs.shape != (m,):
            raise ValueError(f"symbol_probs must have shape ({m},), got {probs.shape}")
        total = probs.sum()
        if total <= 0:
            raise ValueError("symbol_probs must sum to a positive value")
        probs = probs / total
    # P[q, r] = sum over symbols a of probs[a] * [table[a, q] == r]
    P = np.zeros((n, n), dtype=np.float64)
    for a in range(m):
        np.add.at(P, (np.arange(n), dfa.table[a]), probs[a])
    pi = np.full(n, 1.0 / n)
    for _ in range(iterations):
        nxt = pi @ P
        if np.allclose(nxt, pi, atol=1e-12):
            pi = nxt
            break
        pi = nxt
    return pi
