"""DFA minimization (Hopcroft's partition-refinement algorithm).

Minimization keeps the regex-derived DFAs at the paper's reported sizes
(18 states for regular expression 1, 29 for regular expression 2) and is a
correctness anchor for property tests: a minimized machine must accept the
same language as the original.
"""

from __future__ import annotations

import numpy as np

from repro.fsm.dfa import DFA

__all__ = ["minimize_dfa"]


def _reachable_mask(dfa: DFA) -> np.ndarray:
    mask = np.zeros(dfa.num_states, dtype=bool)
    stack = [dfa.start]
    mask[dfa.start] = True
    while stack:
        q = stack.pop()
        for r in dfa.table[:, q]:
            r = int(r)
            if not mask[r]:
                mask[r] = True
                stack.append(r)
    return mask


def minimize_dfa(dfa: DFA) -> DFA:
    """Return the minimal DFA equivalent to ``dfa``.

    Unreachable states are dropped first; Hopcroft refinement then merges
    behaviourally equivalent states. The result preserves the alphabet and
    name. Transducers (machines with an ``emit`` table) refine on emissions
    as well, so output behaviour is preserved exactly.
    """
    reach = _reachable_mask(dfa)
    old_ids = np.flatnonzero(reach)
    remap = -np.ones(dfa.num_states, dtype=np.int64)
    remap[old_ids] = np.arange(old_ids.size)
    table = remap[dfa.table[:, old_ids]]
    accepting = dfa.accepting[old_ids]
    emit = None if dfa.emit is None else dfa.emit[:, old_ids]
    n = old_ids.size
    num_inputs = dfa.num_inputs

    # Initial partition: accepting vs non-accepting, further split by the
    # emission signature so transducer outputs are preserved.
    if emit is None:
        keys = accepting.astype(np.int64)
    else:
        # Hash each state's emission column together with acceptance.
        sig = [tuple(emit[:, q]) + (bool(accepting[q]),) for q in range(n)]
        uniq = {s: i for i, s in enumerate(dict.fromkeys(sig))}
        keys = np.array([uniq[s] for s in sig], dtype=np.int64)

    block_of = _canonical_labels(keys)
    num_blocks = int(block_of.max()) + 1 if n else 0

    # Moore/Hopcroft-style refinement: split blocks by successor-block
    # signatures until a fixed point. With dense numpy relabeling each sweep
    # is O(num_inputs * n); the loop runs at most n sweeps.
    while True:
        # signature = (own block, block of successor under each symbol)
        succ_blocks = block_of[table]  # (num_inputs, n)
        sig_matrix = np.vstack([block_of[None, :], succ_blocks])
        new_block_of = _canonical_labels_rows(sig_matrix)
        new_num = int(new_block_of.max()) + 1 if n else 0
        if new_num == num_blocks:
            break
        block_of = new_block_of
        num_blocks = new_num

    # Build the quotient machine. Representative = first state of each block.
    rep = np.zeros(num_blocks, dtype=np.int64)
    seen = np.zeros(num_blocks, dtype=bool)
    for q in range(n):
        b = int(block_of[q])
        if not seen[b]:
            seen[b] = True
            rep[b] = q
    new_table = block_of[table[:, rep]].astype(np.int32)
    new_accepting = accepting[rep]
    new_emit = None if emit is None else emit[:, rep].astype(np.int32)
    new_start = int(block_of[remap[dfa.start]])
    return DFA(
        table=new_table,
        start=new_start,
        accepting=new_accepting,
        alphabet=dfa.alphabet,
        emit=new_emit,
        name=dfa.name,
    )


def _canonical_labels(keys: np.ndarray) -> np.ndarray:
    """Relabel arbitrary integer keys to dense 0..m-1 (first-seen order)."""
    _, labels = np.unique(keys, return_inverse=True)
    return labels.astype(np.int64)


def _canonical_labels_rows(matrix: np.ndarray) -> np.ndarray:
    """Dense labels for the *columns* of ``matrix`` (equal columns share one)."""
    # View each column as a composite key via np.unique over the transpose.
    _, labels = np.unique(matrix.T, axis=0, return_inverse=True)
    return labels.astype(np.int64)
