"""DFA minimization (partition-refinement, sequential and parallel sweeps).

Minimization keeps the regex-derived DFAs at the paper's reported sizes
(18 states for regular expression 1, 29 for regular expression 2) and is a
correctness anchor for property tests: a minimized machine must accept the
same language as the original.

Two refinement strategies compute the same coarsest partition:

- the default Moore sweep labels full successor-signature rows with one
  ``np.unique`` over an ``(num_inputs + 1, n)`` matrix per sweep;
- ``parallel=True`` uses the per-symbol pairwise label combination from the
  massively-parallel minimisation literature: each symbol contributes an
  independent split, folded into dense labels through 1-D integer keys.
  Every fold is an embarrassingly parallel map over states, which is the
  formulation GPU/SIMD minimisers use — and the 1-D sorts are faster than
  row-wise unique for wide alphabets.

``labels`` seeds the initial partition with extra per-state classes (beyond
acceptance/emission), which the multi-pattern product route uses to keep
per-component acceptance vectors distinct through minimization.
"""

from __future__ import annotations

import numpy as np

from repro.fsm.dfa import DFA

__all__ = ["minimize_dfa"]


def _reachable_mask(dfa: DFA) -> np.ndarray:
    """Boolean mask of states reachable from ``dfa.start``.

    Frontier-at-a-time BFS: each step gathers *all* successors of the
    current frontier with one fancy-index over the transition table, so the
    work per level is a handful of NumPy ops instead of a Python loop over
    every (state, symbol) edge.
    """
    mask = np.zeros(dfa.num_states, dtype=bool)
    mask[dfa.start] = True
    frontier = np.array([dfa.start], dtype=np.int64)
    while frontier.size:
        succ = np.unique(dfa.table[:, frontier])
        new = succ[~mask[succ]]
        mask[new] = True
        frontier = new
    return mask


def _combine_labels(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense labels for the pairs ``(a[i], b[i])`` via a 1-D integer key."""
    width = int(b.max()) + 1 if b.size else 1
    key = a.astype(np.int64) * np.int64(width) + b.astype(np.int64)
    _, labels = np.unique(key, return_inverse=True)
    return labels.astype(np.int64)


def minimize_dfa(
    dfa: DFA,
    *,
    parallel: bool = False,
    labels: np.ndarray | None = None,
    return_mapping: bool = False,
):
    """Return the minimal DFA equivalent to ``dfa``.

    Unreachable states are dropped first; partition refinement then merges
    behaviourally equivalent states. The result preserves the alphabet and
    name. Transducers (machines with an ``emit`` table) refine on emissions
    as well, so output behaviour is preserved exactly.

    ``parallel=True`` selects the per-symbol pairwise refinement sweep (see
    module docstring) — the computed partition is identical.

    ``labels`` (optional, shape ``(num_states,)`` ints) adds extra initial
    partition classes: states with different labels are never merged. The
    product route passes the per-component acceptance vector here so each
    minimized state keeps a well-defined acceptance mask per pattern.

    ``return_mapping=True`` returns ``(min_dfa, mapping)`` where ``mapping``
    is a ``(num_states,)`` int64 array sending each original state to its
    minimized state (``-1`` for unreachable states).
    """
    reach = _reachable_mask(dfa)
    old_ids = np.flatnonzero(reach)
    remap = -np.ones(dfa.num_states, dtype=np.int64)
    remap[old_ids] = np.arange(old_ids.size)
    table = remap[dfa.table[:, old_ids]]
    accepting = dfa.accepting[old_ids]
    emit = None if dfa.emit is None else dfa.emit[:, old_ids]
    n = old_ids.size
    num_inputs = dfa.num_inputs

    # Initial partition: accepting vs non-accepting, further split by the
    # emission signature so transducer outputs are preserved, and by any
    # caller-supplied labels.
    if emit is None:
        keys = accepting.astype(np.int64)
    else:
        # Hash each state's emission column together with acceptance.
        sig = [tuple(emit[:, q]) + (bool(accepting[q]),) for q in range(n)]
        uniq = {s: i for i, s in enumerate(dict.fromkeys(sig))}
        keys = np.array([uniq[s] for s in sig], dtype=np.int64)
    if labels is not None:
        labels = np.asarray(labels)
        if labels.shape != (dfa.num_states,):
            raise ValueError(
                f"labels must have shape ({dfa.num_states},), got {labels.shape}"
            )
        keys = _combine_labels(keys, labels[old_ids])

    block_of = _canonical_labels(keys)
    num_blocks = int(block_of.max()) + 1 if n else 0

    # Refinement: split blocks by successor-block signatures until a fixed
    # point. Each sweep is O(num_inputs * n) dense numpy work; the loop runs
    # at most n sweeps.
    while True:
        succ_blocks = block_of[table]  # (num_inputs, n)
        if parallel:
            # Per-symbol pairwise folds over 1-D keys: each symbol's split
            # is independent (parallel-friendly) and exact.
            new_block_of = block_of
            for a in range(num_inputs):
                new_block_of = _combine_labels(new_block_of, succ_blocks[a])
        else:
            # signature = (own block, block of successor under each symbol)
            sig_matrix = np.vstack([block_of[None, :], succ_blocks])
            new_block_of = _canonical_labels_rows(sig_matrix)
        new_num = int(new_block_of.max()) + 1 if n else 0
        if new_num == num_blocks:
            break
        block_of = new_block_of
        num_blocks = new_num

    # Build the quotient machine. Representative = first state of each block.
    rep = np.zeros(num_blocks, dtype=np.int64)
    seen = np.zeros(num_blocks, dtype=bool)
    for q in range(n):
        b = int(block_of[q])
        if not seen[b]:
            seen[b] = True
            rep[b] = q
    new_table = block_of[table[:, rep]].astype(np.int32)
    new_accepting = accepting[rep]
    new_emit = None if emit is None else emit[:, rep].astype(np.int32)
    new_start = int(block_of[remap[dfa.start]])
    out = DFA(
        table=new_table,
        start=new_start,
        accepting=new_accepting,
        alphabet=dfa.alphabet,
        emit=new_emit,
        name=dfa.name,
    )
    if not return_mapping:
        return out
    mapping = -np.ones(dfa.num_states, dtype=np.int64)
    mapping[old_ids] = block_of
    return out, mapping


def _canonical_labels(keys: np.ndarray) -> np.ndarray:
    """Relabel arbitrary integer keys to dense 0..m-1 (first-seen order)."""
    _, labels = np.unique(keys, return_inverse=True)
    return labels.astype(np.int64)


def _canonical_labels_rows(matrix: np.ndarray) -> np.ndarray:
    """Dense labels for the *columns* of ``matrix`` (equal columns share one)."""
    # View each column as a composite key via np.unique over the transpose.
    _, labels = np.unique(matrix.T, axis=0, return_inverse=True)
    return labels.astype(np.int64)
