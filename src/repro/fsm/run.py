"""Trusted sequential reference runners.

These are the "simple serial implementation" of the paper's Figure 1c. They
are intentionally straightforward — every parallel result in the library is
ultimately checked against them. :func:`run_all_starts` provides the
enumerative-execution reference (one run per possible start state) in a
vectorized form: the Python-level loop is over input items, but each step
advances *all* start states with one gather.
"""

from __future__ import annotations

import numpy as np

from repro.fsm.dfa import DFA

__all__ = ["run_reference", "run_reference_trace", "run_segment", "run_all_starts"]


def run_reference(dfa: DFA, symbols: np.ndarray, start: int | None = None) -> int:
    """Final state of the serial run — the ground truth for all tests.

    The loop iterates over ``symbols.tolist()``: converting once up front
    yields plain Python ints, avoiding the per-step NumPy scalar boxing
    that dominated the naive ``for a in array`` form. When the transition
    table is small relative to the input it is likewise converted to
    nested lists so every step is pure-Python indexing — several times
    faster, and this function is the correctness oracle inside every test
    and benchmark, so its speed bounds the whole suite.
    """
    state = dfa.start if start is None else int(start)
    syms = np.asarray(symbols)
    if syms.size == 0:
        return int(state)
    sym_list = syms.tolist()
    table = dfa.table
    if table.size <= syms.size << 3:
        rows = table.tolist()
        for a in sym_list:
            state = rows[a][state]
        return state
    for a in sym_list:
        state = table[a, state]
    return int(state)


def run_reference_trace(
    dfa: DFA, symbols: np.ndarray, start: int | None = None
) -> np.ndarray:
    """States *after* each transition (length ``len(symbols)``)."""
    symbols = np.asarray(symbols)
    out = np.empty(symbols.size, dtype=np.int32)
    state = dfa.start if start is None else int(start)
    table = dfa.table
    for i, a in enumerate(symbols.tolist()):
        state = table[a, state]
        out[i] = state
    return out


def run_segment(dfa: DFA, symbols: np.ndarray, start: int) -> int:
    """Run a segment from an explicit ``start`` — the re-execution primitive.

    Semantically identical to :func:`run_reference`; kept separate so the
    engine's re-execution call sites are greppable and so instrumentation
    can wrap exactly the re-executed work.
    """
    return run_reference(dfa, symbols, start)


def run_all_starts(dfa: DFA, symbols: np.ndarray) -> np.ndarray:
    """Map every state ``q`` to the final state of the run started at ``q``.

    This is the enumerative-execution reference: ``out[q]`` is the state
    reached from ``q`` after consuming all of ``symbols``. Equivalently it is
    the composition of the per-symbol transition functions, computed by
    folding gathers; ``out = T[a_n] ∘ ... ∘ T[a_1]``.
    """
    states = np.arange(dfa.num_states, dtype=np.int32)
    table = dfa.table
    for a in np.asarray(symbols):
        states = table[a, states]
    return states
