"""Bitset NFA execution with data-parallel chunk composition.

The paper determinizes NFAs (subset construction) and runs DFAs; the
related-work alternative (iNFAnt [4]) executes the NFA *directly*, keeping
the active-state set as a bit vector. This module implements that engine
and its data-parallel form:

* a run step ORs together the target masks of every active state —
  set-valued transition is linear over union;
* consequently a chunk's effect is a **boolean matrix** ``R`` with
  ``R[q, r] = 1`` iff state ``r`` is active after the chunk when only ``q``
  was active before it, and chunks compose by boolean matrix
  multiplication — associative, so the same parallel tree merge applies
  with *no speculation and no re-execution*, at O(num_states) work per
  state per item.

The machine is capped at 64 states (masks are ``uint64``); bigger NFAs
should be determinized (:func:`repro.fsm.subset.subset_construction`)
instead — exactly the trade-off the paper's Section 2.1 describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fsm.nfa import NFA
from repro.workloads.chunking import plan_chunks

__all__ = ["BitsetNFA"]

_MAX_STATES = 64


@dataclass(frozen=True)
class BitsetNFA:
    """An epsilon-free bitset form of an NFA (≤ 64 states).

    ``step_masks[a, q]`` is the bitmask of states reachable from ``q`` on
    symbol ``a`` (epsilon closure already folded in); ``start_mask`` and
    ``accept_mask`` are the closed initial set and the accepting set.
    """

    step_masks: np.ndarray  # (num_inputs, num_states) uint64
    start_mask: np.uint64
    accept_mask: np.uint64
    num_states: int

    @classmethod
    def from_nfa(cls, nfa: NFA) -> "BitsetNFA":
        """Fold epsilon edges and pack the NFA into bit masks."""
        n = nfa.num_states
        if n > _MAX_STATES:
            raise ValueError(
                f"bitset engine supports <= {_MAX_STATES} states, got {n}; "
                "determinize instead (subset_construction)"
            )
        if n == 0:
            raise ValueError("NFA has no states")

        def mask_of(states) -> np.uint64:
            m = np.uint64(0)
            for q in states:
                m |= np.uint64(1) << np.uint64(q)
            return m

        closures = [nfa.epsilon_closure({q}) for q in range(n)]
        step = np.zeros((nfa.num_inputs, n), dtype=np.uint64)
        for q in range(n):
            for a in range(nfa.num_inputs):
                targets: set = set()
                for p in closures[q]:
                    targets |= nfa.transitions[p].get(a, set())
                closed: set = set()
                for t in targets:
                    closed |= closures[t]
                step[a, q] = mask_of(closed)
        return cls(
            step_masks=step,
            start_mask=mask_of(closures[nfa.start]),
            accept_mask=mask_of(nfa.accepting),
            num_states=n,
        )

    @property
    def num_inputs(self) -> int:
        """Input alphabet size."""
        return self.step_masks.shape[0]

    # ------------------------------------------------------------------ #
    # direct execution
    # ------------------------------------------------------------------ #

    def _mask_to_bools(self, masks: np.ndarray) -> np.ndarray:
        """(..., ) uint64 -> (..., num_states) bool."""
        bits = np.unpackbits(
            masks[..., None].view(np.uint8), axis=-1, bitorder="little"
        )
        return bits[..., : self.num_states].astype(bool)

    def run(self, symbols: np.ndarray) -> np.uint64:
        """Active-state mask after consuming ``symbols`` from the start set."""
        cur = np.uint64(self.start_mask)
        step = self.step_masks
        n = self.num_states
        for a in np.asarray(symbols):
            row = step[a]
            nxt = np.uint64(0)
            m = cur
            q = 0
            while m:
                if m & np.uint64(1):
                    nxt |= row[q]
                m >>= np.uint64(1)
                q += 1
                if q >= n:
                    break
            cur = nxt
            if not cur:
                break
        return cur

    def accepts(self, symbols: np.ndarray) -> bool:
        """True when an accepting state is active at the end."""
        return bool(self.run(symbols) & self.accept_mask)

    # ------------------------------------------------------------------ #
    # data-parallel execution: boolean-matrix chunk composition
    # ------------------------------------------------------------------ #

    def chunk_matrices(self, symbols: np.ndarray, num_chunks: int) -> np.ndarray:
        """Per-chunk reachability matrices, shape (num_chunks, n, n) bool.

        ``M[c, q, r]``: starting chunk ``c`` with only ``q`` active leaves
        ``r`` active. Computed for all chunks in lock-step; each step
        updates every chunk's matrix with one gather + OR-reduction.
        """
        symbols = np.asarray(symbols)
        plan = plan_chunks(symbols.size, num_chunks)
        n = self.num_states
        # bool transition tensor T[a, q, r]
        T = self._mask_to_bools(self.step_masks)  # (num_inputs, n, n)
        M = np.broadcast_to(np.eye(n, dtype=bool), (num_chunks, n, n)).copy()
        q_len = plan.min_len
        starts = plan.starts
        for j in range(q_len):
            syms = symbols[starts + j]
            # M'[c,q,r] = OR_s M[c,q,s] & T[a_c,s,r]  (boolean matmul)
            M = np.matmul(M, T[syms])
        r = plan.num_long
        if r:
            long_idx = np.flatnonzero(plan.lengths > q_len)
            syms = symbols[starts[long_idx] + q_len]
            M[long_idx] = np.matmul(M[long_idx], T[syms])
        return M

    def run_parallel(self, symbols: np.ndarray, *, num_chunks: int = 256) -> np.uint64:
        """Data-parallel run: chunk matrices reduced by boolean matmul.

        Exact (no speculation); returns the same mask as :meth:`run`.
        """
        symbols = np.asarray(symbols)
        if symbols.size == 0:
            return np.uint64(self.start_mask)
        num_chunks = max(1, min(num_chunks, symbols.size))
        M = self.chunk_matrices(symbols, num_chunks)
        while M.shape[0] > 1:
            m = M.shape[0]
            pairs = m // 2
            combined = np.matmul(M[0 : 2 * pairs : 2], M[1 : 2 * pairs : 2])
            if m % 2:
                combined = np.concatenate([combined, M[-1:]])
            M = combined
        start_bools = self._mask_to_bools(
            np.array(self.start_mask, dtype=np.uint64)
        )
        final = start_bools @ M[0]  # (n,) bool
        out = np.uint64(0)
        for r in np.flatnonzero(final):
            out |= np.uint64(1) << np.uint64(r)
        return out

    def accepts_parallel(self, symbols: np.ndarray, *, num_chunks: int = 256) -> bool:
        """Parallel counterpart of :meth:`accepts`."""
        return bool(self.run_parallel(symbols, num_chunks=num_chunks) & self.accept_mask)
