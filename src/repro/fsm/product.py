"""Product construction: run several DFAs as one machine.

A network intrusion detection system checks many patterns against the same
stream. The paper amortizes the layout transformation across patterns by
running one kernel per pattern; an alternative is the classical *product
automaton* — a single machine whose state is the tuple of component states,
accepting per component. One speculative pass then matches all patterns at
once, at the cost of a (potentially much) larger state space — the same
redundancy-vs-passes trade-off as spec-k itself.

Only states reachable from the joint start are materialized, so the
product is usually far smaller than the |Q1|x|Q2|x... worst case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fsm.dfa import DFA

__all__ = ["ProductDFA", "product_dfa"]


@dataclass(frozen=True)
class ProductDFA:
    """A reachable product machine plus per-component acceptance masks.

    ``accept_masks[i]`` marks the product states in which component ``i``
    accepts, so per-pattern match positions can be recovered from one run.
    """

    dfa: DFA
    accept_masks: tuple  # tuple of (num_states,) bool arrays
    component_names: tuple

    @property
    def num_components(self) -> int:
        """Number of component machines."""
        return len(self.accept_masks)

    def component_accepting(self, i: int, states: np.ndarray) -> np.ndarray:
        """Acceptance of component ``i`` over an array of product states."""
        return self.accept_masks[i][states]


def product_dfa(machines: list[DFA], *, name: str = "product") -> ProductDFA:
    """Reachable product of ``machines`` (all over the same input space).

    The product accepts iff *any* component accepts (union semantics for
    the combined machine's own ``accepting``); per-component masks allow
    finer queries. Raises if the machines disagree on ``num_inputs``.
    """
    if not machines:
        raise ValueError("product of zero machines")
    num_inputs = machines[0].num_inputs
    for m in machines:
        if m.num_inputs != num_inputs:
            raise ValueError(
                f"machines disagree on num_inputs: {m.num_inputs} != {num_inputs}"
            )

    start = tuple(m.start for m in machines)
    ids: dict[tuple, int] = {start: 0}
    worklist = [start]
    rows: list[list[int]] = []
    processed = 0
    while processed < len(worklist):
        current = worklist[processed]
        processed += 1
        row = []
        for a in range(num_inputs):
            nxt = tuple(
                int(m.table[a, q]) for m, q in zip(machines, current)
            )
            nid = ids.get(nxt)
            if nid is None:
                nid = len(ids)
                ids[nxt] = nid
                worklist.append(nxt)
            row.append(nid)
        rows.append(row)

    n = len(ids)
    table = np.asarray(rows, dtype=np.int32).T
    masks = []
    for i, m in enumerate(machines):
        mask = np.zeros(n, dtype=bool)
        for tup, sid in ids.items():
            mask[sid] = bool(m.accepting[tup[i]])
        masks.append(mask)
    any_accept = np.logical_or.reduce(masks) if masks else np.zeros(n, dtype=bool)
    combined = DFA(
        table=table,
        start=0,
        accepting=any_accept,
        alphabet=machines[0].alphabet,
        name=name,
    )
    return ProductDFA(
        dfa=combined,
        accept_masks=tuple(masks),
        component_names=tuple(m.name or f"component_{i}" for i, m in enumerate(machines)),
    )
