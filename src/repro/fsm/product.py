"""Product construction: run several DFAs as one machine.

A network intrusion detection system checks many patterns against the same
stream. The paper amortizes the layout transformation across patterns by
running one kernel per pattern; an alternative is the classical *product
automaton* — a single machine whose state is the tuple of component states,
accepting per component. One speculative pass then matches all patterns at
once, at the cost of a (potentially much) larger state space — the same
redundancy-vs-passes trade-off as spec-k itself.

Only states reachable from the joint start are materialized, and the
construction expands whole BFS frontiers per step: one fancy-index per
component gathers every successor of the current frontier, successor
tuples are packed into mixed-radix int64 keys, and ``np.unique`` +
``np.searchsorted`` discover the new states — no per-(state, symbol)
Python loop. A ``max_states`` budget raises :class:`ProductStateBudget`
as soon as the frontier would exceed it, so route selection can bail out
of hopeless groups after touching only a prefix of the product.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fsm.dfa import DFA
from repro.fsm.minimize import _combine_labels, minimize_dfa

__all__ = ["ProductDFA", "ProductStateBudget", "product_dfa", "minimize_product"]


class ProductStateBudget(ValueError):
    """Raised when the reachable product exceeds ``max_states``."""

    def __init__(self, limit: int, reached: int) -> None:
        super().__init__(
            f"reachable product exceeds max_states={limit} "
            f"(materialized {reached} states before stopping)"
        )
        self.limit = limit
        self.reached = reached


@dataclass(frozen=True)
class ProductDFA:
    """A reachable product machine plus per-component acceptance masks.

    ``accept_masks[i]`` marks the product states in which component ``i``
    accepts, so per-pattern match positions can be recovered from one run.
    ``state_tuples`` (when retained) maps each product state to its
    component-state tuple as an ``(num_states, P)`` int32 array.
    """

    dfa: DFA
    accept_masks: tuple  # tuple of (num_states,) bool arrays
    component_names: tuple
    state_tuples: np.ndarray | None = None

    @property
    def num_components(self) -> int:
        """Number of component machines."""
        return len(self.accept_masks)

    def component_accepting(self, i: int, states: np.ndarray) -> np.ndarray:
        """Acceptance of component ``i`` over an array of product states."""
        return self.accept_masks[i][states]


def product_dfa(
    machines: list[DFA],
    *,
    name: str = "product",
    max_states: int | None = None,
    keep_state_tuples: bool = True,
) -> ProductDFA:
    """Reachable product of ``machines`` (all over the same input space).

    The product accepts iff *any* component accepts (union semantics for
    the combined machine's own ``accepting``); per-component masks allow
    finer queries. Raises if the machines disagree on ``num_inputs``, and
    :class:`ProductStateBudget` if more than ``max_states`` reachable
    states get materialized.
    """
    if not machines:
        raise ValueError("product of zero machines")
    num_inputs = machines[0].num_inputs
    for m in machines:
        if m.num_inputs != num_inputs:
            raise ValueError(
                f"machines disagree on num_inputs: {m.num_inputs} != {num_inputs}"
            )

    sizes = np.array([m.num_states for m in machines], dtype=np.int64)
    # Mixed-radix packing: key = sum_i q_i * stride_i. Falls back to the
    # tuple-keyed loop if the full product would overflow int64 (keys must
    # be unique per tuple, not per reachable state).
    bits = float(np.sum(np.log2(np.maximum(sizes, 1))))
    if bits >= 62.0:
        return _product_dfa_tuples(
            machines, name=name, max_states=max_states,
            keep_state_tuples=keep_state_tuples,
        )
    strides = np.ones(len(machines), dtype=np.int64)
    strides[1:] = np.cumprod(sizes[:-1])

    start = np.array([m.start for m in machines], dtype=np.int64)
    start_key = int(start @ strides)
    comp = start[None, :]                       # (n, P) discovered tuples
    known_keys = np.array([start_key], dtype=np.int64)   # sorted
    known_ids = np.array([0], dtype=np.int64)            # aligned with keys
    frontier = comp                              # ids are contiguous per level
    table_cols: list[np.ndarray] = []
    n = 1
    while frontier.size:
        # (num_inputs, |F|, P) successor tuples of the whole frontier.
        succ = np.stack(
            [m.table[:, frontier[:, i]] for i, m in enumerate(machines)],
            axis=-1,
        ).astype(np.int64)
        keys = succ @ strides                    # (num_inputs, |F|)
        # Flatten state-major so ids come out in the same order as the
        # classic FIFO worklist (per state, per symbol) — numbering is then
        # identical to the tuple-keyed fallback.
        flat = keys.T.ravel()
        uniq, first, inv = np.unique(flat, return_index=True, return_inverse=True)
        pos = np.searchsorted(known_keys, uniq)
        pos_c = np.minimum(pos, known_keys.size - 1)
        seen = known_keys[pos_c] == uniq
        ids = np.empty(uniq.size, dtype=np.int64)
        ids[seen] = known_ids[pos_c[seen]]
        new_first = first[~seen]
        if new_first.size:
            # Assign fresh ids in first-appearance order (deterministic BFS).
            order = np.argsort(new_first, kind="stable")
            fresh = np.empty(new_first.size, dtype=np.int64)
            fresh[order] = n + np.arange(new_first.size)
            ids[~seen] = fresh
            new_comp = succ.transpose(1, 0, 2).reshape(-1, len(machines))[
                new_first[order]
            ]
            n += new_first.size
            if max_states is not None and n > max_states:
                raise ProductStateBudget(max_states, n)
            comp = np.vstack([comp, new_comp])
            merged_keys = np.concatenate([known_keys, uniq[~seen]])
            merged_ids = np.concatenate([known_ids, ids[~seen]])
            sort = np.argsort(merged_keys, kind="stable")
            known_keys = merged_keys[sort]
            known_ids = merged_ids[sort]
            frontier = new_comp
        else:
            frontier = np.empty((0, len(machines)), dtype=np.int64)
        table_cols.append(ids[inv].reshape(keys.shape[1], keys.shape[0]).T)

    table = np.concatenate(table_cols, axis=1).astype(np.int32)
    masks = [m.accepting[comp[:, i]] for i, m in enumerate(machines)]
    return _assemble(machines, table, comp, masks, name, keep_state_tuples)


def _product_dfa_tuples(
    machines: list[DFA],
    *,
    name: str,
    max_states: int | None,
    keep_state_tuples: bool,
) -> ProductDFA:
    """Tuple-keyed fallback for products too wide for int64 packing."""
    num_inputs = machines[0].num_inputs
    start = tuple(m.start for m in machines)
    ids: dict[tuple, int] = {start: 0}
    worklist = [start]
    rows: list[list[int]] = []
    processed = 0
    while processed < len(worklist):
        current = worklist[processed]
        processed += 1
        row = []
        for a in range(num_inputs):
            nxt = tuple(
                int(m.table[a, q]) for m, q in zip(machines, current)
            )
            nid = ids.get(nxt)
            if nid is None:
                nid = len(ids)
                if max_states is not None and nid + 1 > max_states:
                    raise ProductStateBudget(max_states, nid + 1)
                ids[nxt] = nid
                worklist.append(nxt)
            row.append(nid)
        rows.append(row)

    table = np.asarray(rows, dtype=np.int32).T
    comp = np.asarray(worklist, dtype=np.int64)
    masks = [m.accepting[comp[:, i]] for i, m in enumerate(machines)]
    return _assemble(machines, table, comp, masks, name, keep_state_tuples)


def _assemble(
    machines: list[DFA],
    table: np.ndarray,
    comp: np.ndarray,
    masks: list[np.ndarray],
    name: str,
    keep_state_tuples: bool,
) -> ProductDFA:
    n = comp.shape[0]
    any_accept = np.logical_or.reduce(masks) if masks else np.zeros(n, dtype=bool)
    combined = DFA(
        table=table,
        start=0,
        accepting=np.ascontiguousarray(any_accept),
        alphabet=machines[0].alphabet,
        name=name,
    )
    return ProductDFA(
        dfa=combined,
        accept_masks=tuple(np.ascontiguousarray(m) for m in masks),
        component_names=tuple(
            m.name or f"component_{i}" for i, m in enumerate(machines)
        ),
        state_tuples=comp.astype(np.int32) if keep_state_tuples else None,
    )


def minimize_product(prod: ProductDFA, *, parallel: bool = True) -> ProductDFA:
    """Minimize a product machine while preserving per-component acceptance.

    Plain minimization would merge states whose *union* acceptance agrees
    but whose per-component vectors differ, destroying ``accept_masks``.
    Instead the per-component acceptance vector is packed into an initial
    partition label, so merged states always share one vector and the masks
    project exactly onto the quotient.
    """
    masks = prod.accept_masks
    labels = np.zeros(prod.dfa.num_states, dtype=np.int64)
    for mask in masks:
        labels = _combine_labels(labels, mask.astype(np.int64))
    mini, mapping = minimize_dfa(
        prod.dfa, parallel=parallel, labels=labels, return_mapping=True,
    )
    new_masks = []
    for mask in masks:
        nm = np.zeros(mini.num_states, dtype=bool)
        nm[mapping[mapping >= 0]] = mask[mapping >= 0]
        new_masks.append(nm)
    return ProductDFA(
        dfa=mini,
        accept_masks=tuple(new_masks),
        component_names=prod.component_names,
        state_tuples=None,
    )
