"""Subset construction: determinize an NFA into a complete-table DFA.

The resulting DFA is *complete* — the empty subset becomes an explicit dead
state when reachable — because the speculative engine requires a total
transition function (every ``table[a, q]`` entry must be a valid state).
"""

from __future__ import annotations

import numpy as np

from repro.fsm.alphabet import Alphabet
from repro.fsm.dfa import DFA
from repro.fsm.nfa import NFA

__all__ = ["subset_construction"]


def subset_construction(
    nfa: NFA,
    *,
    alphabet: Alphabet | None = None,
    name: str = "",
) -> DFA:
    """Determinize ``nfa`` via the classical subset construction.

    Subsets are discovered breadth-first from the epsilon closure of the NFA
    start state, so every DFA state is reachable by construction. A dead
    state (the empty subset) is materialized only if some transition actually
    reaches it.
    """
    if alphabet is not None and alphabet.size != nfa.num_inputs:
        raise ValueError(
            f"alphabet size {alphabet.size} != nfa.num_inputs {nfa.num_inputs}"
        )
    start_set = nfa.epsilon_closure({nfa.start})
    subset_ids: dict[frozenset, int] = {start_set: 0}
    worklist: list[frozenset] = [start_set]
    rows: list[list[int]] = []  # rows[q][a] = next state id
    accepting_flags: list[bool] = [bool(start_set & nfa.accepting)]

    def subset_id(s: frozenset) -> int:
        sid = subset_ids.get(s)
        if sid is None:
            sid = len(subset_ids)
            subset_ids[s] = sid
            worklist.append(s)
            accepting_flags.append(bool(s & nfa.accepting))
        return sid

    processed = 0
    while processed < len(worklist):
        current = worklist[processed]
        processed += 1
        row = []
        for a in range(nfa.num_inputs):
            nxt = nfa.epsilon_closure(nfa.move(current, a))
            row.append(subset_id(frozenset(nxt)))
        rows.append(row)

    num_states = len(subset_ids)
    table = np.asarray(rows, dtype=np.int32).T  # (num_inputs, num_states)
    accepting = np.asarray(accepting_flags, dtype=bool)
    names = tuple(
        "{" + ",".join(map(str, sorted(s))) + "}" for s in subset_ids
    )
    return DFA(
        table=table,
        start=0,
        accepting=accepting,
        alphabet=alphabet,
        name=name,
        state_names=names,
    )
