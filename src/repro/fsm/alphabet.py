"""Alphabet: bidirectional mapping between raw symbols and dense symbol ids.

The execution engine works on dense ``uint8``/``int32`` symbol-id arrays
(``0 .. num_inputs-1``). Applications map their raw inputs (characters, bits,
bytes) into that space once, up front — this is the analog of the paper's
assumption that inputs are preprocessed into transition-table column indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Alphabet"]


@dataclass(frozen=True)
class Alphabet:
    """A finite input alphabet with dense integer ids.

    Parameters
    ----------
    symbols:
        The raw symbols in id order; ``symbols[i]`` has id ``i``. Symbols must
        be hashable and unique.
    """

    symbols: tuple = ()
    _index: dict = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        index = {}
        for i, s in enumerate(self.symbols):
            if s in index:
                raise ValueError(f"duplicate symbol {s!r} in alphabet")
            index[s] = i
        object.__setattr__(self, "_index", index)

    @classmethod
    def from_symbols(cls, symbols: Iterable) -> "Alphabet":
        """Build an alphabet from an iterable of unique symbols."""
        return cls(tuple(symbols))

    @classmethod
    def binary(cls) -> "Alphabet":
        """The two-symbol alphabet {0, 1} (Huffman bits, Div7)."""
        return cls((0, 1))

    @classmethod
    def ascii(cls, size: int = 128) -> "Alphabet":
        """Single-character alphabet covering code points ``0 .. size-1``."""
        if not 1 <= size <= 0x110000:
            raise ValueError(f"size must be in [1, 0x110000], got {size}")
        return cls(tuple(chr(i) for i in range(size)))

    @classmethod
    def lowercase(cls) -> "Alphabet":
        """The 26 lowercase letters (paper's regex input alphabet)."""
        return cls(tuple(chr(c) for c in range(ord("a"), ord("z") + 1)))

    @property
    def size(self) -> int:
        """Number of symbols (``num_inputs`` in the paper's terminology)."""
        return len(self.symbols)

    def __len__(self) -> int:
        return len(self.symbols)

    def __contains__(self, symbol) -> bool:
        return symbol in self._index

    def id_of(self, symbol) -> int:
        """Dense id of a raw symbol; raises ``KeyError`` if unknown."""
        return self._index[symbol]

    def symbol_of(self, sid: int) -> object:
        """Raw symbol for a dense id."""
        return self.symbols[sid]

    def encode(self, raw: Sequence) -> np.ndarray:
        """Encode a sequence of raw symbols into an ``int32`` id array."""
        try:
            return np.fromiter(
                (self._index[s] for s in raw), dtype=np.int32, count=len(raw)
            )
        except KeyError as exc:
            raise KeyError(f"symbol {exc.args[0]!r} not in alphabet") from None

    def encode_text(self, text: str) -> np.ndarray:
        """Vectorized encoding of a string for character alphabets.

        For contiguous ``chr(0) .. chr(size-1)`` alphabets this is a plain
        dtype view; otherwise falls back to a lookup table over code points.
        """
        codes = np.frombuffer(text.encode("utf-32-le"), dtype=np.uint32).astype(np.int64)
        if self._is_contiguous_chars():
            if codes.size and int(codes.max()) >= self.size:
                bad = chr(int(codes[codes >= self.size][0]))
                raise KeyError(f"symbol {bad!r} not in alphabet")
            return codes.astype(np.int32)
        lut = np.full(0x110000, -1, dtype=np.int32)
        for i, s in enumerate(self.symbols):
            if not (isinstance(s, str) and len(s) == 1):
                raise TypeError("encode_text requires a single-character alphabet")
            lut[ord(s)] = i
        out = lut[codes]
        if out.size and int(out.min()) < 0:
            bad = chr(int(codes[out < 0][0]))
            raise KeyError(f"symbol {bad!r} not in alphabet")
        return out

    def decode(self, ids: np.ndarray) -> list:
        """Raw symbols for an array of ids."""
        return [self.symbols[int(i)] for i in np.asarray(ids)]

    def decode_text(self, ids: np.ndarray) -> str:
        """Decode ids to a string for single-character alphabets."""
        return "".join(str(self.symbols[int(i)]) for i in np.asarray(ids))

    def _is_contiguous_chars(self) -> bool:
        return all(
            isinstance(s, str) and len(s) == 1 and ord(s) == i
            for i, s in enumerate(self.symbols)
        )
