"""Alphabet: bidirectional mapping between raw symbols and dense symbol ids.

The execution engine works on dense ``uint8``/``int32`` symbol-id arrays
(``0 .. num_inputs-1``). Applications map their raw inputs (characters, bits,
bytes) into that space once, up front — this is the analog of the paper's
assumption that inputs are preprocessed into transition-table column indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Alphabet",
    "AlphabetCompaction",
    "JointCompaction",
    "compact_alphabet",
    "compact_alphabet_joint",
]


@dataclass(frozen=True)
class Alphabet:
    """A finite input alphabet with dense integer ids.

    Parameters
    ----------
    symbols:
        The raw symbols in id order; ``symbols[i]`` has id ``i``. Symbols must
        be hashable and unique.
    """

    symbols: tuple = ()
    _index: dict = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        index = {}
        for i, s in enumerate(self.symbols):
            if s in index:
                raise ValueError(f"duplicate symbol {s!r} in alphabet")
            index[s] = i
        object.__setattr__(self, "_index", index)

    @classmethod
    def from_symbols(cls, symbols: Iterable) -> "Alphabet":
        """Build an alphabet from an iterable of unique symbols."""
        return cls(tuple(symbols))

    @classmethod
    def binary(cls) -> "Alphabet":
        """The two-symbol alphabet {0, 1} (Huffman bits, Div7)."""
        return cls((0, 1))

    @classmethod
    def ascii(cls, size: int = 128) -> "Alphabet":
        """Single-character alphabet covering code points ``0 .. size-1``."""
        if not 1 <= size <= 0x110000:
            raise ValueError(f"size must be in [1, 0x110000], got {size}")
        return cls(tuple(chr(i) for i in range(size)))

    @classmethod
    def lowercase(cls) -> "Alphabet":
        """The 26 lowercase letters (paper's regex input alphabet)."""
        return cls(tuple(chr(c) for c in range(ord("a"), ord("z") + 1)))

    @property
    def size(self) -> int:
        """Number of symbols (``num_inputs`` in the paper's terminology)."""
        return len(self.symbols)

    def __len__(self) -> int:
        return len(self.symbols)

    def __contains__(self, symbol) -> bool:
        return symbol in self._index

    def id_of(self, symbol) -> int:
        """Dense id of a raw symbol; raises ``KeyError`` if unknown."""
        return self._index[symbol]

    def symbol_of(self, sid: int) -> object:
        """Raw symbol for a dense id."""
        return self.symbols[sid]

    def encode(self, raw: Sequence) -> np.ndarray:
        """Encode a sequence of raw symbols into an ``int32`` id array."""
        try:
            return np.fromiter(
                (self._index[s] for s in raw), dtype=np.int32, count=len(raw)
            )
        except KeyError as exc:
            raise KeyError(f"symbol {exc.args[0]!r} not in alphabet") from None

    def encode_text(self, text: str) -> np.ndarray:
        """Vectorized encoding of a string for character alphabets.

        For contiguous ``chr(0) .. chr(size-1)`` alphabets this is a plain
        dtype view; otherwise falls back to a lookup table over code points.
        """
        codes = np.frombuffer(text.encode("utf-32-le"), dtype=np.uint32).astype(np.int64)
        if self._is_contiguous_chars():
            if codes.size and int(codes.max()) >= self.size:
                bad = chr(int(codes[codes >= self.size][0]))
                raise KeyError(f"symbol {bad!r} not in alphabet")
            return codes.astype(np.int32)
        lut = np.full(0x110000, -1, dtype=np.int32)
        for i, s in enumerate(self.symbols):
            if not (isinstance(s, str) and len(s) == 1):
                raise TypeError("encode_text requires a single-character alphabet")
            lut[ord(s)] = i
        out = lut[codes]
        if out.size and int(out.min()) < 0:
            bad = chr(int(codes[out < 0][0]))
            raise KeyError(f"symbol {bad!r} not in alphabet")
        return out

    def decode(self, ids: np.ndarray) -> list:
        """Raw symbols for an array of ids."""
        return [self.symbols[int(i)] for i in np.asarray(ids)]

    def decode_text(self, ids: np.ndarray) -> str:
        """Decode ids to a string for single-character alphabets."""
        return "".join(str(self.symbols[int(i)]) for i in np.asarray(ids))

    def _is_contiguous_chars(self) -> bool:
        return all(
            isinstance(s, str) and len(s) == 1 and ord(s) == i
            for i, s in enumerate(self.symbols)
        )


@dataclass(frozen=True)
class AlphabetCompaction:
    """Equivalence-class compaction of a transition table's symbol axis.

    Two symbols are equivalent when their transition rows are identical —
    they move every state to the same successor, so the machine cannot
    distinguish them. Real tokenizer alphabets collapse dramatically (the
    128-symbol HTML tokenizer has ~a dozen distinct rows; a byte-oriented
    regex DFA collapses 256 columns to the handful of character classes the
    pattern mentions), which shrinks the table the kernels gather from and
    makes m-symbol table powers (:mod:`repro.core.kernels`) affordable.

    Attributes
    ----------
    class_of:
        ``(num_symbols,)`` int32 — dense class id of each raw symbol id.
    table:
        ``(num_classes, num_states)`` int32 — the compacted transition
        table; ``table[class_of[a]] == original_table[a]`` for every
        symbol ``a``.
    num_symbols:
        Size of the original symbol axis.
    """

    class_of: np.ndarray
    table: np.ndarray
    num_symbols: int

    @property
    def num_classes(self) -> int:
        """Number of distinct transition rows (``C`` in the kernel layer)."""
        return int(self.table.shape[0])

    @property
    def num_states(self) -> int:
        """State count of the underlying machine."""
        return int(self.table.shape[1])

    @property
    def compression(self) -> float:
        """``num_symbols / num_classes`` — how much the alphabet collapsed."""
        return self.num_symbols / max(1, self.num_classes)

    def remap(self, symbols: np.ndarray) -> np.ndarray:
        """Map a dense symbol-id array to class ids (one vectorized gather)."""
        return self.class_of[np.asarray(symbols)]


def compact_alphabet(table: np.ndarray) -> AlphabetCompaction:
    """Collapse identical transition rows of ``table`` into symbol classes.

    ``table`` follows the paper's orientation ``(num_symbols, num_states)``.
    The mapping is deterministic: classes are numbered in order of first
    appearance along the symbol axis, so ``class_of`` is stable across runs
    and across processes (the scale-out pool ships it through shared
    memory and workers must agree on ids).
    """
    table = np.ascontiguousarray(np.asarray(table, dtype=np.int32))
    if table.ndim != 2:
        raise ValueError(f"table must be 2-D (num_symbols, num_states), got {table.shape}")
    num_symbols = table.shape[0]
    _, first_idx, inverse = np.unique(
        table, axis=0, return_index=True, return_inverse=True
    )
    # np.unique orders classes by row content; renumber by first appearance
    # so the mapping does not depend on the lexicographic order of rows.
    order = np.argsort(first_idx, kind="stable")
    rank = np.empty_like(order)
    rank[order] = np.arange(order.size)
    class_of = rank[inverse].astype(np.int32).ravel()
    class_table = np.ascontiguousarray(table[np.sort(first_idx)])
    return AlphabetCompaction(
        class_of=class_of, table=class_table, num_symbols=int(num_symbols)
    )


@dataclass(frozen=True)
class JointCompaction:
    """Cross-pattern equivalence-class compaction of several tables at once.

    Two symbols are *jointly* equivalent when their transition rows are
    identical in **every** pattern's table — no machine in the group can
    distinguish them, so a single ``class_of`` remap of the shared stream
    feeds all patterns. Joint classes are coarser than the per-pattern
    optimum but are computed once, and the remapped stream is read once for
    the whole group (the multi-pattern engine's one-pass guarantee).

    Attributes
    ----------
    class_of:
        ``(num_symbols,)`` int32 — dense joint class id of each symbol.
    tables:
        One ``(num_classes, S_p)`` int32 class table per pattern;
        ``tables[p][class_of[a]] == original_tables[p][a]`` for every
        symbol ``a``.
    num_symbols:
        Size of the original (shared) symbol axis.
    """

    class_of: np.ndarray
    tables: tuple
    num_symbols: int

    @property
    def num_patterns(self) -> int:
        """Number of patterns compacted together (``P``)."""
        return len(self.tables)

    @property
    def num_classes(self) -> int:
        """Number of joint symbol classes (``C``)."""
        return int(self.tables[0].shape[0]) if self.tables else 0

    @property
    def state_counts(self) -> tuple:
        """Per-pattern state counts ``S_p`` (ragged groups allowed)."""
        return tuple(int(t.shape[1]) for t in self.tables)

    @property
    def compression(self) -> float:
        """``num_symbols / num_classes`` for the joint classes."""
        return self.num_symbols / max(1, self.num_classes)

    def remap(self, symbols: np.ndarray) -> np.ndarray:
        """Map a dense symbol-id array to joint class ids (one gather)."""
        return self.class_of[np.asarray(symbols)]

    def padded_table(self) -> np.ndarray:
        """The ``(P, C, S_max)`` padded 3-D view of the group's tables.

        Ragged patterns are padded with self-loops on the unused states,
        which are unreachable from any real state; the batched kernels use
        the equivalent block-diagonal stacked-union layout instead (no
        padding), so this view exists for inspection, sizing, and the
        native P-loop documentation.
        """
        p = self.num_patterns
        c = self.num_classes
        s_max = max(self.state_counts) if self.tables else 0
        out = np.empty((p, c, s_max), dtype=np.int32)
        for i, t in enumerate(self.tables):
            out[i, :, : t.shape[1]] = t
            out[i, :, t.shape[1]:] = np.arange(t.shape[1], s_max, dtype=np.int32)
        return out


def compact_alphabet_joint(tables: Sequence[np.ndarray]) -> JointCompaction:
    """Joint equivalence-class compaction across a group of tables.

    All tables must share the symbol axis (``(num_symbols, S_p)`` each,
    ragged ``S_p`` allowed). Equivalent to :func:`compact_alphabet` on the
    tables concatenated along the state axis: symbols collapse only when
    every pattern agrees, and class ids keep the same deterministic
    first-appearance numbering (the scale-out pool ships ``class_of``
    through shared memory, so workers must agree on ids).
    """
    if not tables:
        raise ValueError("joint compaction of zero tables")
    mats = [np.ascontiguousarray(np.asarray(t, dtype=np.int32)) for t in tables]
    num_symbols = mats[0].shape[0]
    for t in mats:
        if t.ndim != 2:
            raise ValueError(
                f"tables must be 2-D (num_symbols, num_states), got {t.shape}"
            )
        if t.shape[0] != num_symbols:
            raise ValueError(
                f"tables disagree on num_symbols: {t.shape[0]} != {num_symbols}"
            )
    stacked = np.concatenate(mats, axis=1)
    comp = compact_alphabet(stacked)
    offs = np.concatenate([[0], np.cumsum([t.shape[1] for t in mats])])
    per = tuple(
        np.ascontiguousarray(comp.table[:, offs[i]: offs[i + 1]])
        for i in range(len(mats))
    )
    return JointCompaction(
        class_of=comp.class_of, tables=per, num_symbols=int(num_symbols)
    )
