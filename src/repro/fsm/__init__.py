"""Finite-state machine substrate.

This subpackage provides the deterministic/non-deterministic automata that
everything else builds on:

* :class:`repro.fsm.dfa.DFA` — dense-transition-table DFA (optionally a Mealy
  transducer via an emission table), the object consumed by the speculative
  execution engine.
* :class:`repro.fsm.nfa.NFA` and :func:`repro.fsm.subset.subset_construction`
  — NFAs and their determinization (the regex pipeline uses these).
* :func:`repro.fsm.minimize.minimize_dfa` — Hopcroft minimization.
* :mod:`repro.fsm.analysis` — state-frequency and convergence analysis
  (Figure 5 of the paper and the hot-state cache heuristics).
* :mod:`repro.fsm.run` — trusted sequential reference runners.
"""

from repro.fsm.alphabet import Alphabet
from repro.fsm.analysis import (
    dynamic_state_frequency,
    reachable_states,
    state_convergence,
    static_state_frequency,
    stationary_distribution,
)
from repro.fsm.bitset_nfa import BitsetNFA
from repro.fsm.dfa import DFA
from repro.fsm.minimize import minimize_dfa
from repro.fsm.nfa import NFA
from repro.fsm.product import ProductDFA, product_dfa
from repro.fsm.run import (
    run_all_starts,
    run_reference,
    run_reference_trace,
    run_segment,
)
from repro.fsm.serialization import load_dfa, save_dfa
from repro.fsm.subset import subset_construction

__all__ = [
    "Alphabet",
    "BitsetNFA",
    "DFA",
    "NFA",
    "ProductDFA",
    "dynamic_state_frequency",
    "load_dfa",
    "product_dfa",
    "save_dfa",
    "minimize_dfa",
    "reachable_states",
    "run_all_starts",
    "run_reference",
    "run_reference_trace",
    "run_segment",
    "state_convergence",
    "static_state_frequency",
    "stationary_distribution",
    "subset_construction",
]
