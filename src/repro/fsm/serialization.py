"""DFA persistence: save/load machines as ``.npz`` archives.

Compiled machines (regex DFAs, Huffman decoders, tokenizers) are build
artifacts worth caching — the paper's code generator similarly treats the
transition table as a precompiled input. The format is a plain NumPy
archive: dense arrays plus a small JSON metadata blob, so files are
portable and inspectable.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.fsm.alphabet import Alphabet
from repro.fsm.dfa import DFA

__all__ = ["save_dfa", "load_dfa"]

_FORMAT_VERSION = 1


def save_dfa(dfa: DFA, path: str | Path) -> None:
    """Write ``dfa`` to ``path`` (a ``.npz`` archive)."""
    meta = {
        "format_version": _FORMAT_VERSION,
        "start": int(dfa.start),
        "name": dfa.name,
        "state_names": list(dfa.state_names) if dfa.state_names else None,
        "alphabet": None,
    }
    if dfa.alphabet is not None:
        try:
            json.dumps(list(dfa.alphabet.symbols))
            meta["alphabet"] = list(dfa.alphabet.symbols)
        except TypeError as exc:
            raise ValueError(
                "alphabet symbols must be JSON-serializable to save"
            ) from exc
    arrays = {
        "table": dfa.table,
        "accepting": dfa.accepting,
        "meta": np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    }
    if dfa.emit is not None:
        arrays["emit"] = dfa.emit
    np.savez_compressed(Path(path), **arrays)


def load_dfa(path: str | Path) -> DFA:
    """Read a DFA previously written by :func:`save_dfa`."""
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported DFA file version {meta.get('format_version')!r}"
            )
        alphabet = None
        if meta["alphabet"] is not None:
            # JSON round-trips tuples as lists; symbols are scalars/strings.
            alphabet = Alphabet.from_symbols(meta["alphabet"])
        return DFA(
            table=data["table"],
            start=meta["start"],
            accepting=data["accepting"],
            alphabet=alphabet,
            emit=data["emit"] if "emit" in data.files else None,
            name=meta["name"],
            state_names=tuple(meta["state_names"]) if meta["state_names"] else (),
        )
