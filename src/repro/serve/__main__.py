"""Runnable serving demo: ``python -m repro.serve --demo``.

Spins up an in-process :class:`repro.serve.FSMServer`, registers three
tenants over two distinct machines (``alpha`` and ``gamma`` share the
``div7`` DFA — one machine state serves both), fires a Zipf-skewed burst
of concurrent requests through :class:`repro.serve.ServeClient`, verifies
every response bit-exactly against the sequential reference runner, and
prints throughput, latency percentiles, and the ``serve.*`` counter
catalog. The walkthrough in ``docs/SERVING.md`` narrates the output.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time

import numpy as np

from repro.apps.registry import get_application
from repro.fsm.run import run_segment
from repro.serve.client import ServeClient, zipf_workload
from repro.serve.server import FSMServer, ServeConfig


def _percentile(xs: list[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sample."""
    return float(np.percentile(np.asarray(xs), q))


async def _demo(args: argparse.Namespace) -> int:
    """Run the demo; returns a process exit code (0 = verified)."""
    div7_dfa, div7_corpus = get_application("div7").build_instance(
        args.items, seed=1
    )
    regex_dfa, regex_corpus = get_application("regex1").build_instance(
        args.items, seed=2
    )

    server = FSMServer(
        ServeConfig(
            executor=args.executor,
            max_queue_depth=max(1024, 2 * args.requests),
            round_budget_items=1 << 16,
            chunk_items=1 << 12,
        )
    )
    # alpha and gamma share the div7 machine: registering both builds the
    # prior/kernel plan (and pool, under --executor pool) exactly once.
    tenants = {
        "alpha": server.register_tenant("alpha", div7_dfa, weight=2.0),
        "beta": server.register_tenant("beta", regex_dfa),
        "gamma": server.register_tenant("gamma", div7_dfa),
    }
    corpora = {
        "alpha": div7_corpus,
        "beta": regex_corpus,
        "gamma": div7_corpus,
    }
    workload = zipf_workload(
        corpora,
        num_requests=args.requests,
        mean_items=args.mean_items,
        seed=args.seed,
    )

    await server.start()
    clients = {n: ServeClient(server, t) for n, t in tenants.items()}
    t0 = time.perf_counter()
    responses = await asyncio.gather(
        *(clients[w.tenant].match(w.symbols) for w in workload)
    )
    elapsed = time.perf_counter() - t0
    await server.close()

    bad = 0
    for w, r in zip(workload, responses):
        if r.status != "ok":
            bad += 1
            continue
        dfa = div7_dfa if w.tenant in ("alpha", "gamma") else regex_dfa
        if r.final_state != run_segment(dfa, w.symbols, dfa.start):
            bad += 1
    ok = [r for r in responses if r.status == "ok"]
    total_items = sum(r.items for r in ok)
    lat = [r.queue_wait_s + r.service_s for r in ok]

    print(f"serving demo: executor={args.executor}")
    print(
        f"  {len(ok)}/{len(responses)} requests ok, "
        f"{total_items} items in {elapsed:.3f}s "
        f"({len(ok) / elapsed:.0f} req/s, {total_items / elapsed / 1e6:.1f} Mitems/s)"
    )
    if lat:
        print(
            f"  latency p50={_percentile(lat, 50) * 1e3:.1f}ms "
            f"p99={_percentile(lat, 99) * 1e3:.1f}ms"
        )
    print("  serve.* counters:")
    for name, value in sorted(server.trace.counters_with_prefix("serve.").items()):
        print(f"    {name} = {value}")
    if bad:
        print(f"  VERIFY FAILED: {bad} mismatching/shed responses")
        return 1
    print("  verified: every response bit-exact vs the reference runner")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    ap = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="multi-tenant FSM serving demo",
    )
    ap.add_argument(
        "--demo", action="store_true", help="run the serving walkthrough"
    )
    ap.add_argument("--requests", type=int, default=200)
    ap.add_argument("--items", type=int, default=1 << 17, help="corpus size")
    ap.add_argument("--mean-items", type=int, default=4096)
    ap.add_argument(
        "--executor", choices=("inline", "pool"), default="inline"
    )
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args(argv)
    if not args.demo:
        ap.print_help()
        return 2
    return asyncio.run(_demo(args))


if __name__ == "__main__":
    sys.exit(main())
