"""Client-side convenience: awaitable handles and multi-tenant workloads.

:class:`ServeClient` is the thin per-tenant wrapper callers use instead
of juggling :class:`repro.serve.server.Tenant` handles by hand.
:func:`zipf_workload` builds the skewed multi-tenant request stream the
demo (``python -m repro.serve --demo``), the serving benchmark
(``benchmarks/bench_serving.py``), and the tests all share: tenant
popularity is Zipf-distributed (a few hot tenants dominate, a long tail
trickles), and each request is a random window of its tenant's corpus so
request sizes vary while results stay checkable against the reference
runner.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serve.server import FSMServer, ServeResponse, Tenant

__all__ = ["ServeClient", "WorkloadRequest", "zipf_workload"]


class ServeClient:
    """One tenant's handle on a running :class:`FSMServer`.

    Purely a convenience binding — it adds no queueing or state of its
    own, so any number of concurrent coroutines may share one client.
    """

    def __init__(self, server: FSMServer, tenant: Tenant) -> None:
        self.server = server
        self.tenant = tenant

    async def match(
        self,
        symbols: np.ndarray,
        *,
        deadline_s: float | None = None,
        request_id: str | None = None,
    ) -> ServeResponse:
        """Submit one job for this tenant and await its response."""
        return await self.server.submit(
            self.tenant,
            symbols,
            deadline_s=deadline_s,
            request_id=request_id,
        )

    async def run_many(
        self,
        jobs: list[np.ndarray],
        *,
        deadline_s: float | None = None,
    ) -> list[ServeResponse]:
        """Submit ``jobs`` concurrently; responses in submission order."""
        import asyncio

        return list(
            await asyncio.gather(
                *(self.match(x, deadline_s=deadline_s) for x in jobs)
            )
        )


@dataclass(frozen=True)
class WorkloadRequest:
    """One generated request: which tenant sends which symbol window."""

    tenant: str
    symbols: np.ndarray


def zipf_workload(
    tenant_corpora: dict[str, np.ndarray],
    *,
    num_requests: int,
    mean_items: int,
    alpha: float = 1.2,
    seed: int = 0,
) -> list[WorkloadRequest]:
    """Generate a Zipf-skewed multi-tenant request stream.

    Tenants (in ``tenant_corpora`` insertion order) get Zipf(``alpha``)
    popularity — tenant ranked ``r`` is chosen proportionally to
    ``1/(r+1)**alpha`` — and each request is a random window of the
    chosen tenant's corpus with mean length ``mean_items`` (uniform in
    ``[1, 2*mean_items]``, clamped to the corpus). Deterministic in
    ``seed``.
    """
    if not tenant_corpora:
        raise ValueError("tenant_corpora must not be empty")
    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    if mean_items < 1:
        raise ValueError(f"mean_items must be >= 1, got {mean_items}")
    rng = np.random.default_rng(seed)
    names = list(tenant_corpora)
    pop = 1.0 / np.arange(1, len(names) + 1, dtype=np.float64) ** alpha
    pop /= pop.sum()
    picks = rng.choice(len(names), size=num_requests, p=pop)
    out = []
    for t in picks:
        corpus = tenant_corpora[names[t]]
        n = min(int(rng.integers(1, 2 * mean_items + 1)), corpus.size)
        lo = int(rng.integers(0, corpus.size - n + 1)) if corpus.size > n else 0
        out.append(
            WorkloadRequest(tenant=names[t], symbols=corpus[lo : lo + n])
        )
    return out
