"""Client-side convenience: awaitable handles and multi-tenant workloads.

:class:`ServeClient` is the thin per-tenant wrapper callers use instead
of juggling :class:`repro.serve.server.Tenant` handles by hand.
:func:`zipf_workload` builds the skewed multi-tenant request stream the
demo (``python -m repro.serve --demo``), the serving benchmark
(``benchmarks/bench_serving.py``), and the tests all share: tenant
popularity is Zipf-distributed (a few hot tenants dominate, a long tail
trickles), and each request is a random window of its tenant's corpus so
request sizes vary while results stay checkable against the reference
runner.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass

import numpy as np

from repro.serve.server import FSMServer, ServeResponse, Tenant

__all__ = [
    "ServeClient",
    "ServeTimeoutError",
    "WorkloadRequest",
    "zipf_workload",
]


class ServeTimeoutError(TimeoutError):
    """A client request exceeded ``timeout_s`` on every allowed attempt.

    Carries enough context to log usefully: which tenant, how many
    attempts were made, and the per-attempt budget that was blown.
    """

    def __init__(self, tenant: str, attempts: int, timeout_s: float) -> None:
        self.tenant = tenant
        self.attempts = attempts
        self.timeout_s = timeout_s
        super().__init__(
            f"request for tenant {tenant!r} timed out after {attempts} "
            f"attempt(s) of {timeout_s}s each"
        )


class ServeClient:
    """One tenant's handle on a running :class:`FSMServer`.

    Purely a convenience binding plus client-side robustness: an
    optional per-request timeout and bounded retry with jittered
    exponential backoff. It adds no queueing or state of its own, so any
    number of concurrent coroutines may share one client.
    """

    def __init__(self, server: FSMServer, tenant: Tenant) -> None:
        self.server = server
        self.tenant = tenant
        self._rng = random.Random(hash(tenant.name) & 0xFFFFFFFF)

    async def match(
        self,
        symbols: np.ndarray,
        *,
        deadline_s: float | None = None,
        request_id: str | None = None,
        timeout_s: float | None = None,
        max_retries: int = 0,
        backoff_base_s: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_jitter: float = 0.25,
    ) -> ServeResponse:
        """Submit one job for this tenant and await its response.

        Without ``timeout_s`` the await is unbounded (the server's own
        deadline accounting still applies). With it, each attempt gets
        ``timeout_s`` seconds; on expiry the client retries up to
        ``max_retries`` more times, sleeping
        ``backoff_base_s * backoff_factor**attempt`` (± ``backoff_jitter``
        as a fraction, never negative) between attempts, then raises
        :class:`ServeTimeoutError`. Retried attempts are fresh
        submissions — admission control sees each one anew, and a shed
        response is returned (not retried: shedding is an answer, not a
        failure).
        """
        attempts = max(1, int(max_retries) + 1)
        for attempt in range(attempts):
            coro = self.server.submit(
                self.tenant,
                symbols,
                deadline_s=deadline_s,
                request_id=request_id,
            )
            if timeout_s is None:
                return await coro
            try:
                return await asyncio.wait_for(coro, timeout=timeout_s)
            except asyncio.TimeoutError:
                self.server.trace.count("serve.client_timeouts", 1)
                if attempt + 1 >= attempts:
                    raise ServeTimeoutError(
                        self.tenant.name, attempts, timeout_s
                    ) from None
                self.server.trace.count("serve.client_retries", 1)
                delay = backoff_base_s * (backoff_factor ** attempt)
                jitter = 1.0 + backoff_jitter * (2 * self._rng.random() - 1)
                await asyncio.sleep(max(0.0, delay * jitter))
        raise AssertionError("unreachable")  # pragma: no cover

    async def run_many(
        self,
        jobs: list[np.ndarray],
        *,
        deadline_s: float | None = None,
    ) -> list[ServeResponse]:
        """Submit ``jobs`` concurrently; responses in submission order."""
        return list(
            await asyncio.gather(
                *(self.match(x, deadline_s=deadline_s) for x in jobs)
            )
        )


@dataclass(frozen=True)
class WorkloadRequest:
    """One generated request: which tenant sends which symbol window."""

    tenant: str
    symbols: np.ndarray


def zipf_workload(
    tenant_corpora: dict[str, np.ndarray],
    *,
    num_requests: int,
    mean_items: int,
    alpha: float = 1.2,
    seed: int = 0,
) -> list[WorkloadRequest]:
    """Generate a Zipf-skewed multi-tenant request stream.

    Tenants (in ``tenant_corpora`` insertion order) get Zipf(``alpha``)
    popularity — tenant ranked ``r`` is chosen proportionally to
    ``1/(r+1)**alpha`` — and each request is a random window of the
    chosen tenant's corpus with mean length ``mean_items`` (uniform in
    ``[1, 2*mean_items]``, clamped to the corpus). Deterministic in
    ``seed``.
    """
    if not tenant_corpora:
        raise ValueError("tenant_corpora must not be empty")
    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    if mean_items < 1:
        raise ValueError(f"mean_items must be >= 1, got {mean_items}")
    rng = np.random.default_rng(seed)
    names = list(tenant_corpora)
    pop = 1.0 / np.arange(1, len(names) + 1, dtype=np.float64) ** alpha
    pop /= pop.sum()
    picks = rng.choice(len(names), size=num_requests, p=pop)
    out = []
    for t in picks:
        corpus = tenant_corpora[names[t]]
        n = min(int(rng.integers(1, 2 * mean_items + 1)), corpus.size)
        lo = int(rng.integers(0, corpus.size - n + 1)) if corpus.size > n else 0
        out.append(
            WorkloadRequest(tenant=names[t], symbols=corpus[lo : lo + n])
        )
    return out
