"""Round carving: turn selected requests into one bounded chunk batch.

Continuous batching executes *slices*, not whole requests: every round
the server takes the scheduler's selection (requests sharing one DFA),
carves each down to a bounded number of symbols, and runs the carved
segments as a single coalesced batch
(:func:`repro.core.engine.run_speculative_batch` in-process, or
:meth:`repro.core.mp_executor.ScaleoutPool.run_batch` on the shared
pool). A request longer than its slice carries its end state into the
next round — by then new arrivals have joined the queue, so the *next*
round's batch is re-formed from scratch: that re-forming between
speculate/merge/re-exec rounds is what makes the batching continuous
rather than drain-then-refill.

The item budget bounds round latency: one enormous request cannot hold
every rider hostage for its full length, and admission-critical
responses (shed, deadline) stay responsive because rounds stay short.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.scheduler import QueuedRequest

__all__ = ["RoundPlan", "carve_round"]


@dataclass
class RoundPlan:
    """One executable round: request slices over a single shared DFA.

    ``entries`` pairs each selected request with the number of symbols of
    it this round executes (``take <= request.remaining``). ``fingerprint``
    is the shared machine's identity; ``total_items`` the round's summed
    slice sizes.
    """

    entries: list[tuple[QueuedRequest, int]]
    fingerprint: str
    total_items: int

    @property
    def num_requests(self) -> int:
        """Requests riding this round."""
        return len(self.entries)


def carve_round(
    selected: list[QueuedRequest],
    *,
    budget_items: int,
    chunk_items: int,
) -> RoundPlan:
    """Slice the selected requests to fit the round's item budget.

    Every request gets an equal share of ``budget_items`` (never below
    ``chunk_items`` — a slice smaller than one chunk would just add
    per-round overhead without adding parallelism), clamped to what the
    request still has left. Requests whose remainder exceeds their share
    are carved and will be re-queued by the server after the round.
    """
    if not selected:
        raise ValueError("cannot carve an empty round")
    if budget_items < 1:
        raise ValueError(f"budget_items must be >= 1, got {budget_items}")
    share = max(chunk_items, -(-budget_items // len(selected)))
    entries = []
    total = 0
    for req in selected:
        take = min(req.remaining, share)
        entries.append((req, take))
        total += take
    return RoundPlan(
        entries=entries,
        fingerprint=selected[0].fingerprint,
        total_items=total,
    )
