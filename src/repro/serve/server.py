"""The asyncio FSM serving front-end: tenants, admission, round loop.

:class:`FSMServer` accepts thousands of concurrent match jobs from many
tenants and turns them into coalesced batch executions:

* **Tenant registration** (:meth:`FSMServer.register_tenant`) resolves a
  tenant's DFA to a shared :class:`_MachineState` keyed by
  :func:`repro.core.predictor.dfa_fingerprint` — the state prior, the
  autotuned kernel plan, the measured-and-compiled native kernel
  (:mod:`repro.core.native`, ``ServeConfig.backend``), and (under the
  pool executor) the publish-once shared-memory
  :class:`repro.core.mp_executor.ScaleoutPool` are built once per
  *machine*, not per tenant, so two tenants serving the same regex share
  everything — including the compile.
* **Admission + scheduling** rides
  :class:`repro.serve.scheduler.WeightedFairScheduler`: bounded queue
  depths shed excess load as explicit ``status="shed"`` responses, WFQ
  keeps tenants at their weighted shares, and requests about to miss
  their deadline jump the fair order (EDF), with the predicted service
  time coming from PR 4's :class:`repro.core.resilience.DeadlineModel`
  over the server's measured throughput.
* **Continuous chunk-level batching**: the single ``_batch_loop`` task
  repeatedly asks the scheduler for the next round (requests sharing one
  DFA), carves each request to the round's item budget
  (:func:`repro.serve.batcher.carve_round`), and executes the slices as
  one seeded batch — :func:`repro.core.engine.run_speculative_batch`
  in-process or :meth:`repro.core.mp_executor.ScaleoutPool.run_batch` on
  the shared pool. Unfinished requests re-queue with their carried state
  and the *next* round is re-formed from scratch, so new arrivals join
  between speculate/merge/re-exec rounds instead of waiting for a drain.

Rounds execute in a worker thread (``asyncio.to_thread``) so the event
loop keeps admitting, shedding, and timing requests while numpy crunches.
All ``serve.*`` spans/counters land on the server's own
:class:`repro.obs.RunTrace` (catalog in ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.autotune import choose_backend
from repro.core.engine import run_speculative_batch
from repro.core.faultinject import FaultPlan
from repro.core.kernels import KernelPlan, plan_kernel
from repro.core.lookback import state_prior
from repro.core.native import NativeKernel, load_native_plan
from repro.core.mp_executor import ScaleoutPool
from repro.core.predictor import dfa_fingerprint
from repro.core.resilience import DeadlineModel
from repro.dist.agent import LocalCluster
from repro.dist.coordinator import DistConfig, ShardCoordinator
from repro.fsm.dfa import DFA
from repro.obs.trace import RunTrace
from repro.serve.batcher import RoundPlan, carve_round
from repro.serve.scheduler import QueuedRequest, WeightedFairScheduler

__all__ = ["FSMServer", "ServeConfig", "ServeResponse", "Tenant"]


@dataclass(frozen=True)
class ServeConfig:
    """Operator knobs of one :class:`FSMServer`.

    Attributes
    ----------
    max_queue_depth, max_tenant_queue_depth:
        Admission-control bounds; a request past either is shed with an
        explicit response instead of queued (see ``docs/SERVING.md``).
    max_batch_requests:
        Most requests one round may coalesce.
    round_budget_items:
        Target symbols per round; long requests are carved to an equal
        share of it and continue in later rounds (continuous batching).
    chunk_items:
        Chunk length inside a batch — the coalescing granularity (and
        the smallest useful per-round slice of a request).
    k, lookback:
        Speculation width and look-back window for batch execution.
    executor:
        ``"inline"`` — rounds run :func:`repro.core.engine.run_speculative_batch`
        in a worker thread of this process; ``"pool"`` — rounds run on a
        per-machine shared :class:`repro.core.mp_executor.ScaleoutPool`
        (worker processes, supervision, degraded fallback); ``"dist"`` —
        rounds run on a per-machine
        :class:`repro.dist.coordinator.ShardCoordinator` over
        ``dist_hosts`` (or an owned loopback cluster of ``dist_agents``
        agents when no hosts are given), with cross-host supervision and
        the full degrade ladder behind every round.
    pool_workers:
        Worker-process count per machine pool (``executor="pool"``).
    dist_hosts:
        ``executor="dist"``: agent ``(host, port)`` addresses to shard
        across. Empty — the server owns a loopback
        :class:`repro.dist.agent.LocalCluster` per machine.
    dist_agents:
        Loopback agent count when ``dist_hosts`` is empty.
    backend:
        Hot-path implementation per machine: ``"auto"`` (default —
        at registration time, compile the native kernel and *measure* it
        against the NumPy path on a synthetic probe, keeping whichever
        wins), ``"native"`` (compile unconditionally, NumPy only when
        compilation is impossible), or ``"numpy"`` (never compile). All
        native work happens in :meth:`FSMServer.register_tenant` — off
        the request path — and is shared across tenants of one machine.
    pool_fault_plan:
        Deterministic fault injection forwarded to each machine pool —
        the serving failure drills reuse :mod:`repro.core.faultinject`.
    deadline_model:
        PR 4's :class:`repro.core.resilience.DeadlineModel`, used to
        predict a request's service time for EDF urgency (over the
        server's measured items/sec) and, under the pool executor, to cap
        worker-task deadlines at the tightest request slack in the round.
    """

    max_queue_depth: int = 1024
    max_tenant_queue_depth: int = 256
    max_batch_requests: int = 64
    round_budget_items: int = 1 << 18
    chunk_items: int = 1 << 13
    k: int | None = 4
    lookback: int = 8
    executor: str = "inline"
    pool_workers: int = 4
    dist_hosts: tuple = ()
    dist_agents: int = 2
    backend: str = "auto"
    pool_fault_plan: FaultPlan | None = None
    deadline_model: DeadlineModel = field(
        default_factory=lambda: DeadlineModel(
            floor_s=0.05, bytes_per_sec_floor=2e6, safety_factor=4.0
        )
    )


@dataclass
class ServeResponse:
    """What a caller gets back for one submitted request.

    ``status`` is ``"ok"`` (executed; ``final_state``/``accepted`` are
    exactly what running the request alone would produce) or ``"shed"``
    (admission control refused it; ``shed_reason`` says which bound and
    no execution happened). ``deadline_missed`` reports — it does not
    cancel: a late request still completes exactly. ``degraded`` means at
    least one of the request's rounds fell back to in-process execution
    after pool supervision gave up (the result is still exact).
    """

    status: str
    tenant: str
    request_id: str
    final_state: int = -1
    accepted: bool = False
    items: int = 0
    queue_wait_s: float = 0.0
    service_s: float = 0.0
    rounds: int = 0
    batch_requests: int = 0
    deadline_missed: bool = False
    degraded: bool = False
    shed_reason: str = ""


@dataclass
class _GroupInfo:
    """Multi-pattern group shared by several tenants (one round, one pass).

    ``stack`` is the group's block-diagonal union
    (:class:`repro.core.multipattern.MachineStack`, built once at
    registration); ``pattern_of`` maps each member tenant's name to its
    pattern column in the stack.
    """

    stack: object
    pattern_of: dict


@dataclass
class _MachineState:
    """Everything shareable across tenants serving the same DFA."""

    dfa: DFA
    fingerprint: str
    prior: np.ndarray
    kplan: KernelPlan
    pool: ScaleoutPool | None = None
    native: NativeKernel | None = None
    coordinator: ShardCoordinator | None = None
    cluster: LocalCluster | None = None
    group: _GroupInfo | None = None


@dataclass(frozen=True)
class Tenant:
    """A registered tenant: a name bound to a (shared) machine."""

    name: str
    fingerprint: str
    weight: float


class FSMServer:
    """Asyncio service layer over the speculative batch engine.

    Typical use::

        server = FSMServer(ServeConfig(executor="inline"))
        t = server.register_tenant("acme", dfa)
        await server.start()
        resp = await server.submit(t, symbols)
        await server.stop()

    :meth:`submit` may be called before :meth:`start` — requests queue
    (and shed past the admission bounds) and drain once the round loop
    starts. One server instance belongs to one event loop.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        trace: RunTrace | None = None,
    ) -> None:
        self.config = config or ServeConfig()
        if self.config.executor not in ("inline", "pool", "dist"):
            raise ValueError(
                f"executor must be 'inline', 'pool', or 'dist', got "
                f"{self.config.executor!r}"
            )
        if self.config.backend not in ("auto", "native", "numpy"):
            raise ValueError(
                f"backend must be 'auto', 'native', or 'numpy', got "
                f"{self.config.backend!r}"
            )
        self.trace = trace if trace is not None else RunTrace("serve")
        self._sched = WeightedFairScheduler(
            max_queue_depth=self.config.max_queue_depth,
            max_tenant_queue_depth=self.config.max_tenant_queue_depth,
            predict_service_s=self._predict_service_s,
        )
        self._machines: dict[str, _MachineState] = {}
        self._tenants: dict[str, Tenant] = {}
        self._work = asyncio.Event()
        self._loop_task: asyncio.Task | None = None
        self._stopping = False
        self._closed = False
        self._seq = 0
        self._items_per_sec: float | None = None

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #

    def register_tenant(
        self,
        name: str,
        dfa: DFA,
        *,
        weight: float = 1.0,
        request_k: int | None = None,
    ) -> Tenant:
        """Register a tenant and build (or share) its machine state.

        The expensive per-machine preparation — state prior, autotuned
        kernel plan, and the publish-once shared-memory pool under the
        pool executor — happens at most once per DFA fingerprint, however
        many tenants register it. ``weight`` sets the tenant's WFQ share.
        """
        if self._closed:
            raise RuntimeError("FSMServer is closed")
        if name in self._tenants:
            raise ValueError(f"tenant {name!r} already registered")
        fp = dfa_fingerprint(dfa)
        ms = self._machines.get(fp)
        if ms is None:
            with self.trace.span(
                "serve.machine_build",
                machine=fp[:12],
                executor=self.config.executor,
            ):
                ms = self._build_machine(dfa, fp)
            self._machines[fp] = ms
            self.trace.count("serve.machines", 1)
        tenant = Tenant(name=name, fingerprint=fp, weight=float(weight))
        self._tenants[name] = tenant
        self._sched.add_tenant(name, weight=weight)
        self.trace.count("serve.tenants", 1)
        return tenant

    def register_group(
        self,
        members,
        *,
        weights=None,
    ) -> tuple:
        """Register several tenants whose DFAs share one input alphabet.

        ``members`` is a sequence of ``(name, dfa)`` pairs over the same
        symbol space. The DFAs are stacked into one block-diagonal union
        (:func:`repro.core.multipattern.stack_machines` — joint alphabet
        compaction, built once here, off the request path) and every
        member tenant's requests coalesce into the **same** rounds: one
        multi-pattern batched pass answers all members' requests
        simultaneously (:func:`repro.core.multipattern.run_multipattern_batch`),
        with each request's carried state threading through successive
        rounds in its own pattern's state space. Group rounds execute
        in-process regardless of ``executor`` (the batched pass is the
        coalescing unit; use :meth:`ScaleoutPool.for_group` directly for
        scaled-out group streams). Returns one :class:`Tenant` per member.
        """
        from repro.core.multipattern import stack_machines

        if self._closed:
            raise RuntimeError("FSMServer is closed")
        members = list(members)
        if not members:
            raise ValueError("register_group of zero members")
        names = [name for name, _ in members]
        for name in names:
            if name in self._tenants:
                raise ValueError(f"tenant {name!r} already registered")
        if len(set(names)) != len(names):
            raise ValueError("duplicate tenant names in group")
        if weights is None:
            weights = [1.0] * len(members)
        if len(weights) != len(members):
            raise ValueError(
                f"{len(weights)} weights for {len(members)} members"
            )
        stack = stack_machines([dfa for _, dfa in members])
        fp = dfa_fingerprint(stack.union_dfa)
        ms = self._machines.get(fp)
        if ms is None or ms.group is None:
            with self.trace.span(
                "serve.group_build", machine=fp[:12],
                patterns=stack.num_patterns,
            ):
                union = stack.union_dfa
                ms = _MachineState(
                    dfa=union,
                    fingerprint=fp,
                    prior=state_prior(union),
                    kplan=plan_kernel(
                        union,
                        chunk_len=self.config.chunk_items,
                        num_chunks=max(
                            1,
                            self.config.round_budget_items
                            // self.config.chunk_items,
                        ),
                        k=min(
                            union.num_states,
                            stack.num_patterns
                            * (self.config.k or union.num_states),
                        ),
                        kernel="auto",
                        compaction=stack.identity_compaction(),
                        amortize_builds=16,
                    ),
                    group=_GroupInfo(stack=stack, pattern_of={}),
                )
            self._machines[fp] = ms
            self.trace.count("serve.machines", 1)
            self.trace.count("serve.groups", 1)
        tenants = []
        for p, ((name, _), weight) in enumerate(zip(members, weights)):
            ms.group.pattern_of[name] = p
            tenant = Tenant(name=name, fingerprint=fp, weight=float(weight))
            self._tenants[name] = tenant
            self._sched.add_tenant(name, weight=float(weight))
            self.trace.count("serve.tenants", 1)
            tenants.append(tenant)
        return tuple(tenants)

    def _build_machine(self, dfa: DFA, fp: str) -> _MachineState:
        """Build the shared per-DFA state (prior, kernel plan, pool)."""
        cfg = self.config
        k_eff = (
            dfa.num_states
            if cfg.k is None or cfg.k >= dfa.num_states
            else cfg.k
        )
        ms = _MachineState(
            dfa=dfa,
            fingerprint=fp,
            prior=state_prior(dfa),
            kplan=plan_kernel(
                dfa,
                chunk_len=cfg.chunk_items,
                num_chunks=max(1, cfg.round_budget_items // cfg.chunk_items),
                k=k_eff,
                kernel="auto",
                amortize_builds=16,
            ),
        )
        ms.native = self._resolve_native(dfa, k_eff, ms.kplan)
        if cfg.executor == "pool":
            ms.pool = ScaleoutPool(
                dfa,
                num_workers=cfg.pool_workers,
                k=cfg.k,
                sub_chunks_per_worker=max(
                    1,
                    cfg.round_budget_items
                    // (cfg.pool_workers * cfg.chunk_items),
                ),
                lookback=cfg.lookback,
                kernel="auto",
                backend="native" if ms.native is not None else "numpy",
                fault_plan=cfg.pool_fault_plan,
            )
        elif cfg.executor == "dist":
            addresses = [tuple(a) for a in cfg.dist_hosts]
            if not addresses:
                ms.cluster = LocalCluster(cfg.dist_agents)
                addresses = ms.cluster.addresses
            ms.coordinator = ShardCoordinator(
                dfa,
                addresses,
                config=DistConfig(
                    k=cfg.k,
                    lookback=cfg.lookback,
                    local_fallback_workers=cfg.pool_workers,
                ),
            )
        return ms

    def _resolve_native(
        self, dfa: DFA, k_eff: int, kplan: KernelPlan
    ) -> NativeKernel | None:
        """Compile (and, under ``"auto"``, measure) the native kernel.

        Runs inside :meth:`register_tenant` — off the request path — so
        request latency never pays a compile. ``"auto"`` keeps the native
        kernel only when a measured probe says it beats the NumPy path
        on this machine; every failure mode (no compiler, native loses,
        smoke-check mismatch) resolves to None and the round loop runs
        NumPy unchanged.
        """
        cfg = self.config
        if cfg.backend == "numpy":
            return None
        if cfg.backend == "native":
            return load_native_plan(dfa, k=k_eff, kplan=kplan)
        rng = np.random.default_rng(0xC0FFEE)
        probe = rng.integers(0, dfa.num_inputs, size=1 << 15, dtype=np.int32)
        choice = choose_backend(
            dfa,
            probe,
            num_chunks=max(4, probe.size // cfg.chunk_items),
            k=k_eff,
            lookback=cfg.lookback,
            probe_items=probe.size,
            repeats=2,
            candidates=("vectorized", "native"),
        )
        self.trace.count("serve.backend_probes", 1)
        if choice.backend != "native":
            return None
        return load_native_plan(dfa, k=k_eff, kplan=kplan)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Launch the round loop on the running event loop."""
        if self._closed:
            raise RuntimeError("FSMServer is closed")
        if self._loop_task is not None:
            return
        self._stopping = False
        self._loop_task = asyncio.get_running_loop().create_task(
            self._batch_loop(), name="repro-serve-batch-loop"
        )

    async def stop(self) -> None:
        """Drain queued requests, stop the round loop, keep machine state.

        Safe to :meth:`start` again afterwards; call :meth:`close` for
        full teardown (pool processes and shared memory).
        """
        if self._loop_task is None:
            return
        self._stopping = True
        self._work.set()
        await self._loop_task
        self._loop_task = None

    async def close(self) -> None:
        """Stop the loop and release every machine's pool resources."""
        await self.stop()
        self._closed = True
        for ms in self._machines.values():
            if ms.pool is not None:
                ms.pool.close()
                ms.pool = None
            if ms.coordinator is not None:
                ms.coordinator.close()
                ms.coordinator = None
            if ms.cluster is not None:
                ms.cluster.close()
                ms.cluster = None

    @property
    def queue_depth(self) -> int:
        """Requests admitted and not yet completed by a round."""
        return self._sched.depth

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #

    def _predict_service_s(self, items: int) -> float:
        """EDF urgency estimate: PR 4's deadline model over measured rate."""
        ips = self._items_per_sec
        itemsize = 4  # input symbols are int32 on the wire
        bps = None if ips is None else ips * itemsize
        return self.config.deadline_model.deadline_s(items * itemsize, bps)

    async def submit(
        self,
        tenant: Tenant | str,
        symbols: np.ndarray,
        *,
        deadline_s: float | None = None,
        request_id: str | None = None,
    ) -> ServeResponse:
        """Submit one match job; resolves when it completes (or sheds).

        ``deadline_s`` is relative to now; it prioritizes (EDF once the
        request is predicted unable to make it) and is reported back as
        ``deadline_missed`` — it never cancels the work. The returned
        ``final_state``/``accepted`` are bit-exact against running the
        request alone.
        """
        if self._closed:
            raise RuntimeError("FSMServer is closed")
        name = tenant.name if isinstance(tenant, Tenant) else tenant
        t = self._tenants.get(name)
        if t is None:
            raise KeyError(f"unknown tenant {name!r}; register_tenant first")
        symbols = np.ascontiguousarray(np.asarray(symbols))
        if symbols.ndim != 1:
            raise ValueError(f"symbols must be 1-D, got shape {symbols.shape}")
        ms = self._machines[t.fingerprint]
        if ms.group is not None:
            # Group requests arrive in the members' shared *raw* symbol
            # space; the round remaps through the joint compaction.
            num_inputs = int(ms.group.stack.joint.num_symbols)
            p = ms.group.pattern_of[name]
            init_state = int(ms.group.stack.machines[p].start)
        else:
            num_inputs = int(ms.dfa.table.shape[0])
            init_state = int(ms.dfa.start)
        if symbols.size and not (
            0 <= int(symbols.min()) and int(symbols.max()) < num_inputs
        ):
            raise ValueError(
                f"symbols out of range for tenant {name!r}: machine expects "
                f"ids in [0, {num_inputs}), got "
                f"[{int(symbols.min())}, {int(symbols.max())}]"
            )
        self._seq += 1
        rid = request_id if request_id is not None else f"{name}-{self._seq}"
        now = time.monotonic()
        req = QueuedRequest(
            tenant=name,
            fingerprint=t.fingerprint,
            request_id=rid,
            symbols=symbols,
            size=int(symbols.size),
            carry_state=init_state,
            deadline_ts=None if deadline_s is None else now + deadline_s,
            enqueue_ts=now,
            future=asyncio.get_running_loop().create_future(),
        )
        if not self._sched.try_enqueue(req):
            reason = (
                f"queue depth {self._sched.depth} at global bound "
                f"{self.config.max_queue_depth}"
                if self._sched.depth >= self.config.max_queue_depth
                else f"tenant {name!r} at queue bound "
                f"{self.config.max_tenant_queue_depth}"
            )
            self.trace.count("serve.shed", 1)
            return ServeResponse(
                status="shed", tenant=name, request_id=rid,
                items=int(symbols.size), shed_reason=reason,
            )
        self.trace.count("serve.submitted", 1)
        self._work.set()
        return await req.future

    # ------------------------------------------------------------------ #
    # the round loop
    # ------------------------------------------------------------------ #

    async def _batch_loop(self) -> None:
        cfg = self.config
        while True:
            await self._work.wait()
            self._work.clear()
            while self._sched.depth:
                selected = self._sched.select_round(
                    max_requests=cfg.max_batch_requests,
                    now=time.monotonic(),
                )
                if not selected:
                    break
                rnd = carve_round(
                    selected,
                    budget_items=cfg.round_budget_items,
                    chunk_items=cfg.chunk_items,
                )
                t0 = time.monotonic()
                with self.trace.span(
                    "serve.round",
                    machine=rnd.fingerprint[:12],
                    requests=rnd.num_requests,
                    items=rnd.total_items,
                ):
                    try:
                        finals, degraded = await asyncio.to_thread(
                            self._execute_round, rnd
                        )
                    except Exception as exc:
                        # A poisoned round must not kill the loop (every
                        # pending future would hang forever) and must not
                        # re-queue (it would poison the next round too):
                        # fail exactly its own riders and keep serving.
                        self._fail_round(rnd, exc)
                        continue
                self._finish_round(rnd, finals, degraded, t0, time.monotonic())
            if self._stopping:
                return

    def _execute_round(
        self, rnd: RoundPlan
    ) -> tuple[np.ndarray, bool]:
        """Run one carved round (worker thread; no scheduler access here)."""
        cfg = self.config
        ms = self._machines[rnd.fingerprint]
        segments = [
            req.symbols[req.offset : req.offset + take]
            for req, take in rnd.entries
        ]
        starts = [req.carry_state for req, _ in rnd.entries]
        if ms.group is not None:
            # One batched multi-pattern round: every member's carry state
            # rides in its own column; the other columns restart from each
            # pattern's start state (they carry no tenant state of their own).
            from repro.core.multipattern import run_multipattern_batch

            stack = ms.group.stack
            cols = [ms.group.pattern_of[req.tenant] for req, _ in rnd.entries]
            starts_mat = np.tile(
                np.array([m.start for m in stack.machines], dtype=np.int32),
                (len(segments), 1),
            )
            for i, (c, st) in enumerate(zip(cols, starts)):
                starts_mat[i, c] = st
            self.trace.count("serve.group_rounds", 1)
            finals_mat, _accepted = run_multipattern_batch(
                stack,
                segments,
                k=cfg.k,
                lookback=cfg.lookback,
                chunk_items=cfg.chunk_items,
                starts=starts_mat,
            )
            finals = np.array(
                [finals_mat[i, c] for i, c in enumerate(cols)], dtype=np.int32
            )
            return finals, False
        if ms.coordinator is not None:
            # Each request's slice runs across the cluster; carried
            # states thread through exactly as in the other executors.
            finals = np.empty(len(segments), dtype=np.int32)
            degraded = False
            for i, (seg, st) in enumerate(zip(segments, starts)):
                dres = ms.coordinator.run(seg, start=st)
                finals[i] = dres.final_state
                degraded |= dres.degraded
            return finals, degraded
        if ms.pool is not None:
            now = time.monotonic()
            slacks = [
                req.deadline_ts - now
                for req, _ in rnd.entries
                if req.deadline_ts is not None
            ]
            res = ms.pool.run_batch(
                segments,
                starts=starts,
                deadline_s=min(slacks) if slacks else None,
            )
            return res.final_states, res.degraded
        res = run_speculative_batch(
            ms.dfa,
            segments,
            starts=starts,
            k=cfg.k,
            lookback=cfg.lookback,
            chunk_items=cfg.chunk_items,
            kernel_plan=ms.kplan,
            prior=ms.prior,
            native=ms.native,
        )
        return res.final_states, False

    def _fail_round(self, rnd: RoundPlan, exc: Exception) -> None:
        """Propagate a round-execution failure to exactly its requests."""
        self.trace.count("serve.round_errors", 1)
        for req, _ in rnd.entries:
            fut = req.future
            if fut is not None and not fut.done():
                fut.set_exception(exc)

    def _finish_round(
        self,
        rnd: RoundPlan,
        finals: np.ndarray,
        degraded: bool,
        t0: float,
        t1: float,
    ) -> None:
        """Fold one round's results back into requests (event-loop side)."""
        obs = self.trace
        obs.count("serve.rounds", 1)
        obs.observe("serve.batch_size", rnd.num_requests)
        obs.observe("serve.round_items", rnd.total_items)
        obs.observe("serve.round_s", t1 - t0)
        if rnd.num_requests > 1:
            obs.count("serve.coalesced", rnd.num_requests - 1)
        if degraded:
            obs.count("serve.degraded_rounds", 1)
        if rnd.total_items and t1 > t0:
            ips = rnd.total_items / (t1 - t0)
            self._items_per_sec = (
                ips
                if self._items_per_sec is None
                else 0.7 * self._items_per_sec + 0.3 * ips
            )
        for (req, take), fin in zip(rnd.entries, finals):
            req.offset += take
            req.carry_state = int(fin)
            req.rounds += 1
            req.batch_peak = max(req.batch_peak, rnd.num_requests)
            req.degraded = req.degraded or degraded
            if req.first_service_ts is None:
                req.first_service_ts = t0
            if req.offset < req.size:
                self._sched.requeue(req)
                continue
            ms = self._machines[req.fingerprint]
            missed = req.deadline_ts is not None and t1 > req.deadline_ts
            if ms.group is not None:
                p = ms.group.pattern_of[req.tenant]
                accepted = bool(
                    ms.group.stack.machines[p].accepting[req.carry_state]
                )
            else:
                accepted = bool(ms.dfa.accepting[req.carry_state])
            resp = ServeResponse(
                status="ok",
                tenant=req.tenant,
                request_id=req.request_id,
                final_state=req.carry_state,
                accepted=accepted,
                items=req.size,
                queue_wait_s=req.first_service_ts - req.enqueue_ts,
                service_s=t1 - req.first_service_ts,
                rounds=req.rounds,
                batch_requests=req.batch_peak,
                deadline_missed=missed,
                degraded=req.degraded,
            )
            obs.count("serve.requests", 1)
            obs.count("serve.items", req.size)
            obs.observe("serve.queue_wait_s", resp.queue_wait_s)
            obs.observe("serve.service_s", resp.service_s)
            if missed:
                obs.count("serve.deadline_miss", 1)
            fut = req.future
            if fut is not None and not fut.done():
                fut.set_result(resp)
