"""Async multi-tenant serving layer with continuous chunk-level batching.

``repro.serve`` turns the batch engine into a service: tenants register
their DFA once (machines are shared by fingerprint — prior, autotuned
kernel plan, and scale-out pool are built once per distinct DFA), then
submit match jobs concurrently. A single round loop continuously
coalesces in-flight requests that share a DFA into one seeded chunk
batch (:func:`repro.core.engine.run_speculative_batch` in-process, or
:meth:`repro.core.mp_executor.ScaleoutPool.run_batch` on worker
processes), with per-tenant weighted-fair queueing, bounded-depth
admission control (explicit shed responses), and deadline-aware EDF
priority. See ``docs/SERVING.md`` for the architecture and
``python -m repro.serve --demo`` for a runnable walkthrough.
"""

from repro.serve.batcher import RoundPlan, carve_round
from repro.serve.client import (
    ServeClient,
    ServeTimeoutError,
    WorkloadRequest,
    zipf_workload,
)
from repro.serve.scheduler import (
    QueuedRequest,
    TenantQueue,
    WeightedFairScheduler,
)
from repro.serve.server import FSMServer, ServeConfig, ServeResponse, Tenant

__all__ = [
    "FSMServer",
    "QueuedRequest",
    "RoundPlan",
    "ServeClient",
    "ServeConfig",
    "ServeResponse",
    "ServeTimeoutError",
    "Tenant",
    "TenantQueue",
    "WeightedFairScheduler",
    "WorkloadRequest",
    "carve_round",
    "zipf_workload",
]
