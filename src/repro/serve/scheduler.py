"""Per-tenant weighted-fair queueing with deadline-aware priority.

The serving layer admits requests from many tenants into one machine's
worth of execution capacity. This module owns *who runs next*:

* **Admission control** — :meth:`WeightedFairScheduler.try_enqueue`
  enforces a global and a per-tenant queue-depth bound; past either, the
  request is refused (the server turns the refusal into a ``shed``
  response instead of letting the queue grow without bound).
* **Weighted fairness** — classic virtual-time WFQ: each request gets a
  *finish tag* ``F = max(V, tenant.last_tag) + size / weight`` at
  enqueue, and the scheduler serves the smallest tag first. A tenant
  with weight 2 drains twice the items per unit of virtual time as a
  weight-1 tenant under contention, and an idle tenant accumulates no
  credit (the ``max(V, ...)`` reset).
* **Deadline-aware priority** — a request whose remaining slack is
  smaller than its *predicted* service time (the server supplies the
  predictor, fed by PR 4's throughput EWMA) becomes *urgent* and
  preempts the fair order, earliest deadline first. Fairness is the
  steady-state policy; EDF is the escape hatch for requests about to
  blow their deadline.

The scheduler is synchronous and deterministic — all asyncio lives in
:mod:`repro.serve.server` — so priority ordering is unit-testable without
an event loop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["QueuedRequest", "TenantQueue", "WeightedFairScheduler"]


@dataclass
class QueuedRequest:
    """One admitted request, as the scheduler sees it.

    ``symbols``/``carry_state``/``offset``/``future`` belong to the server
    (the scheduler never touches them); the scheduler reads ``tenant``,
    ``fingerprint``, ``remaining``, ``deadline_ts``, and writes
    ``finish_tag`` at admission. ``offset`` advances as continuous
    batching executes the request slice by slice, so ``remaining`` shrinks
    across rounds while the finish tag (assigned from the *full* size at
    enqueue) keeps the request's fair-share position stable.
    """

    tenant: str
    fingerprint: str
    request_id: str
    symbols: object
    size: int
    carry_state: int
    offset: int = 0
    deadline_ts: float | None = None
    enqueue_ts: float = 0.0
    first_service_ts: float | None = None
    rounds: int = 0
    batch_peak: int = 0
    degraded: bool = False
    finish_tag: float = 0.0
    future: object = None

    @property
    def remaining(self) -> int:
        """Items not yet executed."""
        return self.size - self.offset


@dataclass
class TenantQueue:
    """One tenant's FIFO of admitted requests plus its WFQ bookkeeping."""

    name: str
    weight: float = 1.0
    last_tag: float = 0.0
    queue: deque = field(default_factory=deque)

    def __len__(self) -> int:
        return len(self.queue)


class WeightedFairScheduler:
    """Admission control + WFQ + EDF urgency over per-tenant queues.

    Parameters
    ----------
    max_queue_depth:
        Global bound on admitted-but-unfinished requests; past it every
        :meth:`try_enqueue` refuses (load shedding).
    max_tenant_queue_depth:
        Per-tenant bound — one tenant flooding the server cannot occupy
        the whole global queue.
    predict_service_s:
        ``items -> seconds`` estimate of how long a request of that size
        takes to execute (the server wires in its throughput EWMA). Used
        only to classify urgency; a pessimistic estimate merely promotes
        requests to EDF earlier.
    """

    def __init__(
        self,
        *,
        max_queue_depth: int = 1024,
        max_tenant_queue_depth: int = 256,
        predict_service_s: Callable[[int], float] | None = None,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {max_queue_depth}")
        if max_tenant_queue_depth < 1:
            raise ValueError(
                f"max_tenant_queue_depth must be >= 1, got {max_tenant_queue_depth}"
            )
        self.max_queue_depth = int(max_queue_depth)
        self.max_tenant_queue_depth = int(max_tenant_queue_depth)
        self._predict = predict_service_s or (lambda items: 0.0)
        self._tenants: dict[str, TenantQueue] = {}
        self._virtual_time = 0.0
        self._depth = 0

    # ------------------------------------------------------------------ #
    # tenant + queue state
    # ------------------------------------------------------------------ #

    def add_tenant(self, name: str, *, weight: float = 1.0) -> TenantQueue:
        """Register (or return) a tenant queue; ``weight`` sets its share."""
        if weight <= 0:
            raise ValueError(f"weight must be > 0, got {weight}")
        tq = self._tenants.get(name)
        if tq is None:
            tq = self._tenants[name] = TenantQueue(name=name, weight=float(weight))
        else:
            tq.weight = float(weight)
        return tq

    @property
    def depth(self) -> int:
        """Admitted requests currently queued (all tenants)."""
        return self._depth

    def tenant_depth(self, name: str) -> int:
        """Queued requests for one tenant."""
        tq = self._tenants.get(name)
        return len(tq) if tq is not None else 0

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #

    def try_enqueue(self, req: QueuedRequest) -> bool:
        """Admit ``req`` or refuse it (returns False = shed).

        On admission the request receives its WFQ finish tag
        ``max(V, tenant.last_tag) + size / weight`` and joins its tenant's
        FIFO tail.
        """
        tq = self._tenants.get(req.tenant)
        if tq is None:
            raise KeyError(f"unknown tenant {req.tenant!r}; call add_tenant first")
        if self._depth >= self.max_queue_depth:
            return False
        if len(tq) >= self.max_tenant_queue_depth:
            return False
        start_tag = max(self._virtual_time, tq.last_tag)
        req.finish_tag = start_tag + max(1, req.size) / tq.weight
        tq.last_tag = req.finish_tag
        tq.queue.append(req)
        self._depth += 1
        return True

    def requeue(self, req: QueuedRequest) -> None:
        """Return a partially-executed request to the *front* of its queue.

        Continuous batching slices long requests across rounds; the
        unfinished remainder keeps its original finish tag (its fair
        position) and its FIFO-front slot so later same-tenant arrivals
        cannot starve it.
        """
        tq = self._tenants[req.tenant]
        tq.queue.appendleft(req)
        self._depth += 1

    # ------------------------------------------------------------------ #
    # selection
    # ------------------------------------------------------------------ #

    def _is_urgent(self, req: QueuedRequest, now: float) -> bool:
        if req.deadline_ts is None:
            return False
        return (req.deadline_ts - now) < self._predict(req.remaining)

    def select_round(
        self, *, max_requests: int, now: float
    ) -> list[QueuedRequest]:
        """Pop the next round's requests: one head plus coalescable peers.

        The head is the most urgent deadline-endangered request (earliest
        deadline first) when any exists, else the smallest finish tag.
        The rest of the round is filled — in the same priority order —
        with queued requests sharing the head's DFA fingerprint, up to
        ``max_requests``; requests for other machines stay queued for a
        later round. Selected requests leave their queues; the caller
        re-queues whatever a round leaves unfinished. Virtual time
        advances to the head's finish tag, so tags keep ordering new
        arrivals against work already served.
        """
        heads = [tq.queue[0] for tq in self._tenants.values() if tq.queue]
        if not heads:
            return []
        urgent = [r for r in heads if self._is_urgent(r, now)]
        if urgent:
            head = min(urgent, key=lambda r: (r.deadline_ts, r.finish_tag))
        else:
            head = min(heads, key=lambda r: r.finish_tag)
        self._virtual_time = max(self._virtual_time, head.finish_tag)

        selected = [head]
        self._tenants[head.tenant].queue.popleft()
        self._depth -= 1
        # Fill with same-machine requests across all tenant queues, best
        # (urgent-by-deadline, then fair-tag) first. Only queue heads are
        # eligible — FIFO within a tenant is preserved.
        while len(selected) < max_requests:
            peers = [
                tq.queue[0]
                for tq in self._tenants.values()
                if tq.queue and tq.queue[0].fingerprint == head.fingerprint
            ]
            if not peers:
                break
            urgent = [r for r in peers if self._is_urgent(r, now)]
            if urgent:
                nxt = min(urgent, key=lambda r: (r.deadline_ts, r.finish_tag))
            else:
                nxt = min(peers, key=lambda r: r.finish_tag)
            self._tenants[nxt.tenant].queue.popleft()
            self._depth -= 1
            selected.append(nxt)
        return selected
