"""Exact memory-transaction counting for the input-access patterns.

Section 4.1's argument, made quantitative: for each lock-step iteration,
the 32 lanes of a warp read one input symbol each. The hardware coalesces
the warp's reads into 128-byte transactions — one transaction when the
lanes' addresses fall in one segment (the transformed layout), up to 32
when every lane touches its own segment (the natural layout with large
chunks). This module counts the *actual* transactions both layouts would
issue for a concrete chunk plan, which is how the memory model's
coalescing factor is validated (see ``tests/gpu/test_coalescing.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.chunking import ChunkPlan

__all__ = ["TransactionCount", "count_input_transactions"]

SEGMENT_BYTES = 128


@dataclass(frozen=True)
class TransactionCount:
    """Transactions issued for the whole local-processing phase."""

    natural: int
    transformed: int

    @property
    def coalescing_factor(self) -> float:
        """How many times more transactions the natural layout issues."""
        if self.transformed == 0:
            return 1.0
        return self.natural / self.transformed


def _transactions_for_step(addresses: np.ndarray, warp_size: int) -> int:
    """Transactions for one step given per-lane byte addresses (all warps)."""
    total = 0
    segments = addresses // SEGMENT_BYTES
    for w in range(0, segments.size, warp_size):
        total += np.unique(segments[w : w + warp_size]).size
    return total


def count_input_transactions(
    plan: ChunkPlan,
    *,
    item_bytes: int = 1,
    warp_size: int = 32,
    max_steps: int | None = 64,
) -> TransactionCount:
    """Count input-read transactions under both layouts for ``plan``.

    ``max_steps`` samples the first steps (the pattern is identical every
    step, so sampling is exact up to the ragged tail); pass ``None`` for
    the full count.
    """
    if item_bytes < 1:
        raise ValueError(f"item_bytes must be >= 1, got {item_bytes}")
    q = plan.min_len
    steps = q if max_steps is None else min(q, max_steps)
    n = plan.num_chunks
    lanes = np.arange(n, dtype=np.int64)
    natural = 0
    transformed = 0
    for j in range(steps):
        # natural: lane c reads inputs[starts[c] + j]
        nat_addr = (plan.starts + j) * item_bytes
        natural += _transactions_for_step(nat_addr, warp_size)
        # transformed: lane c reads row j at offset c (contiguous row)
        tra_addr = (j * n + lanes) * item_bytes
        transformed += _transactions_for_step(tra_addr, warp_size)
    # scale the sample to the full phase (both patterns repeat per step)
    if steps and steps < q:
        scale = q / steps
        natural = int(round(natural * scale))
        transformed = int(round(transformed * scale))
    return TransactionCount(natural=natural, transformed=transformed)
