"""Price counted execution events into modeled V100 wall time.

The functional engine counts *what happened* (transitions, comparisons,
hash probes, re-executed items, merge structure); this module prices those
counts under the device's memory model and launch geometry, producing the
time breakdown and CPU-relative speedup that the paper's figures plot.

Two regimes are priced differently, which is the crux of the paper:

* **throughput regime** — local processing and the parallel merge levels:
  thousands of threads are in flight, the ``k`` speculated states overlap
  under ILP, wall time is per-thread *steps* times the dependent-access
  latency of one step (see :mod:`repro.gpu.calibration`);
* **latency regime** — the sequential merge walk, the global (across-block)
  merge stage, re-executions and the fix-up descent: a dependent chain on
  one thread, each access paying full memory latency. This is why
  sequential-merge cost grows linearly with thread count and caps
  scalability (Figure 3), and why avoidable re-executions matter
  (Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import ExecStats
from repro.gpu import calibration as cal
from repro.gpu.device import DeviceSpec, TESLA_V100, launch_geometry
from repro.gpu.memory import MemoryModel
from repro.gpu.occupancy import spill_factor

__all__ = ["TimeBreakdown", "CostModel", "price_at_scale"]


@dataclass(frozen=True)
class TimeBreakdown:
    """Modeled wall time of one speculative execution (seconds)."""

    local_s: float
    merge_s: float
    reexec_s: float
    fixup_s: float
    cpu_s: float

    @property
    def total_s(self) -> float:
        """Modeled GPU wall time."""
        return self.local_s + self.merge_s + self.reexec_s + self.fixup_s

    @property
    def speedup(self) -> float:
        """Speedup over the modeled single-core CPU baseline."""
        return self.cpu_s / self.total_s if self.total_s > 0 else float("inf")

    def as_row(self) -> dict[str, float]:
        """Flat dict for table printing."""
        return {
            "local_ms": self.local_s * 1e3,
            "merge_ms": self.merge_s * 1e3,
            "reexec_ms": self.reexec_s * 1e3,
            "fixup_ms": self.fixup_s * 1e3,
            "total_ms": self.total_s * 1e3,
            "speedup": self.speedup,
        }


@dataclass(frozen=True)
class CostModel:
    """Event-count pricer for one device.

    ``cpu_transition_ns`` sets the sequential CPU baseline; pass the
    Table 3-derived per-application value for paper-scale comparisons.
    """

    device: DeviceSpec = TESLA_V100
    cpu_transition_ns: float = cal.CPU_TRANSITION_NS

    def price(
        self,
        stats: ExecStats,
        *,
        num_blocks: int,
        threads_per_block: int,
        merge: str,
        layout_transformed: bool,
        cache_enabled: bool = False,
        input_item_bytes: int = 1,
    ) -> TimeBreakdown:
        """Model the wall time of an execution described by ``stats``."""
        if merge not in ("sequential", "parallel"):
            raise ValueError(f"merge must be 'sequential' or 'parallel', got {merge!r}")
        geo = launch_geometry(self.device, num_blocks, threads_per_block)
        mem = MemoryModel(self.device)
        k = max(1, stats.k)
        table_bytes = stats.num_states * stats.num_inputs * 4

        # ---- local processing (throughput regime) ----------------------- #
        # Per step: the dependent table access serializes the chain; the k
        # speculated states overlap under ILP (per-state issue cost), and
        # one input symbol is read. Waves serialize when the grid exceeds
        # residency (the persistent-thread launch avoids oversubscription).
        table_step_ns = mem.table_step_ns(
            table_bytes,
            cache_enabled=cache_enabled,
            cache_hit_rate=stats.cache_hit_rate,
        )
        step_ns = (
            table_step_ns
            + mem.input_read_ns(layout_transformed)
            + k * cal.EXEC_NS * spill_factor(k)
        )
        waves = -(-geo.num_blocks // geo.resident_blocks)  # ceil division
        local_s = stats.local_steps * step_ns * waves / 1e9
        floor_s = mem.bandwidth_floor_s(stats.num_items * input_item_bytes)
        local_s = max(local_s, floor_s)

        # ---- merge ------------------------------------------------------- #
        if merge == "sequential":
            # One thread walks all n results through global memory: two
            # dependent row reads per step (spec + end arrays of the next
            # chunk) plus one dependent read per scanned entry.
            dependent_reads = (
                2 * stats.seq_merge_steps
                + stats.check_comparisons
                + stats.hash_probe_steps
            )
            merge_s = (
                dependent_reads * mem.dependent_global_ns()
                + stats.hash_inserts * cal.HASH_OP_NS
            ) / 1e9
            reexec_s = stats.reexec_items_seq * cal.DEP_TRANSITION_NS / 1e9
            fixup_s = 0.0
        else:
            pair_ops = max(1, stats.merge_pair_ops)
            check_ns_total = (
                stats.check_comparisons * cal.CMP_NS
                + (stats.hash_inserts + stats.hash_probe_steps) * cal.HASH_OP_NS
                + stats.hash_probes * cal.HASH_OP_NS
            )
            avg_pair_ns = check_ns_total / pair_ops
            warp_s = (
                stats.merge_levels_warp
                * (avg_pair_ns + 2 * k * mem.shuffle_ns())
                / 1e9
            )
            block_s = (
                stats.merge_levels_block
                * (avg_pair_ns + 2 * k * mem.shared_exchange_ns() + cal.BARRIER_NS)
                / 1e9
            )
            global_s = (
                stats.merge_global_steps
                * ((2 + min(k, 4)) * mem.dependent_global_ns())
                / 1e9
            )
            merge_s = warp_s + block_s + global_s

            # Eager re-executions within a level run concurrently across
            # pairs; the critical path is the largest resolution per level,
            # summed over levels (reexec_wall_items, counted by the merge).
            reexec_s = stats.reexec_wall_items * cal.DEP_TRANSITION_NS / 1e9
            # Fix-up re-executions of distinct chunks are dispatched to
            # their owner threads and overlap; only consecutive-chunk runs
            # chain (each needs its predecessor's ending state). The
            # descent's probes are a dependent chain on one thread.
            if stats.fixup_chunks:
                avg_fix_items = stats.fixup_items / stats.fixup_chunks
                chain = max(1, stats.fixup_chain)
                fixup_s = chain * avg_fix_items * cal.DEP_TRANSITION_NS / 1e9
            else:
                fixup_s = 0.0
            fixup_s += (
                stats.fixup_probes * (k * cal.CMP_NS + mem.dependent_global_ns())
            ) / 1e9

        cpu_s = stats.num_items * self.cpu_transition_ns / 1e9
        return TimeBreakdown(
            local_s=local_s,
            merge_s=merge_s,
            reexec_s=reexec_s,
            fixup_s=fixup_s,
            cpu_s=cpu_s,
        )


def price_at_scale(
    result,
    target_items: int,
    *,
    cpu_transition_ns: float | None = None,
    device: DeviceSpec | None = None,
) -> TimeBreakdown:
    """Price a :class:`SpecExecutionResult` as if run on a larger input.

    Projects the result's counted statistics to ``target_items`` (per-item
    work scales linearly; merge structure and rates are preserved) and
    prices them under the result's own configuration. This is how bench
    runs at 10^6 items report the paper's 2^30-scale speedups.
    """
    cfg = result.config
    model = CostModel(
        device=device if device is not None else cfg.device,
        **(
            {"cpu_transition_ns": cpu_transition_ns}
            if cpu_transition_ns is not None
            else {}
        ),
    )
    return model.price(
        result.stats.project(target_items),
        num_blocks=cfg.num_blocks,
        threads_per_block=cfg.threads_per_block,
        merge=cfg.merge,
        layout_transformed=(cfg.layout == "transformed"),
        cache_enabled=cfg.cache_table,
    )
