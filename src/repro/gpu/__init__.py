"""GPU execution/cost model — the stand-in for the paper's Tesla V100.

No GPU (or CUDA toolchain) is available in this reproduction, so the
algorithms run functionally in NumPy while this subpackage prices the
counted work in modeled device time:

* :mod:`repro.gpu.device` — device descriptions (Table 2's V100 and
  others), warp/block/grid geometry, persistent-thread residency.
* :mod:`repro.gpu.memory` — latency/bandwidth model for global (coalesced
  and not), L2, shared memory, and warp shuffles.
* :mod:`repro.gpu.occupancy` — registers/shared-memory occupancy, including
  the register-spill penalty that makes spec-N slow for large FSMs.
* :mod:`repro.gpu.cost` — prices an :class:`repro.core.types.ExecStats`
  into a wall-time breakdown (local / merge / re-execution / fix-up) and a
  speedup versus the modeled single-core CPU baseline.
* :mod:`repro.gpu.calibration` — the handful of latency constants, tuned
  once against the paper's headline magnitudes and then frozen.
"""

from repro.gpu.coalescing import TransactionCount, count_input_transactions
from repro.gpu.cost import CostModel, TimeBreakdown, price_at_scale
from repro.gpu.device import DeviceSpec, GTX_1080TI, TESLA_V100, launch_geometry
from repro.gpu.memory import MemoryModel
from repro.gpu.occupancy import occupancy_report, spill_factor
from repro.gpu.simulate import SimCounters, simulate_hierarchical_merge

__all__ = [
    "CostModel",
    "DeviceSpec",
    "GTX_1080TI",
    "MemoryModel",
    "SimCounters",
    "TESLA_V100",
    "TimeBreakdown",
    "TransactionCount",
    "count_input_transactions",
    "launch_geometry",
    "occupancy_report",
    "price_at_scale",
    "simulate_hierarchical_merge",
    "spill_factor",
]
