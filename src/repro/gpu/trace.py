"""Export modeled executions as Chrome trace-event JSON.

Load the output at ``chrome://tracing`` (or Perfetto) to see the modeled
execution the way a profiler would show it: local processing across the
simulated SMs, then the warp/block/global merge stages, re-execution, and
fix-up on the timeline. Purely a visualization of the cost model — spans
come from :class:`repro.gpu.cost.TimeBreakdown`, not from wall clock.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.engine import SpecExecutionResult
from repro.gpu.cost import TimeBreakdown, price_at_scale

__all__ = ["trace_events", "write_trace"]


def trace_events(
    result: SpecExecutionResult,
    *,
    timing: TimeBreakdown | None = None,
    sm_lanes: int = 8,
) -> list[dict]:
    """Chrome trace events for one execution.

    ``sm_lanes`` controls how many representative SM rows the local stage
    is drawn across (purely cosmetic — all SMs run the same schedule).
    """
    tb = timing if timing is not None else result.timing
    if tb is None:
        raise ValueError("result carries no timing; run with price=True or pass timing=")
    cfg = result.config
    us = 1e6  # chrome traces are in microseconds
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": f"{cfg.device.name} (modeled)"},
        }
    ]
    # local processing: one span per representative SM lane
    lanes = max(1, min(sm_lanes, cfg.device.num_sms))
    for lane in range(lanes):
        events.append(
            {
                "name": f"local spec-{'N' if cfg.enumerative else cfg.k} "
                f"({cfg.layout})",
                "ph": "X",
                "pid": 0,
                "tid": lane + 1,
                "ts": 0.0,
                "dur": tb.local_s * us,
                "args": {
                    "chunks": result.stats.num_chunks,
                    "transitions": result.stats.local_transitions,
                },
            }
        )
    cursor = tb.local_s * us
    for name, dur_s, args in (
        (
            f"{cfg.merge} merge ({cfg.check} checks)",
            tb.merge_s,
            {
                "pair_ops": result.stats.merge_pair_ops,
                "comparisons": result.stats.check_comparisons,
                "global_steps": result.stats.merge_global_steps,
            },
        ),
        (
            "re-execution (eager)",
            tb.reexec_s,
            {"items": result.stats.reexec_items_eager},
        ),
        (
            "fix-up descent",
            tb.fixup_s,
            {
                "chunks": result.stats.fixup_chunks,
                "items": result.stats.fixup_items,
                "probes": result.stats.fixup_probes,
            },
        ),
    ):
        if dur_s > 0:
            events.append(
                {
                    "name": name,
                    "ph": "X",
                    "pid": 0,
                    "tid": 0,
                    "ts": cursor,
                    "dur": dur_s * us,
                    "args": args,
                }
            )
            cursor += dur_s * us
    # CPU baseline reference track
    events.append(
        {
            "name": "single-core CPU baseline",
            "ph": "X",
            "pid": 1,
            "tid": 0,
            "ts": 0.0,
            "dur": tb.cpu_s * us,
            "args": {"speedup": round(tb.speedup, 2)},
        }
    )
    events.append(
        {"name": "process_name", "ph": "M", "pid": 1, "args": {"name": "CPU (modeled)"}}
    )
    return events


def write_trace(
    result: SpecExecutionResult,
    path: str | Path,
    *,
    at_scale: int | None = None,
) -> Path:
    """Write the trace JSON; ``at_scale`` re-prices at a larger input first."""
    timing = (
        price_at_scale(result, at_scale) if at_scale is not None else result.timing
    )
    path = Path(path)
    path.write_text(
        json.dumps({"traceEvents": trace_events(result, timing=timing)}, indent=1)
    )
    return path
