"""Export modeled executions as Chrome trace-event JSON.

Load the output at ``chrome://tracing`` (or Perfetto) to see the modeled
execution the way a profiler would show it: local processing across the
simulated SMs, then the warp/block/global merge stages, re-execution, and
fix-up on the timeline. Purely a visualization of the cost model — spans
come from :class:`repro.gpu.cost.TimeBreakdown`, not from wall clock.

Since the observability layer landed, this module is a thin adapter: the
modeled breakdown is first laid out as a :class:`repro.obs.RunTrace`
(:func:`modeled_run_trace`) — the same span format every backend emits —
and :mod:`repro.obs.export` does the Chrome encoding. Wall-clock traces
from a profiled run and modeled traces from the cost model therefore open
side by side in the same viewer with the same structure.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.engine import SpecExecutionResult
from repro.gpu.cost import TimeBreakdown, price_at_scale
from repro.obs.export import chrome_trace_events
from repro.obs.trace import RunTrace

__all__ = ["modeled_run_trace", "trace_events", "write_trace"]


def modeled_run_trace(
    result: SpecExecutionResult,
    *,
    timing: TimeBreakdown | None = None,
    sm_lanes: int = 8,
) -> RunTrace:
    """Lay the modeled time breakdown out as a :class:`RunTrace`.

    Spans carry a ``tid`` attribute so the Chrome exporter draws the local
    stage across ``sm_lanes`` representative SM rows (purely cosmetic —
    all SMs run the same schedule) and the merge/re-exec/fix-up chain on
    row 0. All timestamps are modeled seconds, not wall clock.
    """
    tb = timing if timing is not None else result.timing
    if tb is None:
        raise ValueError("result carries no timing; run with price=True or pass timing=")
    cfg = result.config
    trace = RunTrace(f"{cfg.device.name} (modeled)")
    lanes = max(1, min(sm_lanes, cfg.device.num_sms))
    local_name = (
        f"local spec-{'N' if cfg.enumerative else cfg.k} ({cfg.layout})"
    )
    for lane in range(lanes):
        trace.add_span(
            local_name, 0.0, tb.local_s,
            tid=lane + 1,
            chunks=result.stats.num_chunks,
            transitions=result.stats.local_transitions,
        )
    cursor = tb.local_s
    for name, dur_s, attrs in (
        (
            f"{cfg.merge} merge ({cfg.check} checks)",
            tb.merge_s,
            {
                "pair_ops": result.stats.merge_pair_ops,
                "comparisons": result.stats.check_comparisons,
                "global_steps": result.stats.merge_global_steps,
            },
        ),
        (
            "re-execution (eager)",
            tb.reexec_s,
            {"items": result.stats.reexec_items_eager},
        ),
        (
            "fix-up descent",
            tb.fixup_s,
            {
                "chunks": result.stats.fixup_chunks,
                "items": result.stats.fixup_items,
                "probes": result.stats.fixup_probes,
            },
        ),
    ):
        if dur_s > 0:
            trace.add_span(name, cursor, cursor + dur_s, tid=0, **attrs)
            cursor += dur_s
    return trace


def trace_events(
    result: SpecExecutionResult,
    *,
    timing: TimeBreakdown | None = None,
    sm_lanes: int = 8,
) -> list[dict]:
    """Chrome trace events for one execution.

    ``sm_lanes`` controls how many representative SM rows the local stage
    is drawn across (purely cosmetic — all SMs run the same schedule).
    The GPU-side spans come from :func:`modeled_run_trace` through the
    shared Chrome emitter; the single-core CPU baseline is appended as a
    second process for visual comparison.
    """
    tb = timing if timing is not None else result.timing
    if tb is None:
        raise ValueError("result carries no timing; run with price=True or pass timing=")
    us = 1e6  # chrome traces are in microseconds
    events = chrome_trace_events(
        modeled_run_trace(result, timing=tb, sm_lanes=sm_lanes), pid=0
    )
    # CPU baseline reference track
    events.append(
        {
            "name": "single-core CPU baseline",
            "ph": "X",
            "pid": 1,
            "tid": 0,
            "ts": 0.0,
            "dur": tb.cpu_s * us,
            "args": {"speedup": round(tb.speedup, 2)},
        }
    )
    events.append(
        {"name": "process_name", "ph": "M", "pid": 1, "args": {"name": "CPU (modeled)"}}
    )
    return events


def write_trace(
    result: SpecExecutionResult,
    path: str | Path,
    *,
    at_scale: int | None = None,
) -> Path:
    """Write the trace JSON; ``at_scale`` re-prices at a larger input first."""
    timing = (
        price_at_scale(result, at_scale) if at_scale is not None else result.timing
    )
    path = Path(path)
    path.write_text(
        json.dumps({"traceEvents": trace_events(result, timing=timing)}, indent=1)
    )
    return path
