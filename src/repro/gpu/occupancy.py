"""Occupancy and register-pressure model.

Two effects from the paper live here:

* **register spill** — Algorithm 3 keeps the ``states[num_guess]`` array in
  registers only while ``num_guess`` is small ("array states can be loaded
  in the registers as long as num_guess is not large"). For spec-N on the
  205-state Huffman FSM the array spills to local memory, which is why the
  paper measures only a 15x speedup there. :func:`spill_factor` returns the
  multiplier the cost model applies to per-transition work.
* **occupancy accounting** — how many warps a block's register and shared
  memory appetite allows per SM, reported for diagnostics and used to damp
  throughput when occupancy is very low.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu import calibration as cal
from repro.gpu.device import DeviceSpec

__all__ = ["spill_factor", "occupancy_report", "OccupancyReport"]


def spill_factor(k: int) -> float:
    """Per-transition cost multiplier due to the speculated-state array.

    1.0 while the array stays in registers; once ``k`` exceeds the register
    budget the array lives in local memory and every access round-trips
    through the memory hierarchy.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k <= cal.SPILL_THRESHOLD_STATES:
        return 1.0
    return cal.SPILL_FACTOR


@dataclass(frozen=True)
class OccupancyReport:
    """Resource-limited occupancy of one kernel configuration."""

    threads_per_block: int
    registers_per_thread: int
    shared_bytes_per_block: int
    max_blocks_registers: int
    max_blocks_shared: int
    max_blocks_threads: int

    @property
    def resident_blocks_per_sm(self) -> int:
        """Blocks per SM under the binding resource limit."""
        return max(
            1,
            min(
                self.max_blocks_registers,
                self.max_blocks_shared,
                self.max_blocks_threads,
            ),
        )

    @property
    def resident_warps_per_sm(self) -> int:
        """Warps per SM, the latency-hiding currency."""
        return self.resident_blocks_per_sm * (self.threads_per_block // 32)


def occupancy_report(
    device: DeviceSpec,
    threads_per_block: int,
    *,
    k: int,
    shared_bytes_per_block: int = 0,
) -> OccupancyReport:
    """Estimate occupancy for a spec-k kernel.

    Register appetite is modeled as a fixed kernel overhead plus one
    register per speculated state (capped at the device maximum — beyond
    the cap the state array is spilled, see :func:`spill_factor`).
    """
    device.validate_block(threads_per_block)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    regs = min(32 + min(k, cal.SPILL_THRESHOLD_STATES), device.registers_per_thread_max)
    reg_bytes_per_block = regs * 4 * threads_per_block
    max_blocks_regs = max(1, device.register_file_per_sm_bytes // max(1, reg_bytes_per_block))
    if shared_bytes_per_block > 0:
        max_blocks_shared = device.shared_mem_per_sm_bytes // shared_bytes_per_block
        if max_blocks_shared == 0:
            raise ValueError(
                f"shared memory request {shared_bytes_per_block}B exceeds the "
                f"per-SM capacity {device.shared_mem_per_sm_bytes}B"
            )
    else:
        max_blocks_shared = 32
    max_blocks_threads = max(1, device.max_threads_per_sm // threads_per_block)
    return OccupancyReport(
        threads_per_block=threads_per_block,
        registers_per_thread=regs,
        shared_bytes_per_block=shared_bytes_per_block,
        max_blocks_registers=int(max_blocks_regs),
        max_blocks_shared=int(max_blocks_shared),
        max_blocks_threads=int(max_blocks_threads),
    )
