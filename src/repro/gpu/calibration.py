"""Calibration constants for the GPU cost model.

These are the only tuned numbers in the reproduction; everything else
(crossover points, per-k ordering, app-to-app differences, success rates,
re-execution counts) is emergent from the counted event streams.

The central modeling decision: an FSM thread is a *dependent load chain* —
transition ``i+1`` cannot issue before transition ``i``'s table lookup
returns — so local processing is priced per lock-step *step* at the
effective latency of one dependent table access (``TABLE_STEP_*``), while
the ``k`` speculated states advance concurrently under instruction-level
parallelism and contribute only a small per-state issue cost (``EXEC_NS``)
— until the state array spills out of registers (``SPILL_*``), which is
what makes spec-N slow for large FSMs (the paper's 205-state Huffman
machine, Section 5.2.1).

Constants were fixed against four anchors from the paper and then frozen:

* parallel merge at 80 blocks lands at ~350–550x per app (Figs. 7–11),
* sequential merge peaks at 20–40 blocks and declines at 80 (Fig. 3),
* spec-N on the 205-state Huffman FSM ≈ 15x (register spill, Fig. 7),
* hot-state caching gains ~1.5x for Huffman (Fig. 15) and the layout
  transformation ~3.8x on average (Fig. 14).
"""

from __future__ import annotations

__all__ = [
    "EXEC_NS",
    "TABLE_STEP_SHARED_NS",
    "TABLE_STEP_L2_NS",
    "TABLE_STEP_DRAM_NS",
    "CACHE_HASH_NS",
    "GMEM_COALESCED_NS",
    "GMEM_UNCOALESCED_NS",
    "SHUFFLE_NS",
    "SHARED_NS",
    "CMP_NS",
    "HASH_OP_NS",
    "DEP_GMEM_NS",
    "DEP_TRANSITION_NS",
    "SPILL_THRESHOLD_STATES",
    "SPILL_FACTOR",
    "CPU_TRANSITION_NS",
    "BARRIER_NS",
]

# --- local processing: per lock-step step, per thread ---------------------- #
# Effective latency of the dependent table access that serializes the step,
# by where the row is served from.
TABLE_STEP_SHARED_NS = 55.0  # hot row in the user-managed shared cache
TABLE_STEP_L2_NS = 100.0  # table in global memory but L2-resident
TABLE_STEP_DRAM_NS = 160.0  # table too large for L2
CACHE_HASH_NS = 5.0  # Hot_States hash check paid on every access (Sec. 4.2)

# Per speculated state (ILP-overlapped issue + ALU work).
EXEC_NS = 1.5

# Input symbol read, per thread per step.
GMEM_COALESCED_NS = 0.7  # per-thread share of a coalesced 128B transaction
GMEM_UNCOALESCED_NS = 280.0  # one transaction per lane (natural layout)

# --- register pressure (spec-N penalty, Sec. 5.2.1) ------------------------- #
SPILL_THRESHOLD_STATES = 24  # speculated states that still fit in registers
SPILL_FACTOR = 9.0  # local-memory round trip per state once spilled

# --- merge traffic ------------------------------------------------------------
SHUFFLE_NS = 1.0  # register shuffle between warp lanes
SHARED_NS = 2.0  # shared-memory access in the block stage
CMP_NS = 0.5  # one comparison in a throughput-regime runtime check
HASH_OP_NS = 1.5  # hash insert / probe step (local-memory traffic)
DEP_GMEM_NS = 350.0  # dependent global read on the sequential walk
DEP_TRANSITION_NS = 60.0  # one re-executed transition by a lone thread
BARRIER_NS = 600.0  # block-wide barrier between merge stages

# --- baseline -------------------------------------------------------------------
CPU_TRANSITION_NS = 2.1  # single-core CPU ns/item (Table 3: ~2.2s over 2^30)
