"""Device descriptions and launch geometry.

:data:`TESLA_V100` transcribes Table 2 of the paper. The persistent-thread
model (Section 4.1) launches only as many blocks as can be simultaneously
resident; :func:`launch_geometry` computes residency and the resulting
grid-stride work assignment.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "TESLA_V100", "GTX_1080TI", "launch_geometry", "LaunchGeometry"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a GPU (the fields the cost model needs)."""

    name: str
    num_sms: int
    cuda_cores: int
    clock_ghz: float
    warp_size: int
    max_threads_per_block: int
    max_threads_per_sm: int
    registers_per_thread_max: int
    register_file_per_sm_bytes: int
    shared_mem_per_sm_bytes: int
    l2_bytes: int
    mem_bandwidth_gbs: float
    mem_bus_bits: int

    @property
    def max_resident_blocks(self) -> int:
        """Upper bound on concurrently resident blocks (1 block/SM model).

        The paper launches at most ``num_sms`` (80) thread blocks under the
        persistent-thread model; we follow the same convention.
        """
        return self.num_sms

    def validate_block(self, threads_per_block: int) -> None:
        """Raise if a block shape is not launchable on this device."""
        if threads_per_block < 1 or threads_per_block > self.max_threads_per_block:
            raise ValueError(
                f"threads_per_block must be in [1, {self.max_threads_per_block}], "
                f"got {threads_per_block}"
            )
        if threads_per_block % self.warp_size:
            raise ValueError(
                f"threads_per_block must be a multiple of the warp size "
                f"({self.warp_size}), got {threads_per_block}"
            )


TESLA_V100 = DeviceSpec(
    name="Tesla V100",
    num_sms=80,
    cuda_cores=5120,
    clock_ghz=1.38,
    warp_size=32,
    max_threads_per_block=1024,
    max_threads_per_sm=2048,
    registers_per_thread_max=255,
    register_file_per_sm_bytes=65536 * 4,  # 64K 32-bit registers per SM
    shared_mem_per_sm_bytes=96 * 1024,
    l2_bytes=6 * 1024 * 1024,
    mem_bandwidth_gbs=900.0,
    mem_bus_bits=4096,
)

GTX_1080TI = DeviceSpec(
    name="GTX 1080 Ti",
    num_sms=28,
    cuda_cores=3584,
    clock_ghz=1.58,
    warp_size=32,
    max_threads_per_block=1024,
    max_threads_per_sm=2048,
    registers_per_thread_max=255,
    register_file_per_sm_bytes=65536 * 4,
    shared_mem_per_sm_bytes=96 * 1024,
    l2_bytes=int(2.75 * 1024 * 1024),
    mem_bandwidth_gbs=484.0,
    mem_bus_bits=352,
)


@dataclass(frozen=True)
class LaunchGeometry:
    """Resolved launch shape under the persistent-thread model."""

    num_blocks: int
    threads_per_block: int
    resident_blocks: int
    total_threads: int
    warps_per_block: int

    @property
    def oversubscribed(self) -> bool:
        """True when more blocks were requested than can be resident."""
        return self.num_blocks > self.resident_blocks


def launch_geometry(
    device: DeviceSpec, num_blocks: int, threads_per_block: int
) -> LaunchGeometry:
    """Validate and resolve a launch configuration on ``device``."""
    if num_blocks < 1:
        raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
    device.validate_block(threads_per_block)
    resident = min(num_blocks, device.max_resident_blocks)
    return LaunchGeometry(
        num_blocks=num_blocks,
        threads_per_block=threads_per_block,
        resident_blocks=resident,
        total_threads=num_blocks * threads_per_block,
        warps_per_block=threads_per_block // device.warp_size,
    )
