"""Memory-system model: where each access class is served and at what cost.

The model distinguishes the access classes that drive the paper's
optimizations:

* **per-step table latency** — the dependent table access that serializes a
  lock-step iteration. Served from the user-managed shared-memory cache on
  a hot-state hit (plus the ``Hot_States`` hash overhead), else from L2 when
  the table fits there, else from DRAM (Section 4.2);
* **input reads** — coalesced (transformed layout: all lanes of a warp read
  one 128-byte segment) or uncoalesced (natural layout: one transaction per
  lane), Section 4.1;
* **merge traffic** — shuffles within a warp, shared memory within a block,
  *dependent* global reads for the sequential walk and the global stage.

A bandwidth floor (input bytes / DRAM bandwidth) keeps the model honest at
high thread counts where the latency model would otherwise predict
super-hardware throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu import calibration as cal
from repro.gpu.device import DeviceSpec

__all__ = ["MemoryModel"]


@dataclass(frozen=True)
class MemoryModel:
    """Per-access-class effective costs (ns) for one device."""

    device: DeviceSpec

    # -- input stream ----------------------------------------------------- #
    def input_read_ns(self, transformed: bool) -> float:
        """Cost of one thread reading one input symbol."""
        return cal.GMEM_COALESCED_NS if transformed else cal.GMEM_UNCOALESCED_NS

    # -- transition table: per-step serializing latency ----------------------- #
    def table_step_ns(
        self,
        table_bytes: int,
        *,
        cache_enabled: bool = False,
        cache_hit_rate: float = 1.0,
    ) -> float:
        """Latency of the dependent table access in one lock-step step.

        With the hot-state cache enabled every access pays the hash check;
        hits are served from shared memory and misses fall back to L2/DRAM.
        """
        uncached = self._uncached_step_ns(table_bytes)
        if not cache_enabled:
            return uncached
        hit = min(1.0, max(0.0, cache_hit_rate))
        return (
            hit * cal.TABLE_STEP_SHARED_NS
            + (1.0 - hit) * uncached
            + cal.CACHE_HASH_NS
        )

    def _uncached_step_ns(self, table_bytes: int) -> float:
        if table_bytes <= self.device.l2_bytes:
            return cal.TABLE_STEP_L2_NS
        return cal.TABLE_STEP_DRAM_NS

    # -- merge traffic ------------------------------------------------------- #
    def shuffle_ns(self) -> float:
        """One warp-shuffle exchange."""
        return cal.SHUFFLE_NS

    def shared_exchange_ns(self) -> float:
        """One shared-memory store+load pair in the block stage."""
        return 2.0 * cal.SHARED_NS

    def dependent_global_ns(self) -> float:
        """One dependent global read (global merge stage / seq merge walk)."""
        return cal.DEP_GMEM_NS

    # -- floors ----------------------------------------------------------------
    def bandwidth_floor_s(self, bytes_moved: int) -> float:
        """Minimum time to move ``bytes_moved`` through DRAM, in seconds."""
        return bytes_moved / (self.device.mem_bandwidth_gbs * 1e9)
