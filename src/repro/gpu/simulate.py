"""Lane-level simulation of the hierarchical GPU merge (Section 4.1).

The engine's :mod:`repro.core.merge_par` computes the merge as a flat
binary tree, vectorized over pairs, and *attributes* levels to the GPU
hierarchy for costing. This module is the cross-check: it simulates the
merge the way the generated CUDA kernel actually executes it —

* **warp stage** — 32 lanes hold their chunk maps in registers; five
  shuffle rounds combine lane ``i`` with lane ``i + offset`` (offset = 1,
  2, 4, 8, 16), with only ``i % (2*offset) == 0`` lanes producing live
  results (the divergence the simulator accounts);
* **block stage** — each warp's lane 0 writes its result to shared
  memory; after a barrier, the first warp's lanes load the per-warp
  results and shuffle-reduce them the same way;
* **grid stage** — one lane per block publishes to global memory; a single
  persistent thread folds the block results sequentially.

The simulated result is bit-identical to ``merge_parallel`` with the
delayed strategy (asserted by tests over random machines), and the
simulation returns the exact operation counters (shuffles, shared-memory
accesses, barriers, dependent global reads, per-round active-lane counts)
that a real kernel would incur — an independent validation of the cost
model's merge pricing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.types import ChunkResults
from repro.gpu.device import DeviceSpec, TESLA_V100
from repro.obs.trace import current_trace, trace_span

__all__ = ["SimCounters", "SimulatedMerge", "simulate_hierarchical_merge"]


@dataclass
class SimCounters:
    """Operation counts from one simulated hierarchical merge."""

    shuffle_ops: int = 0  # register exchanges between lanes
    shared_stores: int = 0
    shared_loads: int = 0
    barriers: int = 0
    global_stores: int = 0
    global_loads: int = 0  # dependent reads in the grid stage
    compare_ops: int = 0  # semi-join equality tests
    active_lane_rounds: list = field(default_factory=list)  # divergence trace

    @property
    def divergence_ratio(self) -> float:
        """Mean fraction of lanes idle across shuffle rounds (0 = none)."""
        if not self.active_lane_rounds:
            return 0.0
        idle = [1.0 - active / total for active, total in self.active_lane_rounds]
        return float(np.mean(idle))


@dataclass
class SimulatedMerge:
    """Outcome of the simulation."""

    final_spec: np.ndarray  # (k,)
    final_end: np.ndarray  # (k,)
    final_valid: np.ndarray  # (k,) bool
    counters: SimCounters

    def lookup(self, state: int) -> int | None:
        """Final map lookup (None when the entry is invalid/missing)."""
        hits = np.flatnonzero((self.final_spec == state) & self.final_valid)
        return int(self.final_end[hits[0]]) if hits.size else None


def _compose(
    spec_l: np.ndarray, end_l: np.ndarray, valid_l: np.ndarray,
    spec_r: np.ndarray, end_r: np.ndarray, valid_r: np.ndarray,
    counters: SimCounters,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Delayed-strategy composition of two per-lane maps (one lane's work)."""
    k = spec_l.size
    out_end = end_l.copy()
    out_valid = np.zeros(k, dtype=bool)
    for j in range(k):
        if not valid_l[j]:
            continue
        target = end_l[j]
        for i in range(k):
            counters.compare_ops += 1
            if valid_r[i] and spec_r[i] == target:
                out_end[j] = end_r[i]
                out_valid[j] = True
                break
    return spec_l.copy(), out_end, out_valid


def _shuffle_reduce(
    spec: np.ndarray, end: np.ndarray, valid: np.ndarray, counters: SimCounters
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reduce ``lanes`` maps to one via shuffle rounds (lane 0 holds it).

    ``spec``/``end``/``valid`` have shape ``(lanes, k)``. Lanes is any
    power of two (the simulator pads with identity-less inactive lanes
    when a partial group occurs, counting them idle).
    """
    lanes = spec.shape[0]
    offset = 1
    while offset < lanes:
        active = 0
        for i in range(0, lanes, 2 * offset):
            j = i + offset
            if j >= lanes:
                continue
            # shuffle: lane i receives lane j's registers (2k values)
            counters.shuffle_ops += 2 * spec.shape[1]
            spec[i], end[i], valid[i] = _compose(
                spec[i], end[i], valid[i], spec[j], end[j], valid[j], counters
            )
            active += 1
        counters.active_lane_rounds.append((active, lanes // 2 if lanes > 1 else 1))
        offset *= 2
    return spec[0], end[0], valid[0]


def simulate_hierarchical_merge(
    results: ChunkResults,
    *,
    threads_per_block: int = 256,
    device: DeviceSpec = TESLA_V100,
) -> SimulatedMerge:
    """Simulate the warp/block/grid merge over ``results``.

    ``results.num_chunks`` must equal ``blocks * threads_per_block`` for
    some integer block count (one chunk per thread, as the engine lays
    them out).

    When a :class:`repro.obs.RunTrace` is active, the whole simulation is
    recorded as a ``gpu.simulate_merge`` span and the operation counters
    are published under ``gpu.sim.*`` — the same namespace Chrome-trace
    exports use — so modeled and simulated merges are directly comparable.
    """
    with trace_span(
        "gpu.simulate_merge",
        chunks=results.num_chunks,
        threads_per_block=threads_per_block,
    ):
        sim = _simulate(results, threads_per_block=threads_per_block, device=device)
    obs = current_trace()
    if obs is not None:
        c = sim.counters
        obs.count("gpu.sim.shuffle_ops", c.shuffle_ops)
        obs.count("gpu.sim.shared_stores", c.shared_stores)
        obs.count("gpu.sim.shared_loads", c.shared_loads)
        obs.count("gpu.sim.barriers", c.barriers)
        obs.count("gpu.sim.global_stores", c.global_stores)
        obs.count("gpu.sim.global_loads", c.global_loads)
        obs.count("gpu.sim.compare_ops", c.compare_ops)
        obs.observe("gpu.sim.divergence_ratio", c.divergence_ratio)
    return sim


def _simulate(
    results: ChunkResults,
    *,
    threads_per_block: int,
    device: DeviceSpec,
) -> SimulatedMerge:
    warp = device.warp_size
    n = results.num_chunks
    if threads_per_block % warp:
        raise ValueError(
            f"threads_per_block must be a multiple of {warp}, got {threads_per_block}"
        )
    if n % threads_per_block:
        raise ValueError(
            f"num_chunks ({n}) must be a multiple of threads_per_block "
            f"({threads_per_block})"
        )
    num_blocks = n // threads_per_block
    warps_per_block = threads_per_block // warp
    counters = SimCounters()
    k = results.k

    block_spec = np.empty((num_blocks, k), dtype=np.int32)
    block_end = np.empty((num_blocks, k), dtype=np.int32)
    block_valid = np.empty((num_blocks, k), dtype=bool)

    for b in range(num_blocks):
        # --- warp stage -------------------------------------------------
        warp_spec = np.empty((warps_per_block, k), dtype=np.int32)
        warp_end = np.empty((warps_per_block, k), dtype=np.int32)
        warp_valid = np.empty((warps_per_block, k), dtype=bool)
        for w in range(warps_per_block):
            lo = b * threads_per_block + w * warp
            s = results.spec[lo : lo + warp].copy()
            e = results.end[lo : lo + warp].copy()
            v = results.valid[lo : lo + warp].copy()
            ws, we, wv = _shuffle_reduce(s, e, v, counters)
            warp_spec[w], warp_end[w], warp_valid[w] = ws, we, wv
            # lane 0 stores the warp result to shared memory
            counters.shared_stores += 2 * k

        # --- block stage --------------------------------------------------
        counters.barriers += 1
        # first warp loads the per-warp results from shared memory
        counters.shared_loads += 2 * k * warps_per_block
        bs, be, bv = _shuffle_reduce(
            warp_spec.copy(), warp_end.copy(), warp_valid.copy(), counters
        )
        block_spec[b], block_end[b], block_valid[b] = bs, be, bv
        counters.barriers += 1
        counters.global_stores += 2 * k  # thread 0 publishes the block result

    # --- grid stage: one persistent thread folds block results ------------
    spec, end, valid = block_spec[0], block_end[0], block_valid[0]
    for b in range(1, num_blocks):
        counters.global_loads += 2 * k
        spec, end, valid = _compose(
            spec, end, valid,
            block_spec[b], block_end[b], block_valid[b], counters,
        )
    return SimulatedMerge(
        final_spec=spec, final_end=end, final_valid=valid, counters=counters
    )
