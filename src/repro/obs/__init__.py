"""Unified observability: per-stage tracing, speculation metrics, profiling.

One vocabulary for *where time goes* across every execution backend — the
simulated GPU engine, the CPU :class:`~repro.core.mp_executor.ScaleoutPool`,
and the :class:`~repro.core.streaming.StreamingExecutor`:

* :func:`trace_span` / :class:`RunTrace` — wall-clock stage spans
  (near-zero cost when no trace is active);
* :class:`Counter` / :class:`Histogram` — speculation and merge metrics
  (semi-join match/miss, per-level merge timings, SHM traffic);
* :mod:`repro.obs.export` — structured JSON (one file per run), Chrome
  trace-event JSON for ``chrome://tracing``, and the ``--profile`` text
  table.

The metric catalog — every span and counter name with its unit — lives in
``docs/OBSERVABILITY.md``.
"""

from repro.obs.export import (
    chrome_trace_events,
    format_profile,
    load_run_trace,
    write_chrome_trace,
    write_run_trace,
)
from repro.obs.trace import (
    Counter,
    Histogram,
    RunTrace,
    Span,
    add_count,
    current_trace,
    observe,
    trace_span,
)

__all__ = [
    "Counter",
    "Histogram",
    "RunTrace",
    "Span",
    "add_count",
    "chrome_trace_events",
    "current_trace",
    "format_profile",
    "load_run_trace",
    "observe",
    "trace_span",
    "write_chrome_trace",
    "write_run_trace",
]
