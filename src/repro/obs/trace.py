"""Span/metric primitives: the engine's unified observability core.

The paper's whole argument is about *where time goes* — sequential merge
dominating at scale (Figure 3), speculation success rates deciding
re-execution cost (Figure 6). This module gives every execution backend one
vocabulary for that accounting:

* :func:`trace_span` — a context manager timing one pipeline stage
  (``engine.local``, ``merge.level``, ``pool.dispatch`` …) with wall-clock
  ``perf_counter`` timestamps and arbitrary attributes;
* :class:`Counter` — a monotone event count (semi-join matches, re-executed
  items);
* :class:`Histogram` — a summary distribution (count/total/min/max) for
  repeated measurements such as per-level merge times;
* :class:`RunTrace` — the per-run container that owns all of the above and
  serializes to JSON (:mod:`repro.obs.export` adds Chrome-trace emission).

Observability is **off by default** and costs nearly nothing when off: with
no active trace, :func:`trace_span` returns a pre-allocated no-op singleton
(no allocation, no clock read) and :func:`add_count` / :func:`observe` are a
module-global load and a branch. Hot loops therefore instrument at *stage*
granularity (per run, per merge level, per feed), never per item; the
tier-1 perf smoke test pins the disabled-mode cost.

Enable tracing by activating a trace around any engine call::

    from repro.obs import RunTrace

    trace = RunTrace("huffman-run")
    with trace.activate():
        result = repro.run_speculative(dfa, bits, k=8)
    print(trace.stage_breakdown())

The active trace is ambient (module-global, like a logging root): nested
library layers pick it up without parameter threading. One trace belongs to
one run on one thread — worker *processes* cannot see it, which is why
:mod:`repro.core.mp_executor` returns per-worker timings through its result
tuples instead and folds them into the parent's trace.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "Counter",
    "Histogram",
    "RunTrace",
    "Span",
    "add_count",
    "current_trace",
    "observe",
    "trace_span",
]

SCHEMA_VERSION = 1

# The ambient trace. A module global (not a contextvar): one engine run owns
# the process's Python thread, and a global read is the cheapest possible
# disabled-path check.
_current: "RunTrace | None" = None


class _NullSpan:
    """No-op span returned when tracing is disabled (a process-wide singleton).

    Supports the same surface as :class:`Span` inside a ``with`` block so
    instrumentation sites never branch on enablement themselves.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        """Ignore attributes (disabled mode)."""
        return self


_NULL_SPAN = _NullSpan()


@dataclass
class Span:
    """One timed stage: ``[t0, t1]`` seconds on the trace's clock.

    ``parent`` is the index of the enclosing span in ``RunTrace.spans``
    (-1 for roots); ``attrs`` carries stage-specific facts (counts, level
    numbers, byte sizes). ``t1 < 0`` marks a still-open span.
    """

    name: str
    t0: float
    t1: float = -1.0
    parent: int = -1
    index: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)
    _trace: "RunTrace | None" = field(default=None, repr=False, compare=False)

    @property
    def duration_s(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        return max(0.0, self.t1 - self.t0) if self.t1 >= 0 else 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: object) -> bool:
        if self._trace is not None:
            self._trace._close_span(self)
        return False


@dataclass
class Counter:
    """A monotone event counter (unit in the name, e.g. ``*.items``)."""

    name: str
    value: int = 0

    def add(self, n: int = 1) -> None:
        """Increment by ``n`` (must be >= 0)."""
        self.value += n


@dataclass
class Histogram:
    """Summary distribution of repeated observations (no per-sample storage).

    Tracks ``count``/``total``/``min``/``max``; units are whatever the
    caller observes (the metric catalog in docs/OBSERVABILITY.md names the
    unit of every emitted histogram — seconds unless stated otherwise).
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean of observed samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        """JSON-ready summary."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }


class RunTrace:
    """All spans, counters, and histograms of one engine run.

    Parameters
    ----------
    name:
        Run label (appears in exports; e.g. the application name).
    meta:
        Free-form run metadata recorded verbatim into exports (input size,
        k, backend, …).

    The trace clock is ``time.perf_counter`` re-based so the trace starts
    at 0.0; all span timestamps and durations are **seconds**.
    """

    def __init__(self, name: str = "run", **meta: Any) -> None:
        self.name = name
        self.meta: dict[str, Any] = dict(meta)
        self.spans: list[Span] = []
        self.counters: dict[str, Counter] = {}
        self.histograms: dict[str, Histogram] = {}
        self._stack: list[int] = []
        self._epoch = time.perf_counter()

    # ------------------------------------------------------------------ #
    # clock
    # ------------------------------------------------------------------ #

    def now(self) -> float:
        """Seconds since this trace was created."""
        return time.perf_counter() - self._epoch

    def to_trace_time(self, perf_counter_ts: float) -> float:
        """Convert a raw ``time.perf_counter()`` reading to trace time."""
        return perf_counter_ts - self._epoch

    # ------------------------------------------------------------------ #
    # spans
    # ------------------------------------------------------------------ #

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a span; close it by exiting the ``with`` block."""
        parent = self._stack[-1] if self._stack else -1
        sp = Span(
            name=name,
            t0=self.now(),
            parent=parent,
            index=len(self.spans),
            attrs=dict(attrs),
            _trace=self,
        )
        self.spans.append(sp)
        self._stack.append(sp.index)
        return sp

    def _close_span(self, sp: Span) -> None:
        sp.t1 = self.now()
        # Pop through any unclosed children (defensive; exceptions unwind
        # outer spans before inner ones have exited cleanly).
        while self._stack and self._stack[-1] != sp.index:
            self._stack.pop()
        if self._stack:
            self._stack.pop()

    def add_span(
        self, name: str, t0: float, t1: float, *, parent: int = -1, **attrs: Any
    ) -> Span:
        """Record a pre-timed span with explicit timestamps (seconds).

        Used by exporters of *modeled* time (:mod:`repro.gpu.trace`) and by
        the pool parent folding worker-measured intervals into its trace.
        """
        sp = Span(
            name=name,
            t0=float(t0),
            t1=float(t1),
            parent=parent,
            index=len(self.spans),
            attrs=dict(attrs),
            _trace=self,
        )
        self.spans.append(sp)
        return sp

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #

    def counter(self, name: str) -> Counter:
        """Get-or-create the named counter."""
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def count(self, name: str, n: int = 1) -> None:
        """Increment the named counter by ``n``."""
        self.counter(name).add(n)

    def counters_with_prefix(self, prefix: str) -> dict[str, int]:
        """Counter values whose names start with ``prefix`` (e.g. ``fault.``).

        A convenience for namespaced catalogs — recovery assertions read
        the whole ``fault.*`` family in one call instead of probing names
        one by one. Counters that never fired are simply absent.
        """
        return {
            c.name: c.value
            for c in self.counters.values()
            if c.name.startswith(prefix)
        }

    def histogram(self, name: str) -> Histogram:
        """Get-or-create the named histogram."""
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the named histogram."""
        self.histogram(name).observe(value)

    # ------------------------------------------------------------------ #
    # activation
    # ------------------------------------------------------------------ #

    @contextmanager
    def activate(self) -> Iterator["RunTrace"]:
        """Install as the ambient trace for the enclosed block.

        Re-entrant in the nesting sense: the previous ambient trace (if
        any) is restored on exit.
        """
        global _current
        prev = _current
        _current = self
        try:
            yield self
        finally:
            _current = prev

    # ------------------------------------------------------------------ #
    # analysis
    # ------------------------------------------------------------------ #

    def roots(self) -> list[Span]:
        """Top-level spans in start order."""
        return [s for s in self.spans if s.parent == -1]

    def children(self, span: Span) -> list[Span]:
        """Direct children of ``span`` in start order."""
        return [s for s in self.spans if s.parent == span.index]

    def find(self, name: str) -> list[Span]:
        """All spans with exactly this name."""
        return [s for s in self.spans if s.name == name]

    def total_s(self, name: str) -> float:
        """Summed duration of every span with this name (seconds)."""
        return sum(s.duration_s for s in self.spans if s.name == name)

    def stage_breakdown(self) -> dict[str, float]:
        """Seconds per top-level span name (summed over repeats)."""
        out: dict[str, float] = {}
        for s in self.roots():
            out[s.name] = out.get(s.name, 0.0) + s.duration_s
        return out

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (see docs/OBSERVABILITY.md)."""
        return {
            "schema": SCHEMA_VERSION,
            "name": self.name,
            "meta": self.meta,
            "spans": [
                {
                    "name": s.name,
                    "t0_s": s.t0,
                    "t1_s": max(s.t1, s.t0),
                    "parent": s.parent,
                    "attrs": s.attrs,
                }
                for s in self.spans
            ],
            "counters": {c.name: c.value for c in self.counters.values()},
            "histograms": {
                h.name: h.as_dict() for h in self.histograms.values()
            },
        }

    def to_json(self, indent: int | None = 1) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, default=_jsonify)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunTrace":
        """Rebuild a trace from :meth:`to_dict` output (round-trip safe)."""
        trace = cls(data.get("name", "run"), **data.get("meta", {}))
        for i, s in enumerate(data.get("spans", ())):
            trace.add_span(
                s["name"], s["t0_s"], s["t1_s"], parent=s.get("parent", -1),
                **s.get("attrs", {}),
            )
            trace.spans[i].index = i
        for name, value in data.get("counters", {}).items():
            trace.counter(name).value = int(value)
        for name, summ in data.get("histograms", {}).items():
            h = trace.histogram(name)
            h.count = int(summ["count"])
            h.total = float(summ["total"])
            if h.count:
                h.min = float(summ["min"])
                h.max = float(summ["max"])
        return trace

    @classmethod
    def from_json(cls, text: str) -> "RunTrace":
        """Rebuild a trace from a JSON string."""
        return cls.from_dict(json.loads(text))


def _jsonify(obj: Any) -> Any:
    """Fallback encoder: numpy scalars and anything with item()/tolist()."""
    for attr in ("item", "tolist"):
        fn = getattr(obj, attr, None)
        if callable(fn):
            return fn()
    return str(obj)


# --------------------------------------------------------------------------- #
# module-level instrumentation entry points (the engine calls only these)
# --------------------------------------------------------------------------- #


def current_trace() -> RunTrace | None:
    """The ambient trace, or None when observability is disabled."""
    return _current


def trace_span(name: str, **attrs: Any):
    """Open a span on the ambient trace; no-op singleton when disabled.

    Disabled mode allocates nothing when called without attributes — the
    identical ``_NullSpan`` object is returned every time.
    """
    t = _current
    if t is None:
        return _NULL_SPAN
    return t.span(name, **attrs)


def add_count(name: str, n: int = 1) -> None:
    """Increment a counter on the ambient trace (no-op when disabled)."""
    t = _current
    if t is not None:
        t.count(name, n)


def observe(name: str, value: float) -> None:
    """Record a histogram sample on the ambient trace (no-op when disabled)."""
    t = _current
    if t is not None:
        t.observe(name, value)
