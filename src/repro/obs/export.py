"""Exporters for :class:`repro.obs.RunTrace`: JSON, Chrome trace, text.

Three consumers, three formats:

* :func:`write_run_trace` / :func:`load_run_trace` — the structured JSON
  record (one file per run) that ``bench`` archives and CI uploads as an
  artifact; round-trips losslessly through :meth:`RunTrace.from_dict`;
* :func:`chrome_trace_events` / :func:`write_chrome_trace` — Chrome
  trace-event JSON for ``chrome://tracing`` / Perfetto: nested stage spans
  render as a flame chart, so the merge tree's per-level timing is visible
  at a glance. The same emitter serves wall-clock traces (this module) and
  modeled-time traces (:mod:`repro.gpu.trace` builds a ``RunTrace`` from a
  cost-model breakdown and feeds it here);
* :func:`format_profile` — the human-readable stage table behind
  ``python -m repro.bench --profile``.

All span timestamps in a ``RunTrace`` are seconds; Chrome events are
microseconds (the format's convention).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.trace import RunTrace

__all__ = [
    "chrome_trace_events",
    "format_profile",
    "load_run_trace",
    "write_chrome_trace",
    "write_run_trace",
]

_US = 1e6  # chrome trace timestamps are microseconds


def write_run_trace(trace: RunTrace, path: str | Path) -> Path:
    """Write the structured JSON record for one run; returns the path."""
    path = Path(path)
    path.write_text(trace.to_json())
    return path


def load_run_trace(path: str | Path) -> RunTrace:
    """Load a structured JSON record written by :func:`write_run_trace`."""
    return RunTrace.from_json(Path(path).read_text())


def chrome_trace_events(trace: RunTrace, *, pid: int = 0) -> list[dict]:
    """Convert a trace to Chrome trace-event dicts (``ph: "X"`` spans).

    Spans keep their nesting through timestamp containment (the viewer
    stacks contained events), and a span may route itself to a different
    row via a ``tid`` attribute — the pool backend uses that to draw each
    worker on its own line. Counters and histogram summaries ride along in
    a final metadata event so nothing in the trace is dropped.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": trace.name},
        }
    ]
    for sp in trace.spans:
        args = {k: v for k, v in sp.attrs.items() if k != "tid"}
        events.append(
            {
                "name": sp.name,
                "ph": "X",
                "pid": pid,
                "tid": int(sp.attrs.get("tid", 0)),
                "ts": sp.t0 * _US,
                "dur": sp.duration_s * _US,
                "args": args,
            }
        )
    if trace.counters or trace.histograms:
        events.append(
            {
                "name": "run metrics",
                "ph": "M",
                "pid": pid,
                "args": {
                    "counters": {c.name: c.value for c in trace.counters.values()},
                    "histograms": {
                        h.name: h.as_dict() for h in trace.histograms.values()
                    },
                },
            }
        )
    return events


def write_chrome_trace(trace: RunTrace, path: str | Path) -> Path:
    """Write ``{"traceEvents": [...]}`` JSON for chrome://tracing."""
    path = Path(path)
    path.write_text(json.dumps({"traceEvents": chrome_trace_events(trace)}, indent=1))
    return path


def format_profile(trace: RunTrace, *, wall_s: float | None = None) -> str:
    """Render the stage table printed by ``python -m repro.bench --profile``.

    Top-level spans become stages; ``merge.level`` children are expanded
    one row per tree level. ``wall_s`` (seconds) sets the 100% reference —
    defaults to the span extent of the trace.
    """
    roots = trace.roots()
    if wall_s is None:
        wall_s = max((s.t1 for s in trace.spans), default=0.0)
    lines = [f"profile: {trace.name}"]
    for key, value in trace.meta.items():
        lines.append(f"  {key}: {value}")
    lines.append(f"  wall time: {wall_s * 1e3:.2f} ms")
    lines.append("")
    lines.append(f"{'stage':<34}{'time (ms)':>12}{'% wall':>9}")
    lines.append("-" * 55)

    covered = 0.0
    for sp in roots:
        covered += sp.duration_s
        lines.append(_row(sp.name, sp.duration_s, wall_s))
        for child in trace.children(sp):
            label = child.name
            if "level" in child.attrs:
                label = f"{child.name}[{child.attrs['level']}]"
            lines.append(_row("  " + label, child.duration_s, wall_s))
    lines.append("-" * 55)
    lines.append(_row("stages total", covered, wall_s))
    pct = 100.0 * covered / wall_s if wall_s > 0 else 0.0
    lines.append(f"(stage spans cover {pct:.1f}% of measured wall time)")

    if trace.counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(trace.counters):
            lines.append(f"  {name:<40}{trace.counters[name].value:>14,}")
    if trace.histograms:
        lines.append("")
        lines.append("histograms (count / mean / max):")
        for name in sorted(trace.histograms):
            h = trace.histograms[name]
            lines.append(
                f"  {name:<40}{h.count:>6}  {h.mean * 1e3:9.3f} ms"
                f"  {(h.max if h.count else 0.0) * 1e3:9.3f} ms"
            )
    return "\n".join(lines)


def _row(label: str, dur_s: float, wall_s: float) -> str:
    pct = 100.0 * dur_s / wall_s if wall_s > 0 else 0.0
    return f"{label:<34}{dur_s * 1e3:>12.3f}{pct:>8.1f}%"
