"""Shard coordinator: cross-host scale-out with hierarchical merge.

:class:`ShardCoordinator` makes the paper's "scaling out" title literal:
the input is sharded across N hosts, each host's
:class:`~repro.dist.agent.HostAgent` runs the existing per-machine
:class:`~repro.core.mp_executor.ScaleoutPool` over its shard and streams
back the shard's ``speculated -> ending`` map, and the coordinator
composes the host-level maps with the *same* binary tree merge
(:func:`repro.core.merge_par.merge_parallel` — delayed invalidation
plus fix-up descent) the pool applies to its workers and the simulated
GPU applies to its blocks. The merge is associative semi-join
composition, so the three-level hierarchy (chunk -> worker -> host) is
invisible to the result: bit-exact against the sequential reference.

Host supervision generalizes PR 4's worker supervision one level up,
reusing its policy objects verbatim:

* **heartbeats** — agents answer pings from their connection reader even
  while a shard computes, so the coordinator can tell slow from dead;
* **EWMA per-shard deadlines** — :class:`repro.core.resilience.DeadlineModel`
  over each host's measured bytes/sec;
* **hedged re-dispatch** — a shard past its deadline is speculatively
  re-dispatched to the least-loaded live spare; first result wins,
  stale and duplicate results are dropped by dispatch sequence number;
* **bounded retry with seeded backoff** — :class:`repro.core.resilience.RetryPolicy`
  with a deterministic jitter RNG;
* **quorum-gated degrade ladder** — a dead host's shards are re-sharded
  to survivors; below quorum (or past the run's wall-clock guard, or
  out of retries) the run degrades to a local
  :class:`~repro.core.mp_executor.ScaleoutPool` and finally to the
  in-process engine, always exact, flagged ``degraded=True``.

Network failure drills come from :mod:`repro.dist.netfaults`; every
decision is visible under ``dist.*`` spans and counters.
"""

from __future__ import annotations

import math
import queue
import random
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import run_inprocess_fallback
from repro.core.lookback import speculate, state_prior
from repro.core.merge_par import merge_parallel
from repro.core.mp_executor import ScaleoutPool
from repro.core.predictor import dfa_fingerprint
from repro.core.resilience import (
    DeadlineModel,
    RecoveryEvent,
    RetryPolicy,
    SupervisionReport,
)
from repro.core.types import ChunkResults, ExecStats
from repro.dist import transport
from repro.dist.netfaults import NetFaultPlan, chaos_net_plan_from_env
from repro.dist.transport import TransportError, TransportTimeout
from repro.fsm.dfa import DFA
from repro.obs.trace import add_count, observe, trace_span
from repro.workloads.chunking import plan_chunks

__all__ = ["DistConfig", "DistResult", "ShardCoordinator", "run_distributed"]


@dataclass(frozen=True)
class DistConfig:
    """Everything the coordinator needs to shard, supervise, and degrade.

    ``k`` is the speculation width of the *host boundary* rows (and of
    every host's pool — the lane count must agree across the hierarchy);
    ``None`` is spec-N: exact maps, zero cross-host re-execution, the
    right default for modest machines. ``shards_per_host`` > 1 carves
    more shards than hosts so recovery moves smaller pieces.
    ``local_fallback_workers`` >= 2 inserts the degrade-to-local-pool
    rung before the in-process engine. ``run_timeout_s`` is the
    never-hang guard: a run that cannot finish over the network inside
    it degrades instead. ``seed`` makes retry backoff jitter
    reproducible.

    ``reuse_staged_inputs`` keeps the last staged input generation on
    the agents, so re-running the *same array object* over the same
    shard plan ships only boundary rows (the host got its shard once).
    Staging is keyed on array identity: disable this if a caller
    mutates the input array in place between runs.
    """

    k: int | None = None
    sub_chunks_per_worker: int = 16
    lookback: int = 8
    kernel: str = "auto"
    shards_per_host: int = 1
    heartbeat_interval_s: float = 0.5
    heartbeat_timeout_s: float = 3.0
    connect_timeout_s: float = 5.0
    poll_interval_s: float = 0.02
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    deadline: DeadlineModel = field(
        default_factory=lambda: DeadlineModel(
            floor_s=2.0, bytes_per_sec_floor=1e6, safety_factor=8.0
        )
    )
    quorum_fraction: float = 0.5
    hedge: bool = True
    local_fallback_workers: int = 0
    run_timeout_s: float = 60.0
    seed: int = 0
    reuse_staged_inputs: bool = True


@dataclass
class DistResult:
    """One distributed run's outcome.

    ``degraded`` is True only when the degrade ladder left the network
    (local pool or in-process engine); ``ladder`` names the rung that
    produced the result (``""`` — fully distributed, ``"reshard"`` —
    distributed after re-sharding around failures, ``"local_pool"``,
    ``"inprocess"``). ``report`` is the host-level supervision log, the
    same shape workers produce.
    """

    final_state: int
    num_hosts: int
    num_shards: int
    stats: ExecStats
    degraded: bool = False
    ladder: str = ""
    report: SupervisionReport | None = None
    reexec_shards: tuple[int, ...] = ()

    @property
    def recovery_events(self) -> list[RecoveryEvent]:
        """The supervision action log (empty on a fault-free run)."""
        return [] if self.report is None else self.report.events


class _Host:
    """Coordinator-side state of one agent link."""

    def __init__(self, idx: int, address: tuple[str, int]) -> None:
        self.idx = idx
        self.address = address
        self.channel: transport.Channel | None = None
        self.reader: threading.Thread | None = None
        self.alive = False
        self.last_seen = 0.0
        self.bps: float | None = None
        self.inflight = 0


class _Shard:
    """Coordinator-side state of one shard of one run."""

    def __init__(self, sid: int, lo: int, hi: int, boundary: np.ndarray) -> None:
        self.sid = sid
        self.lo = lo
        self.hi = hi
        self.boundary = boundary
        self.end_row: np.ndarray | None = None
        self.attempts = 0
        self.hedged = False
        self.host: int = -1
        self.deadline_ts = 0.0
        self.dispatch_ts = 0.0
        self.valid_seqs: set[int] = set()
        self.retry_ready_ts: float | None = None

    @property
    def resolved(self) -> bool:
        return self.end_row is not None

    @property
    def nbytes(self) -> int:
        return (self.hi - self.lo) * 4


class ShardCoordinator:
    """Shard input across hosts, supervise them, tree-merge their maps.

    Construction connects to every address, performs the ``hello``
    handshake, and publishes the machine (table + accepting mask + run
    parameters) **once** — every later :meth:`run` ships only shard
    data, boundary rows, and ids. Hosts that die stay dead for this
    coordinator's lifetime (callers needing fresh topology build a new
    coordinator); as long as one host lives the runs stay distributed,
    and below that every run still completes exactly via the degrade
    ladder.

    Close the coordinator when done — it owns sockets, reader threads,
    and (after a local-pool degrade) pool resources. The agents and
    their lifetimes belong to the caller.
    """

    def __init__(
        self,
        dfa: DFA,
        addresses: list[tuple[str, int]],
        *,
        config: DistConfig | None = None,
        net_faults: NetFaultPlan | None = None,
    ) -> None:
        if not addresses:
            raise ValueError("at least one host address is required")
        self.dfa = dfa
        self.config = config if config is not None else DistConfig()
        if net_faults is None:
            net_faults = chaos_net_plan_from_env(len(addresses))
        self.net_faults = (
            net_faults if net_faults is not None else NetFaultPlan()
        )
        self._prior = state_prior(dfa)
        self._rng = random.Random(self.config.seed)
        self._fingerprint = dfa_fingerprint(dfa)
        k = self.config.k
        self.k_eff = (
            dfa.num_states
            if (k is None or k >= dfa.num_states)
            else int(k)
        )
        self._events: queue.Queue = queue.Queue()
        self._runs = 0
        self._seq = 0
        self._closed = False
        # Staged-input generation (see DistConfig.reuse_staged_inputs).
        self._staged: set[tuple[int, int]] = set()
        self._staged_ref: np.ndarray | None = None
        self._staged_spans: tuple[tuple[int, int], ...] | None = None
        self._staged_gen = -1
        self._local_pool: ScaleoutPool | None = None
        self.hosts = [
            _Host(i, tuple(addr)) for i, addr in enumerate(addresses)
        ]
        with trace_span("dist.connect", hosts=len(self.hosts)):
            for host in self.hosts:
                self._connect_host(host)
        add_count("dist.hosts", self.live_count)
        with trace_span("dist.publish", hosts=self.live_count):
            self._publish_machine()

    # ------------------------------------------------------------------ #
    # link management
    # ------------------------------------------------------------------ #

    def _connect_host(self, host: _Host) -> None:
        """Open one agent link and start its reader thread."""
        try:
            host.channel = transport.connect(
                host.address,
                timeout=self.config.connect_timeout_s,
                host=host.idx,
                faults=self.net_faults,
            )
            host.channel.send({"type": "hello"})
        except TransportError:
            host.alive = False
            return
        host.alive = True
        host.last_seen = time.monotonic()
        host.reader = threading.Thread(
            target=self._reader_loop,
            args=(host,),
            name=f"repro-dist-reader-{host.idx}",
            daemon=True,
        )
        host.reader.start()

    def _reader_loop(self, host: _Host) -> None:
        """Pump one host's messages into the event queue until EOF."""
        ch = host.channel
        while not self._closed and ch is not None and not ch.closed:
            try:
                header, arrays = ch.recv(timeout=0.2)
            except TransportTimeout:
                continue
            except TransportError:
                break
            self._events.put(("msg", host.idx, header, arrays))
        self._events.put(("closed", host.idx, None, None))

    def _mark_dead(
        self, host: _Host, report: SupervisionReport | None, reason: str
    ) -> None:
        """Transition one host to dead (idempotent) and log it."""
        if not host.alive:
            return
        host.alive = False
        if host.channel is not None:
            host.channel.close()
        add_count("dist.host_deaths")
        if report is not None:
            report.worker_deaths += 1
            report.record("host_death", worker=host.idx, detail=reason)

    @property
    def live_count(self) -> int:
        """Hosts currently believed alive."""
        return sum(1 for h in self.hosts if h.alive)

    def _live_hosts(self) -> list[_Host]:
        return [h for h in self.hosts if h.alive]

    def _send(
        self,
        host: _Host,
        header: dict,
        arrays: dict | None = None,
        report: SupervisionReport | None = None,
    ) -> bool:
        """Send on one link; a severed link marks the host dead."""
        if not host.alive or host.channel is None:
            return False
        try:
            return host.channel.send(header, arrays)
        except TransportError as exc:
            self._mark_dead(host, report, f"send failed: {exc}")
            return False

    def _publish_machine(self) -> None:
        """Ship the machine to every live host, once per coordinator."""
        cfg = self.config
        header = {
            "type": "publish_machine",
            "fingerprint": self._fingerprint,
            "start": int(self.dfa.start),
            "k": cfg.k,
            "sub_chunks": cfg.sub_chunks_per_worker,
            "lookback": cfg.lookback,
            "kernel": cfg.kernel,
        }
        arrays = {
            "table": self.dfa.table,
            "accepting": self.dfa.accepting,
        }
        nbytes = int(self.dfa.table.nbytes + self.dfa.accepting.nbytes)
        for host in self._live_hosts():
            if self._send(host, header, arrays):
                add_count("dist.publish_bytes", nbytes)
        # Handshake replies (hello_ok / machine_ok) drain through the
        # event queue during the first run's wait loop; nothing blocks.

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def run(
        self, inputs: np.ndarray, *, start: int | None = None
    ) -> DistResult:
        """Run the machine over ``inputs`` across the cluster.

        Bit-exact against :func:`repro.fsm.run.run_reference` under any
        combination of host deaths, partitions, duplicated or dropped
        messages, and slow links — failures resolve through re-dispatch,
        hedging, re-sharding, and finally the local degrade ladder.
        Never hangs: every network wait is bounded by deadlines,
        heartbeat timeouts, and the run's wall-clock guard.
        """
        if self._closed:
            raise RuntimeError("ShardCoordinator is closed")
        dfa = self.dfa
        start = dfa.start if start is None else int(start)
        if not 0 <= start < dfa.num_states:
            raise ValueError(
                f"start state {start} out of range [0, {dfa.num_states})"
            )
        inputs = np.ascontiguousarray(np.asarray(inputs, dtype=np.int32))
        if inputs.ndim != 1:
            raise ValueError(f"inputs must be 1-D, got shape {inputs.shape}")
        n = int(inputs.size)
        self._runs += 1
        stats = ExecStats(
            num_items=n, k=self.k_eff,
            num_states=dfa.num_states, num_inputs=dfa.num_inputs,
        )
        report = SupervisionReport()
        if n == 0:
            return DistResult(
                start, self.live_count, 0, stats, report=report
            )
        with trace_span(
            "dist.run", items=n, hosts=self.live_count, run=self._runs
        ):
            return self._run_supervised(inputs, start, stats, report)

    def _run_supervised(
        self,
        inputs: np.ndarray,
        start: int,
        stats: ExecStats,
        report: SupervisionReport,
    ) -> DistResult:
        dfa = self.dfa
        cfg = self.config
        n = int(inputs.size)
        t0 = time.monotonic()
        live = self._live_hosts()
        initial_hosts = len(self.hosts)
        quorum = max(1, math.ceil(cfg.quorum_fraction * initial_hosts))
        if not live:
            return self._degraded_result(
                inputs, start, stats, report, "no live hosts"
            )

        num_shards = max(
            1, min(len(live) * max(1, cfg.shards_per_host), n)
        )
        plan = plan_chunks(n, num_shards)
        stats.num_chunks = num_shards
        add_count("dist.shards", num_shards)
        run_dfa = dfa if start == dfa.start else dfa.with_start(start)

        # Shard-boundary speculation: look-back over the global input,
        # exactly the pool's segment-boundary logic one level up. Shard
        # 0 always carries the true start pinned.
        with trace_span("dist.speculate", shards=num_shards, k=self.k_eff):
            if cfg.k is not None and self.k_eff < dfa.num_states:
                boundary = speculate(
                    run_dfa, inputs, plan, self.k_eff,
                    lookback=cfg.lookback, prior=self._prior, stats=stats,
                )
                if not (boundary[0] == start).any():
                    boundary[0, 0] = start
            else:
                boundary = np.tile(
                    np.arange(dfa.num_states, dtype=np.int32),
                    (num_shards, 1),
                )

        rid = self._runs
        shards = [
            _Shard(
                sid,
                int(plan.starts[sid]),
                int(plan.starts[sid] + plan.lengths[sid]),
                boundary[sid],
            )
            for sid in range(num_shards)
        ]
        # Input staging is *generational*: agents keep shard bytes until
        # the coordinator stages a new generation, so re-running the same
        # (identical) input array ships only boundary rows over the wire
        # — the host received its shard once. Identity-keyed: a caller
        # that mutates the array in place must pass a fresh array (or
        # set ``reuse_staged_inputs=False``).
        spans = tuple((s.lo, s.hi) for s in shards)
        if not (
            cfg.reuse_staged_inputs
            and inputs is self._staged_ref
            and spans == self._staged_spans
        ):
            if self._staged:
                for host in self._live_hosts():
                    self._send(
                        host,
                        {"type": "drop_input", "run_id": self._staged_gen},
                        None,
                        report,
                    )
            self._staged = set()
            self._staged_ref = inputs
            self._staged_spans = spans
            self._staged_gen = rid
        staged = self._staged  # (host_idx, sid) with data
        gen = self._staged_gen

        # Stage each primary host's shards in one frame, then dispatch.
        with trace_span("dist.dispatch", shards=num_shards):
            for j, shard in enumerate(shards):
                host = live[j % len(live)]
                if (host.idx, shard.sid) in staged:
                    continue
                payload = {
                    f"shard_{shard.sid}": inputs[shard.lo:shard.hi]
                }
                if self._send(
                    host,
                    {
                        "type": "put_input",
                        "run_id": gen,
                        "shards": [[shard.sid, shard.hi - shard.lo]],
                    },
                    payload,
                    report,
                ):
                    staged.add((host.idx, shard.sid))
                    add_count("dist.publish_bytes", int(shard.nbytes))
            for j, shard in enumerate(shards):
                host = live[j % len(live)]
                self._dispatch(
                    rid, shard, host, inputs, staged, report, hedge=False
                )

        resharded = False
        last_ping = time.monotonic()
        # ------------------------------------------------------------- #
        # the supervision loop: PR 4's structure, hosts for workers
        # ------------------------------------------------------------- #
        with trace_span("dist.wait", shards=num_shards):
            while any(not s.resolved for s in shards):
                now = time.monotonic()
                if now - t0 > cfg.run_timeout_s:
                    return self._degraded_result(
                        inputs, start, stats, report,
                        f"run exceeded {cfg.run_timeout_s}s wall-clock guard",
                    )
                if self.live_count < quorum:
                    return self._degraded_result(
                        inputs, start, stats, report,
                        f"below quorum ({self.live_count}/{initial_hosts} "
                        f"hosts live, need {quorum})",
                    )

                # Heartbeats: ping live hosts; expire the silent ones.
                if now - last_ping >= cfg.heartbeat_interval_s:
                    last_ping = now
                    for host in self._live_hosts():
                        if self._send(
                            host, {"type": "ping", "t": now}, None, report
                        ):
                            add_count("dist.heartbeats")
                        if now - host.last_seen > cfg.heartbeat_timeout_s:
                            add_count("dist.heartbeat_timeouts")
                            self._mark_dead(
                                host, report,
                                f"no traffic for {cfg.heartbeat_timeout_s}s",
                            )
                            resharded |= self._reassign_shards(
                                rid, host, shards, inputs, staged, report
                            )

                # Deadline sweep: hedge first, then bounded retry.
                for shard in shards:
                    if shard.resolved:
                        continue
                    if (
                        shard.retry_ready_ts is not None
                        and now >= shard.retry_ready_ts
                    ):
                        shard.retry_ready_ts = None
                        target = self._pick_host(exclude=shard.host)
                        if target is None:
                            return self._degraded_result(
                                inputs, start, stats, report,
                                "no live host for retry",
                            )
                        self._dispatch(
                            rid, shard, target, inputs, staged, report,
                            hedge=False,
                        )
                        continue
                    if shard.retry_ready_ts is None and now > shard.deadline_ts:
                        self._on_deadline(
                            rid, shard, shards, inputs, staged, report, now
                        )
                        if shard.attempts > cfg.retry.max_retries:
                            return self._degraded_result(
                                inputs, start, stats, report,
                                f"shard {shard.sid} out of retries",
                            )

                # Drain the event queue (bounded block = the poll tick).
                try:
                    kind, idx, header, arrays = self._events.get(
                        timeout=cfg.poll_interval_s
                    )
                except queue.Empty:
                    continue
                host = self.hosts[idx]
                if kind == "closed":
                    self._mark_dead(host, report, "connection closed")
                    resharded |= self._reassign_shards(
                        rid, host, shards, inputs, staged, report
                    )
                    continue
                host.last_seen = time.monotonic()
                self._on_message(host, header, arrays, shards, report)

            # Late deliveries: a message that raced the final resolve (an
            # injected duplicate, a hedge's second copy, a close event)
            # must still be folded into host state and the counter trail.
            # Under an armed fault plan the drain grants one poll tick so
            # a duplicate the reader queued a moment ago lands
            # deterministically; the production path stays non-blocking.
            grace = (
                0.0 if self.net_faults.empty else cfg.poll_interval_s
            )
            while True:
                try:
                    kind, idx, header, arrays = self._events.get(
                        timeout=grace
                    )
                except queue.Empty:
                    break
                host = self.hosts[idx]
                if kind == "closed":
                    self._mark_dead(host, report, "connection closed")
                    continue
                host.last_seen = time.monotonic()
                self._on_message(host, header, arrays, shards, report)

        # ------------------------------------------------------------- #
        # hierarchical merge: the paper's tree, host maps for leaves
        # ------------------------------------------------------------- #
        with trace_span("dist.merge", shards=num_shards):
            end_rows = np.stack([s.end_row for s in shards])
            spec_rows = np.stack([s.boundary for s in shards])
            if num_shards == 1:
                lane = int(np.flatnonzero(spec_rows[0] == start)[0])
                final = int(end_rows[0][lane])
                reexec: tuple[int, ...] = ()
            else:
                results = ChunkResults(
                    spec=spec_rows,
                    end=end_rows,
                    valid=np.ones_like(spec_rows, dtype=bool),
                )
                final_state, tree = merge_parallel(
                    run_dfa, inputs, plan, results,
                    reexec="delayed", stats=stats,
                )
                final = int(final_state)
                reexec = tuple(tree.reexecuted)
                stats.success_total += num_shards - 1
                stats.success_hits += (num_shards - 1) - sum(
                    1 for c in reexec if c > 0
                )
            if reexec:
                add_count("dist.merge.reexecs", len(reexec))
            add_count("dist.merge.shard_maps", num_shards)
        observe("dist.run_s", time.monotonic() - t0)
        if resharded:
            add_count("dist.resharded_runs")
        return DistResult(
            final,
            self.live_count,
            num_shards,
            stats,
            degraded=False,
            ladder="reshard" if resharded else "",
            report=report if report.events else None,
            reexec_shards=reexec,
        )

    # ------------------------------------------------------------------ #
    # supervision actions
    # ------------------------------------------------------------------ #

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _pick_host(self, exclude: int = -1) -> _Host | None:
        """The least-loaded live host, preferring one not excluded."""
        live = self._live_hosts()
        if not live:
            return None
        preferred = [h for h in live if h.idx != exclude] or live
        return min(preferred, key=lambda h: (h.inflight, h.idx))

    def _dispatch(
        self,
        rid: int,
        shard: _Shard,
        host: _Host,
        inputs: np.ndarray,
        staged: set[tuple[int, int]],
        report: SupervisionReport,
        *,
        hedge: bool,
    ) -> None:
        """Send one shard dispatch; inline the data if never staged there.

        A dispatch swallowed by a drop or partition drill is *not*
        special-cased: its deadline simply expires and the sweep
        recovers it — the same path a genuinely lossy network takes.
        """
        seq = self._next_seq()
        header = {
            "type": "run_shard",
            "run_id": rid,
            "sid": shard.sid,
            "seq": seq,
            "gen": self._staged_gen,
        }
        arrays: dict = {"boundary": shard.boundary}
        if (host.idx, shard.sid) not in staged:
            arrays["data"] = inputs[shard.lo:shard.hi]
            staged.add((host.idx, shard.sid))
        shard.valid_seqs.add(seq)
        if not hedge:
            shard.host = host.idx
            shard.attempts += 1
        shard.dispatch_ts = time.monotonic()
        shard.deadline_ts = shard.dispatch_ts + self.config.deadline.deadline_s(
            shard.nbytes, host.bps
        )
        host.inflight += 1
        add_count("dist.dispatches")
        self._send(host, header, arrays, report)

    def _on_deadline(
        self,
        rid: int,
        shard: _Shard,
        shards: list[_Shard],
        inputs: np.ndarray,
        staged: set[tuple[int, int]],
        report: SupervisionReport,
        now: float,
    ) -> None:
        """One shard blew its deadline: hedge once, then retry with backoff."""
        report.deadline_expirations += 1
        add_count("dist.deadline_expirations")
        report.record(
            "deadline_expired", worker=shard.host, task=shard.sid,
            attempt=shard.attempts,
        )
        spare = self._pick_host(exclude=shard.host)
        if (
            self.config.hedge
            and not shard.hedged
            and spare is not None
            and spare.idx != shard.host
        ):
            # Hedge: race a spare against the original; both results
            # stay valid and the first one back wins.
            shard.hedged = True
            add_count("dist.hedges")
            report.record(
                "hedged", worker=spare.idx, task=shard.sid,
                attempt=shard.attempts,
            )
            self._dispatch(
                rid, shard, spare, inputs, staged, report, hedge=True
            )
            return
        if shard.attempts > self.config.retry.max_retries:
            return  # the caller degrades
        report.retries += 1
        add_count("dist.retries")
        delay = self.config.retry.delay_s(shard.attempts, self._rng)
        shard.retry_ready_ts = now + delay
        report.record(
            "retry_scheduled", task=shard.sid, attempt=shard.attempts,
            detail=f"backoff {delay:.3f}s",
        )

    def _reassign_shards(
        self,
        rid: int,
        dead: _Host,
        shards: list[_Shard],
        inputs: np.ndarray,
        staged: set[tuple[int, int]],
        report: SupervisionReport,
    ) -> bool:
        """Re-shard a dead host's unresolved shards onto survivors."""
        moved = False
        for shard in shards:
            if shard.resolved or shard.host != dead.idx:
                continue
            target = self._pick_host(exclude=dead.idx)
            if target is None:
                continue  # quorum check in the main loop will degrade
            add_count("dist.redispatches")
            report.record(
                "reshard", worker=target.idx, task=shard.sid,
                detail=f"host {dead.idx} died",
            )
            self._dispatch(
                rid, shard, target, inputs, staged, report, hedge=False
            )
            moved = True
        return moved

    def _on_message(
        self,
        host: _Host,
        header: dict,
        arrays: dict,
        shards: list[_Shard],
        report: SupervisionReport,
    ) -> None:
        """Fold one agent message into run state."""
        msg = str(header.get("type", ""))
        if msg == "shard_map":
            sid = int(header.get("sid", -1))
            seq = int(header.get("seq", -1))
            if not 0 <= sid < len(shards):
                return
            shard = shards[sid]
            if shard.resolved or seq not in shard.valid_seqs:
                add_count("dist.duplicates_dropped")
                return
            end_row = np.ascontiguousarray(
                arrays.get("end_row"), dtype=np.int32
            )
            if end_row.shape != shard.boundary.shape or not bool(
                ((end_row >= 0) & (end_row < self.dfa.num_states)).all()
            ):
                # A corrupt map is a failed attempt, not a result.
                report.corrupt_results += 1
                add_count("dist.corrupt_maps")
                return
            shard.end_row = end_row
            host.inflight = max(0, host.inflight - 1)
            elapsed = time.monotonic() - shard.dispatch_ts
            if elapsed > 1e-9:
                bps = shard.nbytes / elapsed
                host.bps = (
                    bps if host.bps is None else 0.7 * host.bps + 0.3 * bps
                )
            add_count("dist.shard_maps")
            observe("dist.shard_s", elapsed)
        elif msg == "error":
            report.worker_errors += 1
            add_count("dist.agent_errors")
            sid = int(header.get("sid", -1))
            if 0 <= sid < len(shards) and not shards[sid].resolved:
                # Fail fast: skip the remaining deadline and let the
                # sweep retry it on the backoff schedule.
                shards[sid].deadline_ts = 0.0
            report.record(
                "agent_error", worker=host.idx, task=sid,
                detail=str(header.get("detail", ""))[:200],
            )
        # hello_ok / machine_ok / pong / input_ok need no action beyond
        # the liveness refresh the caller already applied.

    # ------------------------------------------------------------------ #
    # degrade ladder
    # ------------------------------------------------------------------ #

    def _degraded_result(
        self,
        inputs: np.ndarray,
        start: int,
        stats: ExecStats,
        report: SupervisionReport,
        reason: str,
    ) -> DistResult:
        """Walk the local rungs: pool (when configured), then in-process."""
        cfg = self.config
        report.degraded = True
        report.degrade_reason = reason
        add_count("dist.degraded_runs")
        with trace_span("dist.degrade", reason=reason):
            if cfg.local_fallback_workers >= 2:
                try:
                    if self._local_pool is None or self._local_pool.closed:
                        self._local_pool = ScaleoutPool(
                            self.dfa,
                            num_workers=cfg.local_fallback_workers,
                            k=cfg.k,
                            sub_chunks_per_worker=cfg.sub_chunks_per_worker,
                            lookback=cfg.lookback,
                            kernel=cfg.kernel,
                        )
                    res = self._local_pool.run(inputs, start=start)
                    report.record("degrade", detail=f"local_pool: {reason}")
                    return DistResult(
                        int(res.final_state),
                        self.live_count,
                        0,
                        stats.merged_with(res.stats),
                        degraded=True,
                        ladder="local_pool",
                        report=report,
                    )
                except Exception:  # noqa: BLE001 - next rung catches all
                    add_count("dist.local_pool_failed")
            fb = run_inprocess_fallback(
                self.dfa, inputs, start=start, k=cfg.k, kernel="lockstep"
            )
            report.record("degrade", detail=f"inprocess: {reason}")
            return DistResult(
                int(fb.final_state),
                self.live_count,
                0,
                stats.merged_with(fb.stats),
                degraded=True,
                ladder="inprocess",
                report=report,
            )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran."""
        return self._closed

    def close(self) -> None:
        """Say goodbye to live hosts and release every local resource."""
        if self._closed:
            return
        self._closed = True
        for host in self.hosts:
            if host.alive and host.channel is not None:
                try:
                    if self._staged:
                        host.channel.send(
                            {"type": "drop_input", "run_id": self._staged_gen}
                        )
                    host.channel.send({"type": "bye"})
                except TransportError:
                    pass
            if host.channel is not None:
                host.channel.close()
            if host.reader is not None:
                host.reader.join(timeout=2.0)
        if self._local_pool is not None:
            self._local_pool.close()
            self._local_pool = None

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def run_distributed(
    dfa: DFA,
    inputs: np.ndarray,
    *,
    start: int | None = None,
    coordinator: ShardCoordinator | None = None,
    num_agents: int = 2,
    agent_workers: int = 1,
    config: DistConfig | None = None,
    net_faults: NetFaultPlan | None = None,
) -> DistResult:
    """One distributed run, with or without standing infrastructure.

    With ``coordinator``, runs on its cluster (the other keyword
    arguments are then taken from it). Without one, an ephemeral
    :class:`~repro.dist.agent.LocalCluster` of ``num_agents`` loopback
    agents is built and torn down around the call — the zero-setup path
    behind ``run_speculative(backend="dist")``.
    """
    if coordinator is not None:
        return coordinator.run(inputs, start=start)
    from repro.dist.agent import LocalCluster

    with LocalCluster(num_agents, agent_workers=agent_workers) as cluster:
        with ShardCoordinator(
            dfa,
            cluster.addresses,
            config=config,
            net_faults=net_faults,
        ) as coord:
            return coord.run(inputs, start=start)
