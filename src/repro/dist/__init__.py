"""Cross-host scale-out: shard, run per-host pools, tree-merge the maps.

The paper's title promise — *scaling out* speculative FSM execution —
generalizes past one machine because the merge is an associative
semi-join composition (:func:`repro.core.merge_par.compose_maps`): each
host returns its shard's ``speculated -> ending`` map and the merge
topology (worker tree inside a host, host tree across the cluster) is
invisible to the result. This package adds the cross-host level:

* :mod:`repro.dist.transport` — a length-prefixed JSON+binary TCP frame
  protocol reusing the pool's publish-once/dispatch-names discipline
  (tables ship once per coordinator lifetime, dispatches ship names and
  a ``k``-entry boundary row);
* :mod:`repro.dist.agent` — :class:`HostAgent`, one per host, embedding
  the existing :class:`repro.core.mp_executor.ScaleoutPool` (native
  backend and out-of-order scoreboard included) behind the wire
  protocol, plus :class:`LocalCluster` for N-agent localhost topologies;
* :mod:`repro.dist.coordinator` — :class:`ShardCoordinator`, which
  shards the input across hosts, supervises them with heartbeats and
  EWMA per-shard deadlines (host-level reuse of PR 4's
  :class:`repro.core.resilience.DeadlineModel` / ``RetryPolicy``),
  hedges late shards to spare hosts, and walks a quorum-gated degrade
  ladder (dead host -> re-shard to survivors -> local pool ->
  in-process engine, flagged ``degraded=True``);
* :mod:`repro.dist.netfaults` — deterministic network failure drills
  (drop/delay/duplicate/truncate/partition/crash) with the same
  exactly-once discipline as :mod:`repro.core.faultinject`, armed in CI
  via ``REPRO_CHAOS``.

Everything is observable under ``dist.*`` spans and counters on the
ambient :mod:`repro.obs` trace; see ``docs/DISTRIBUTED.md``.
"""

from repro.dist.agent import HostAgent, LocalCluster
from repro.dist.coordinator import (
    DistConfig,
    DistResult,
    ShardCoordinator,
    run_distributed,
)
from repro.dist.netfaults import (
    NetFaultPlan,
    NetFaultSpec,
    chaos_net_plan_from_env,
    crash_host,
    delay_message,
    drop_message,
    duplicate_message,
    partition_host,
    truncate_frame,
)
from repro.dist.transport import Channel, TransportClosed, TransportError

__all__ = [
    "Channel",
    "DistConfig",
    "DistResult",
    "HostAgent",
    "LocalCluster",
    "NetFaultPlan",
    "NetFaultSpec",
    "ShardCoordinator",
    "TransportClosed",
    "TransportError",
    "chaos_net_plan_from_env",
    "crash_host",
    "delay_message",
    "drop_message",
    "duplicate_message",
    "partition_host",
    "run_distributed",
    "truncate_frame",
]
