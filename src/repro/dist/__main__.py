"""CLI for the distributed layer: run an agent, or demo a local cluster.

``python -m repro.dist agent --port 9400 --workers 2`` runs one
:class:`~repro.dist.agent.HostAgent` in the foreground until SIGINT;
``python -m repro.dist demo --agents 3`` spins a loopback cluster, runs
a random machine over a random input through the
:class:`~repro.dist.coordinator.ShardCoordinator`, and checks the
answer against the sequential reference.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_agent(args: argparse.Namespace) -> int:
    """Serve one host agent in the foreground."""
    from repro.dist.agent import HostAgent

    agent = HostAgent(
        host=args.host, port=args.port, agent_workers=args.workers
    )
    print(f"repro.dist agent on {agent.address[0]}:{agent.address[1]} "
          f"({args.workers} workers)", flush=True)
    try:
        agent.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        agent.close()
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    """Run one distributed execution against the reference answer."""
    from repro.dist.agent import LocalCluster
    from repro.dist.coordinator import DistConfig, ShardCoordinator
    from repro.fsm.dfa import DFA
    from repro.fsm.run import run_reference

    rng = np.random.default_rng(args.seed)
    table = rng.integers(
        0, args.states, size=(8, args.states), dtype=np.int32
    )
    accepting = rng.random(args.states) < 0.3
    dfa = DFA(table=table, start=0, accepting=accepting)
    inputs = rng.integers(0, 8, size=args.items, dtype=np.int32)

    with LocalCluster(args.agents, agent_workers=args.workers) as cluster:
        with ShardCoordinator(
            dfa,
            cluster.addresses,
            config=DistConfig(shards_per_host=args.shards_per_host),
        ) as coord:
            res = coord.run(inputs)
    want = run_reference(dfa, inputs)
    ok = res.final_state == want
    print(
        f"demo: {args.agents} agents x {args.workers} workers, "
        f"{args.items} items, {res.num_shards} shards -> state "
        f"{res.final_state} (reference {want}) "
        f"[{'OK' if ok else 'MISMATCH'}]"
        + (f" degraded via {res.ladder}" if res.degraded else "")
    )
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.dist``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.dist",
        description="Distributed speculative FSM execution.",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_agent = sub.add_parser("agent", help="serve one host agent")
    p_agent.add_argument("--host", default="127.0.0.1")
    p_agent.add_argument("--port", type=int, default=0)
    p_agent.add_argument("--workers", type=int, default=1)
    p_agent.set_defaults(fn=_cmd_agent)

    p_demo = sub.add_parser("demo", help="loopback cluster smoke run")
    p_demo.add_argument("--agents", type=int, default=3)
    p_demo.add_argument("--workers", type=int, default=1)
    p_demo.add_argument("--items", type=int, default=200_000)
    p_demo.add_argument("--states", type=int, default=24)
    p_demo.add_argument("--shards-per-host", type=int, default=1)
    p_demo.add_argument("--seed", type=int, default=0)
    p_demo.set_defaults(fn=_cmd_demo)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
