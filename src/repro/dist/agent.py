"""Host agents: one per machine, a :class:`ScaleoutPool` behind TCP.

A :class:`HostAgent` is the per-host half of the cross-host topology:
it accepts one coordinator connection at a time, receives the DFA table
**once** (``publish_machine``), receives its input shard **once** per
run (``put_input``), and answers ``run_shard`` dispatches — which carry
only ids and a ``k``-entry boundary row — with the shard's
``speculated -> ending`` segment map, computed on the embedded
:class:`repro.core.mp_executor.ScaleoutPool` (native backend, worker
supervision, and chaos drills included, exactly as on a single
machine). The same publish-once/dispatch-names discipline the pool uses
over shared memory, over a socket.

Shard execution runs on a dedicated worker thread so the agent keeps
answering heartbeat pings while a shard computes — the coordinator can
tell *slow* from *dead*. Replies are serialized by a send lock.

:class:`LocalCluster` spins up N agents on daemon threads bound to
``127.0.0.1`` (real TCP through the loopback) — the topology the tests,
the benchmark, and the CI dist job drive. ``python -m repro.dist agent``
runs one agent standalone for a real multi-host deployment.
"""

from __future__ import annotations

import os
import queue
import socket
import threading

import numpy as np

from repro.core.faultinject import FaultPlan
from repro.core.mp_executor import ScaleoutPool
from repro.dist.transport import (
    Channel,
    TransportError,
    TransportTimeout,
)
from repro.fsm.dfa import DFA
from repro.obs.trace import add_count

__all__ = ["HostAgent", "LocalCluster"]

#: Messages the pool worker thread executes (everything else is answered
#: inline by the connection reader, so liveness probes never queue
#: behind a computing shard).
_POOL_MESSAGES = ("run_shard", "run_exact")


class HostAgent:
    """One host's agent: the wire protocol around a local pool.

    Parameters
    ----------
    host, port:
        Bind address; port 0 (the default) picks a free port, exposed
        via :attr:`address` once constructed.
    agent_workers:
        Worker-process count of the embedded pool. ``1`` keeps shard
        maps in-process (no subprocess spawn) — the cheap topology for
        tests and small hosts.
    backend:
        Pool hot-path backend, ``"numpy"`` or ``"native"``.
    fault_plan:
        Deterministic worker-fault drills forwarded to the embedded
        pool (:class:`repro.core.faultinject.FaultPlan`); the pool's
        own ``REPRO_CHAOS`` arming applies when omitted, so the chaos
        CI job shakes host-internal recovery and cross-host recovery at
        once.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        agent_workers: int = 1,
        backend: str = "numpy",
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.agent_workers = int(agent_workers)
        self.backend = backend
        self.fault_plan = fault_plan
        self.pool: ScaleoutPool | None = None
        self.dfa: DFA | None = None
        self.machine_key: tuple | None = None
        self._shards: dict[tuple[int, int], np.ndarray] = {}
        self._stop = threading.Event()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(2)
        self._listener.settimeout(0.2)
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._conn: Channel | None = None

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #

    def serve_forever(self) -> None:
        """Accept coordinator connections until :meth:`close` (or ``die``)."""
        try:
            while not self._stop.is_set():
                try:
                    sock, _addr = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                self._conn = Channel(sock)
                try:
                    self._serve_connection(self._conn)
                finally:
                    self._conn.close()
                    self._conn = None
        finally:
            self.close()

    def _serve_connection(self, ch: Channel) -> None:
        """Drive one coordinator conversation to ``bye``/``die``/EOF."""
        send_lock = threading.Lock()
        work: queue.Queue = queue.Queue()

        def pool_worker() -> None:
            while True:
                item = work.get()
                if item is None:
                    return
                header, arrays = item
                try:
                    reply, reply_arrays = self._handle_pool(header, arrays)
                except Exception as exc:  # noqa: BLE001 - reported to peer
                    reply = {
                        "type": "error",
                        "detail": repr(exc),
                        "sid": header.get("sid", -1),
                        "seq": header.get("seq", -1),
                        "run_id": header.get("run_id", -1),
                    }
                    reply_arrays = None
                try:
                    with send_lock:
                        ch.send(reply, reply_arrays)
                except TransportError:
                    return

        worker = threading.Thread(
            target=pool_worker, name="repro-dist-agent-pool", daemon=True
        )
        worker.start()
        try:
            while not self._stop.is_set():
                try:
                    header, arrays = ch.recv(timeout=0.25)
                except TransportTimeout:
                    continue
                except TransportError:
                    return
                msg = str(header.get("type", ""))
                if msg == "bye":
                    return
                if msg == "die":
                    # The crash drill: this host is dead from here on.
                    self._stop.set()
                    return
                if msg in _POOL_MESSAGES:
                    work.put((header, arrays))
                    continue
                try:
                    reply, reply_arrays = self._handle_inline(header, arrays)
                except Exception as exc:  # noqa: BLE001 - reported to peer
                    reply = {"type": "error", "detail": repr(exc)}
                    reply_arrays = None
                try:
                    with send_lock:
                        ch.send(reply, reply_arrays)
                except TransportError:
                    return
        finally:
            work.put(None)
            worker.join(timeout=5.0)

    # ------------------------------------------------------------------ #
    # message handlers
    # ------------------------------------------------------------------ #

    def _handle_inline(
        self, header: dict, arrays: dict[str, np.ndarray]
    ) -> tuple[dict, dict | None]:
        """Fast-path messages: hello, ping, publish, input staging."""
        msg = str(header.get("type", ""))
        if msg == "hello":
            return {
                "type": "hello_ok",
                "pid": os.getpid(),
                "agent_workers": self.agent_workers,
            }, None
        if msg == "ping":
            return {"type": "pong", "t": header.get("t", 0.0)}, None
        if msg == "publish_machine":
            return self._publish_machine(header, arrays), None
        if msg == "put_input":
            run_id = int(header["run_id"])
            for sid, _n in header.get("shards", []):
                self._shards[(run_id, int(sid))] = np.ascontiguousarray(
                    arrays[f"shard_{int(sid)}"], dtype=np.int32
                )
            add_count("dist.agent.inputs_staged", len(header.get("shards", [])))
            return {"type": "input_ok", "run_id": run_id}, None
        if msg == "drop_input":
            run_id = int(header["run_id"])
            for key in [k for k in self._shards if k[0] == run_id]:
                del self._shards[key]
            return {"type": "input_dropped", "run_id": run_id}, None
        raise ValueError(f"unknown message type {msg!r}")

    def _publish_machine(
        self, header: dict, arrays: dict[str, np.ndarray]
    ) -> dict:
        """Build (or reuse) the DFA and its pool from a publish frame."""
        fp = str(header.get("fingerprint", ""))
        # Reuse requires the *whole* run configuration to match, not just
        # the machine: a pool built for one speculation width cannot fold
        # boundary rows of another.
        key = (
            fp,
            header.get("k"),
            int(header.get("sub_chunks", 16)),
            int(header.get("lookback", 8)),
            str(header.get("kernel", "auto")),
        )
        if self.pool is not None and key == self.machine_key:
            return {"type": "machine_ok", "fingerprint": fp, "reused": True}
        if self.pool is not None:
            self.pool.close()
            self.pool = None
        table = np.ascontiguousarray(arrays["table"], dtype=np.int32)
        accepting = np.ascontiguousarray(arrays["accepting"], dtype=np.bool_)
        self.dfa = DFA(
            table=table, start=int(header["start"]), accepting=accepting
        )
        self.machine_key = key
        self.pool = ScaleoutPool(
            self.dfa,
            num_workers=self.agent_workers,
            k=header.get("k"),
            sub_chunks_per_worker=int(header.get("sub_chunks", 16)),
            lookback=int(header.get("lookback", 8)),
            kernel=str(header.get("kernel", "auto")),
            backend=self.backend,
            fault_plan=self.fault_plan,
        )
        add_count("dist.agent.machines_published")
        return {"type": "machine_ok", "fingerprint": fp, "reused": False}

    def _handle_pool(
        self, header: dict, arrays: dict[str, np.ndarray]
    ) -> tuple[dict, dict | None]:
        """Pool-thread messages: shard maps and exact shard runs."""
        if self.pool is None:
            raise RuntimeError("no machine published to this agent")
        msg = str(header.get("type", ""))
        run_id = int(header["run_id"])
        sid = int(header["sid"])
        seq = int(header.get("seq", 0))
        # Shard data is keyed by the coordinator's staging *generation*
        # (``gen``), not the run id: repeat runs over the same staged
        # input name the bytes instead of re-shipping them.
        gen = int(header.get("gen", run_id))
        if "data" in arrays:
            # A re-dispatch/hedge to a host that never staged this shard
            # ships the data inline, once; later dispatches name it.
            self._shards[(gen, sid)] = np.ascontiguousarray(
                arrays["data"], dtype=np.int32
            )
        data = self._shards.get((gen, sid))
        if data is None:
            raise KeyError(f"shard {sid} of run {run_id} was never staged")
        if msg == "run_shard":
            end_row = self.pool.run_map(data, arrays["boundary"])
            add_count("dist.agent.shards_run")
            return (
                {"type": "shard_map", "run_id": run_id, "sid": sid, "seq": seq},
                {"end_row": end_row},
            )
        if msg == "run_exact":
            res = self.pool.run(data, start=int(header["start"]))
            return {
                "type": "shard_final",
                "run_id": run_id,
                "sid": sid,
                "seq": seq,
                "final": int(res.final_state),
            }, None
        raise ValueError(f"unknown pool message type {msg!r}")

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def stopped(self) -> bool:
        """True once the agent left (or will leave) its serve loop."""
        return self._stop.is_set()

    def kill(self) -> None:
        """Hard-stop: sever the live connection and stop serving.

        The host-death drill — the coordinator sees an abrupt EOF, not a
        polite ``bye``.
        """
        self._stop.set()
        conn = self._conn
        if conn is not None:
            conn.close()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - best effort
            pass

    def close(self) -> None:
        """Stop serving and release the pool and sockets (idempotent)."""
        self._stop.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - best effort
            pass
        if self.pool is not None:
            self.pool.close()
            self.pool = None
        self._shards.clear()


class LocalCluster:
    """N host agents on daemon threads, bound to the loopback.

    The standard test/benchmark topology: real TCP framing and real
    per-host pools without needing N machines. Use as a context
    manager; :attr:`addresses` feeds
    :class:`repro.dist.coordinator.ShardCoordinator`.
    """

    def __init__(
        self,
        num_agents: int = 3,
        *,
        agent_workers: int = 1,
        backend: str = "numpy",
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if num_agents < 1:
            raise ValueError(f"num_agents must be >= 1, got {num_agents}")
        self.agents: list[HostAgent] = []
        self.threads: list[threading.Thread] = []
        try:
            for i in range(num_agents):
                agent = HostAgent(
                    agent_workers=agent_workers,
                    backend=backend,
                    fault_plan=fault_plan,
                )
                thread = threading.Thread(
                    target=agent.serve_forever,
                    name=f"repro-dist-agent-{i}",
                    daemon=True,
                )
                thread.start()
                self.agents.append(agent)
                self.threads.append(thread)
        except BaseException:
            self.close()
            raise

    @property
    def addresses(self) -> list[tuple[str, int]]:
        """The ``(host, port)`` endpoints, agent order."""
        return [a.address for a in self.agents]

    def kill(self, index: int) -> None:
        """Hard-kill agent ``index`` (the host-death drill)."""
        self.agents[index].kill()

    def close(self) -> None:
        """Stop every agent and join their threads (idempotent)."""
        for agent in self.agents:
            agent.close()
        for thread in self.threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
