"""Length-prefixed JSON+binary frames over TCP for the dist layer.

One frame is::

    MAGIC(4) | u32 body_len | u32 header_len | header_json | array bytes

Headers are plain JSON dicts (the message type rides ``header["type"]``);
numpy arrays ship as raw bytes after the header, described by the
reserved ``__arrays__`` header key (``[[name, dtype, shape], ...]`` in
payload order) — the same publish-once/dispatch-names discipline as the
shared-memory pool, without a serialization dependency: the stdlib and
numpy are the whole wire stack. msgpack would shave header bytes but is
not guaranteed present, and headers are tiny next to the arrays.

:class:`Channel` wraps a connected socket with framing, per-direction
message counters, and the coordinator-side network fault hook: every
send and receive consults an optional
:class:`repro.dist.netfaults.NetFaultPlan`, so deterministic
drop/delay/duplicate/truncate/partition/crash drills happen *in the
transport*, invisible to the protocol layers above — exactly where a
real flaky network would bite.
"""

from __future__ import annotations

import json
import socket
import struct
import time
from collections import deque

import numpy as np

from repro.dist.netfaults import NetFaultPlan
from repro.obs.trace import add_count

__all__ = [
    "Channel",
    "TransportClosed",
    "TransportError",
    "TransportTimeout",
    "connect",
    "recv_frame",
    "send_frame",
]

#: Frame magic: "Repro Frame, Dist, version 1".
MAGIC = b"RFD1"

#: Refuse frames beyond this size — a torn length prefix must not make
#: the receiver try to allocate terabytes.
MAX_FRAME_BYTES = 1 << 31

#: Cap on one blocking send: a wedged peer whose receive buffer never
#: drains turns into a :class:`TransportClosed` (-> dead host, recovered
#: by supervision) instead of hanging the coordinator forever.
SEND_TIMEOUT_S = 30.0

_HDR = struct.Struct("<4sII")


class TransportError(RuntimeError):
    """Base class for dist transport failures."""


class TransportClosed(TransportError):
    """The peer closed (or the link was severed) mid-conversation."""


class TransportTimeout(TransportError):
    """No complete frame arrived within the receive timeout."""


def _encode(header: dict, arrays: dict[str, np.ndarray] | None) -> bytes:
    """Serialize one frame to bytes."""
    blobs: list[bytes] = []
    meta = []
    for name, arr in (arrays or {}).items():
        arr = np.ascontiguousarray(arr)
        meta.append([name, arr.dtype.str, list(arr.shape)])
        blobs.append(arr.tobytes())
    header = dict(header)
    header["__arrays__"] = meta
    hdr = json.dumps(header, separators=(",", ":")).encode("utf-8")
    payload = b"".join(blobs)
    body_len = 4 + len(hdr) + len(payload)
    return _HDR.pack(MAGIC, body_len, len(hdr)) + hdr + payload


def send_frame(
    sock: socket.socket, header: dict, arrays: dict[str, np.ndarray] | None = None
) -> int:
    """Write one frame; returns the bytes sent."""
    frame = _encode(header, arrays)
    try:
        sock.sendall(frame)
    except (OSError, ValueError) as exc:
        raise TransportClosed(f"send failed: {exc!r}") from exc
    return len(frame)


def _recv_exact(sock: socket.socket, n: int, deadline: float | None) -> bytes:
    """Read exactly ``n`` bytes or raise (timeout / peer closed)."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TransportTimeout(f"timed out reading frame ({got}/{n}B)")
        try:
            if deadline is not None:
                sock.settimeout(remaining)
            chunk = sock.recv(n - got)
        except socket.timeout as exc:
            raise TransportTimeout(
                f"timed out reading frame ({got}/{n}B)"
            ) from exc
        except OSError as exc:
            raise TransportClosed(f"recv failed: {exc!r}") from exc
        if not chunk:
            raise TransportClosed("peer closed the connection")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def _decode_body(
    body: bytes, hdr_len: int
) -> tuple[dict, dict[str, np.ndarray]]:
    """Decode a frame body (JSON header + packed arrays)."""
    try:
        header = json.loads(body[:hdr_len].decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise TransportClosed(f"undecodable frame header: {exc!r}") from exc
    arrays: dict[str, np.ndarray] = {}
    off = hdr_len
    for name, dtype, shape in header.pop("__arrays__", []):
        dt = np.dtype(dtype)
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        nbytes = count * dt.itemsize
        if off + nbytes > len(body):
            raise TransportClosed(f"frame truncated inside array {name!r}")
        arrays[name] = (
            np.frombuffer(body, dtype=dt, count=count, offset=off)
            .reshape(shape)
            .copy()
        )
        off += nbytes
    return header, arrays


def recv_frame(
    sock: socket.socket, timeout: float | None = None
) -> tuple[dict, dict[str, np.ndarray]]:
    """Read one frame; returns ``(header, arrays)``.

    Raises :class:`TransportTimeout` when no complete frame arrives in
    ``timeout`` seconds and :class:`TransportClosed` on EOF or a
    malformed frame (a torn write is indistinguishable from a dead
    peer, and is treated as one).

    A timeout here abandons any partially-read frame, desynchronizing
    the stream — callers that poll with short timeouts and keep the
    connection must go through :meth:`Channel.recv`, which buffers
    partial frames across calls.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    prefix = _recv_exact(sock, _HDR.size, deadline)
    magic, body_len, hdr_len = _HDR.unpack(prefix)
    if magic != MAGIC or body_len > MAX_FRAME_BYTES or hdr_len + 4 > body_len:
        raise TransportClosed(
            f"malformed frame (magic={magic!r}, body={body_len}, hdr={hdr_len})"
        )
    body = _recv_exact(sock, body_len - 4, deadline)
    return _decode_body(body, hdr_len)


class Channel:
    """One framed, fault-injectable connection to a peer.

    ``host`` and ``faults`` are the coordinator-side fault hook: every
    message crossing the channel (either direction) is offered to the
    :class:`NetFaultPlan`, and matched drills are applied *here* —
    dropped, delayed, duplicated, torn, or swallowed by an open
    partition window — before the protocol layer sees anything. Agents
    construct channels with no plan and get plain framing.

    Not thread-safe for concurrent sends; the coordinator serializes
    sends per channel and dedicates one reader thread per channel.
    """

    def __init__(
        self,
        sock: socket.socket,
        *,
        host: int = -1,
        faults: NetFaultPlan | None = None,
    ) -> None:
        self.sock = sock
        # Timeouts are per-socket-object state in Python; a dedicated
        # dup'd descriptor for the receive side lets a reader thread poll
        # with short timeouts while sends keep their own (long) timeout
        # on the original socket.
        self._recv_sock = sock.dup()
        sock.settimeout(SEND_TIMEOUT_S)
        self.host = int(host)
        self.faults = faults if faults is not None else NetFaultPlan()
        self.sent = 0
        self.received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.partition_until = 0.0
        self._pending: deque[tuple[dict, dict[str, np.ndarray]]] = deque()
        # Partial-frame accumulator for the resumable receive path: a
        # poll timeout mid-frame keeps what already arrived, so the next
        # call resumes at the exact stream position instead of treating
        # leftover body bytes as the next frame's preamble.
        self._rbuf = bytearray()
        self._closed = False

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran or a fault severed the link."""
        return self._closed

    def close(self) -> None:
        """Close the underlying sockets (idempotent).

        Shuts the socket down before closing the descriptors: an agent's
        pool worker subprocesses fork-inherit the connection fd, so a
        plain ``close`` would leave the kernel socket open in those
        copies and the peer would never see EOF — host death would only
        surface at the heartbeat timeout. ``shutdown`` acts on the
        socket itself, so the FIN goes out immediately.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:  # pragma: no cover - already disconnected
            pass
        for s in (self.sock, self._recv_sock):
            try:
                s.close()
            except OSError:  # pragma: no cover - best effort
                pass

    def _partitioned(self) -> bool:
        return time.monotonic() < self.partition_until

    def _fire(self, spec, counter: str) -> None:
        """Mark one drill fired on the plan and the obs counters."""
        if self.faults.mark_fired(spec.fault_id):
            add_count(counter)
            add_count("dist.faults_fired")

    # ------------------------------------------------------------------ #
    # send path
    # ------------------------------------------------------------------ #

    def send(
        self, header: dict, arrays: dict[str, np.ndarray] | None = None
    ) -> bool:
        """Send one message; returns False when a drill swallowed it.

        A ``truncate`` drill tears the frame and severs the link
        (raises :class:`TransportClosed`, as a real torn send would); a
        ``crash`` drill replaces the message with a ``die`` order to
        the agent and severs the link.
        """
        if self._closed:
            raise TransportClosed("channel is closed")
        msg_type = str(header.get("type", ""))
        repeats = 1
        for spec in self.faults.due(self.host, "send", msg_type):
            if spec.kind == "drop":
                self._fire(spec, "dist.net.drops")
                return False
            if spec.kind == "delay":
                self._fire(spec, "dist.net.delays")
                time.sleep(spec.delay_s)
            elif spec.kind == "dup":
                self._fire(spec, "dist.net.dups")
                repeats = 2
            elif spec.kind == "partition":
                self._fire(spec, "dist.net.partitions")
                self.partition_until = time.monotonic() + spec.duration_s
            elif spec.kind == "truncate":
                self._fire(spec, "dist.net.truncates")
                frame = _encode(header, arrays)
                try:
                    self.sock.sendall(frame[: max(1, len(frame) // 2)])
                except OSError:
                    pass
                self.close()
                raise TransportClosed("frame torn by truncate drill")
            elif spec.kind == "crash":
                self._fire(spec, "dist.net.crashes")
                try:
                    send_frame(self.sock, {"type": "die"})
                except TransportClosed:
                    pass
                self.close()
                raise TransportClosed("host crashed by drill")
        if self._partitioned():
            add_count("dist.net.partition_drops")
            return False
        for _ in range(repeats):
            self.bytes_sent += send_frame(self.sock, header, arrays)
            self.sent += 1
        return True

    # ------------------------------------------------------------------ #
    # receive path
    # ------------------------------------------------------------------ #

    def _fill(self, deadline: float | None) -> None:
        """Pull one chunk off the socket into the frame accumulator."""
        remaining = None
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TransportTimeout(
                    f"timed out mid-frame ({len(self._rbuf)}B buffered)"
                )
        try:
            self._recv_sock.settimeout(remaining)
            chunk = self._recv_sock.recv(1 << 16)
        except socket.timeout as exc:
            raise TransportTimeout(
                f"timed out mid-frame ({len(self._rbuf)}B buffered)"
            ) from exc
        except OSError as exc:
            raise TransportClosed(f"recv failed: {exc!r}") from exc
        if not chunk:
            raise TransportClosed("peer closed the connection")
        self._rbuf += chunk

    def _recv_one(
        self, deadline: float | None
    ) -> tuple[dict, dict[str, np.ndarray]]:
        """Read one frame through the resumable accumulator.

        Unlike the stateless :func:`recv_frame`, a
        :class:`TransportTimeout` here leaves the partial frame in
        ``_rbuf`` and the stream stays framed — essential for pollers
        that call with short timeouts while a large frame (a staged
        input shard, the published machine) is still in flight.
        """
        while len(self._rbuf) < _HDR.size:
            self._fill(deadline)
        magic, body_len, hdr_len = _HDR.unpack(self._rbuf[: _HDR.size])
        if (
            magic != MAGIC
            or body_len > MAX_FRAME_BYTES
            or hdr_len + 4 > body_len
        ):
            raise TransportClosed(
                f"malformed frame (magic={bytes(magic)!r}, "
                f"body={body_len}, hdr={hdr_len})"
            )
        total = _HDR.size + body_len - 4
        while len(self._rbuf) < total:
            self._fill(deadline)
        body = bytes(self._rbuf[_HDR.size:total])
        del self._rbuf[:total]
        self.bytes_received += total
        return _decode_body(body, hdr_len)

    def recv(
        self, timeout: float | None = None
    ) -> tuple[dict, dict[str, np.ndarray]]:
        """Receive one message, applying recv-direction drills.

        Dropped and partition-swallowed messages are consumed and the
        read continues within the same ``timeout`` budget; duplicated
        messages are queued and returned by consecutive calls. A
        timeout with a frame partially arrived keeps the partial bytes
        buffered — the next call resumes the same frame.
        """
        if self._pending:
            return self._pending.popleft()
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            header, arrays = self._recv_one(deadline)
            self.received += 1
            msg_type = str(header.get("type", ""))
            drop = False
            for spec in self.faults.due(self.host, "recv", msg_type):
                if spec.kind == "drop":
                    self._fire(spec, "dist.net.drops")
                    drop = True
                elif spec.kind == "delay":
                    self._fire(spec, "dist.net.delays")
                    time.sleep(spec.delay_s)
                elif spec.kind == "dup":
                    self._fire(spec, "dist.net.dups")
                    self._pending.append((header, arrays))
                elif spec.kind == "partition":
                    self._fire(spec, "dist.net.partitions")
                    self.partition_until = (
                        time.monotonic() + spec.duration_s
                    )
                elif spec.kind == "truncate":
                    self._fire(spec, "dist.net.truncates")
                    self.close()
                    raise TransportClosed("frame torn by truncate drill")
            if self._partitioned():
                add_count("dist.net.partition_drops")
                drop = True
            if not drop:
                return header, arrays


def connect(
    address: tuple[str, int],
    *,
    timeout: float = 5.0,
    host: int = -1,
    faults: NetFaultPlan | None = None,
) -> Channel:
    """Open a fault-injectable channel to ``(host, port)``."""
    try:
        sock = socket.create_connection(address, timeout=timeout)
    except OSError as exc:
        raise TransportClosed(f"connect to {address} failed: {exc!r}") from exc
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return Channel(sock, host=host, faults=faults)
