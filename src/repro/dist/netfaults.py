"""Deterministic network fault injection for the distributed layer.

The same discipline as :mod:`repro.core.faultinject`, lifted from
process faults to *link* faults: a :class:`NetFaultPlan` holds an
ordered set of :class:`NetFaultSpec` drills, each bound to a single
injection site (host, direction, message type, per-site sequence
number) and fired **exactly once**. The coordinator's transport
channels apply the plan — drills run where the coordinator can observe
them deterministically, so a seeded plan reproduces the identical
failure sequence on every run regardless of host-side timing.

Fault kinds
-----------
``drop``
    The matched message silently vanishes (send: never written; recv:
    parsed and discarded). The supervision layer must recover it via
    deadline expiry and re-dispatch.
``delay``
    The matched message is held ``delay_s`` seconds before delivery —
    the slow-link drill that exercises hedged re-dispatch.
``dup``
    The matched message is delivered twice. Result de-duplication
    (dispatch sequence numbers) must drop the second copy.
``truncate``
    The frame is torn mid-write and the connection closed — the peer
    sees a short read. Models a host dying mid-send.
``partition``
    Opens a symmetric partition window of ``duration_s`` seconds on the
    host's link: every send is dropped and every received message
    discarded until the window closes.
``crash``
    The coordinator orders the agent to exit its serve loop (the
    kill-a-host drill) and severs the link.

Chaos mode: :func:`chaos_net_plan_from_env` arms a seeded one-partition
plan from the ``REPRO_CHAOS`` environment variable, mirroring
:func:`repro.core.faultinject.chaos_plan_from_env` — the dist CI job
runs the suite under it. Clean-behaviour tests pass an explicit empty
``NetFaultPlan()`` to opt out, the same convention the pool uses.
"""

from __future__ import annotations

import itertools
import os
import random
from dataclasses import dataclass

__all__ = [
    "NET_KINDS",
    "NetFaultPlan",
    "NetFaultSpec",
    "chaos_net_plan_from_env",
    "crash_host",
    "delay_message",
    "drop_message",
    "duplicate_message",
    "partition_host",
    "truncate_frame",
]

#: Fault kinds the transport channel knows how to apply.
NET_KINDS = ("drop", "delay", "dup", "truncate", "partition", "crash")

_SPEC_IDS = itertools.count()
_CHAOS_SEQ = itertools.count()


@dataclass
class NetFaultSpec:
    """One network fault bound to a single injection site.

    The site is ``(host, direction, match_type, at_match)``: the spec
    fires on the ``at_match``-th message (0-based) of type
    ``match_type`` (any type when None) crossing host ``host``'s link
    in ``direction`` (``"send"`` = coordinator to agent, ``"recv"`` =
    agent to coordinator, as seen from the coordinator). ``seen`` is
    the spec's private site counter; ``fired`` makes it exactly-once.
    """

    fault_id: str
    kind: str
    host: int
    direction: str = "send"
    match_type: str | None = None
    at_match: int = 0
    delay_s: float = 0.0
    duration_s: float = 0.0
    seen: int = 0
    fired: bool = False

    def matches(self, host: int, direction: str, msg_type: str) -> bool:
        """Whether this message is at the spec's site; advances ``seen``.

        Only unfired specs count messages, so the site sequence number
        is stable however many other drills share the plan.
        """
        if self.fired or host != self.host or direction != self.direction:
            return False
        if self.match_type is not None and msg_type != self.match_type:
            return False
        hit = self.seen == self.at_match
        self.seen += 1
        return hit


def drop_message(
    host: int,
    *,
    direction: str = "recv",
    match_type: str | None = None,
    at_match: int = 0,
) -> NetFaultSpec:
    """Message ``at_match`` of ``match_type`` on ``host``'s link vanishes."""
    return NetFaultSpec(
        fault_id=f"drop:h{host}:{direction}#{next(_SPEC_IDS)}",
        kind="drop", host=host, direction=direction,
        match_type=match_type, at_match=at_match,
    )


def delay_message(
    host: int,
    *,
    direction: str = "recv",
    match_type: str | None = None,
    at_match: int = 0,
    seconds: float = 0.25,
) -> NetFaultSpec:
    """The matched message is held ``seconds`` before delivery."""
    return NetFaultSpec(
        fault_id=f"delay:h{host}:{direction}#{next(_SPEC_IDS)}",
        kind="delay", host=host, direction=direction,
        match_type=match_type, at_match=at_match, delay_s=float(seconds),
    )


def duplicate_message(
    host: int,
    *,
    direction: str = "recv",
    match_type: str | None = None,
    at_match: int = 0,
) -> NetFaultSpec:
    """The matched message is delivered twice (duplicate-result drill)."""
    return NetFaultSpec(
        fault_id=f"dup:h{host}:{direction}#{next(_SPEC_IDS)}",
        kind="dup", host=host, direction=direction,
        match_type=match_type, at_match=at_match,
    )


def truncate_frame(
    host: int,
    *,
    direction: str = "send",
    match_type: str | None = None,
    at_match: int = 0,
) -> NetFaultSpec:
    """The matched frame is torn mid-write and the link severed."""
    return NetFaultSpec(
        fault_id=f"truncate:h{host}:{direction}#{next(_SPEC_IDS)}",
        kind="truncate", host=host, direction=direction,
        match_type=match_type, at_match=at_match,
    )


def partition_host(
    host: int,
    *,
    match_type: str | None = None,
    at_match: int = 0,
    duration_s: float = 0.3,
) -> NetFaultSpec:
    """A symmetric partition window opens at the matched send site."""
    return NetFaultSpec(
        fault_id=f"partition:h{host}#{next(_SPEC_IDS)}",
        kind="partition", host=host, direction="send",
        match_type=match_type, at_match=at_match,
        duration_s=float(duration_s),
    )


def crash_host(
    host: int,
    *,
    match_type: str | None = None,
    at_match: int = 0,
) -> NetFaultSpec:
    """The agent is ordered to exit its serve loop at the matched site."""
    return NetFaultSpec(
        fault_id=f"crash:h{host}#{next(_SPEC_IDS)}",
        kind="crash", host=host, direction="send",
        match_type=match_type, at_match=at_match,
    )


class NetFaultPlan:
    """An ordered set of network faults plus fired-state bookkeeping.

    The plan lives in the coordinator; each channel consults it at every
    send and receive. Mirrors :class:`repro.core.faultinject.FaultPlan`:
    ``empty``, ``fired_ids``, :meth:`mark_fired`, :meth:`is_fired` have
    the same semantics, and every spec fires at most once.
    """

    def __init__(self, faults: tuple | list = ()) -> None:
        self.specs: list[NetFaultSpec] = list(faults)
        for spec in self.specs:
            if spec.kind not in NET_KINDS:
                raise ValueError(f"unknown net fault kind {spec.kind!r}")
            if spec.direction not in ("send", "recv"):
                raise ValueError(
                    f"direction must be 'send' or 'recv', got "
                    f"{spec.direction!r}"
                )

    def __len__(self) -> int:
        return len(self.specs)

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing (the production default)."""
        return not self.specs

    @property
    def fired_ids(self) -> set[str]:
        """Ids of specs that have already fired."""
        return {s.fault_id for s in self.specs if s.fired}

    def spec(self, fault_id: str) -> NetFaultSpec | None:
        """Look up a spec by id (None when unknown)."""
        for s in self.specs:
            if s.fault_id == fault_id:
                return s
        return None

    def mark_fired(self, fault_id: str) -> bool:
        """Mark a spec fired; returns True if it was previously unfired."""
        s = self.spec(fault_id)
        if s is None or s.fired:
            return False
        s.fired = True
        return True

    def is_fired(self, fault_id: str) -> bool:
        """Whether the named spec has fired."""
        s = self.spec(fault_id)
        return s is not None and s.fired

    def due(self, host: int, direction: str, msg_type: str) -> list[NetFaultSpec]:
        """Unfired specs whose site matches this message, in plan order.

        Matching advances each candidate spec's private site counter, so
        call this exactly once per message crossing the channel.
        """
        return [
            s for s in self.specs if s.matches(host, direction, msg_type)
        ]


def chaos_net_plan_from_env(num_hosts: int, env=None) -> NetFaultPlan | None:
    """A seeded one-partition plan when ``REPRO_CHAOS`` is set, else None.

    Each call draws a fresh (but deterministic, given the env token and
    the process-wide call sequence) victim host whose link partitions
    around its first shard dispatch — the dist CI chaos leg. Topologies
    too small to lose a host (``num_hosts < 2``) get no plan.
    """
    env = os.environ if env is None else env
    token = env.get("REPRO_CHAOS", "")
    if not token or num_hosts < 2:
        return None
    rng = random.Random(f"dist:{token}:{next(_CHAOS_SEQ)}")
    return NetFaultPlan([
        partition_host(
            rng.randrange(num_hosts),
            match_type="run_shard",
            duration_s=0.2,
        )
    ])
