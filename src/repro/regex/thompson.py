"""Thompson construction: regex AST -> epsilon-NFA over a concrete alphabet.

Each AST node becomes a fragment with one entry and one exit state; bounded
repeats ``{n,m}`` expand into ``n`` mandatory copies plus ``m - n`` optional
ones (or a Kleene-star tail for ``{n,}``). The construction is linear in the
expanded pattern size.
"""

from __future__ import annotations

from repro.fsm.alphabet import Alphabet
from repro.fsm.nfa import NFA
from repro.regex.ast import (
    Alternation,
    Concat,
    Empty,
    Literal,
    Node,
    Repeat,
    SymbolClass,
)

__all__ = ["to_nfa"]


def to_nfa(node: Node, alphabet: Alphabet) -> NFA:
    """Compile an AST into an :class:`repro.fsm.nfa.NFA` over ``alphabet``."""
    nfa = NFA(num_inputs=alphabet.size)
    entry, exit_ = _build(node, nfa, alphabet)
    nfa.start = entry
    nfa.accepting = {exit_}
    return nfa


def _build(node: Node, nfa: NFA, alphabet: Alphabet) -> tuple[int, int]:
    """Return (entry, exit) states of the fragment for ``node``."""
    if isinstance(node, Empty):
        s = nfa.add_state()
        t = nfa.add_state()
        nfa.add_edge(s, None, t)
        return s, t

    if isinstance(node, Literal):
        if node.char not in alphabet:
            raise ValueError(
                f"literal {node.char!r} is not in the target alphabet"
            )
        s = nfa.add_state()
        t = nfa.add_state()
        nfa.add_edge(s, alphabet.id_of(node.char), t)
        return s, t

    if isinstance(node, SymbolClass):
        chars = node.resolve(alphabet.symbols)
        if not chars:
            raise ValueError(f"character class {node} matches nothing in the alphabet")
        s = nfa.add_state()
        t = nfa.add_state()
        nfa.add_edges(s, (alphabet.id_of(c) for c in chars), t)
        return s, t

    if isinstance(node, Concat):
        entry, cur = _build(node.parts[0], nfa, alphabet)
        for part in node.parts[1:]:
            nxt_entry, nxt_exit = _build(part, nfa, alphabet)
            nfa.add_edge(cur, None, nxt_entry)
            cur = nxt_exit
        return entry, cur

    if isinstance(node, Alternation):
        s = nfa.add_state()
        t = nfa.add_state()
        for option in node.options:
            oe, ox = _build(option, nfa, alphabet)
            nfa.add_edge(s, None, oe)
            nfa.add_edge(ox, None, t)
        return s, t

    if isinstance(node, Repeat):
        return _build_repeat(node, nfa, alphabet)

    raise TypeError(f"unknown AST node type {type(node).__name__}")


def _build_repeat(node: Repeat, nfa: NFA, alphabet: Alphabet) -> tuple[int, int]:
    inner, lo, hi = node.inner, node.lo, node.hi

    def star() -> tuple[int, int]:
        s = nfa.add_state()
        t = nfa.add_state()
        ie, ix = _build(inner, nfa, alphabet)
        nfa.add_edge(s, None, ie)
        nfa.add_edge(ix, None, t)
        nfa.add_edge(s, None, t)
        nfa.add_edge(ix, None, ie)
        return s, t

    if lo == 0 and hi is None:  # a*
        return star()

    # Mandatory prefix: lo copies chained.
    entry: int | None = None
    cur: int | None = None
    for _ in range(lo):
        ie, ix = _build(inner, nfa, alphabet)
        if entry is None:
            entry, cur = ie, ix
        else:
            nfa.add_edge(cur, None, ie)  # type: ignore[arg-type]
            cur = ix

    if hi is None:  # a{lo,} = a^lo a*
        se, sx = star()
        if entry is None:
            return se, sx
        nfa.add_edge(cur, None, se)  # type: ignore[arg-type]
        return entry, sx

    # Optional tail: hi - lo skippable copies.
    exits: list[int] = [] if cur is None else [cur]
    for _ in range(hi - lo):
        ie, ix = _build(inner, nfa, alphabet)
        if entry is None:
            entry = nfa.add_state()
            nfa.add_edge(entry, None, ie)
            exits.append(entry)
        else:
            nfa.add_edge(cur, None, ie)  # type: ignore[arg-type]
        cur = ix
        exits.append(ix)
    if entry is None:  # {0,0}: epsilon
        s = nfa.add_state()
        t = nfa.add_state()
        nfa.add_edge(s, None, t)
        return s, t
    final = nfa.add_state()
    for e in dict.fromkeys(exits):
        nfa.add_edge(e, None, final)
    return entry, final
