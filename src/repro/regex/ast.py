"""Regular-expression abstract syntax tree.

Nodes are immutable; symbol sets are stored as frozensets of *characters*
(resolution to dense symbol ids happens at NFA-construction time against a
concrete :class:`repro.fsm.alphabet.Alphabet`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Node", "Empty", "Literal", "SymbolClass", "Concat", "Alternation", "Repeat"]


class Node:
    """Base class for AST nodes."""

    def __or__(self, other: "Node") -> "Alternation":
        return Alternation((self, other))

    def __add__(self, other: "Node") -> "Concat":
        return Concat((self, other))


@dataclass(frozen=True)
class Empty(Node):
    """Matches the empty string (epsilon)."""


@dataclass(frozen=True)
class Literal(Node):
    """Matches a single specific character."""

    char: str

    def __post_init__(self) -> None:
        if not (isinstance(self.char, str) and len(self.char) == 1):
            raise ValueError(f"Literal requires a single character, got {self.char!r}")


@dataclass(frozen=True)
class SymbolClass(Node):
    """Matches one character from a set (or its complement).

    ``chars`` is a frozenset of characters; ``negated=True`` means "any
    alphabet character *not* in the set". The dot ``.`` is represented as a
    negated empty class.
    """

    chars: frozenset
    negated: bool = False

    @classmethod
    def dot(cls) -> "SymbolClass":
        """The any-character class ``.``."""
        return cls(frozenset(), negated=True)

    def resolve(self, alphabet_symbols) -> frozenset:
        """Concrete character set against an alphabet's symbols."""
        symbols = frozenset(alphabet_symbols)
        if self.negated:
            return symbols - self.chars
        return self.chars & symbols


@dataclass(frozen=True)
class Concat(Node):
    """Concatenation of parts, in order."""

    parts: tuple

    def __post_init__(self) -> None:
        if len(self.parts) < 1:
            raise ValueError("Concat requires at least one part")


@dataclass(frozen=True)
class Alternation(Node):
    """Union of options."""

    options: tuple

    def __post_init__(self) -> None:
        if len(self.options) < 1:
            raise ValueError("Alternation requires at least one option")


@dataclass(frozen=True)
class Repeat(Node):
    """Bounded or unbounded repetition of ``inner``.

    ``lo`` copies are mandatory; if ``hi`` is ``None`` the tail is a Kleene
    star, otherwise up to ``hi - lo`` further optional copies. ``a*`` is
    ``Repeat(a, 0, None)``, ``a+`` is ``Repeat(a, 1, None)``, ``a?`` is
    ``Repeat(a, 0, 1)``, ``a{4}`` is ``Repeat(a, 4, 4)``.
    """

    inner: Node
    lo: int
    hi: int | None

    def __post_init__(self) -> None:
        if self.lo < 0:
            raise ValueError(f"Repeat lower bound must be >= 0, got {self.lo}")
        if self.hi is not None and self.hi < self.lo:
            raise ValueError(f"Repeat bounds inverted: {{{self.lo},{self.hi}}}")
