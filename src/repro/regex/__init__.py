"""Regular-expression engine: pattern -> AST -> Thompson NFA -> minimal DFA.

The paper evaluates FSMs derived from regular expressions (Table 5); this
subpackage builds those machines from scratch:

* :func:`repro.regex.parser.parse` — POSIX-ish syntax: literals, ``.``,
  escapes, character classes (ranges, negation), ``* + ?``, bounded repeats
  ``{n}``/``{n,m}``/``{n,}``, alternation, and grouping.
* :func:`repro.regex.thompson.to_nfa` — Thompson construction.
* :func:`repro.regex.compile.compile_regex` / ``compile_search`` — anchored
  and unanchored (``.*R``) DFAs, minimized, optionally with input classes
  compressed (which is how the paper reaches ``num_inputs`` of 7 and 3 for
  its two expressions).
"""

from repro.regex.ast import (
    Alternation,
    Concat,
    Empty,
    Literal,
    Repeat,
    SymbolClass,
)
from repro.regex.compile import compile_regex, compile_search, compress_inputs
from repro.regex.derivatives import (
    compile_regex_derivatives,
    compile_search_derivatives,
)
from repro.regex.parser import parse
from repro.regex.thompson import to_nfa

__all__ = [
    "Alternation",
    "Concat",
    "Empty",
    "Literal",
    "Repeat",
    "SymbolClass",
    "compile_regex",
    "compile_regex_derivatives",
    "compile_search",
    "compile_search_derivatives",
    "compress_inputs",
    "parse",
    "to_nfa",
]
