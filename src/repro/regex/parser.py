"""Recursive-descent regular-expression parser.

Grammar (standard precedence — alternation < concatenation < repetition):

    alternation  := concat ('|' concat)*
    concat       := repeat+
    repeat       := atom ('*' | '+' | '?' | '{' bounds '}')*
    atom         := literal | '.' | escape | class | '(' alternation ')'
    class        := '[' '^'? item+ ']'        item := char | char '-' char
    bounds       := n | n ',' | n ',' m

Escapes: ``\\.`` ``\\*`` ``\\+`` ``\\?`` ``\\(`` ``\\)`` ``\\[`` ``\\]``
``\\{`` ``\\}`` ``\\|`` ``\\\\`` ``\\n`` ``\\t`` ``\\r``.
"""

from __future__ import annotations

from repro.regex.ast import (
    Alternation,
    Concat,
    Empty,
    Literal,
    Node,
    Repeat,
    SymbolClass,
)

__all__ = ["parse", "RegexSyntaxError"]

_SPECIAL = set("|*+?()[]{}.\\")
_ESCAPES = {"n": "\n", "t": "\t", "r": "\r"}

# Class shorthands: \d \w \s and their negations. Sets are ASCII (the
# machines here run over finite alphabets; Unicode categories would make
# the class infinite).
_DIGITS = frozenset("0123456789")
_WORD = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_"
)
_SPACE = frozenset(" \t\n\r\f\v")
_CLASS_SHORTHANDS = {
    "d": (_DIGITS, False),
    "D": (_DIGITS, True),
    "w": (_WORD, False),
    "W": (_WORD, True),
    "s": (_SPACE, False),
    "S": (_SPACE, True),
}


class RegexSyntaxError(ValueError):
    """Raised for malformed patterns, with position information."""

    def __init__(self, message: str, pattern: str, pos: int) -> None:
        super().__init__(f"{message} at position {pos} in {pattern!r}")
        self.pattern = pattern
        self.pos = pos


class _Parser:
    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        self.pos = 0

    # --- low-level cursor ------------------------------------------------
    def peek(self) -> str | None:
        return self.pattern[self.pos] if self.pos < len(self.pattern) else None

    def take(self) -> str:
        ch = self.peek()
        if ch is None:
            self.error("unexpected end of pattern")
        self.pos += 1
        return ch

    def expect(self, ch: str) -> None:
        if self.peek() != ch:
            self.error(f"expected {ch!r}")
        self.pos += 1

    def error(self, message: str) -> None:
        raise RegexSyntaxError(message, self.pattern, self.pos)

    # --- grammar ----------------------------------------------------------
    def parse(self) -> Node:
        node = self.alternation()
        if self.peek() is not None:
            self.error(f"unexpected {self.peek()!r}")
        return node

    def alternation(self) -> Node:
        options = [self.concat()]
        while self.peek() == "|":
            self.take()
            options.append(self.concat())
        if len(options) == 1:
            return options[0]
        return Alternation(tuple(options))

    def concat(self) -> Node:
        parts: list[Node] = []
        while True:
            ch = self.peek()
            if ch is None or ch in "|)":
                break
            parts.append(self.repeat())
        if not parts:
            return Empty()
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))

    def repeat(self) -> Node:
        node = self.atom()
        while True:
            ch = self.peek()
            if ch == "*":
                self.take()
                node = Repeat(node, 0, None)
            elif ch == "+":
                self.take()
                node = Repeat(node, 1, None)
            elif ch == "?":
                self.take()
                node = Repeat(node, 0, 1)
            elif ch == "{":
                node = self._bounds(node)
            else:
                return node

    def _bounds(self, inner: Node) -> Node:
        self.expect("{")
        lo = self._number()
        hi: int | None
        if self.peek() == ",":
            self.take()
            if self.peek() == "}":
                hi = None
            else:
                hi = self._number()
        else:
            hi = lo
        self.expect("}")
        if hi is not None and hi < lo:
            self.error(f"repeat bounds inverted {{{lo},{hi}}}")
        return Repeat(inner, lo, hi)

    def _number(self) -> int:
        start = self.pos
        while (ch := self.peek()) is not None and ch.isdigit():
            self.take()
        if self.pos == start:
            self.error("expected a number")
        return int(self.pattern[start : self.pos])

    def atom(self) -> Node:
        ch = self.peek()
        if ch is None:
            self.error("unexpected end of pattern")
        if ch == "(":
            self.take()
            node = self.alternation()
            self.expect(")")
            return node
        if ch == ".":
            self.take()
            return SymbolClass.dot()
        if ch == "[":
            return self._char_class()
        if ch == "\\":
            self.take()
            nxt = self.peek()
            if nxt in _CLASS_SHORTHANDS:
                self.take()
                chars, negated = _CLASS_SHORTHANDS[nxt]
                return SymbolClass(chars, negated=negated)
            return Literal(self._escaped())
        if ch in "*+?{":
            self.error(f"nothing to repeat before {ch!r}")
        if ch in ")|]}":
            self.error(f"unexpected {ch!r}")
        return Literal(self.take())

    def _escaped(self) -> str:
        ch = self.take()
        if ch in _ESCAPES:
            return _ESCAPES[ch]
        if ch in _SPECIAL or not ch.isalnum():
            return ch
        self.error(f"unknown escape \\{ch}")
        raise AssertionError("unreachable")

    def _char_class(self) -> SymbolClass:
        self.expect("[")
        negated = False
        if self.peek() == "^":
            self.take()
            negated = True
        chars: set[str] = set()
        first = True
        while True:
            ch = self.peek()
            if ch is None:
                self.error("unterminated character class")
            if ch == "]" and not first:
                self.take()
                break
            first = False
            lo = self.take()
            if lo == "\\":
                nxt = self.peek()
                if nxt in ("d", "w", "s"):
                    # positive shorthand inside a class unions its set
                    self.take()
                    chars |= _CLASS_SHORTHANDS[nxt][0]
                    continue
                if nxt in ("D", "W", "S"):
                    self.error(
                        f"negated shorthand \\{nxt} is not supported inside "
                        "a character class"
                    )
                lo = self._escaped()
            if self.peek() == "-" and self.pos + 1 < len(self.pattern) and self.pattern[self.pos + 1] != "]":
                self.take()  # '-'
                hi = self.take()
                if hi == "\\":
                    hi = self._escaped()
                if ord(hi) < ord(lo):
                    self.error(f"inverted range {lo}-{hi}")
                chars.update(chr(c) for c in range(ord(lo), ord(hi) + 1))
            else:
                chars.add(lo)
        if not chars:
            self.error("empty character class")
        return SymbolClass(frozenset(chars), negated=negated)


def parse(pattern: str) -> Node:
    """Parse ``pattern`` into an AST; raises :class:`RegexSyntaxError` on error."""
    return _Parser(pattern).parse()
