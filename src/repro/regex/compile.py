"""Regex compilation pipeline: pattern -> minimal DFA (+ input compression).

``compile_regex`` gives the anchored full-match machine; ``compile_search``
gives the streaming searcher (equivalent to ``.*R``) whose accepting states
fire exactly at positions where some match *ends* — the machine the paper
runs over its 2^30-character inputs.

``compress_inputs`` merges alphabet symbols with identical transition-table
columns into input *classes*. This is how the paper's machines get their
small ``num_inputs`` (7 for regular expression 1 — {a,e,i,k,l,p} + other; 3
for regular expression 2 — {',', '.'} + other) even though the raw input is
a 26-letter character stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fsm.alphabet import Alphabet
from repro.fsm.dfa import DFA
from repro.fsm.minimize import minimize_dfa
from repro.fsm.subset import subset_construction
from repro.regex.ast import Node, Repeat, SymbolClass
from repro.regex.parser import parse
from repro.regex.thompson import to_nfa

__all__ = ["compile_regex", "compile_search", "compress_inputs", "CompressedDFA"]


def compile_regex(
    pattern: str | Node,
    alphabet: Alphabet,
    *,
    minimize: bool = True,
    name: str = "",
) -> DFA:
    """Anchored DFA: accepts exactly the strings matching ``pattern``."""
    node = parse(pattern) if isinstance(pattern, str) else pattern
    dfa = subset_construction(to_nfa(node, alphabet), alphabet=alphabet, name=name)
    if minimize:
        dfa = minimize_dfa(dfa)
    return dfa


def compile_search(
    pattern: str | Node,
    alphabet: Alphabet,
    *,
    minimize: bool = True,
    name: str = "",
) -> DFA:
    """Streaming search DFA (``.*R``): accepting whenever a match just ended.

    Running this machine over a text and recording the positions at which it
    sits in an accepting state reproduces the paper's "output the position
    of the match" semantics.
    """
    node = parse(pattern) if isinstance(pattern, str) else pattern
    from repro.regex.ast import Concat

    search_node = Concat((Repeat(SymbolClass.dot(), 0, None), node))
    return compile_regex(search_node, alphabet, minimize=minimize, name=name)


@dataclass(frozen=True)
class CompressedDFA:
    """A DFA over input classes plus the symbol -> class map.

    ``class_of[s]`` maps a raw symbol id (index into the original alphabet)
    to the compressed input class consumed by ``dfa``. Encode raw inputs
    once with :meth:`encode_inputs`, then run ``dfa`` on the class stream.
    """

    dfa: DFA
    class_of: np.ndarray  # (original_num_inputs,) int32

    @property
    def num_classes(self) -> int:
        """Number of distinct input classes (the compressed ``num_inputs``)."""
        return self.dfa.num_inputs

    def encode_inputs(self, symbol_ids: np.ndarray) -> np.ndarray:
        """Map raw symbol ids to input-class ids."""
        return self.class_of[np.asarray(symbol_ids)]


def compress_inputs(dfa: DFA) -> CompressedDFA:
    """Merge symbols with identical behaviour into input classes.

    Two symbols are equivalent iff their transition-table rows (and emission
    rows, for transducers) are identical. Classes are numbered in
    first-appearance order. The compressed machine is language-equivalent to the
    original on the mapped input stream and its table has only
    ``num_classes * num_states`` entries — often dramatically smaller.
    """
    key = dfa.table
    if dfa.emit is not None:
        key = np.concatenate([dfa.table, dfa.emit], axis=1)
    _, first_idx, inverse = np.unique(
        key, axis=0, return_index=True, return_inverse=True
    )
    # np.unique sorts lexicographically; renumber classes by first appearance
    # so class ids are stable and human-friendly.
    order = np.argsort(first_idx, kind="stable")
    rank = np.empty_like(order)
    rank[order] = np.arange(order.size)
    class_of = rank[inverse].astype(np.int32)
    representatives = first_idx[order]
    table = dfa.table[representatives]
    emit = None if dfa.emit is None else dfa.emit[representatives]
    compressed = DFA(
        table=table,
        start=dfa.start,
        accepting=dfa.accepting,
        alphabet=None,
        emit=emit,
        name=(dfa.name + "/compressed") if dfa.name else "compressed",
        state_names=dfa.state_names,
    )
    return CompressedDFA(dfa=compressed, class_of=class_of)
