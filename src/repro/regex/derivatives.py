"""Brzozowski-derivative DFA construction — an independent second pipeline.

The derivative of a language L with respect to a symbol a is
``{ w : aw in L }``. Iterating derivatives from the original expression
yields a DFA whose states are (normalized) expressions; with the usual
similarity rules (flattened, deduplicated alternations; null/empty
absorption) the state set is finite.

This pipeline shares nothing with the Thompson → subset → Hopcroft path
beyond the parser, so property tests that compare the two machines on
random words validate both constructions against each other. Derivative
automata are also typically near-minimal without an explicit minimization
pass — a useful second datapoint for the paper's reported DFA sizes.

Internally expressions are normalized hashable trees:

* ``("null",)`` — the empty language
* ``("eps",)`` — the empty string
* ``("set", frozenset_of_symbol_ids)``
* ``("cat", (e1, e2, ...))`` — flattened, no eps/null members
* ``("alt", frozenset_of_expressions)`` — flattened, deduplicated
* ``("rep", e, lo, hi)`` — ``hi`` may be ``None`` (unbounded)
"""

from __future__ import annotations

import numpy as np

from repro.fsm.alphabet import Alphabet
from repro.fsm.dfa import DFA
from repro.regex.ast import (
    Alternation,
    Concat,
    Empty,
    Literal,
    Node,
    Repeat,
    SymbolClass,
)
from repro.regex.parser import parse

__all__ = ["compile_regex_derivatives", "compile_search_derivatives"]

NULL = ("null",)
EPS = ("eps",)


# --------------------------------------------------------------------------- #
# smart constructors (normalization = Brzozowski similarity)
# --------------------------------------------------------------------------- #


def _mk_set(ids: frozenset) -> tuple:
    return NULL if not ids else ("set", ids)


def _mk_cat(parts: tuple) -> tuple:
    flat: list = []
    for p in parts:
        if p == NULL:
            return NULL
        if p == EPS:
            continue
        if p[0] == "cat":
            flat.extend(p[1])
        else:
            flat.append(p)
    if not flat:
        return EPS
    if len(flat) == 1:
        return flat[0]
    return ("cat", tuple(flat))


def _mk_alt(options) -> tuple:
    flat: set = set()
    for o in options:
        if o == NULL:
            continue
        if o[0] == "alt":
            flat |= o[1]
        else:
            flat.add(o)
    if not flat:
        return NULL
    if len(flat) == 1:
        return next(iter(flat))
    return ("alt", frozenset(flat))


def _mk_rep(inner: tuple, lo: int, hi: int | None) -> tuple:
    if inner == NULL:
        return EPS if lo == 0 else NULL
    if inner == EPS:
        return EPS
    if hi is not None and hi == 0:
        return EPS
    if lo == 1 and hi == 1:
        return inner
    # (r*)* = r*, and more generally rep(rep(r,0,None),0,None) collapses
    if lo == 0 and hi is None and inner[0] == "rep" and inner[2] == 0 and inner[3] is None:
        return inner
    return ("rep", inner, lo, hi)


# --------------------------------------------------------------------------- #
# AST -> normalized expression
# --------------------------------------------------------------------------- #


def _lower(node: Node, alphabet: Alphabet) -> tuple:
    if isinstance(node, Empty):
        return EPS
    if isinstance(node, Literal):
        if node.char not in alphabet:
            raise ValueError(f"literal {node.char!r} is not in the target alphabet")
        return _mk_set(frozenset([alphabet.id_of(node.char)]))
    if isinstance(node, SymbolClass):
        chars = node.resolve(alphabet.symbols)
        return _mk_set(frozenset(alphabet.id_of(c) for c in chars))
    if isinstance(node, Concat):
        return _mk_cat(tuple(_lower(p, alphabet) for p in node.parts))
    if isinstance(node, Alternation):
        return _mk_alt(_lower(o, alphabet) for o in node.options)
    if isinstance(node, Repeat):
        return _mk_rep(_lower(node.inner, alphabet), node.lo, node.hi)
    raise TypeError(f"unknown AST node type {type(node).__name__}")


# --------------------------------------------------------------------------- #
# nullability and derivatives
# --------------------------------------------------------------------------- #


def _nullable(e: tuple) -> bool:
    tag = e[0]
    if tag == "eps":
        return True
    if tag in ("null", "set"):
        return False
    if tag == "cat":
        return all(_nullable(p) for p in e[1])
    if tag == "alt":
        return any(_nullable(o) for o in e[1])
    if tag == "rep":
        return e[2] == 0 or _nullable(e[1])
    raise AssertionError(e)


def _derive(e: tuple, a: int) -> tuple:
    tag = e[0]
    if tag in ("null", "eps"):
        return NULL
    if tag == "set":
        return EPS if a in e[1] else NULL
    if tag == "cat":
        parts = e[1]
        head, tail = parts[0], _mk_cat(parts[1:])
        d = _mk_cat((_derive(head, a), tail))
        if _nullable(head):
            return _mk_alt((d, _derive(tail, a)))
        return d
    if tag == "alt":
        return _mk_alt(_derive(o, a) for o in e[1])
    if tag == "rep":
        inner, lo, hi = e[1], e[2], e[3]
        next_lo = max(0, lo - 1)
        next_hi = None if hi is None else hi - 1
        rest = _mk_rep(inner, next_lo, next_hi)
        return _mk_cat((_derive(inner, a), rest))
    raise AssertionError(e)


# --------------------------------------------------------------------------- #
# DFA construction
# --------------------------------------------------------------------------- #


def compile_regex_derivatives(
    pattern: str | Node,
    alphabet: Alphabet,
    *,
    name: str = "",
    max_states: int = 100_000,
) -> DFA:
    """Anchored DFA for ``pattern`` via Brzozowski derivatives.

    ``max_states`` guards against normalization gaps blowing up the state
    space (raises rather than looping).
    """
    node = parse(pattern) if isinstance(pattern, str) else pattern
    start = _lower(node, alphabet)
    ids: dict[tuple, int] = {start: 0}
    worklist = [start]
    rows: list[list[int]] = []
    accepting_flags = [_nullable(start)]
    processed = 0
    while processed < len(worklist):
        current = worklist[processed]
        processed += 1
        row = []
        for a in range(alphabet.size):
            nxt = _derive(current, a)
            nid = ids.get(nxt)
            if nid is None:
                nid = len(ids)
                if nid >= max_states:
                    raise RuntimeError(
                        f"derivative construction exceeded {max_states} states"
                    )
                ids[nxt] = nid
                worklist.append(nxt)
                accepting_flags.append(_nullable(nxt))
            row.append(nid)
        rows.append(row)
    table = np.asarray(rows, dtype=np.int32).T
    return DFA(
        table=table,
        start=0,
        accepting=np.asarray(accepting_flags, dtype=bool),
        alphabet=alphabet,
        name=name,
    )


def compile_search_derivatives(
    pattern: str | Node,
    alphabet: Alphabet,
    *,
    name: str = "",
    max_states: int = 100_000,
) -> DFA:
    """Streaming search DFA (``.*R``) via derivatives."""
    node = parse(pattern) if isinstance(pattern, str) else pattern
    search = Concat((Repeat(SymbolClass.dot(), 0, None), node))
    return compile_regex_derivatives(
        search, alphabet, name=name, max_states=max_states
    )
