"""Tests for the product construction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fsm.product import product_dfa
from repro.fsm.run import run_reference, run_reference_trace
from tests.conftest import make_random_dfa, random_input


class TestProduct:
    def test_single_machine_identity_behaviour(self):
        dfa = make_random_dfa(5, 2, seed=0)
        prod = product_dfa([dfa])
        inp = random_input(2, 200, seed=1)
        assert bool(prod.dfa.accepting[run_reference(prod.dfa, inp)]) == bool(
            dfa.accepting[run_reference(dfa, inp)]
        )

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError, match="num_inputs"):
            product_dfa([make_random_dfa(3, 2, seed=0), make_random_dfa(3, 3, seed=1)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            product_dfa([])

    def test_reachable_only(self):
        a = make_random_dfa(4, 2, seed=2)
        b = make_random_dfa(5, 2, seed=3)
        prod = product_dfa([a, b])
        assert prod.dfa.num_states <= 20

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 300), n=st.integers(0, 60))
    def test_components_tracked_exactly(self, seed, n):
        a = make_random_dfa(4, 2, seed=seed)
        b = make_random_dfa(3, 2, seed=seed + 1)
        prod = product_dfa([a, b])
        inp = random_input(2, n, seed=seed + 2)
        ps = run_reference(prod.dfa, inp)
        assert prod.component_accepting(0, np.array([ps]))[0] == bool(
            a.accepting[run_reference(a, inp)]
        )
        assert prod.component_accepting(1, np.array([ps]))[0] == bool(
            b.accepting[run_reference(b, inp)]
        )

    def test_union_acceptance(self):
        a = make_random_dfa(4, 2, seed=8, accepting_fraction=0.5)
        b = make_random_dfa(4, 2, seed=9, accepting_fraction=0.5)
        prod = product_dfa([a, b])
        inp = random_input(2, 100, seed=10)
        want = bool(a.accepting[run_reference(a, inp)]) or bool(
            b.accepting[run_reference(b, inp)]
        )
        assert bool(prod.dfa.accepting[run_reference(prod.dfa, inp)]) == want

    def test_multi_pattern_match_positions(self):
        # one speculative pass finds both patterns' match positions
        import repro
        from repro.fsm.alphabet import Alphabet
        from repro.regex import compile_search

        ab = Alphabet.from_symbols("abc")
        m1 = compile_search("ab", ab, name="ab")
        m2 = compile_search("ca", ab, name="ca")
        prod = product_dfa([m1, m2])
        rng = np.random.default_rng(0)
        ids = rng.integers(0, 3, size=5000).astype(np.int32)
        trace = run_reference_trace(prod.dfa, ids)
        for i, single in enumerate((m1, m2)):
            strace = run_reference_trace(single, ids)
            want = np.flatnonzero(single.accepting[strace])
            got = np.flatnonzero(prod.component_accepting(i, trace))
            np.testing.assert_array_equal(got, want)

    def test_product_through_engine(self):
        import repro
        from repro.fsm.alphabet import Alphabet
        from repro.regex import compile_search

        ab = Alphabet.from_symbols("abc")
        prod = product_dfa(
            [compile_search("ab", ab), compile_search("bc?a", ab)]
        )
        rng = np.random.default_rng(1)
        ids = rng.integers(0, 3, size=20_000).astype(np.int32)
        r = repro.run_speculative(prod.dfa, ids, k=4, num_blocks=2,
                                  threads_per_block=32, price=False)
        assert r.final_state == run_reference(prod.dfa, ids)

    def test_component_names(self):
        a = make_random_dfa(3, 2, seed=0).with_name("alpha")
        b = make_random_dfa(3, 2, seed=1).with_name("")
        prod = product_dfa([a, b])
        assert prod.component_names == ("alpha", "component_1")
        assert prod.num_components == 2
