"""Tests for the product construction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fsm.product import product_dfa
from repro.fsm.run import run_reference, run_reference_trace
from tests.conftest import make_random_dfa, random_input


class TestProduct:
    def test_single_machine_identity_behaviour(self):
        dfa = make_random_dfa(5, 2, seed=0)
        prod = product_dfa([dfa])
        inp = random_input(2, 200, seed=1)
        assert bool(prod.dfa.accepting[run_reference(prod.dfa, inp)]) == bool(
            dfa.accepting[run_reference(dfa, inp)]
        )

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError, match="num_inputs"):
            product_dfa([make_random_dfa(3, 2, seed=0), make_random_dfa(3, 3, seed=1)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            product_dfa([])

    def test_reachable_only(self):
        a = make_random_dfa(4, 2, seed=2)
        b = make_random_dfa(5, 2, seed=3)
        prod = product_dfa([a, b])
        assert prod.dfa.num_states <= 20

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 300), n=st.integers(0, 60))
    def test_components_tracked_exactly(self, seed, n):
        a = make_random_dfa(4, 2, seed=seed)
        b = make_random_dfa(3, 2, seed=seed + 1)
        prod = product_dfa([a, b])
        inp = random_input(2, n, seed=seed + 2)
        ps = run_reference(prod.dfa, inp)
        assert prod.component_accepting(0, np.array([ps]))[0] == bool(
            a.accepting[run_reference(a, inp)]
        )
        assert prod.component_accepting(1, np.array([ps]))[0] == bool(
            b.accepting[run_reference(b, inp)]
        )

    def test_union_acceptance(self):
        a = make_random_dfa(4, 2, seed=8, accepting_fraction=0.5)
        b = make_random_dfa(4, 2, seed=9, accepting_fraction=0.5)
        prod = product_dfa([a, b])
        inp = random_input(2, 100, seed=10)
        want = bool(a.accepting[run_reference(a, inp)]) or bool(
            b.accepting[run_reference(b, inp)]
        )
        assert bool(prod.dfa.accepting[run_reference(prod.dfa, inp)]) == want

    def test_multi_pattern_match_positions(self):
        # one speculative pass finds both patterns' match positions
        import repro
        from repro.fsm.alphabet import Alphabet
        from repro.regex import compile_search

        ab = Alphabet.from_symbols("abc")
        m1 = compile_search("ab", ab, name="ab")
        m2 = compile_search("ca", ab, name="ca")
        prod = product_dfa([m1, m2])
        rng = np.random.default_rng(0)
        ids = rng.integers(0, 3, size=5000).astype(np.int32)
        trace = run_reference_trace(prod.dfa, ids)
        for i, single in enumerate((m1, m2)):
            strace = run_reference_trace(single, ids)
            want = np.flatnonzero(single.accepting[strace])
            got = np.flatnonzero(prod.component_accepting(i, trace))
            np.testing.assert_array_equal(got, want)

    def test_product_through_engine(self):
        import repro
        from repro.fsm.alphabet import Alphabet
        from repro.regex import compile_search

        ab = Alphabet.from_symbols("abc")
        prod = product_dfa(
            [compile_search("ab", ab), compile_search("bc?a", ab)]
        )
        rng = np.random.default_rng(1)
        ids = rng.integers(0, 3, size=20_000).astype(np.int32)
        r = repro.run_speculative(prod.dfa, ids, k=4, num_blocks=2,
                                  threads_per_block=32, price=False)
        assert r.final_state == run_reference(prod.dfa, ids)

    def test_component_names(self):
        a = make_random_dfa(3, 2, seed=0).with_name("alpha")
        b = make_random_dfa(3, 2, seed=1).with_name("")
        prod = product_dfa([a, b])
        assert prod.component_names == ("alpha", "component_1")
        assert prod.num_components == 2


class TestProductBudgetAndMinimize:
    def test_budget_aborts_construction(self):
        from repro.fsm.product import ProductStateBudget

        machines = [make_random_dfa(6, 3, seed=20 + i) for i in range(3)]
        with pytest.raises(ProductStateBudget):
            product_dfa(machines, max_states=3)

    def test_budget_is_a_value_error(self):
        from repro.fsm.product import ProductStateBudget

        assert issubclass(ProductStateBudget, ValueError)

    def test_budget_large_enough_succeeds(self):
        machines = [make_random_dfa(3, 2, seed=30 + i) for i in range(2)]
        prod = product_dfa(machines, max_states=9)
        assert prod.dfa.num_states <= 9

    def test_minimize_product_preserves_components(self):
        from repro.fsm.product import minimize_product

        a = make_random_dfa(5, 2, seed=40, accepting_fraction=0.4)
        b = make_random_dfa(4, 2, seed=41, accepting_fraction=0.4)
        prod = product_dfa([a, b])
        small = minimize_product(prod)
        assert small.dfa.num_states <= prod.dfa.num_states
        for seed in range(10):
            inp = random_input(2, 120, seed=seed)
            ps = run_reference(small.dfa, inp)
            assert small.component_accepting(0, np.array([ps]))[0] == bool(
                a.accepting[run_reference(a, inp)]
            )
            assert small.component_accepting(1, np.array([ps]))[0] == bool(
                b.accepting[run_reference(b, inp)]
            )

    def test_minimize_product_parallel_equals_sequential(self):
        from repro.fsm.product import minimize_product

        machines = [make_random_dfa(4, 3, seed=50 + i) for i in range(2)]
        prod = product_dfa(machines)
        seq = minimize_product(prod, parallel=False)
        par = minimize_product(prod, parallel=True)
        assert seq.dfa.num_states == par.dfa.num_states

    def test_vectorized_matches_tuple_fallback(self):
        from repro.fsm.product import _product_dfa_tuples

        machines = [make_random_dfa(4, 2, seed=60 + i) for i in range(3)]
        fast = product_dfa(machines)
        slow = _product_dfa_tuples(
            machines, name="product", max_states=None, keep_state_tuples=True
        )
        assert fast.dfa.num_states == slow.dfa.num_states
        for seed in range(8):
            inp = random_input(2, 150, seed=seed)
            assert bool(
                fast.dfa.accepting[run_reference(fast.dfa, inp)]
            ) == bool(slow.dfa.accepting[run_reference(slow.dfa, inp)])
