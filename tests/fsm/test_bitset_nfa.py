"""Tests for the bitset NFA engine vs the reference NFA semantics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fsm.bitset_nfa import BitsetNFA
from repro.fsm.nfa import NFA
from tests.fsm.test_subset import random_nfa


def mask_to_set(mask: np.uint64) -> frozenset:
    out = set()
    m = int(mask)
    q = 0
    while m:
        if m & 1:
            out.add(q)
        m >>= 1
        q += 1
    return frozenset(out)


class TestConstruction:
    def test_start_mask_is_closure(self):
        nfa = NFA(num_inputs=1)
        a, b = nfa.add_state(), nfa.add_state()
        nfa.add_edge(a, None, b)
        bit = BitsetNFA.from_nfa(nfa)
        assert mask_to_set(bit.start_mask) == {a, b}

    def test_too_many_states_rejected(self):
        nfa = NFA(num_inputs=1)
        for _ in range(65):
            nfa.add_state()
        with pytest.raises(ValueError, match="64"):
            BitsetNFA.from_nfa(nfa)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no states"):
            BitsetNFA.from_nfa(NFA(num_inputs=1))

    def test_epsilon_folded_into_steps(self):
        # a --0--> b --eps--> c: stepping on 0 from a must activate both
        nfa = NFA(num_inputs=1)
        a, b, c = (nfa.add_state() for _ in range(3))
        nfa.add_edge(a, 0, b)
        nfa.add_edge(b, None, c)
        bit = BitsetNFA.from_nfa(nfa)
        assert mask_to_set(bit.step_masks[0, a]) == {b, c}


class TestDirectExecution:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 500), data=st.data())
    def test_run_matches_reference(self, seed, data):
        nfa = random_nfa(seed)
        bit = BitsetNFA.from_nfa(nfa)
        word = np.array(data.draw(st.lists(st.integers(0, 1), max_size=20)),
                        dtype=np.int64)
        assert mask_to_set(bit.run(word)) == nfa.run(word)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 500), data=st.data())
    def test_accepts_matches_reference(self, seed, data):
        nfa = random_nfa(seed)
        bit = BitsetNFA.from_nfa(nfa)
        word = np.array(data.draw(st.lists(st.integers(0, 1), max_size=20)),
                        dtype=np.int64)
        assert bit.accepts(word) == nfa.accepts(word)


class TestParallelExecution:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 300), n=st.integers(0, 400),
           chunks=st.integers(1, 16))
    def test_parallel_equals_direct(self, seed, n, chunks):
        nfa = random_nfa(seed)
        bit = BitsetNFA.from_nfa(nfa)
        word = np.random.default_rng(seed + 1).integers(0, 2, size=n)
        assert bit.run_parallel(word, num_chunks=chunks) == bit.run(word)

    def test_chunk_matrices_compose(self):
        nfa = random_nfa(7)
        bit = BitsetNFA.from_nfa(nfa)
        word = np.random.default_rng(0).integers(0, 2, size=100)
        M = bit.chunk_matrices(word, 4)
        total = M[0] @ M[1] @ M[2] @ M[3]
        whole = bit.chunk_matrices(word, 1)[0]
        np.testing.assert_array_equal(total, whole)

    def test_empty_input(self):
        nfa = random_nfa(3)
        bit = BitsetNFA.from_nfa(nfa)
        assert bit.run_parallel(np.zeros(0, dtype=np.int64)) == bit.start_mask

    def test_dead_set_stays_dead(self):
        nfa = NFA(num_inputs=2)
        a, b = nfa.add_state(), nfa.add_state()
        nfa.add_edge(a, 0, b)
        nfa.accepting = {b}
        bit = BitsetNFA.from_nfa(nfa)
        word = np.array([1, 0, 0])  # dies on the first symbol
        assert bit.run(word) == np.uint64(0)
        assert bit.run_parallel(word, num_chunks=3) == np.uint64(0)

    def test_regex_nfa_end_to_end(self):
        from repro.fsm.alphabet import Alphabet
        from repro.regex.parser import parse
        from repro.regex.thompson import to_nfa

        ab = Alphabet.from_symbols("abc")
        nfa = to_nfa(parse("(ab|ba)+c"), ab)
        bit = BitsetNFA.from_nfa(nfa)
        assert bit.accepts_parallel(ab.encode("ababc"), num_chunks=3)
        assert bit.accepts_parallel(ab.encode("babac"), num_chunks=2)
        assert not bit.accepts_parallel(ab.encode("ababab"), num_chunks=3)
        assert not bit.accepts_parallel(ab.encode("c"), num_chunks=1)
