"""Tests for repro.fsm.dfa."""

import numpy as np
import pytest

from repro.fsm.alphabet import Alphabet
from repro.fsm.dfa import DFA
from tests.conftest import make_random_dfa, random_input


def comment_dfa() -> DFA:
    """The paper's Figure 1 machine: C-style /* */ comments."""
    # states: a=outside, b=seen '/', c=inside, d=inside-seen-'*'
    trans = {
        ("a", "/"): "b", ("a", "*"): "a", ("a", "x"): "a",
        ("b", "/"): "b", ("b", "*"): "c", ("b", "x"): "a",
        ("c", "/"): "c", ("c", "*"): "d", ("c", "x"): "c",
        ("d", "/"): "a", ("d", "*"): "d", ("d", "x"): "c",
    }
    return DFA.from_dict(trans, start="a", accepting=["a"], name="comments")


class TestConstruction:
    def test_from_dict_shapes(self):
        dfa = comment_dfa()
        assert dfa.num_states == 4
        assert dfa.num_inputs == 3
        assert dfa.start == 0
        assert dfa.table_entries == 12

    def test_from_dict_incomplete(self):
        with pytest.raises(ValueError, match="incomplete"):
            DFA.from_dict({("a", 0): "a", ("b", 0): "a", ("a", 1): "b"},
                          start="a", accepting=[])

    def test_table_out_of_range(self):
        with pytest.raises(ValueError, match="out-of-range"):
            DFA(table=np.array([[5]]), start=0, accepting=np.array([True]))

    def test_bad_start(self):
        with pytest.raises(ValueError, match="start state"):
            DFA(table=np.zeros((1, 2), dtype=np.int32), start=2,
                accepting=np.zeros(2, dtype=bool))

    def test_bad_accepting_shape(self):
        with pytest.raises(ValueError, match="accepting"):
            DFA(table=np.zeros((1, 2), dtype=np.int32), start=0,
                accepting=np.zeros(3, dtype=bool))

    def test_emit_shape_checked(self):
        with pytest.raises(ValueError, match="emit"):
            DFA(table=np.zeros((1, 2), dtype=np.int32), start=0,
                accepting=np.zeros(2, dtype=bool),
                emit=np.zeros((2, 2), dtype=np.int32))

    def test_alphabet_size_checked(self):
        with pytest.raises(ValueError, match="alphabet"):
            DFA(table=np.zeros((2, 2), dtype=np.int32), start=0,
                accepting=np.zeros(2, dtype=bool),
                alphabet=Alphabet.from_symbols("abc"))

    def test_random_is_deterministic(self):
        a = DFA.random(5, 3, rng=9)
        b = DFA.random(5, 3, rng=9)
        np.testing.assert_array_equal(a.table, b.table)

    def test_table_contiguous_int32(self):
        dfa = comment_dfa()
        assert dfa.table.dtype == np.int32
        assert dfa.table.flags.c_contiguous


class TestExecution:
    def test_paper_example(self):
        dfa = comment_dfa()
        # '/*xxx**/' ends outside the comment (state a)
        ids = dfa.encode("/*xxx**/")
        assert dfa.run(ids) == 0
        assert dfa.accepts(ids)

    def test_partial_comment_not_accepting(self):
        dfa = comment_dfa()
        assert not dfa.accepts(dfa.encode("/*xx"))

    def test_run_with_explicit_start(self):
        dfa = comment_dfa()
        assert dfa.run(dfa.encode("*/"), start=2) == 0  # c --*--> d --/--> a

    def test_step(self):
        dfa = comment_dfa()
        assert dfa.step(0, dfa.alphabet.id_of("/")) == 1

    def test_step_batch(self):
        dfa = comment_dfa()
        states = np.array([0, 0], dtype=np.int32)
        syms = np.array([dfa.alphabet.id_of("/"), dfa.alphabet.id_of("x")])
        np.testing.assert_array_equal(dfa.step_batch(states, syms), [1, 0])

    def test_empty_input(self):
        dfa = comment_dfa()
        assert dfa.run(np.zeros(0, dtype=np.int32)) == dfa.start

    def test_encode_requires_alphabet(self):
        dfa = make_random_dfa(3, 2, seed=0)
        with pytest.raises(ValueError, match="no alphabet"):
            dfa.encode("ab")


class TestTransformations:
    def test_with_start(self):
        dfa = comment_dfa()
        assert dfa.with_start(2).start == 2

    def test_renumber_identity(self):
        dfa = comment_dfa()
        same = dfa.renumber(range(dfa.num_states))
        np.testing.assert_array_equal(same.table, dfa.table)

    def test_renumber_preserves_behaviour(self):
        dfa = make_random_dfa(6, 3, seed=4)
        perm = [3, 1, 5, 0, 2, 4]
        ren = dfa.renumber(perm)
        inp = random_input(3, 200, seed=11)
        # Run both; map the renumbered result back through the permutation.
        inverse = np.empty(6, dtype=int)
        inverse[perm] = np.arange(6)
        assert inverse[dfa.run(inp)] == ren.run(inp)

    def test_renumber_preserves_acceptance(self):
        dfa = make_random_dfa(6, 3, seed=4)
        ren = dfa.renumber([5, 4, 3, 2, 1, 0])
        inp = random_input(3, 100, seed=3)
        assert dfa.accepts(inp) == ren.accepts(inp)

    def test_renumber_rejects_non_permutation(self):
        with pytest.raises(ValueError, match="permutation"):
            comment_dfa().renumber([0, 0, 1, 2])

    def test_renumber_transducer(self):
        table = np.array([[1, 0], [0, 1]], dtype=np.int32)
        emit = np.array([[5, -1], [-1, 7]], dtype=np.int32)
        dfa = DFA(table=table, start=0, accepting=np.zeros(2, dtype=bool), emit=emit)
        ren = dfa.renumber([1, 0])
        assert ren.emit is not None
        # emission for (old state 0, symbol 0) must follow state 0 -> new id 1
        assert ren.emit[0, 1] == 5
