"""Tests for Hopcroft minimization."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.fsm.dfa import DFA
from repro.fsm.minimize import minimize_dfa
from tests.conftest import make_random_dfa, random_input


class TestMinimize:
    def test_idempotent(self):
        dfa = make_random_dfa(8, 2, seed=3)
        m1 = minimize_dfa(dfa)
        m2 = minimize_dfa(m1)
        assert m1.num_states == m2.num_states

    def test_no_larger(self):
        dfa = make_random_dfa(10, 2, seed=5)
        assert minimize_dfa(dfa).num_states <= dfa.num_states

    def test_merges_equivalent_states(self):
        # States 1 and 2 have identical successor rows and acceptance.
        table = np.array([[1, 0, 0], [2, 0, 0]], dtype=np.int32)
        dfa = DFA(table=table, start=0, accepting=np.array([False, True, True]))
        m = minimize_dfa(dfa)
        assert m.num_states == 2

    def test_drops_unreachable(self):
        table = np.array([[0, 2, 2]], dtype=np.int32)  # state 1 unreachable
        dfa = DFA(table=table, start=0, accepting=np.array([False, True, False]))
        m = minimize_dfa(dfa)
        assert m.num_states <= 2

    def test_all_accepting_collapses(self):
        dfa = make_random_dfa(7, 2, seed=1, accepting_fraction=1.1)
        assert minimize_dfa(dfa).num_states == 1

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 500), data=st.data())
    def test_language_preserved(self, seed, data):
        dfa = make_random_dfa(7, 2, seed=seed)
        m = minimize_dfa(dfa)
        word = np.array(data.draw(st.lists(st.integers(0, 1), max_size=20)), dtype=np.int64)
        assert dfa.accepts(word) == m.accepts(word)

    def test_transducer_outputs_preserved(self):
        table = np.array([[1, 0], [0, 1]], dtype=np.int32)
        emit = np.array([[3, -1], [-1, 4]], dtype=np.int32)
        dfa = DFA(table=table, start=0, accepting=np.zeros(2, dtype=bool), emit=emit)
        m = minimize_dfa(dfa)
        assert m.emit is not None
        # States emit differently -> must not merge.
        assert m.num_states == 2

    def test_transducer_identical_states_merge(self):
        table = np.array([[1, 1], [0, 0]], dtype=np.int32)
        emit = np.array([[7, 7], [-1, -1]], dtype=np.int32)
        dfa = DFA(table=table, start=0, accepting=np.zeros(2, dtype=bool), emit=emit)
        # both states behave identically (same successors by class, same emits)
        m = minimize_dfa(dfa)
        assert m.num_states == 1

    def test_preserves_run_behaviour(self):
        dfa = make_random_dfa(9, 3, seed=8)
        m = minimize_dfa(dfa)
        inp = random_input(3, 500, seed=2)
        assert dfa.accepting[dfa.run(inp)] == m.accepting[m.run(inp)]


class TestParallelMinimize:
    @given(st.integers(0, 40))
    @settings(max_examples=25, deadline=None)
    def test_parallel_partition_identical(self, seed):
        dfa = make_random_dfa(12, 3, seed=seed)
        seq = minimize_dfa(dfa, parallel=False)
        par = minimize_dfa(dfa, parallel=True)
        assert par.num_states == seq.num_states
        inp = random_input(dfa.num_inputs, 500, seed=seed)
        assert np.array_equal(
            seq.accepting[np.asarray([seq.run(inp)])],
            par.accepting[np.asarray([par.run(inp)])],
        )

    def test_labels_prevent_merging(self):
        # Two states with identical behaviour but different labels must
        # stay distinct (the product route labels by per-component
        # acceptance mask).
        table = np.array([[1, 1]], dtype=np.int32)  # both states -> 1
        dfa = DFA(
            table=table,
            accepting=np.array([False, False]),
            start=0,
            name="lbl",
        )
        plain = minimize_dfa(dfa)
        assert plain.num_states == 1
        labelled = minimize_dfa(dfa, labels=np.array([0, 1]))
        assert labelled.num_states == 2

    def test_return_mapping(self):
        dfa = make_random_dfa(10, 2, seed=5)
        mdfa, mapping = minimize_dfa(dfa, return_mapping=True)
        assert mapping.shape == (dfa.num_states,)
        reachable = mapping >= 0
        assert mapping[dfa.start] == mdfa.start
        # The mapping is a DFA homomorphism on reachable states.
        for s in np.flatnonzero(reachable):
            for a in range(dfa.num_inputs):
                assert mapping[dfa.table[a, s]] == mdfa.table[a, mapping[s]]
        # Acceptance is preserved through the mapping.
        assert np.array_equal(
            dfa.accepting[reachable], mdfa.accepting[mapping[reachable]]
        )

    def test_parallel_with_labels_and_mapping(self):
        dfa = make_random_dfa(9, 3, seed=7)
        labels = np.arange(dfa.num_states) % 2
        a, ma = minimize_dfa(
            dfa, parallel=False, labels=labels, return_mapping=True
        )
        b, mb = minimize_dfa(
            dfa, parallel=True, labels=labels, return_mapping=True
        )
        assert a.num_states == b.num_states
        assert np.array_equal(ma, mb)
