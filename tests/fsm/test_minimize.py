"""Tests for Hopcroft minimization."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.fsm.dfa import DFA
from repro.fsm.minimize import minimize_dfa
from tests.conftest import make_random_dfa, random_input


class TestMinimize:
    def test_idempotent(self):
        dfa = make_random_dfa(8, 2, seed=3)
        m1 = minimize_dfa(dfa)
        m2 = minimize_dfa(m1)
        assert m1.num_states == m2.num_states

    def test_no_larger(self):
        dfa = make_random_dfa(10, 2, seed=5)
        assert minimize_dfa(dfa).num_states <= dfa.num_states

    def test_merges_equivalent_states(self):
        # States 1 and 2 have identical successor rows and acceptance.
        table = np.array([[1, 0, 0], [2, 0, 0]], dtype=np.int32)
        dfa = DFA(table=table, start=0, accepting=np.array([False, True, True]))
        m = minimize_dfa(dfa)
        assert m.num_states == 2

    def test_drops_unreachable(self):
        table = np.array([[0, 2, 2]], dtype=np.int32)  # state 1 unreachable
        dfa = DFA(table=table, start=0, accepting=np.array([False, True, False]))
        m = minimize_dfa(dfa)
        assert m.num_states <= 2

    def test_all_accepting_collapses(self):
        dfa = make_random_dfa(7, 2, seed=1, accepting_fraction=1.1)
        assert minimize_dfa(dfa).num_states == 1

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 500), data=st.data())
    def test_language_preserved(self, seed, data):
        dfa = make_random_dfa(7, 2, seed=seed)
        m = minimize_dfa(dfa)
        word = np.array(data.draw(st.lists(st.integers(0, 1), max_size=20)), dtype=np.int64)
        assert dfa.accepts(word) == m.accepts(word)

    def test_transducer_outputs_preserved(self):
        table = np.array([[1, 0], [0, 1]], dtype=np.int32)
        emit = np.array([[3, -1], [-1, 4]], dtype=np.int32)
        dfa = DFA(table=table, start=0, accepting=np.zeros(2, dtype=bool), emit=emit)
        m = minimize_dfa(dfa)
        assert m.emit is not None
        # States emit differently -> must not merge.
        assert m.num_states == 2

    def test_transducer_identical_states_merge(self):
        table = np.array([[1, 1], [0, 0]], dtype=np.int32)
        emit = np.array([[7, 7], [-1, -1]], dtype=np.int32)
        dfa = DFA(table=table, start=0, accepting=np.zeros(2, dtype=bool), emit=emit)
        # both states behave identically (same successors by class, same emits)
        m = minimize_dfa(dfa)
        assert m.num_states == 1

    def test_preserves_run_behaviour(self):
        dfa = make_random_dfa(9, 3, seed=8)
        m = minimize_dfa(dfa)
        inp = random_input(3, 500, seed=2)
        assert dfa.accepting[dfa.run(inp)] == m.accepting[m.run(inp)]
