"""Tests for DOT export."""

import pytest

from repro.apps.div import div7_dfa
from repro.fsm.dot import dfa_to_dot, nfa_to_dot
from repro.fsm.nfa import NFA
from tests.conftest import make_random_dfa


class TestDfaDot:
    def test_structure(self):
        dot = dfa_to_dot(div7_dfa())
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert "__start -> q0" in dot
        assert "doublecircle" in dot  # state 0 accepts

    def test_all_states_present(self):
        dfa = make_random_dfa(5, 2, seed=0)
        dot = dfa_to_dot(dfa)
        for q in range(5):
            assert f"q{q} [" in dot

    def test_symbols_grouped(self):
        # Div7's state 0 on symbol 0 stays at 0: the self-edge appears once
        dot = dfa_to_dot(div7_dfa())
        assert dot.count("q0 -> q0") == 1

    def test_alphabet_symbols_used(self):
        dot = dfa_to_dot(div7_dfa())
        assert 'label="0"' in dot or 'label="0,' in dot

    def test_max_states_guard(self):
        dfa = make_random_dfa(30, 2, seed=1)
        with pytest.raises(ValueError, match="max_states"):
            dfa_to_dot(dfa, max_states=10)

    def test_escaping(self):
        from repro.fsm.alphabet import Alphabet
        from repro.fsm.dfa import DFA
        import numpy as np

        dfa = DFA(
            table=np.zeros((1, 1), dtype=np.int32),
            start=0,
            accepting=np.array([False]),
            alphabet=Alphabet.from_symbols(['"']),
            name='with"quote',
        )
        dot = dfa_to_dot(dfa)
        assert '\\"' in dot


class TestNfaDot:
    def test_epsilon_labeled(self):
        nfa = NFA(num_inputs=2)
        a, b = nfa.add_state(), nfa.add_state()
        nfa.add_edge(a, None, b)
        nfa.accepting = {b}
        dot = nfa_to_dot(nfa)
        assert "eps" in dot
        assert "doublecircle" in dot

    def test_symbol_edges(self):
        nfa = NFA(num_inputs=2)
        a, b = nfa.add_state(), nfa.add_state()
        nfa.add_edge(a, 0, b)
        nfa.add_edge(a, 1, b)
        dot = nfa_to_dot(nfa)
        assert 'label="0,1"' in dot
