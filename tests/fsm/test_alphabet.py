"""Tests for repro.fsm.alphabet."""

import numpy as np
import pytest

from repro.fsm.alphabet import Alphabet


class TestConstruction:
    def test_from_symbols(self):
        ab = Alphabet.from_symbols("abc")
        assert ab.size == 3
        assert ab.id_of("b") == 1
        assert ab.symbol_of(2) == "c"

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Alphabet.from_symbols("aba")

    def test_binary(self):
        ab = Alphabet.binary()
        assert ab.size == 2
        assert ab.id_of(1) == 1

    def test_ascii(self):
        ab = Alphabet.ascii(128)
        assert ab.size == 128
        assert ab.id_of("A") == 65

    def test_ascii_bad_size(self):
        with pytest.raises(ValueError):
            Alphabet.ascii(0)

    def test_lowercase(self):
        ab = Alphabet.lowercase()
        assert ab.size == 26
        assert ab.id_of("z") == 25

    def test_contains(self):
        ab = Alphabet.from_symbols("xy")
        assert "x" in ab and "q" not in ab

    def test_len(self):
        assert len(Alphabet.from_symbols("xy")) == 2


class TestEncoding:
    def test_encode_sequence(self):
        ab = Alphabet.from_symbols("abc")
        np.testing.assert_array_equal(ab.encode("cab"), [2, 0, 1])

    def test_encode_unknown(self):
        with pytest.raises(KeyError, match="not in alphabet"):
            Alphabet.from_symbols("ab").encode("abc")

    def test_encode_text_contiguous_fast_path(self):
        ab = Alphabet.ascii(128)
        ids = ab.encode_text("Hi!")
        np.testing.assert_array_equal(ids, [72, 105, 33])

    def test_encode_text_out_of_range(self):
        with pytest.raises(KeyError):
            Alphabet.ascii(128).encode_text("é")

    def test_encode_text_noncontiguous(self):
        ab = Alphabet.from_symbols("ba")
        np.testing.assert_array_equal(ab.encode_text("ab"), [1, 0])

    def test_encode_text_noncontiguous_unknown(self):
        with pytest.raises(KeyError):
            Alphabet.from_symbols("ba").encode_text("c")

    def test_decode(self):
        ab = Alphabet.from_symbols("abc")
        assert ab.decode(np.array([2, 0])) == ["c", "a"]

    def test_decode_text(self):
        ab = Alphabet.from_symbols("abc")
        assert ab.decode_text(np.array([0, 1, 2])) == "abc"

    def test_roundtrip(self):
        ab = Alphabet.lowercase()
        text = "speculative"
        assert ab.decode_text(ab.encode_text(text)) == text


class TestJointCompaction:
    def _tables(self, sizes, num_symbols=10, seed=0):
        rng = np.random.default_rng(seed)
        return [
            rng.integers(0, s, size=(num_symbols, s)).astype(np.int32)
            for s in sizes
        ]

    def test_matches_concatenated_compaction(self):
        from repro.fsm.alphabet import compact_alphabet, compact_alphabet_joint

        tables = self._tables([3, 5, 2])
        joint = compact_alphabet_joint(tables)
        single = compact_alphabet(np.concatenate(tables, axis=1))
        assert np.array_equal(joint.class_of, single.class_of)
        assert joint.num_classes == single.num_classes

    def test_round_trip_every_symbol(self):
        from repro.fsm.alphabet import compact_alphabet_joint

        tables = self._tables([4, 3], seed=1)
        joint = compact_alphabet_joint(tables)
        for p, t in enumerate(tables):
            assert np.array_equal(joint.tables[p][joint.class_of], t)

    def test_joint_coarser_than_per_pattern(self):
        # Symbols 0 and 1 agree in table A but not in table B: joint
        # compaction must keep them apart even though A alone merges them.
        from repro.fsm.alphabet import compact_alphabet, compact_alphabet_joint

        a = np.array([[0, 1], [0, 1], [1, 0]], dtype=np.int32)
        b = np.array([[0, 1], [1, 0], [1, 0]], dtype=np.int32)
        assert compact_alphabet(a).num_classes == 2
        joint = compact_alphabet_joint([a, b])
        assert joint.num_classes == 3
        assert joint.class_of[0] != joint.class_of[1]

    def test_identical_rows_do_merge(self):
        from repro.fsm.alphabet import compact_alphabet_joint

        t = np.array([[0, 1], [0, 1], [1, 1]], dtype=np.int32)
        joint = compact_alphabet_joint([t, t.copy()])
        assert joint.num_classes == 2
        assert joint.class_of[0] == joint.class_of[1]
        assert joint.compression == pytest.approx(1.5)

    def test_ragged_padded_table(self):
        from repro.fsm.alphabet import compact_alphabet_joint

        tables = self._tables([2, 5], seed=2)
        joint = compact_alphabet_joint(tables)
        padded = joint.padded_table()
        assert padded.shape == (2, joint.num_classes, 5)
        # Padding states self-loop (unreachable, but well-formed).
        assert np.array_equal(
            padded[0, :, 2:], np.broadcast_to([2, 3, 4], (joint.num_classes, 3))
        )

    def test_validation(self):
        from repro.fsm.alphabet import compact_alphabet_joint

        with pytest.raises(ValueError):
            compact_alphabet_joint([])
        with pytest.raises(ValueError):
            compact_alphabet_joint(
                [np.zeros((3, 2), np.int32), np.zeros((4, 2), np.int32)]
            )
